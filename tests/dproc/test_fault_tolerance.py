"""Fault-tolerance tests: peer-to-peer dproc vs. the central collector.

The paper claims dproc's peer-to-peer communication improves fault
tolerance by "avoiding central master collection points".  These tests
make that concrete: kill one node in each architecture and check who
keeps learning about whom.
"""

from __future__ import annotations

import pytest

from repro.dproc import (CentralCollector, CentralConfig, MetricId,
                         deploy_dproc)
from repro.sim import build_cluster


def freshest(dmon, host, metric=MetricId.FREEMEM):
    entry = dmon.remote_value(host, metric)
    return None if entry is None else entry.received_at


class TestP2PSurvivesNodeLoss:
    def test_monitoring_continues_after_any_node_dies(self, env,
                                                      cluster3):
        dprocs = deploy_dproc(cluster3)
        env.run(until=5.0)
        # Kill maui — including the case where it created the channels
        # (deployment order makes alan the creator; test both).
        dprocs["maui"].stop()
        t_kill = env.now
        env.run(until=20.0)
        alan = dprocs["alan"].dmon
        etna = dprocs["etna"].dmon
        # The survivors still exchange fresh data with each other...
        assert freshest(alan, "etna") > t_kill
        assert freshest(etna, "alan") > t_kill
        # ...while the dead node's entries go stale but remain readable.
        assert freshest(alan, "maui") <= t_kill

    def test_channel_creator_death_is_survivable(self, env, cluster3):
        """The registry creator is control-plane only: its death must
        not take the channels down."""
        dprocs = deploy_dproc(cluster3)
        env.run(until=5.0)
        creator = dprocs["alan"]  # first deployed: created the channels
        creator.stop()
        t_kill = env.now
        env.run(until=20.0)
        maui = dprocs["maui"].dmon
        assert freshest(maui, "etna") > t_kill

    def test_dead_node_can_rejoin(self, env, cluster3):
        from repro.dproc import DMon, register_default_modules
        dprocs = deploy_dproc(cluster3)
        env.run(until=5.0)
        dprocs["maui"].stop()
        env.run(until=10.0)
        # Fresh d-mon on the same node, same bus (reboot).
        reborn = DMon(cluster3["maui"], dprocs["maui"].bus)
        register_default_modules(reborn)
        reborn.start()
        env.run(until=20.0)
        assert freshest(dprocs["alan"].dmon, "maui") > 10.0
        assert reborn.remote_value("etna",
                                   MetricId.FREEMEM) is not None


class TestCentralCollectorIsAFaultDomain:
    def test_collector_death_stops_all_dissemination(self, env,
                                                     cluster3):
        central = CentralCollector(
            cluster3, collector="alan",
            config=CentralConfig(metric_subset=frozenset(
                {MetricId.FREEMEM}))).start()
        env.run(until=6.0)
        # Everyone knows everyone while the collector lives.
        assert central.view("maui", "etna", MetricId.FREEMEM) \
            is not None
        before = dict(central.node_views["maui"].get("etna", {}))
        central.stop()  # the collector (and the whole system) dies
        env.run(until=30.0)
        after = central.node_views["maui"].get("etna", {})
        # maui learned nothing new about etna after the collector died.
        assert after == before

    def test_p2p_has_no_single_fault_domain(self, env):
        """Counterpart: kill each dproc node in turn; the other two
        always keep exchanging."""
        for victim in ("alan", "maui", "etna"):
            from repro.sim import Environment
            env_i = Environment()
            cluster = build_cluster(env_i, 3, seed=4)
            dprocs = deploy_dproc(cluster)
            env_i.run(until=5.0)
            dprocs[victim].stop()
            t_kill = env_i.now
            env_i.run(until=20.0)
            survivors = [n for n in cluster.names if n != victim]
            a, b = survivors
            assert freshest(dprocs[a].dmon, b) > t_kill, \
                f"{a} lost {b} after {victim} died"
            assert freshest(dprocs[b].dmon, a) > t_kill, \
                f"{b} lost {a} after {victim} died"
