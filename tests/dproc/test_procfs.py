"""Unit tests for the pseudo-filesystem."""

from __future__ import annotations

import pytest

from repro.dproc import ProcFS, ProcFile
from repro.errors import ProcfsError


@pytest.fixture
def fs():
    fs = ProcFS()
    fs.mount("/proc/loadavg", ProcFile(lambda: "0.50\n"))
    written = []
    fs.mount("/proc/cluster/maui/control",
             ProcFile(lambda: "log\n", written.append))
    fs.written = written  # type: ignore[attr-defined]
    return fs


class TestMounting:
    def test_read_mounted_file(self, fs):
        assert fs.read("/proc/loadavg") == "0.50\n"

    def test_duplicate_mount_rejected(self, fs):
        with pytest.raises(ProcfsError, match="already"):
            fs.mount("/proc/loadavg", ProcFile(lambda: ""))

    def test_file_cannot_shadow_directory(self, fs):
        with pytest.raises(ProcfsError, match="conflicts"):
            fs.mount("/proc/cluster", ProcFile(lambda: ""))

    def test_directory_cannot_shadow_file(self, fs):
        with pytest.raises(ProcfsError, match="conflicts"):
            fs.mount("/proc/loadavg/sub", ProcFile(lambda: ""))

    def test_unmount(self, fs):
        fs.unmount("/proc/loadavg")
        with pytest.raises(ProcfsError):
            fs.read("/proc/loadavg")

    def test_unmount_unknown_rejected(self, fs):
        with pytest.raises(ProcfsError):
            fs.unmount("/proc/ghost")

    def test_bad_path_rejected(self, fs):
        with pytest.raises(ProcfsError):
            fs.read("")
        with pytest.raises(ProcfsError):
            fs.read("///")


class TestAccess:
    def test_read_missing_raises(self, fs):
        with pytest.raises(ProcfsError, match="no such file"):
            fs.read("/proc/nothing")

    def test_write_to_readonly_raises(self, fs):
        with pytest.raises(ProcfsError, match="read-only"):
            fs.write("/proc/loadavg", "x")

    def test_write_dispatches_to_handler(self, fs):
        fs.write("/proc/cluster/maui/control", "period cpu 2")
        assert fs.written == ["period cpu 2"]

    def test_reads_are_fresh(self):
        fs = ProcFS()
        counter = {"n": 0}

        def read():
            counter["n"] += 1
            return str(counter["n"])

        fs.mount("/proc/dynamic", ProcFile(read))
        assert fs.read("/proc/dynamic") == "1"
        assert fs.read("/proc/dynamic") == "2"

    def test_exists(self, fs):
        assert fs.exists("/proc/loadavg")
        assert fs.exists("/proc/cluster")          # implicit directory
        assert fs.exists("/proc/cluster/maui")
        assert not fs.exists("/proc/cluster/etna")

    def test_is_dir(self, fs):
        assert fs.is_dir("/proc/cluster")
        assert not fs.is_dir("/proc/loadavg")
        assert not fs.is_dir("/does/not/exist")

    def test_listdir(self, fs):
        assert fs.listdir("/proc") == ["cluster", "loadavg"]
        assert fs.listdir("/proc/cluster") == ["maui"]
        assert fs.listdir("/proc/cluster/maui") == ["control"]

    def test_listdir_of_file_raises(self, fs):
        with pytest.raises(ProcfsError, match="is a file"):
            fs.listdir("/proc/loadavg")

    def test_listdir_missing_raises(self, fs):
        with pytest.raises(ProcfsError, match="no such directory"):
            fs.listdir("/proc/ghost")
