"""Unit tests for the dynamic filter manager."""

from __future__ import annotations

import pytest

from repro.dproc import MetricId
from repro.dproc.filters import FilterManager
from repro.errors import FilterDeploymentError


PASS_LOADAVG = """
{
    int i = 0;
    if (input[LOADAVG].value > 2) {
        output[i] = input[LOADAVG];
        i = i + 1;
    }
}
"""


@pytest.fixture
def manager(cluster3):
    return FilterManager(cluster3["alan"])


class TestDeployment:
    def test_deploy_compiles_and_registers(self, manager):
        deployed = manager.deploy(PASS_LOADAVG, scope="*")
        assert len(manager) == 1
        assert manager.global_filter is deployed
        assert deployed.compiled is not None

    def test_auto_ids_unique(self, manager):
        a = manager.deploy(PASS_LOADAVG, scope="cpu")
        b = manager.deploy(PASS_LOADAVG, scope="mem")
        assert a.filter_id != b.filter_id

    def test_same_scope_replaces(self, manager):
        manager.deploy(PASS_LOADAVG, scope="*", filter_id="old")
        manager.deploy(PASS_LOADAVG, scope="*", filter_id="new")
        assert len(manager) == 1
        assert manager.global_filter.filter_id == "new"

    def test_duplicate_id_rejected(self, manager):
        manager.deploy(PASS_LOADAVG, scope="*", filter_id="f")
        with pytest.raises(FilterDeploymentError, match="already"):
            manager.deploy(PASS_LOADAVG, scope="cpu", filter_id="f")

    def test_syntax_error_becomes_deployment_error(self, manager):
        with pytest.raises(FilterDeploymentError, match="compile"):
            manager.deploy("int x = ;", scope="*")

    def test_type_error_becomes_deployment_error(self, manager):
        with pytest.raises(FilterDeploymentError, match="compile"):
            manager.deploy("output[0] = 5;", scope="*")

    def test_compile_charges_cpu(self, env, cluster3):
        node = cluster3["alan"]
        manager = FilterManager(node)
        manager.deploy(PASS_LOADAVG, scope="*")
        env.run()
        node.cpu.settle()
        assert node.cpu.busy_cpu_seconds \
            == pytest.approx(node.costs.filter_compile)

    def test_remove(self, manager):
        manager.deploy(PASS_LOADAVG, scope="*", filter_id="f")
        manager.remove("f")
        assert len(manager) == 0
        assert manager.global_filter is None

    def test_remove_unknown_rejected(self, manager):
        with pytest.raises(FilterDeploymentError):
            manager.remove("ghost")

    def test_clear(self, manager):
        manager.deploy(PASS_LOADAVG, scope="*")
        manager.deploy(PASS_LOADAVG, scope="cpu")
        manager.clear()
        assert len(manager) == 0


class TestExecution:
    def test_run_filters_records(self, env, manager):
        deployed = manager.deploy(PASS_LOADAVG, scope="*")
        records = manager.input_array(
            {MetricId.LOADAVG: 3.0}, {}, env.now)
        result = manager.run(deployed, records)
        assert [o.name for o in result.outputs] == ["loadavg"]
        assert result.emitted == []
        assert deployed.invocations == 1
        assert deployed.total_outputs == 1
        assert deployed.total_emitted == 0

    def test_run_blocks_when_condition_false(self, env, manager):
        deployed = manager.deploy(PASS_LOADAVG, scope="*")
        records = manager.input_array(
            {MetricId.LOADAVG: 0.5}, {}, env.now)
        assert manager.run(deployed, records).outputs == []

    def test_runtime_error_counted_not_raised(self, env, manager):
        deployed = manager.deploy("{ return 1 / input[0].value; }",
                                  scope="*")
        records = manager.input_array({MetricId.LOADAVG: 0.0}, {},
                                      env.now)
        # value is 0.0 -> int/double division by zero inside filter
        result = manager.run(deployed, records)
        assert result.outputs == []
        assert deployed.errors == 1

    def test_input_array_is_dense_and_indexed(self, env, manager):
        records = manager.input_array(
            {MetricId.FREEMEM: 123.0}, {MetricId.FREEMEM: 100.0},
            env.now)
        assert len(records) == max(int(m) for m in MetricId) + 1
        rec = records[int(MetricId.FREEMEM)]
        assert rec.value == 123.0
        assert rec.last_value_sent == 100.0
        assert rec.name == "freemem"
        # uncollected metric defaults to zero
        assert records[int(MetricId.NET_RTT)].value == 0.0

    def test_last_value_sent_drives_differential_logic(self, env,
                                                       manager):
        src = """
        {
            if (input[FREEMEM].value <
                input[FREEMEM].last_value_sent * 0.9) {
                output[0] = input[FREEMEM];
            }
        }
        """
        deployed = manager.deploy(src, scope="mem")
        stable = manager.input_array({MetricId.FREEMEM: 95.0},
                                     {MetricId.FREEMEM: 100.0}, env.now)
        assert manager.run(deployed, stable).outputs == []
        dropped = manager.input_array({MetricId.FREEMEM: 80.0},
                                      {MetricId.FREEMEM: 100.0}, env.now)
        assert len(manager.run(deployed, dropped).outputs) == 1
