"""Unit tests for the monitoring modules."""

from __future__ import annotations

import pytest

from repro.dproc import (CpuMon, DiskMon, MemMon, MetricId, NetMon,
                         PmcMon)
from repro.errors import DprocError
from repro.units import MB, PAGE_SIZE, mbps


def sample_dict(module, now):
    return {s.metric: s.value for s in module.collect(now)}


class TestCpuMon:
    def test_metrics(self, cluster3):
        assert CpuMon(cluster3["alan"]).metrics() == (MetricId.LOADAVG,)

    def test_tracks_run_queue_average(self, env, cluster3):
        node = cluster3["alan"]
        mon = CpuMon(node, avg_period=2.0)
        mon.start()
        # Two long-running jobs -> run queue length 2.
        node.cpu.execute(1e9)
        node.cpu.execute(1e9)
        env.run(until=5.0)
        value = sample_dict(mon, env.now)[MetricId.LOADAVG]
        assert value == pytest.approx(2.0, abs=0.3)

    def test_idle_load_is_zero(self, env, cluster3):
        mon = CpuMon(cluster3["alan"], avg_period=1.0)
        mon.start()
        env.run(until=3.0)
        assert sample_dict(mon, env.now)[MetricId.LOADAVG] \
            == pytest.approx(0.0, abs=0.1)

    def test_configure_period(self, env, cluster3):
        mon = CpuMon(cluster3["alan"], avg_period=60.0)
        mon.configure("period", 5.0)
        assert mon.avg_period == 5.0
        assert mon.sample_interval == pytest.approx(0.5)

    def test_sample_interval_floor(self, cluster3):
        mon = CpuMon(cluster3["alan"], avg_period=0.2)
        assert mon.sample_interval == CpuMon.MIN_SAMPLE_INTERVAL

    def test_bad_config_rejected(self, cluster3):
        mon = CpuMon(cluster3["alan"])
        with pytest.raises(DprocError):
            mon.configure("period", 0)
        with pytest.raises(DprocError):
            mon.configure("bogus", 1)
        with pytest.raises(DprocError):
            CpuMon(cluster3["alan"], avg_period=-1)

    def test_sampler_charges_cpu(self, env, cluster3):
        node = cluster3["maui"]
        mon = CpuMon(node, avg_period=1.0)
        mon.start()
        env.run(until=10.0)
        node.cpu.settle()
        assert node.cpu.busy_cpu_seconds > 0

    def test_stop_ends_thread(self, env, cluster3):
        mon = CpuMon(cluster3["alan"], avg_period=1.0)
        mon.start()
        env.run(until=1.0)
        mon.stop()
        env.run()  # must terminate (no infinite schedule)


class TestMemMon:
    def test_reports_free_bytes(self, env, cluster3):
        node = cluster3["alan"]
        mon = MemMon(node)
        before = sample_dict(mon, env.now)[MetricId.FREEMEM]
        node.memory.allocate(MB(100))
        after = sample_dict(mon, env.now)[MetricId.FREEMEM]
        assert before - after == pytest.approx(MB(100), abs=PAGE_SIZE)

    def test_page_granularity(self, env, cluster3):
        mon = MemMon(cluster3["alan"])
        value = sample_dict(mon, env.now)[MetricId.FREEMEM]
        assert value % PAGE_SIZE == 0


class TestDiskMon:
    def test_rates_over_window(self, env, cluster3):
        node = cluster3["alan"]
        mon = DiskMon(node, window=10.0)

        def writer():
            for _ in range(10):
                yield node.disk.write(512 * 8)  # 8 sectors each
                yield env.timeout(0.5)

        env.run(env.process(writer()))
        values = sample_dict(mon, env.now)
        assert values[MetricId.DISK_WRITES] == pytest.approx(1.0, rel=0.3)
        assert values[MetricId.DISKUSAGE] == pytest.approx(8.0, rel=0.3)
        assert values[MetricId.DISK_READS] == 0.0

    def test_idle_disk_zero(self, env, cluster3):
        mon = DiskMon(cluster3["alan"])
        env.run(until=2.0)
        values = sample_dict(mon, env.now)
        assert values[MetricId.DISKUSAGE] == 0.0

    def test_configure_window(self, cluster3):
        mon = DiskMon(cluster3["alan"])
        mon.configure("period", 5.0)
        assert mon.window == 5.0
        with pytest.raises(DprocError):
            mon.configure("period", -1)


class TestNetMon:
    def test_available_bandwidth_idle(self, env, cluster3):
        mon = NetMon(cluster3["alan"])
        values = sample_dict(mon, env.now)
        assert values[MetricId.NET_BANDWIDTH] \
            == pytest.approx(mbps(100))

    def test_available_bandwidth_under_fixed_flow(self, env, cluster3):
        cluster3.fabric.open_fixed_flow("maui", "alan", mbps(60))
        env.run(until=1.0)
        mon = NetMon(cluster3["alan"])
        values = sample_dict(mon, env.now)
        assert values[MetricId.NET_BANDWIDTH] \
            == pytest.approx(mbps(40), rel=0.02)

    def test_used_bandwidth(self, env, cluster3):
        alan = cluster3["alan"]
        conn = alan.stack.connect("maui", tag="t")

        def sender():
            yield conn.send("x", size=mbps(10) * 0.5)
            yield env.timeout(0.4)

        env.run(env.process(sender()))
        mon = NetMon(alan, window=env.now + 0.1)
        values = sample_dict(mon, env.now)
        assert values[MetricId.NET_USED] > 0

    def test_rtt_zero_without_connections(self, env, cluster3):
        mon = NetMon(cluster3["etna"])
        assert sample_dict(mon, env.now)[MetricId.NET_RTT] == 0.0

    def test_rtt_after_traffic(self, env, cluster3):
        alan = cluster3["alan"]
        conn = alan.stack.connect("maui", tag="t")

        def sender():
            yield conn.send("x", size=1000)

        env.run(env.process(sender()))
        mon = NetMon(alan)
        assert sample_dict(mon, env.now)[MetricId.NET_RTT] > 0

    def test_end_to_end_delay(self, env, cluster3):
        alan = cluster3["alan"]
        conn = alan.stack.connect("maui", tag="t")

        def sender():
            yield conn.send("x", size=mbps(100) * 0.5)  # ~0.5 s

        env.run(env.process(sender()))
        mon = NetMon(alan)
        delay = sample_dict(mon, env.now)[MetricId.NET_DELAY]
        assert delay == pytest.approx(0.5, rel=0.05)

    def test_delay_zero_without_traffic(self, env, cluster3):
        mon = NetMon(cluster3["etna"])
        assert sample_dict(mon, env.now)[MetricId.NET_DELAY] == 0.0


class TestPmcMon:
    def test_idle_counters_zero(self, env, cluster3):
        mon = PmcMon(cluster3["alan"])
        mon.collect(env.now)
        env.run(until=1.0)
        values = sample_dict(mon, env.now)
        assert values[MetricId.CACHE_MISS] == 0.0
        assert values[MetricId.INSTRUCTIONS] == 0.0

    def test_compute_generates_counters(self, env, cluster3):
        node = cluster3["alan"]
        mon = PmcMon(node)
        mon.collect(env.now)  # establish baseline
        node.cpu.execute(10.0)
        env.run(until=2.0)
        values = sample_dict(mon, env.now)
        assert values[MetricId.CACHE_MISS] > 0
        assert values[MetricId.INSTRUCTIONS] > 0

    def test_network_rx_pollutes_cache(self, env, cluster3):
        node = cluster3["maui"]
        mon = PmcMon(node)
        mon.collect(env.now)
        conn = cluster3["alan"].stack.connect("maui", tag="t")

        def sender():
            yield conn.send("x", size=MB(1))

        env.run(env.process(sender()))
        env.run(until=env.now + 0.5)
        values = sample_dict(mon, env.now)
        assert values[MetricId.CACHE_MISS] > 0

    def test_first_collect_is_safe(self, env, cluster3):
        mon = PmcMon(cluster3["alan"])
        values = sample_dict(mon, env.now)
        assert values[MetricId.CACHE_MISS] == 0.0
