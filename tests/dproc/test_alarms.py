"""Unit tests for the alarm watchers."""

from __future__ import annotations

import pytest

from repro.dproc import MetricId, deploy_dproc
from repro.dproc.alarms import AlarmManager
from repro.errors import DprocError
from repro.units import MB
from repro.workloads import Linpack


@pytest.fixture
def system(env, cluster3):
    dprocs = deploy_dproc(cluster3)
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 3.0)
    manager = AlarmManager(dprocs["alan"].dmon)
    return manager, dprocs, cluster3


class TestFiring:
    def test_rising_edge_fires_once(self, env, system):
        manager, _dprocs, cluster = system
        fired = []
        manager.watch_above(MetricId.LOADAVG, 1.5,
                            lambda a, h, v, t: fired.append((h, v)))
        for _ in range(3):
            Linpack(cluster["maui"]).start()
        env.run(until=60.0)
        # Sustained overload: exactly one firing, not one per sample.
        assert len(fired) == 1
        host, value = fired[0]
        assert host == "maui" and value > 1.5

    def test_host_filter(self, env, system):
        manager, _dprocs, cluster = system
        fired = []
        manager.watch_above(MetricId.LOADAVG, 1.5,
                            lambda a, h, v, t: fired.append(h),
                            host="etna")
        for _ in range(3):
            Linpack(cluster["maui"]).start()
        env.run(until=60.0)
        assert fired == []  # only etna is watched; etna is idle

    def test_watch_below(self, env, system):
        manager, _dprocs, cluster = system
        fired = []
        manager.watch_below(MetricId.FREEMEM, MB(200),
                            lambda a, h, v, t: fired.append(h))
        env.run(until=5.0)
        assert fired == []
        hog = cluster["etna"].memory.allocate(MB(350), tag="hog")
        env.run(until=10.0)
        assert fired == ["etna"]
        hog.free()

    def test_rearm_after_clear(self, env, system):
        manager, _dprocs, cluster = system
        fired = []
        alarm = manager.watch_below(
            MetricId.FREEMEM, MB(200),
            lambda a, h, v, t: fired.append(env.now))
        hog = cluster["maui"].memory.allocate(MB(350), tag="hog")
        env.run(until=10.0)
        hog.free()          # clears well past the hysteresis band
        env.run(until=20.0)
        hog2 = cluster["maui"].memory.allocate(MB(350), tag="hog")
        env.run(until=30.0)
        assert len(fired) == 2
        assert alarm.firings == 2
        hog2.free()

    def test_log_records_firings(self, env, system):
        manager, _dprocs, cluster = system
        alarm = manager.watch_above(MetricId.LOADAVG, 1.0,
                                    lambda a, h, v, t: None)
        for _ in range(2):
            Linpack(cluster["etna"]).start()
        env.run(until=60.0)
        assert len(manager.log) == 1
        alarm_id, host, value, when = manager.log[0]
        assert alarm_id == alarm.alarm_id
        assert host == "etna" and when > 0

    def test_cancel_removes_alarm(self, env, system):
        manager, _dprocs, cluster = system
        fired = []
        alarm = manager.watch_above(MetricId.LOADAVG, 1.0,
                                    lambda a, h, v, t:
                                    fired.append(h))
        alarm.cancel()
        for _ in range(3):
            Linpack(cluster["maui"]).start()
        env.run(until=60.0)
        assert fired == []
        assert alarm not in manager.alarms

    def test_validation(self, system):
        manager, _dprocs, _cluster = system
        with pytest.raises(DprocError):
            manager.watch(MetricId.LOADAVG, lambda v: True,
                          lambda a, h, v, t: None, clear_fraction=-1)

    def test_multiple_hosts_tracked_independently(self, env, system):
        manager, _dprocs, cluster = system
        fired = []
        manager.watch_above(MetricId.LOADAVG, 1.5,
                            lambda a, h, v, t: fired.append(h))
        for _ in range(3):
            Linpack(cluster["maui"]).start()
        env.run(until=60.0)
        for _ in range(3):
            Linpack(cluster["etna"]).start()
        env.run(until=120.0)
        assert sorted(fired) == ["etna", "maui"]
