"""Integration tests for the Dproc toolkit facade and /proc interface."""

from __future__ import annotations

import math

import pytest

from repro.dproc import MetricId, deploy_dproc
from repro.errors import ControlSyntaxError, DprocError, ProcfsError


@pytest.fixture
def dprocs(env, cluster3):
    return deploy_dproc(cluster3)


class TestDeployment:
    def test_every_node_gets_instance(self, dprocs, cluster3):
        assert set(dprocs) == set(cluster3.names)
        for name, dp in dprocs.items():
            assert dp.node.name == name
            assert dp.dmon.running

    def test_proc_cluster_shows_all_hosts(self, dprocs):
        for dp in dprocs.values():
            assert dp.listdir("/proc/cluster") == ["alan", "etna", "maui"]

    def test_figure1_hierarchy(self, dprocs):
        """The paper's Figure 1: metric files under each node dir."""
        files = dprocs["alan"].listdir("/proc/cluster/maui")
        for expected in ("loadavg", "freemem", "diskusage", "control",
                         "net_bandwidth", "cache_miss"):
            assert expected in files

    def test_subset_deployment(self, env, cluster8):
        dprocs = deploy_dproc(cluster8, hosts=["alan", "maui"])
        assert set(dprocs) == {"alan", "maui"}
        assert dprocs["alan"].listdir("/proc/cluster") == ["alan", "maui"]

    def test_duplicate_host_mount_rejected(self, dprocs):
        with pytest.raises(DprocError):
            dprocs["alan"].add_cluster_node("maui")

    def test_service_attached_to_node(self, dprocs, cluster3):
        assert cluster3["alan"].services["dproc"] is dprocs["alan"]


class TestReading:
    def test_remote_metric_via_procfs(self, env, dprocs):
        env.run(until=3.0)
        text = dprocs["alan"].read("/proc/cluster/maui/freemem")
        assert float(text) > 0

    def test_own_metrics_served_locally(self, env, dprocs):
        env.run(until=3.0)
        text = dprocs["alan"].read("/proc/cluster/alan/freemem")
        assert float(text) > 0

    def test_unknown_value_reads_nan(self, env, dprocs):
        # before any polling happened
        text = dprocs["alan"].read("/proc/cluster/maui/loadavg")
        assert math.isnan(float(text))

    def test_standard_proc_loadavg(self, env, dprocs, cluster3):
        cluster3["alan"].cpu.execute(1e9)
        env.run(until=60.0)
        one, five, fifteen = dprocs["alan"].read("/proc/loadavg").split()
        assert float(one) > float(fifteen) > 0

    def test_meminfo(self, dprocs):
        text = dprocs["alan"].read("/proc/meminfo")
        assert "MemTotal" in text and "MemFree" in text

    def test_metric_helpers(self, env, dprocs):
        env.run(until=3.0)
        assert dprocs["alan"].freemem("maui") > 0
        assert dprocs["alan"].loadavg("maui") >= 0
        # A metric for an unknown host is NaN.
        assert math.isnan(dprocs["alan"].metric("vesuvius",
                                                MetricId.LOADAVG))

    def test_read_missing_path(self, dprocs):
        with pytest.raises(ProcfsError):
            dprocs["alan"].read("/proc/cluster/maui/bogus")


class TestControlWrites:
    def test_period_command_reaches_remote(self, env, dprocs):
        env.run(until=1.0)
        dprocs["alan"].write("/proc/cluster/maui/control",
                             "period cpu 2")
        env.run(until=2.0)
        maui = dprocs["maui"].dmon
        assert maui.policies[MetricId.LOADAVG].period == 2.0

    def test_combined_commands(self, env, dprocs):
        env.run(until=1.0)
        dprocs["alan"].write(
            "/proc/cluster/etna/control",
            "period cpu 2\nthreshold loadavg above 0.8")
        env.run(until=2.0)
        policy = dprocs["etna"].dmon.policies[MetricId.LOADAVG]
        assert policy.period == 2.0
        assert len(policy.thresholds) == 1

    def test_filter_deploy_via_control_file(self, env, dprocs):
        env.run(until=1.0)
        dprocs["alan"].write("/proc/cluster/maui/control", """filter * id=f1
{
    int i = 0;
    if (input[LOADAVG].value > 0.5) {
        output[i] = input[LOADAVG];
        i = i + 1;
    }
}""")
        env.run(until=2.0)
        deployed = dprocs["maui"].dmon.filters.global_filter
        assert deployed is not None and deployed.filter_id == "f1"
        dprocs["alan"].write("/proc/cluster/maui/control", "unfilter f1")
        env.run(until=3.0)
        assert dprocs["maui"].dmon.filters.global_filter is None

    def test_self_control_applies_locally(self, env, dprocs):
        env.run(until=1.0)
        dprocs["alan"].write("/proc/cluster/alan/control",
                             "period mem 4")
        assert dprocs["alan"].dmon.policies[MetricId.FREEMEM].period \
            == 4.0

    def test_control_read_returns_log(self, env, dprocs):
        env.run(until=1.0)
        dprocs["alan"].write("/proc/cluster/maui/control",
                             "period cpu 2")
        assert "period cpu 2" in \
            dprocs["alan"].read("/proc/cluster/maui/control")

    def test_bad_command_rejected_locally(self, dprocs):
        with pytest.raises(ControlSyntaxError):
            dprocs["alan"].write("/proc/cluster/maui/control",
                                 "warp cpu 9")

    def test_metric_files_are_read_only(self, dprocs):
        with pytest.raises(ProcfsError, match="read-only"):
            dprocs["alan"].write("/proc/cluster/maui/loadavg", "1.0")


class TestScenario:
    def test_batch_scheduler_scenario(self, env, cluster3):
        """The paper's batch-queue scheduler: free-memory updates only
        while the load average is below the CPU count."""
        dprocs = deploy_dproc(cluster3)
        env.run(until=1.0)
        n_cpus = cluster3["maui"].cpu.n_cpus
        dprocs["alan"].write("/proc/cluster/maui/control", f"""filter * id=sched
{{
    int i = 0;
    if (input[LOADAVG].value < {n_cpus}) {{
        output[i] = input[FREEMEM];
        i = i + 1;
    }}
}}""")
        env.run(until=6.0)
        # maui idle -> loadavg < n_cpus -> FREEMEM keeps flowing while
        # LOADAVG (published before the filter landed) goes stale.
        alan = dprocs["alan"].dmon
        fresh = alan.remote_value("maui", MetricId.FREEMEM)
        assert fresh is not None and fresh.received_at > 2.0
        stale = alan.remote_value("maui", MetricId.LOADAVG)
        assert stale is None or stale.received_at < 2.0
        # Now saturate maui; FREEMEM updates must stop.
        for _ in range(n_cpus + 2):
            cluster3["maui"].cpu.execute(1e9)
        env.run(until=90.0)
        before = alan.remote_value("maui", MetricId.FREEMEM).received_at
        env.run(until=110.0)
        after = alan.remote_value("maui", MetricId.FREEMEM).received_at
        assert after == before  # no fresh FREEMEM while loaded


class TestStatusFiles:
    def test_status_reports_fresh_peer(self, env, dprocs):
        env.run(until=3.0)
        text = dprocs["alan"].read("/proc/cluster/maui/status")
        assert text.startswith("state: fresh\n")
        assert dprocs["alan"].peer_state("maui") == "fresh"

    def test_status_tracks_downed_peer(self, env, dprocs):
        env.run(until=3.0)
        dprocs["maui"].stop()
        env.run(until=30.0)
        text = dprocs["alan"].read("/proc/cluster/maui/status")
        assert text.startswith("state: dead\n")
        age = float(text.splitlines()[1].split()[1])
        assert age > 10.0

    def test_status_unknown_before_any_data(self, dprocs):
        text = dprocs["alan"].read("/proc/cluster/maui/status")
        assert text == "state: unknown\nage: inf\n"
