"""Unit tests for the cluster-wide aggregate view."""

from __future__ import annotations

import math

import pytest

from repro.dproc import MetricId, deploy_dproc
from repro.dproc.aggregate import ClusterView
from repro.errors import DprocError
from repro.units import MB
from repro.workloads import Linpack


@pytest.fixture
def view(env, cluster3):
    dprocs = deploy_dproc(cluster3)
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 4.0)
    env.run(until=5.0)
    return ClusterView(dprocs["alan"], staleness=5.0), dprocs, cluster3


class TestSnapshot:
    def test_covers_all_hosts_when_fresh(self, view):
        v, _dprocs, cluster = view
        snap = v.snapshot(MetricId.FREEMEM)
        assert set(snap) == set(cluster.names)
        assert all(value > 0 for value in snap.values())

    def test_exclude_self(self, view):
        v, _, _ = view
        snap = v.snapshot(MetricId.FREEMEM, include_self=False)
        assert "alan" not in snap

    def test_stale_entries_dropped(self, env, view):
        v, dprocs, _ = view
        dprocs["maui"].dmon.stop()
        env.run(until=20.0)
        snap = v.snapshot(MetricId.FREEMEM)
        assert "maui" not in snap
        assert "etna" in snap

    def test_age(self, env, view):
        v, dprocs, _ = view
        assert v.age("alan", MetricId.FREEMEM) == 0.0
        assert v.age("maui", MetricId.FREEMEM) < 2.0
        dprocs["maui"].dmon.stop()
        env.run(until=30.0)
        assert v.age("maui", MetricId.FREEMEM) > 20.0
        assert v.age("ghost", MetricId.FREEMEM) == math.inf

    def test_staleness_validation(self, view):
        v, dprocs, _ = view
        with pytest.raises(DprocError):
            ClusterView(dprocs["alan"], staleness=0)


class TestAggregates:
    def test_mean_and_total(self, view):
        v, _, cluster = view
        mean = v.mean(MetricId.FREEMEM)
        total = v.total(MetricId.FREEMEM)
        assert total == pytest.approx(mean * len(cluster))
        assert mean > MB(100)

    def test_empty_aggregates_are_nan(self, env, view):
        v, dprocs, _ = view
        for dp in dprocs.values():
            dp.dmon.stop()
        env.run(until=30.0)
        # Even local samples linger in last_samples; use a metric that
        # was never collected.
        assert math.isnan(v.mean(MetricId.BATTERY))
        assert math.isnan(v.total(MetricId.BATTERY))
        host, value = v.extreme(MetricId.BATTERY)
        assert host is None and math.isnan(value)

    def test_extreme(self, env, view):
        v, _, cluster = view
        cluster["maui"].memory.allocate(MB(300), tag="hog")
        env.run(until=10.0)
        host, value = v.extreme(MetricId.FREEMEM, largest=False)
        assert host == "maui"
        top, top_value = v.extreme(MetricId.FREEMEM, largest=True)
        assert top != "maui" and top_value > value


class TestPlacementQueries:
    def test_hosts_where(self, env, view):
        v, _, cluster = view
        cluster["etna"].memory.allocate(MB(400), tag="hog")
        env.run(until=10.0)
        roomy = v.hosts_where(MetricId.FREEMEM,
                              lambda free: free > MB(200))
        assert "etna" not in roomy
        assert "alan" in roomy and "maui" in roomy

    def test_least_loaded(self, env, view):
        v, _, cluster = view
        for _ in range(3):
            Linpack(cluster["maui"]).start()
        env.run(until=30.0)
        assert v.least_loaded() in ("alan", "etna")

    def test_most_free_memory(self, env, view):
        v, _, cluster = view
        cluster["alan"].memory.allocate(MB(200), tag="hog")
        cluster["maui"].memory.allocate(MB(100), tag="hog")
        env.run(until=10.0)
        assert v.most_free_memory() == "etna"

    def test_placement_candidates(self, env, view):
        v, _, cluster = view
        cluster["maui"].memory.allocate(MB(430), tag="hog")  # low mem
        for _ in range(4):
            Linpack(cluster["etna"]).start()                 # loaded
        env.run(until=30.0)
        candidates = v.placement_candidates(min_free_bytes=MB(100),
                                            max_loadavg=1.0)
        assert candidates == ["alan"]


class TestLiveness:
    def test_all_fresh_when_running(self, view):
        v, _dprocs, cluster = view
        assert v.liveness() == {h: "fresh" for h in cluster.names}
        assert v.live_hosts() == sorted(cluster.names)
        assert v.dead_hosts() == []

    def test_stopped_peer_ages_out(self, env, view):
        v, dprocs, _ = view
        dprocs["maui"].dmon.stop()
        env.run(until=30.0)
        assert v.liveness()["maui"] == "dead"
        assert "maui" in v.dead_hosts()
        assert "maui" not in v.live_hosts()
