"""Unit tests for the centralized-collector baseline."""

from __future__ import annotations

import pytest

from repro.dproc import CentralCollector, CentralConfig, MetricId
from repro.errors import DprocError

METRICS = frozenset({MetricId.LOADAVG, MetricId.FREEMEM})


@pytest.fixture
def central(env, cluster3):
    collector = CentralCollector(
        cluster3, collector="alan",
        config=CentralConfig(metric_subset=METRICS)).start()
    return collector


class TestLifecycle:
    def test_unknown_collector_rejected(self, cluster3):
        with pytest.raises(DprocError):
            CentralCollector(cluster3, collector="ghost")

    def test_double_start_rejected(self, central):
        with pytest.raises(DprocError):
            central.start()

    def test_stop_halts_pushes(self, env, central):
        env.run(until=5.0)
        central.stop()
        pushes = central.agents["maui"].pushes.total
        env.run(until=15.0)
        assert central.agents["maui"].pushes.total <= pushes + 1


class TestDataFlow:
    def test_collector_learns_all_nodes(self, env, central):
        env.run(until=4.0)
        assert set(central.digest) == {"alan", "maui", "etna"}
        assert central.digest["maui"][MetricId.FREEMEM] > 0

    def test_digest_broadcast_reaches_everyone(self, env, central,
                                               cluster3):
        env.run(until=5.0)
        for host in cluster3.names:
            if host == "alan":
                continue
            value = central.view(host, "etna", MetricId.FREEMEM)
            assert value is not None and value > 0

    def test_view_unknown_is_none(self, central):
        assert central.view("maui", "ghost", MetricId.FREEMEM) is None

    def test_metric_subset_respected(self, env, central):
        env.run(until=4.0)
        assert MetricId.DISKUSAGE not in central.digest["maui"]

    def test_no_broadcast_mode(self, env, cluster3):
        central = CentralCollector(
            cluster3, collector="alan",
            config=CentralConfig(metric_subset=METRICS,
                                 broadcast_digest=False)).start()
        env.run(until=5.0)
        assert set(central.digest) == {"alan", "maui", "etna"}
        assert central.view("maui", "etna", MetricId.FREEMEM) is None
        assert central.digests_sent.total == 0


class TestCostAccounting:
    def test_collector_is_hottest(self, env, central):
        env.run(until=10.0)
        host, cpu = central.hottest_node()
        assert host == "alan"
        assert cpu > 0

    def test_leaf_costs_are_small_and_uniform(self, env, central):
        env.run(until=10.0)
        costs = central.monitoring_cpu_seconds()
        assert costs["maui"] == pytest.approx(costs["etna"], rel=0.2)
        assert costs["alan"] > 2 * costs["maui"]

    def test_daemon_crossing_cost_charged(self, env, cluster3):
        cheap = CentralCollector(
            cluster3, collector="alan",
            config=CentralConfig(metric_subset=METRICS,
                                 daemon_crossing_cost=0.0)).start()
        env.run(until=10.0)
        cheap_cpu = cheap.hottest_node()[1]
        # Fresh cluster with the crossing cost enabled:
        from repro.sim import Environment, build_cluster
        env2 = Environment()
        cluster2 = build_cluster(env2, 3, seed=42)
        pricey = CentralCollector(
            cluster2, collector="alan",
            config=CentralConfig(metric_subset=METRICS,
                                 daemon_crossing_cost=100e-6)).start()
        env2.run(until=10.0)
        assert pricey.hottest_node()[1] > cheap_cpu

    def test_monitoring_charges_real_cpu(self, env, central, cluster3):
        env.run(until=10.0)
        alan = cluster3["alan"]
        alan.cpu.settle()
        assert alan.cpu.busy_cpu_seconds \
            >= central.monitoring_cpu_seconds()["alan"] * 0.9
