"""Unit and integration tests for the d-mon coordinator."""

from __future__ import annotations

import math

import pytest

from repro.dproc import (DMon, DMonConfig, MetricId, MetricPolicy,
                         register_default_modules)
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.errors import ControlSyntaxError, DprocError
from repro.kecho import (ClearParameter, DeployFilter, KechoBus,
                         RemoveFilter, SetParameter)


def make_dmon(cluster, name, bus=None, config=None,
              modules=("cpu", "mem", "disk", "net", "pmc")):
    dmon = DMon(cluster[name], bus or KechoBus(), config)
    register_default_modules(dmon, modules)
    return dmon


def deploy_pair(cluster, bus=None, config=None):
    bus = bus or KechoBus()
    a = make_dmon(cluster, "alan", bus, config)
    b = make_dmon(cluster, "maui", bus, config)
    a.start()
    b.start()
    return a, b


class TestRegistration:
    def test_register_all_default_modules(self, cluster3):
        dmon = make_dmon(cluster3, "alan")
        assert set(dmon.modules) == {"cpu", "mem", "disk", "net", "pmc"}
        # Every metric of the default modules gets a policy (BATTERY,
        # the DMON_* self-telemetry metrics and the PROC_* aggregates
        # belong to the optional battery / dproc / proc modules).
        optional = {MetricId.BATTERY, MetricId.DMON_POLL_COST,
                    MetricId.DMON_RX_COST, MetricId.DMON_EVENT_RATE,
                    MetricId.PROC_COUNT, MetricId.PROC_CPU_MAX,
                    MetricId.PROC_RSS_MAX}
        assert set(dmon.policies) == set(MetricId) - optional

    def test_duplicate_module_rejected(self, cluster3):
        dmon = make_dmon(cluster3, "alan")
        with pytest.raises(DprocError, match="already registered"):
            register_default_modules(dmon, ("cpu",))

    def test_unknown_module_name_rejected(self, cluster3):
        dmon = DMon(cluster3["alan"], KechoBus())
        with pytest.raises(DprocError):
            register_default_modules(dmon, ("gpu",))

    def test_runtime_module_registration(self, env, cluster3):
        """Modules can be added while d-mon runs (extensibility)."""

        class BatteryMon(MonitoringModule):
            name = "battery"

            def metrics(self):
                return (MetricId.INSTRUCTIONS,)  # reuse an id for test

            def collect(self, now):
                return [MetricSample(MetricId.INSTRUCTIONS, 42.0, now)]

        dmon = make_dmon(cluster3, "alan", modules=("cpu",))
        dmon.start()
        env.run(until=2.0)
        dmon.register_service(BatteryMon(cluster3["alan"]))
        assert dmon.modules["battery"].started
        env.run(until=4.0)
        assert dmon.last_samples[MetricId.INSTRUCTIONS] == 42.0

    def test_double_start_rejected(self, cluster3):
        dmon = make_dmon(cluster3, "alan")
        dmon.start()
        with pytest.raises(DprocError):
            dmon.start()


class TestPollingAndPublication:
    def test_polls_happen_once_per_interval(self, env, cluster3):
        dmon = make_dmon(cluster3, "alan",
                         config=DMonConfig(poll_interval=1.0))
        dmon.start()
        env.run(until=10.5)
        assert dmon.polls == pytest.approx(10, abs=1)

    def test_remote_cache_fills(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=3.0)
        remote = a.remote_value("maui", MetricId.FREEMEM)
        assert remote is not None
        assert remote.value > 0
        assert remote.received_at >= remote.timestamp

    def test_no_publication_without_subscribers(self, env, cluster3):
        config = DMonConfig(subscribe_monitoring=False)
        a = make_dmon(cluster3, "alan", config=config)
        a.start()
        env.run(until=5.0)
        assert a.events_published.total == 0
        assert a.submit_overhead.mean() == 0.0

    def test_publication_with_subscriber(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=5.0)
        assert a.events_published.total >= 4
        assert a.mean_submit_overhead() > 0

    def test_update_hooks_fire(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        seen = []
        a.update_hooks.append(
            lambda host, metric, value, ts: seen.append((host, metric)))
        env.run(until=3.0)
        assert ("maui", MetricId.LOADAVG) in seen

    def test_metric_subset_restricts_payload(self, env, cluster3):
        config = DMonConfig(metric_subset=frozenset(
            {MetricId.LOADAVG, MetricId.FREEMEM}))
        bus = KechoBus()
        a = make_dmon(cluster3, "alan", bus, config)
        b = make_dmon(cluster3, "maui", bus, config)
        a.start()
        b.start()
        env.run(until=3.0)
        assert set(a.last_samples) == {MetricId.LOADAVG,
                                       MetricId.FREEMEM}
        assert b.remote_value("alan", MetricId.DISKUSAGE) is None

    def test_event_size_model(self, env, cluster3):
        config = DMonConfig(
            metric_subset=frozenset({MetricId.LOADAVG, MetricId.FREEMEM,
                                     MetricId.DISKUSAGE,
                                     MetricId.NET_BANDWIDTH}))
        a, b = deploy_pair(cluster3, config=config)
        env.run(until=3.0)
        # 40 header + 4 * 12 per record = 88 bytes -> within the
        # paper's 50-100 B band.
        ep = a._monitor_ep
        per_event = ep.bytes_out.total / ep.submitted.total
        assert 50 <= per_event <= 100

    def test_padding_inflates_events(self, env, cluster3):
        config = DMonConfig().with_padding(5000.0)
        a, b = deploy_pair(cluster3, config=config)
        env.run(until=3.0)
        ep = a._monitor_ep
        per_event = ep.bytes_out.total / ep.submitted.total
        assert per_event > 5000

    def test_stop_ends_polling(self, env, cluster3):
        a = make_dmon(cluster3, "alan")
        a.start()
        env.run(until=2.0)
        a.stop()
        polls = a.polls
        env.run(until=10.0)
        assert a.polls <= polls + 1


class TestParameters:
    def test_period_halves_publications(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=2.0)
        a.apply_control(SetParameter(sender="x", target="alan",
                                     metric="*", parameter="period",
                                     spec="2"))
        start = env.now
        records_before = a.records_published.total
        env.run(until=start + 20.0)
        sent = a.records_published.total - records_before
        # ~10 publication rounds of ~12 metrics at period 2 in 20s.
        full_rate = 20 * len(a.last_samples)
        assert sent == pytest.approx(full_rate / 2, rel=0.2)

    def test_threshold_blocks_metrics(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        a.apply_control(SetParameter(sender="x", target="alan",
                                     metric="loadavg",
                                     parameter="threshold",
                                     spec="above 100"))
        env.run(until=5.0)
        assert b.remote_value("alan", MetricId.LOADAVG) is None
        assert b.remote_value("alan", MetricId.FREEMEM) is not None

    def test_clear_parameter(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        a.apply_control(SetParameter(sender="x", target="alan",
                                     metric="loadavg",
                                     parameter="threshold",
                                     spec="above 100"))
        a.apply_control(ClearParameter(sender="x", target="alan",
                                       metric="loadavg",
                                       parameter="threshold"))
        env.run(until=5.0)
        assert b.remote_value("alan", MetricId.LOADAVG) is not None

    def test_bad_parameter_rejected(self, cluster3):
        a = make_dmon(cluster3, "alan")
        with pytest.raises(ControlSyntaxError):
            a.apply_control(SetParameter(sender="x", metric="cpu",
                                         parameter="period", spec="NaNy"))
        with pytest.raises(ControlSyntaxError):
            a.apply_control(SetParameter(sender="x", metric="cpu",
                                         parameter="frobs", spec="1"))

    def test_resolve_metrics(self, cluster3):
        a = make_dmon(cluster3, "alan")
        assert a.resolve_metrics("cpu") == [MetricId.LOADAVG]
        assert a.resolve_metrics("loadavg") == [MetricId.LOADAVG]
        assert set(a.resolve_metrics("*")) \
            == set(MetricId) - {MetricId.BATTERY,
                                MetricId.DMON_POLL_COST,
                                MetricId.DMON_RX_COST,
                                MetricId.DMON_EVENT_RATE,
                                MetricId.PROC_COUNT,
                                MetricId.PROC_CPU_MAX,
                                MetricId.PROC_RSS_MAX}
        assert set(a.resolve_metrics("net")) == {
            MetricId.NET_BANDWIDTH, MetricId.NET_RTT, MetricId.NET_RETX,
            MetricId.NET_LOST, MetricId.NET_USED, MetricId.NET_DELAY}


class TestRemoteControl:
    def test_control_message_reaches_remote_dmon(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=1.0)
        a.send_control(SetParameter(sender="alan", target="maui",
                                    metric="cpu", parameter="period",
                                    spec="3"))
        env.run(until=2.0)
        assert b.policies[MetricId.LOADAVG].period == 3.0
        # Not applied to the sender or other nodes:
        assert a.policies[MetricId.LOADAVG].period is None

    def test_broadcast_control(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=1.0)
        a.send_control(SetParameter(sender="alan", target=None,
                                    metric="mem", parameter="period",
                                    spec="5"))
        env.run(until=2.0)
        assert a.policies[MetricId.FREEMEM].period == 5.0
        assert b.policies[MetricId.FREEMEM].period == 5.0

    def test_remote_filter_deploy_and_remove(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=1.0)
        a.send_control(DeployFilter(
            sender="alan", target="maui", metric="*",
            source="{ output[0] = input[LOADAVG]; }", filter_id="f1"))
        env.run(until=2.0)
        assert b.filters.global_filter is not None
        assert b.filters.global_filter.filter_id == "f1"
        a.send_control(RemoveFilter(sender="alan", target="maui",
                                    filter_id="f1"))
        env.run(until=3.0)
        assert b.filters.global_filter is None

    def test_send_control_requires_started(self, cluster3):
        a = make_dmon(cluster3, "alan")
        with pytest.raises(DprocError, match="not started"):
            a.send_control(SetParameter(sender="alan", metric="cpu",
                                        parameter="period", spec="1"))


class TestFiltersInPolling:
    def test_global_filter_governs_publication(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        a.filters.deploy("""
        {
            int i = 0;
            if (input[LOADAVG].value > 99) {
                output[i] = input[LOADAVG];
                i = i + 1;
            }
        }
        """, scope="*")
        env.run(until=5.0)
        # load is ~0, so the filter blocks everything.
        assert b.remote_value("alan", MetricId.LOADAVG) is None
        assert b.remote_value("alan", MetricId.FREEMEM) is None

    def test_scoped_filter_blocks_only_its_module(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        a.filters.deploy("{ int i = 0; }", scope="cpu")  # block cpu
        env.run(until=5.0)
        assert b.remote_value("alan", MetricId.LOADAVG) is None
        assert b.remote_value("alan", MetricId.FREEMEM) is not None

    def test_filter_can_transform_values(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        a.filters.deploy("""
        {
            output[0] = input[FREEMEM];
            output[0].value = input[FREEMEM].value / 2.0;
        }
        """, scope="mem")
        env.run(until=5.0)
        remote = b.remote_value("alan", MetricId.FREEMEM)
        local = a.last_samples[MetricId.FREEMEM]
        assert remote.value == pytest.approx(local / 2.0, rel=0.05)


class TestControlValidation:
    """Regressions: apply_control must validate before mutating."""

    def test_nonpositive_period_rejected(self, cluster3):
        a = make_dmon(cluster3, "alan")
        for bad in ("0", "-5", "inf", "nan"):
            with pytest.raises(ControlSyntaxError, match="positive"):
                a.apply_control(SetParameter(sender="x", metric="cpu",
                                             parameter="period",
                                             spec=bad))

    def test_rejected_set_leaves_no_partial_state(self, cluster3):
        """A failed SetParameter must not create policy entries as a
        side effect of resolving its metrics."""
        from repro.kecho import KechoBus as _Bus
        a = DMon(cluster3["alan"], _Bus())  # no modules, no policies
        with pytest.raises(ControlSyntaxError):
            a.apply_control(SetParameter(sender="x", metric="loadavg",
                                         parameter="period", spec="0"))
        assert a.policies == {}

    def test_clear_unknown_parameter_always_rejected(self, cluster3):
        """ClearParameter with a bad parameter name must raise even
        when no policy exists for the metric (the old code skipped
        validation via ``continue``)."""
        from repro.kecho import KechoBus as _Bus
        a = DMon(cluster3["alan"], _Bus())
        assert MetricId.LOADAVG not in a.policies
        with pytest.raises(ControlSyntaxError, match="unknown parameter"):
            a.apply_control(ClearParameter(sender="x", metric="loadavg",
                                           parameter="frobs"))

    def test_set_unknown_parameter_rejected_before_resolution(
            self, cluster3):
        a = make_dmon(cluster3, "alan")
        with pytest.raises(ControlSyntaxError, match="unknown parameter"):
            a.apply_control(SetParameter(sender="x", metric="*",
                                         parameter="frobs", spec="1"))

    def test_resolve_star_has_no_duplicates(self, cluster3):
        """Modules sharing a metric id must not yield duplicate ids."""

        class EchoLoad(MonitoringModule):
            name = "echoload"

            def metrics(self):
                return (MetricId.LOADAVG,)

            def collect(self, now):
                return [MetricSample(MetricId.LOADAVG, 1.0, now)]

        a = make_dmon(cluster3, "alan")
        a.register_service(EchoLoad(cluster3["alan"]))
        resolved = a.resolve_metrics("*")
        assert len(resolved) == len(set(resolved))
        # Stable first-registration order: cpu registered first.
        assert resolved[0] == MetricId.LOADAVG


class TestRestart:
    """Regressions: stop() must fully reset per-life state."""

    def test_receive_overhead_never_negative_after_restart(
            self, env, cluster3):
        """A stale _rx_cost_mark from the previous life made the first
        receive_overhead sample after restart negative."""
        a, b = deploy_pair(cluster3)
        env.run(until=5.0)
        assert a.receive_overhead.values, "need rx samples before stop"
        a.stop()
        a.start()
        restart = env.now
        env.run(until=restart + 5.0)
        import bisect
        i = bisect.bisect_left(a.receive_overhead.times, restart)
        after = a.receive_overhead.values[i:]
        assert after and min(after) >= 0.0

    def test_restart_does_not_double_poll(self, env, cluster3):
        """A stop → quick restart must not leave the old polling
        process alive alongside the new one."""
        a = make_dmon(cluster3, "alan",
                      config=DMonConfig(poll_interval=1.0))
        a.start()
        env.run(until=2.0)
        a.stop()
        a.start()
        before = a.polls
        env.run(until=12.0)
        # ~10 seconds of polling at 1/s; a leaked second loop would
        # roughly double this.
        assert a.polls - before <= 12

    def test_restart_reconnects_and_publishes(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=3.0)
        a.stop()
        assert a._monitor_ep is None and a._control_ep is None
        assert a._audience_cache is None and a._poll_proc is None
        a.stop()  # idempotent
        a.start()
        mark = env.now
        env.run(until=mark + 5.0)
        remote = b.remote_value("alan", MetricId.LOADAVG)
        assert remote is not None and remote.received_at > mark


class TestPeerLiveness:
    def test_fresh_to_stale_to_dead(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=3.0)
        assert a.peer_state("maui") == "fresh"
        b.stop()
        down = env.now
        interval = a.config.poll_interval
        env.run(until=down + a.config.stale_after_intervals * interval
                + 2.0)
        assert a.peer_state("maui") == "stale"
        env.run(until=down + a.config.dead_after_intervals * interval
                + 2.0)
        assert a.peer_state("maui") == "dead"
        # Stale/dead entries stay readable (last-known values).
        assert a.remote_value("maui", MetricId.LOADAVG) is not None

    def test_rejoin_becomes_fresh_again(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        env.run(until=3.0)
        b.stop()
        env.run(until=20.0)
        assert a.peer_state("maui") == "dead"
        b.start()
        env.run(until=25.0)
        assert a.peer_state("maui") == "fresh"

    def test_unknown_and_local_states(self, env, cluster3):
        a, b = deploy_pair(cluster3)
        assert a.peer_state("etna") == "unknown"
        assert a.peer_age("etna") == math.inf
        assert a.peer_age("alan") == 0.0
        assert a.peer_state("alan") == "fresh"
        env.run(until=3.0)
        assert a.peer_states() == {"maui": "fresh"}
