"""Unit tests for the metric namespace."""

from __future__ import annotations

import pytest

from repro.dproc import (METRIC_CONSTANTS, METRIC_FILES, MODULE_METRICS,
                         MetricId, metric_by_name, module_of)
from repro.errors import UnknownMetricError


class TestMetricIds:
    def test_filter_abi_indices_are_stable(self):
        """These values are the E-code input[] ABI — never renumber."""
        assert MetricId.LOADAVG == 0
        assert MetricId.FREEMEM == 1
        assert MetricId.DISKUSAGE == 2
        assert MetricId.CACHE_MISS == 3

    def test_constants_match_enum(self):
        assert METRIC_CONSTANTS["LOADAVG"] == 0
        assert set(METRIC_CONSTANTS) == {m.name for m in MetricId}

    def test_every_metric_has_a_file(self):
        assert set(METRIC_FILES) == set(MetricId)

    def test_file_names_unique(self):
        files = list(METRIC_FILES.values())
        assert len(files) == len(set(files))

    def test_every_metric_has_a_module(self):
        covered = {m for metrics in MODULE_METRICS.values()
                   for m in metrics}
        assert covered == set(MetricId)

    def test_no_metric_in_two_modules(self):
        seen = []
        for metrics in MODULE_METRICS.values():
            seen.extend(metrics)
        assert len(seen) == len(set(seen))


class TestLookup:
    def test_by_enum_name(self):
        assert metric_by_name("LOADAVG") is MetricId.LOADAVG
        assert metric_by_name("loadavg") is MetricId.LOADAVG

    def test_by_file_name(self):
        assert metric_by_name("net_bandwidth") is MetricId.NET_BANDWIDTH

    def test_whitespace_tolerated(self):
        assert metric_by_name("  freemem ") is MetricId.FREEMEM

    def test_unknown_rejected(self):
        with pytest.raises(UnknownMetricError):
            metric_by_name("bogus")

    def test_module_of(self):
        assert module_of(MetricId.LOADAVG) == "cpu"
        assert module_of(MetricId.CACHE_MISS) == "pmc"
        assert module_of(MetricId.NET_RTT) == "net"
