"""Integration tests for wide-area grid federation."""

from __future__ import annotations

import math

import pytest

from repro.dproc import deploy_dproc
from repro.dproc.federation import GridFederation, SiteSummary, WanLink
from repro.errors import DprocError, NetworkError
from repro.sim import Environment, build_cluster
from repro.units import mbps, msec
from repro.workloads import Linpack


def make_site(env, federation, site_name, prefix, n_nodes=3):
    names = [f"{prefix}{i}" for i in range(n_nodes)]
    cluster = build_cluster(env, nodes=n_nodes, seed=7, names=names)
    dprocs = deploy_dproc(cluster)
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 4.0)
    return federation.add_site(site_name, cluster, dprocs,
                               gateway=names[0])


@pytest.fixture
def grid(env):
    """Two 3-node sites joined by a 10 Mbps / 40 ms WAN link."""
    federation = GridFederation(env, summary_period=2.0)
    east = make_site(env, federation, "east", "e")
    west = make_site(env, federation, "west", "w")
    federation.connect("east", "west")
    federation.start()
    return federation, east, west


class TestWanLink:
    def test_same_name_endpoints_rejected(self, env):
        c1 = build_cluster(env, 1, names=["gw"])
        c2 = Environment()  # separate env irrelevant; reuse c1 node
        with pytest.raises(NetworkError, match="distinct"):
            WanLink(env, c1["gw"], c1["gw"])

    def test_delivery_includes_latency(self, env):
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        link = WanLink(env, cluster["ga"], cluster["gb"],
                       bandwidth=mbps(10), latency=msec(40))
        got = []
        link.bind("gb", lambda p: got.append((env.now, p)))
        link.send("ga", "hello", size=1250.0)  # 1 ms at 10 Mbps
        env.run(until=1.0)
        assert len(got) == 1
        t, payload = got[0]
        assert payload == "hello"
        assert t == pytest.approx(0.041, abs=0.002)

    def test_fifo_serialisation(self, env):
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        link = WanLink(env, cluster["ga"], cluster["gb"],
                       bandwidth=1000.0, latency=0.0)  # 1 KB/s
        got = []
        link.bind("gb", lambda p: got.append((env.now, p)))
        link.send("ga", "first", size=1000.0)
        link.send("ga", "second", size=1000.0)
        env.run(until=5.0)
        assert [p for _t, p in got] == ["first", "second"]
        assert got[1][0] - got[0][0] == pytest.approx(1.0, abs=0.01)

    def test_unknown_endpoint_rejected(self, env):
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        link = WanLink(env, cluster["ga"], cluster["gb"])
        with pytest.raises(NetworkError):
            link.send("zz", "x")
        with pytest.raises(NetworkError):
            link.bind("zz", lambda p: None)

    def test_bytes_counted(self, env):
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        link = WanLink(env, cluster["ga"], cluster["gb"])
        link.send("ga", "x", size=500.0)
        env.run(until=1.0)
        assert link.bytes_carried.total == pytest.approx(500.0)


class TestFederation:
    def test_summaries_cross_the_wan(self, env, grid):
        federation, east, west = grid
        env.run(until=10.0)
        summary = federation.summary("east", "west")
        assert isinstance(summary, SiteSummary)
        assert summary.n_nodes == 3
        assert summary.total_free_bytes > 0
        assert summary.received_at > summary.generated_at

    def test_wan_latency_visible_in_summary_age(self, env, grid):
        federation, _east, _west = grid
        env.run(until=10.0)
        summary = federation.summary("west", "east")
        delay = summary.received_at - summary.generated_at
        assert delay >= 0.04  # at least the 40 ms WAN latency

    def test_local_summary_known_immediately(self, env, grid):
        federation, _e, _w = grid
        env.run(until=5.0)
        assert federation.summary("east", "east") is not None

    def test_grid_procfs_tree(self, env, grid):
        federation, east, _west = grid
        env.run(until=10.0)
        gw = east.gateway_dproc
        assert gw.listdir("/proc/grid") == ["east", "west"]
        free = float(gw.read("/proc/grid/west/total_free_bytes"))
        assert free > 0
        load = float(gw.read("/proc/grid/west/mean_loadavg"))
        assert not math.isnan(load)

    def test_unknown_site_reads_nan_before_data(self, env):
        federation = GridFederation(env, summary_period=2.0)
        east = make_site(env, federation, "east", "e")
        make_site(env, federation, "west", "w")
        federation.connect("east", "west")
        federation.start()
        # read before any summary period elapsed
        text = east.gateway_dproc.read("/proc/grid/west/mean_loadavg")
        assert math.isnan(float(text))

    def test_least_loaded_site_for_grid_scheduling(self, env, grid):
        federation, east, west = grid
        # Load every west node.
        for node in west.cluster:
            for _ in range(3):
                Linpack(node).start()
        env.run(until=40.0)
        assert federation.least_loaded_site("east") == "east"

    def test_intra_site_traffic_stays_local(self, env, grid):
        """Only summaries cross the WAN — a few hundred bytes per
        period, not the per-node monitoring streams."""
        federation, east, west = grid
        env.run(until=20.0)
        link = federation._links["east"][0]
        # ~2 summaries per period (one per direction) of 160 B each.
        expected = 2 * (20.0 / 2.0) * 160.0
        assert link.bytes_carried.total <= expected * 1.2
        # Meanwhile the intra-site monitoring moved far more data.
        intra = east.cluster["e0"].stack.bytes_in.total
        assert intra > link.bytes_carried.total

    def test_validation(self, env):
        federation = GridFederation(env)
        with pytest.raises(DprocError):
            federation.start()  # no sites
        east = make_site(env, federation, "east", "e")
        with pytest.raises(DprocError):
            federation.add_site("east", east.cluster, east.dprocs,
                                gateway="e0")
        with pytest.raises(DprocError):
            federation.connect("east", "nowhere")
        with pytest.raises(DprocError):
            GridFederation(env, summary_period=0)
        with pytest.raises(DprocError):
            federation.add_site("bad", east.cluster, east.dprocs,
                                gateway="ghost")


class TestWanRetry:
    def test_down_link_stalls_then_drains(self, env):
        """Messages queued while the link is down are retried with
        backoff and delivered after restore — never dropped."""
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        link = WanLink(env, cluster["ga"], cluster["gb"],
                       bandwidth=mbps(10), latency=msec(40),
                       retry_initial=0.5, retry_max=8.0)
        got = []
        link.bind("gb", lambda p: got.append((env.now, p)))
        link.fail_link()
        link.send("ga", "queued", size=1250.0)
        env.run(until=5.0)
        assert got == []
        assert link.retries.total >= 1
        link.restore_link()
        env.run(until=20.0)
        assert [p for _t, p in got] == ["queued"]
        assert got[0][0] > 5.0

    def test_backoff_doubles_up_to_cap(self, env):
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        link = WanLink(env, cluster["ga"], cluster["gb"],
                       bandwidth=mbps(10), latency=0.0,
                       retry_initial=1.0, retry_max=4.0)
        link.fail_link()
        link.send("ga", "x", size=1250.0)
        env.run(until=30.0)
        times = link.retries._times
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Gap ≈ backoff + retransmit time: 1, 2, 4, 4, 4 ... (capped).
        assert gaps[0] < gaps[1] < gaps[2]
        assert gaps[3] == pytest.approx(gaps[2], rel=0.01)
        assert max(gaps) < 4.5

    def test_node_down_probe_stalls_delivery(self, env):
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        down = {"gb"}
        link = WanLink(env, cluster["ga"], cluster["gb"],
                       retry_initial=0.5,
                       node_down=lambda host: host in down)
        got = []
        link.bind("gb", lambda p: got.append(p))
        link.send("ga", "x", size=500.0)
        env.run(until=3.0)
        assert got == []
        down.clear()
        env.run(until=10.0)
        assert got == ["x"]

    def test_bad_retry_parameters_rejected(self, env):
        cluster = build_cluster(env, 2, names=["ga", "gb"])
        with pytest.raises(NetworkError, match="retry"):
            WanLink(env, cluster["ga"], cluster["gb"], retry_initial=0)
        with pytest.raises(NetworkError, match="retry"):
            WanLink(env, cluster["ga"], cluster["gb"],
                    retry_initial=2.0, retry_max=1.0)

    def test_gateway_crash_pauses_summaries_until_reboot(self, env):
        """connect() wires node_down to the site fault planes: summaries
        survive a gateway crash + reboot."""
        from repro.sim import FaultInjector
        federation = GridFederation(env, summary_period=2.0)
        east = make_site(env, federation, "east", "e")
        west = make_site(env, federation, "west", "w")
        federation.connect("east", "west")
        federation.start()
        injector = FaultInjector(west.cluster)
        injector.schedule_crash(3.0, "w0", reboot_at=12.0)
        env.run(until=10.0)
        link = federation._links["east"][0]
        assert link.retries.total >= 1
        stuck = federation.summary("west", "east")
        assert stuck is None or stuck.received_at < 4.0
        env.run(until=25.0)
        fresh = federation.summary("west", "east")
        assert fresh is not None and fresh.received_at > 12.0
