"""Unit tests for PROC_MON, the sim backend's keyed process table."""

from __future__ import annotations

import pytest

from repro.dproc import MetricId
from repro.dproc.modules import ProcMon
from repro.errors import DprocError


@pytest.fixture
def mon(cluster3):
    return ProcMon(cluster3["alan"])


class TestTableShape:
    def test_default_population(self, mon):
        table = mon.keyed_collect(1.0)
        assert len(table) == ProcMon.DEFAULT_N_PROCS
        pids = [row[0] for row in table]
        assert pids == sorted(pids)
        for pid, cpu, rss, io in table:
            assert 1000 <= pid < 1000 + ProcMon.DEFAULT_N_PROCS
            assert cpu > 0 and rss > 0 and io >= 0

    def test_zipf_like_cpu_profile(self, mon):
        """Daemon i's share is ~1/(i+1) with a ±50% wobble: the head
        of the distribution always outweighs the tail."""
        table = mon.keyed_collect(1.0)
        shares = [row[1] for row in table]
        # Head daemon draws >= 0.1, tail daemon <= 0.3/16.
        assert shares.index(max(shares)) <= 1
        assert shares[0] > 4 * shares[-1]

    def test_nprocs_configure_resizes(self, mon):
        mon.configure("nprocs", 4)
        assert len(mon.keyed_collect(2.0)) == 4
        mon.configure("nprocs", 0)
        assert mon.keyed_collect(3.0) == []

    def test_bad_nprocs_rejected(self, mon):
        with pytest.raises(DprocError):
            mon.configure("nprocs", -1)
        with pytest.raises(DprocError):
            mon.configure("nprocs", ProcMon.MAX_N_PROCS + 1)

    def test_unknown_knob_rejected(self, mon):
        with pytest.raises(DprocError):
            mon.configure("frobs", 1)


class TestDeterminism:
    def test_same_node_same_instant_same_table(self, cluster3):
        a = ProcMon(cluster3["alan"])
        b = ProcMon(cluster3["alan"])
        assert a.keyed_collect(5.0) == b.keyed_collect(5.0)

    def test_different_nodes_differ(self, cluster3):
        a = ProcMon(cluster3["alan"])
        b = ProcMon(cluster3["maui"])
        assert a.keyed_collect(5.0) != b.keyed_collect(5.0)

    def test_tables_wobble_across_poll_epochs(self, mon):
        assert mon.keyed_collect(1.0) != mon.keyed_collect(2.0)

    def test_no_rng_draws(self, cluster3):
        """Sampling must not advance the node's RNG stream — goldens
        without the proc module stay bit-identical."""
        node = cluster3["alan"]
        before = node.rng.bit_generator.state
        mon = ProcMon(node)
        mon.collect(1.0)
        mon.keyed_collect(2.0)
        assert node.rng.bit_generator.state == before

    def test_memoised_within_one_poll_instant(self, mon):
        first = mon.keyed_collect(7.0)
        assert mon.keyed_collect(7.0) is first


class TestAggregates:
    def test_collect_matches_table(self, mon):
        table = mon.keyed_collect(1.0)
        samples = {s.metric: s.value for s in mon.collect(1.0)}
        assert samples[MetricId.PROC_COUNT] == len(table)
        assert samples[MetricId.PROC_CPU_MAX] \
            == max(row[1] for row in table)
        assert samples[MetricId.PROC_RSS_MAX] \
            == max(row[2] for row in table)

    def test_empty_table_aggregates_to_zero(self, mon):
        mon.configure("nprocs", 0)
        samples = {s.metric: s.value for s in mon.collect(1.0)}
        assert samples[MetricId.PROC_COUNT] == 0.0
        assert samples[MetricId.PROC_CPU_MAX] == 0.0


class TestRealJobs:
    def test_runnable_jobs_appear_with_offset_pids(self, env, cluster3):
        node = cluster3["alan"]
        node.cpu.submit(1e6, name="burn")
        mon = ProcMon(node, n_procs=2)
        table = mon.keyed_collect(env.now)
        job_rows = [row for row in table if row[0] >= 100000]
        assert len(job_rows) == 1
        assert job_rows[0][1] > 0  # a share of the CPU
        daemon_rows = [row for row in table if row[0] < 100000]
        assert len(daemon_rows) == 2
