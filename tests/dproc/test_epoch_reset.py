"""Regression: a restart epoch must clear persistent filter state.

Sketch-backed filters are stateful by design — count-min cells and
top-K weights accumulate across polls.  That persistence must not
survive a crash/reboot: a node that comes back mid-stream would
otherwise publish cumulative weights from *before* the crash, i.e.
monitoring history the failed epoch never actually observed.  The fix
under test is ``DMon.start()`` calling ``FilterManager.reset_state()``
on every epoch transition.
"""

from __future__ import annotations

import pytest

from repro.dproc import deploy_dproc, topk_filter
from repro.dproc.dmon import DMonConfig

MODULES = ("cpu", "proc")
POLL = 0.5


@pytest.fixture
def pair(env, cluster3):
    dprocs = deploy_dproc(cluster3, DMonConfig(poll_interval=POLL),
                          modules=MODULES)
    names = cluster3.names
    observer, victim = dprocs[names[0]], dprocs[names[1]]
    observer.write(f"/proc/cluster/{names[1]}/control",
                   topk_filter(3, "cpu"))
    return observer, victim


def _sketch_state(dproc) -> bytes:
    deployed = dproc.dmon.filters.filter_for("proc")
    assert deployed is not None
    return deployed.compiled.sketch_state()


class TestEpochReset:
    def test_crash_mid_stream_clears_sketch_state(self, env, pair):
        observer, victim = pair
        env.run(until=3.0)
        assert _sketch_state(victim) != b"", \
            "filter should have accumulated sketch state before crash"
        victim.stop()
        env.run(until=4.0)
        victim.start()
        # Immediately after reboot — before the first post-reboot
        # poll — the sketch space must be empty.
        assert _sketch_state(victim) == b""

    def test_post_reboot_topk_starts_from_scratch(self, env, pair):
        observer, victim = pair
        env.run(until=3.0)
        kind, rows = victim.dmon.last_procs
        assert kind == "top" and rows
        before = dict(rows)
        victim.stop()
        env.run(until=4.0)
        victim.start()
        # One poll after reboot the published weights are single-epoch
        # accumulations: strictly below the pre-crash cumulative
        # weight of the same pid (which had ~6 polls of history).
        env.run(until=4.0 + 2 * POLL)
        kind, rows = victim.dmon.last_procs
        assert kind == "top" and rows
        for pid, weight in rows.items():
            if pid in before:
                assert weight < before[pid], \
                    (pid, weight, before[pid])

    def test_filters_stay_deployed_across_reboot(self, env, pair):
        """The reset drops *state*, not the filters themselves — a
        rebooted node resumes the customization it was given."""
        observer, victim = pair
        env.run(until=3.0)
        deployed = victim.dmon.filters.filter_for("proc")
        invocations_before = deployed.invocations
        victim.stop()
        victim.start()
        env.run(until=3.0 + 2 * POLL)
        again = victim.dmon.filters.filter_for("proc")
        assert again is deployed
        assert again.invocations > invocations_before
        assert again.errors == 0

    def test_stop_alone_does_not_clear_state(self, env, pair):
        """State is cleared on the epoch *transition* (start), so a
        stopped node's state is still inspectable post-mortem."""
        observer, victim = pair
        env.run(until=3.0)
        state = _sketch_state(victim)
        assert state != b""
        victim.stop()
        assert _sketch_state(victim) == state
