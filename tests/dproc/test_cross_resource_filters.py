"""Integration tests for cross-resource filter conditions.

The paper's §1 lists what makes dynamic filters more powerful than
parameters: "they can implement complex relationships between
monitoring results (e.g., 'monitor the available memory only if disk
access times exceed a critical threshold')".  These tests exercise
exactly that: scoped filters whose conditions read *other* modules'
metrics.
"""

from __future__ import annotations

import pytest

from repro.dproc import DMon, DMonConfig, MetricId, \
    register_default_modules
from repro.kecho import KechoBus
from repro.units import MB


@pytest.fixture
def pair(env, cluster3):
    bus = KechoBus()
    a = DMon(cluster3["alan"], bus, DMonConfig(poll_interval=1.0))
    b = DMon(cluster3["maui"], bus, DMonConfig(poll_interval=1.0))
    register_default_modules(a)
    register_default_modules(b)
    a.start()
    b.start()
    return a, b


class TestCrossResourceConditions:
    def test_mem_scoped_filter_reads_disk_metric(self, env, pair,
                                                 cluster3):
        """The paper's exact example: memory published only while the
        disk is busy."""
        a, b = pair
        a.filters.deploy("""
        {
            if (input[DISKUSAGE].value > 100) {
                output[0] = input[FREEMEM];
            }
        }
        """, scope="mem")
        env.run(until=10.0)
        # Idle disk: no FREEMEM updates (but other modules unaffected).
        assert b.remote_value("alan", MetricId.FREEMEM) is None
        assert b.remote_value("alan", MetricId.LOADAVG) is not None

        # Hammer the disk; FREEMEM starts flowing.
        def disk_load():
            while True:
                yield cluster3["alan"].disk.write(MB(1))
                yield env.timeout(0.1)

        env.process(disk_load())
        env.run(until=20.0)
        entry = b.remote_value("alan", MetricId.FREEMEM)
        assert entry is not None and entry.received_at > 10.0

    def test_filter_combines_app_level_constant(self, env, pair):
        """Conditions can bake in application-level thresholds
        (paper: integrating application- and system-level info)."""
        a, b = pair
        # An imagined app knows it needs 50 MB headroom:
        a.filters.deploy(f"""
        {{
            if (input[FREEMEM].value < {MB(50)}) {{
                output[0] = input[FREEMEM];
            }}
        }}
        """, scope="mem")
        env.run(until=5.0)
        assert b.remote_value("alan", MetricId.FREEMEM) is None

    def test_scoped_filter_cannot_leak_foreign_metrics(self, env,
                                                       pair):
        """A cpu-scoped filter outputting disk records must not cause
        disk publications under the cpu scope."""
        a, b = pair
        a.filters.deploy("""
        {
            output[0] = input[DISKUSAGE];
            output[1] = input[LOADAVG];
        }
        """, scope="cpu")
        env.run(until=5.0)
        # LOADAVG (cpu's own metric) flows via the filter...
        assert b.remote_value("alan", MetricId.LOADAVG) is not None
        # ...and DISKUSAGE still flows via the *disk module's* default
        # params, not via the cpu filter; both paths coexist cleanly.
        assert b.remote_value("alan", MetricId.DISKUSAGE) is not None

    def test_filter_plus_params_on_other_modules(self, env, pair):
        """Scoped filter on one module composes with thresholds on
        another."""
        from repro.dproc.params import AboveThreshold
        a, b = pair
        a.filters.deploy("{ int i = 0; }", scope="cpu")  # block cpu
        a.policies[MetricId.FREEMEM].add_threshold(
            AboveThreshold(1e18))  # block mem via params
        env.run(until=5.0)
        assert b.remote_value("alan", MetricId.LOADAVG) is None
        assert b.remote_value("alan", MetricId.FREEMEM) is None
        assert b.remote_value("alan", MetricId.DISKUSAGE) is not None
