"""Unit tests for control-file command parsing."""

from __future__ import annotations

import pytest

from repro.dproc import parse_control_text
from repro.errors import ControlSyntaxError
from repro.kecho import (ClearParameter, DeployFilter, RemoveFilter,
                         SetParameter)


def parse(text):
    return parse_control_text(text, sender="alan", target="maui")


class TestPeriod:
    def test_simple(self):
        (msg,) = parse("period cpu 2")
        assert isinstance(msg, SetParameter)
        assert msg.metric == "cpu" and msg.parameter == "period"
        assert msg.spec == "2"
        assert msg.sender == "alan" and msg.target == "maui"

    def test_wildcard_metric(self):
        (msg,) = parse("period * 0.5")
        assert msg.metric == "*"

    def test_bad_period_value(self):
        with pytest.raises(ControlSyntaxError):
            parse("period cpu fast")
        with pytest.raises(ControlSyntaxError):
            parse("period cpu 0")
        with pytest.raises(ControlSyntaxError):
            parse("period cpu")


class TestThreshold:
    def test_above(self):
        (msg,) = parse("threshold loadavg above 0.8")
        assert msg.parameter == "threshold"
        assert msg.spec == "above 0.8"

    def test_range(self):
        (msg,) = parse("threshold freemem range 1e6 5e7")
        assert msg.spec == "range 1e6 5e7"

    def test_change(self):
        (msg,) = parse("threshold * change 15")
        assert msg.spec == "change 15"

    def test_invalid_spec_fails_at_writer(self):
        with pytest.raises(ControlSyntaxError):
            parse("threshold cpu sideways 5")
        with pytest.raises(ControlSyntaxError):
            parse("threshold cpu")


class TestClear:
    def test_clear_period(self):
        (msg,) = parse("clear cpu period")
        assert isinstance(msg, ClearParameter)
        assert msg.parameter == "period"

    def test_clear_threshold(self):
        (msg,) = parse("clear * threshold")
        assert msg.parameter == "threshold"

    def test_bad_clear(self):
        with pytest.raises(ControlSyntaxError):
            parse("clear cpu everything")


class TestFilter:
    def test_single_line_filter(self):
        (msg,) = parse("filter * { output[0] = input[LOADAVG]; }")
        assert isinstance(msg, DeployFilter)
        assert msg.metric == "*"
        assert "output[0]" in msg.source

    def test_multiline_filter_consumes_rest(self):
        text = """filter cpu id=f9
{
    int i = 0;
    if (input[LOADAVG].value > 2) {
        output[i] = input[LOADAVG];
    }
}"""
        (msg,) = parse(text)
        assert msg.filter_id == "f9"
        assert msg.metric == "cpu"
        assert "int i = 0;" in msg.source
        assert msg.source.count("{") == msg.source.count("}")

    def test_filter_id_optional(self):
        (msg,) = parse("filter mem { output[0] = input[FREEMEM]; }")
        assert msg.filter_id == ""

    def test_empty_filter_rejected(self):
        with pytest.raises(ControlSyntaxError, match="empty"):
            parse("filter *")
        with pytest.raises(ControlSyntaxError, match="empty"):
            parse("filter * id=x")

    def test_empty_id_rejected(self):
        with pytest.raises(ControlSyntaxError, match="empty filter id"):
            parse("filter * id= { }")

    def test_unfilter(self):
        (msg,) = parse("unfilter f9")
        assert isinstance(msg, RemoveFilter)
        assert msg.filter_id == "f9"

    def test_unfilter_needs_id(self):
        with pytest.raises(ControlSyntaxError):
            parse("unfilter")


class TestGeneral:
    def test_multiple_commands(self):
        msgs = parse("period cpu 2\nthreshold cpu above 0.8")
        assert len(msgs) == 2

    def test_comments_and_blanks_ignored(self):
        msgs = parse("# tune cpu\n\nperiod cpu 2\n# done\n")
        assert len(msgs) == 1

    def test_empty_write_rejected(self):
        with pytest.raises(ControlSyntaxError, match="empty control"):
            parse("")
        with pytest.raises(ControlSyntaxError):
            parse("# only a comment")

    def test_unknown_command_rejected(self):
        with pytest.raises(ControlSyntaxError, match="unknown"):
            parse("frobnicate cpu 2")

    def test_commands_after_filter_belong_to_source(self):
        # Everything after `filter` is E-code, even things that look
        # like commands.
        (msg,) = parse("filter *\nperiod cpu 2")
        assert isinstance(msg, DeployFilter)
        assert "period cpu 2" in msg.source


class TestRoundTrip:
    """Control text -> messages -> text -> identical messages."""

    def test_threshold_specs_survive_the_grammar(self):
        from repro.dproc import parse_threshold_spec
        for spec in ("above 0.8", "below 1e-06", "change 15",
                     "range 0 1", "range -10 10"):
            (msg,) = parse(f"threshold cpu {spec}")
            assert isinstance(msg, SetParameter)
            # The spec the message carries parses to the same rule the
            # original text described.
            assert parse_threshold_spec(msg.spec.split()) \
                == parse_threshold_spec(spec.split())

    def test_period_value_survives(self):
        (msg,) = parse("period mem 2.5")
        assert float(msg.spec) == 2.5

    def test_messages_rerender_to_equal_messages(self):
        """Render parsed commands back to text; reparse; compare."""
        text = ("period cpu 2\n"
                "threshold cpu above 0.8\n"
                "threshold mem range 0 1e9\n"
                "clear disk threshold\n")
        first = parse(text)

        def render(msg):
            if isinstance(msg, SetParameter):
                if msg.parameter == "period":
                    return f"period {msg.metric} {msg.spec}"
                return f"threshold {msg.metric} {msg.spec}"
            assert isinstance(msg, ClearParameter)
            return f"clear {msg.metric} {msg.parameter}"

        second = parse("\n".join(render(m) for m in first))
        assert second == first

    def test_comments_and_spacing_do_not_change_messages(self):
        plain = parse("period cpu 2\nthreshold cpu above 0.8")
        noisy = parse("# tune the cpu stream\n\n"
                      "  period   cpu   2  \n"
                      "\n# and gate it\n"
                      "threshold cpu above 0.8\n")
        assert noisy == plain

    def test_filter_source_passes_through_verbatim(self):
        source = "{ if (input[0].value > 2) { output[0] = input[0]; } }"
        (msg,) = parse(f"filter cpu id=f1 {source}")
        assert isinstance(msg, DeployFilter)
        assert msg.source == source
        # Re-render and reparse: still the same deployment.
        (again,) = parse(f"filter {msg.metric} id={msg.filter_id} "
                         f"{msg.source}")
        assert again == msg
