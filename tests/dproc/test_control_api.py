"""Typed ControlRequest API: rendering, parsing, and round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dproc import (ClearCommand, ControlRequest, DMonConfig,
                         FilterCommand, MetricId, PeriodCommand,
                         ThresholdCommand, UnfilterCommand, deploy_dproc)
from repro.errors import ControlSyntaxError
from repro.kecho.control import DeployFilter, SetParameter
from repro.sim import Environment, build_cluster


class TestRender:
    def test_period(self):
        assert PeriodCommand(metric="cpu", seconds=2.0).render() == \
            "period cpu 2.0"

    def test_threshold(self):
        cmd = ThresholdCommand(metric="loadavg", kind="range",
                               values=(0.5, 2.0))
        assert cmd.render() == "threshold loadavg range 0.5 2.0"

    def test_clear(self):
        assert ClearCommand(metric="*", parameter="period").render() == \
            "clear * period"

    def test_filter_with_id(self):
        cmd = FilterCommand(metric="cpu", filter_id="f1",
                            source="{ output[0] = input[LOADAVG]; }")
        assert cmd.render() == \
            "filter cpu id=f1 { output[0] = input[LOADAVG]; }"

    def test_unfilter(self):
        assert UnfilterCommand("f1").render() == "unfilter f1"

    def test_request_joins_lines(self):
        req = ControlRequest([PeriodCommand(seconds=1.0, metric="cpu"),
                              ClearCommand(parameter="threshold")])
        assert req.render() == "period cpu 1.0\nclear * threshold"


class TestValidation:
    def test_bad_period(self):
        with pytest.raises(ControlSyntaxError):
            PeriodCommand(seconds=0.0)

    def test_bad_threshold_kind(self):
        with pytest.raises(ControlSyntaxError):
            ThresholdCommand(kind="near", values=(1.0,))

    def test_bad_threshold_arity(self):
        with pytest.raises(ControlSyntaxError):
            ThresholdCommand(kind="range", values=(1.0,))

    def test_bad_clear_parameter(self):
        with pytest.raises(ControlSyntaxError):
            ClearCommand(parameter="filter")

    def test_empty_filter_source(self):
        with pytest.raises(ControlSyntaxError):
            FilterCommand(source="   ")

    def test_ambiguous_filter_source(self):
        with pytest.raises(ControlSyntaxError):
            FilterCommand(source="id=looks-like-an-id { }")

    def test_bad_filter_id(self):
        with pytest.raises(ControlSyntaxError):
            UnfilterCommand("two words")

    def test_empty_request(self):
        with pytest.raises(ControlSyntaxError):
            ControlRequest([])

    def test_filter_must_be_last(self):
        with pytest.raises(ControlSyntaxError):
            ControlRequest([FilterCommand(source="{ }"),
                            PeriodCommand(seconds=1.0)])


class TestParse:
    def test_parse_mixed(self):
        req = ControlRequest.parse(
            "period cpu 2\nthreshold loadavg above 0.5")
        assert req.commands == (
            PeriodCommand(metric="cpu", seconds=2.0),
            ThresholdCommand(metric="loadavg", kind="above",
                             values=(0.5,)))

    def test_messages_carry_addressing(self):
        req = ControlRequest([
            PeriodCommand(metric="cpu", seconds=2.0),
            FilterCommand(metric="*", filter_id="f", source="{ x; }")])
        msgs = req.messages(sender="alan", target="maui")
        assert [type(m) for m in msgs] == [SetParameter, DeployFilter]
        assert all(m.sender == "alan" and m.target == "maui"
                   for m in msgs)


# -- hypothesis round-trip property -----------------------------------------

_metrics = st.sampled_from(["*", "cpu", "net", "loadavg", "freemem"])
_seconds = st.floats(min_value=0.001, max_value=1e6,
                     allow_nan=False, allow_infinity=False)
_values = st.floats(min_value=-1e9, max_value=1e9,
                    allow_nan=False, allow_infinity=False)
_ident = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_",
                 min_size=1, max_size=12)
#: E-code-ish source: lines of single-space-separated tokens, so the
#: word-split/rejoin of the first header line is lossless.
_token = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_[]{}();=*+.<>!&|",
    min_size=1, max_size=10).filter(lambda t: not t.startswith("id="))
_source = st.lists(
    st.lists(_token, min_size=1, max_size=6).map(" ".join),
    min_size=1, max_size=5).map("\n".join)

_command = st.one_of(
    st.builds(PeriodCommand, metric=_metrics, seconds=_seconds),
    st.builds(ThresholdCommand, metric=_metrics,
              kind=st.just("above"), values=st.tuples(_values)),
    st.builds(ThresholdCommand, metric=_metrics,
              kind=st.just("below"), values=st.tuples(_values)),
    st.builds(ThresholdCommand, metric=_metrics, kind=st.just("change"),
              values=st.tuples(st.floats(min_value=0.001, max_value=1e4,
                                         allow_nan=False))),
    st.builds(ThresholdCommand, metric=_metrics, kind=st.just("range"),
              values=st.tuples(_values, _values).map(
                  lambda t: tuple(sorted(t)))),
    st.builds(ClearCommand, metric=_metrics,
              parameter=st.sampled_from(["period", "threshold"])),
    st.builds(UnfilterCommand, _ident),
)
_filter = st.builds(FilterCommand, metric=_metrics, filter_id=_ident,
                    source=_source)


@st.composite
def _requests(draw):
    commands = draw(st.lists(_command, min_size=1, max_size=5))
    if draw(st.booleans()):
        commands.append(draw(_filter))
    return ControlRequest(tuple(commands))


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_requests())
    def test_render_parse_round_trip(self, req):
        assert ControlRequest.parse(req.render()) == req

    @settings(max_examples=50, deadline=None)
    @given(_requests())
    def test_render_is_stable(self, req):
        assert ControlRequest.parse(req.render()).render() == \
            req.render()


class TestDprocWrite:
    def test_write_accepts_request(self):
        env = Environment()
        cluster = build_cluster(env, nodes=2, seed=3)
        dprocs = deploy_dproc(cluster,
                              config=DMonConfig(poll_interval=1.0))
        env.run(until=2.0)
        dprocs["alan"].write(
            "/proc/cluster/maui/control",
            ControlRequest([PeriodCommand(metric="cpu", seconds=2.0)]))
        env.run(until=4.0)
        policy = dprocs["maui"].dmon.policies[MetricId.LOADAVG]
        assert policy.period == 2.0
        log = dprocs["alan"].read("/proc/cluster/maui/control")
        assert "period cpu 2.0" in log
