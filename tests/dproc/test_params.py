"""Unit tests for the parameter engine (periods + thresholds)."""

from __future__ import annotations

import pytest

from repro.dproc import (AboveThreshold, BelowThreshold, ChangeThreshold,
                         MetricPolicy, RangeThreshold,
                         parse_threshold_spec)
from repro.errors import ControlSyntaxError


class TestThresholdRules:
    def test_above(self):
        rule = AboveThreshold(0.8)
        assert rule.should_send(0.9, None)
        assert not rule.should_send(0.8, None)
        assert not rule.should_send(0.1, None)

    def test_below(self):
        rule = BelowThreshold(4.0)  # "loadavg < number of CPUs"
        assert rule.should_send(3.9, None)
        assert not rule.should_send(4.0, None)

    def test_change_first_sample_always_sends(self):
        assert ChangeThreshold(15.0).should_send(0.0, None)

    def test_change_differential_filter(self):
        """The evaluation's 15% differential filter."""
        rule = ChangeThreshold(15.0)
        assert not rule.should_send(1.10, last_sent=1.0)
        assert rule.should_send(1.15, last_sent=1.0)
        assert rule.should_send(0.84, last_sent=1.0)
        assert not rule.should_send(0.90, last_sent=1.0)

    def test_change_relative_to_magnitude(self):
        rule = ChangeThreshold(10.0)
        assert rule.should_send(110.1, last_sent=100.0)
        assert not rule.should_send(109.0, last_sent=100.0)

    def test_change_from_zero(self):
        rule = ChangeThreshold(15.0)
        assert not rule.should_send(0.0, last_sent=0.0)
        assert rule.should_send(0.5, last_sent=0.0)

    def test_range(self):
        rule = RangeThreshold(2.0, 4.0)
        assert rule.should_send(3.0, None)
        assert rule.should_send(2.0, None)
        assert rule.should_send(4.0, None)
        assert not rule.should_send(1.9, None)
        assert not rule.should_send(4.1, None)

    def test_empty_range_rejected(self):
        with pytest.raises(ControlSyntaxError):
            RangeThreshold(5.0, 1.0)

    def test_specs_roundtrip_through_parser(self):
        for rule in (AboveThreshold(1.5), BelowThreshold(2),
                     ChangeThreshold(15), RangeThreshold(1, 9)):
            reparsed = parse_threshold_spec(rule.spec().split())
            assert reparsed == rule


class TestSpecParsing:
    def test_above_below(self):
        assert parse_threshold_spec(["above", "0.8"]) \
            == AboveThreshold(0.8)
        assert parse_threshold_spec(["below", "4"]) == BelowThreshold(4.0)

    def test_change_accepts_percent_sign(self):
        assert parse_threshold_spec(["change", "15%"]) \
            == ChangeThreshold(15.0)

    def test_range(self):
        assert parse_threshold_spec(["range", "1", "2"]) \
            == RangeThreshold(1.0, 2.0)

    @pytest.mark.parametrize("words", [
        [], ["above"], ["above", "x"], ["above", "1", "2"],
        ["change", "-5"], ["change", "0"], ["range", "1"],
        ["sideways", "1"],
    ])
    def test_bad_specs_rejected(self, words):
        with pytest.raises(ControlSyntaxError):
            parse_threshold_spec(words)


class TestMetricPolicy:
    def test_default_sends_always(self):
        policy = MetricPolicy()
        assert policy.is_default
        assert policy.should_send(1.0, now=0.0, last_sent=None,
                                  last_sent_at=None)
        assert policy.should_send(1.0, now=0.1, last_sent=1.0,
                                  last_sent_at=0.0)

    def test_period_gates_sends(self):
        policy = MetricPolicy()
        policy.set_period(2.0)
        assert policy.should_send(1.0, now=0.0, last_sent=None,
                                  last_sent_at=None)
        assert not policy.should_send(1.0, now=1.0, last_sent=1.0,
                                      last_sent_at=0.0)
        assert policy.should_send(1.0, now=2.0, last_sent=1.0,
                                  last_sent_at=0.0)

    def test_period_tolerates_jitter(self):
        policy = MetricPolicy()
        policy.set_period(1.0)
        assert policy.should_send(1.0, now=0.9999999,
                                  last_sent=1.0, last_sent_at=0.0)

    def test_combined_period_and_threshold(self):
        """Paper: 'update CPU info once every 2 seconds IF the CPU
        utilization is above 80%'."""
        policy = MetricPolicy()
        policy.set_period(2.0)
        policy.add_threshold(AboveThreshold(0.8))
        # period satisfied but threshold not:
        assert not policy.should_send(0.5, now=5.0, last_sent=0.9,
                                      last_sent_at=0.0)
        # threshold satisfied but period not:
        assert not policy.should_send(0.9, now=1.0, last_sent=0.9,
                                      last_sent_at=0.0)
        # both satisfied:
        assert policy.should_send(0.9, now=2.0, last_sent=0.9,
                                  last_sent_at=0.0)

    def test_multiple_thresholds_conjoin(self):
        policy = MetricPolicy()
        policy.add_threshold(AboveThreshold(1.0))
        policy.add_threshold(BelowThreshold(2.0))
        assert policy.should_send(1.5, 0.0, None, None)
        assert not policy.should_send(2.5, 0.0, None, None)
        assert not policy.should_send(0.5, 0.0, None, None)

    def test_clear_period_and_thresholds(self):
        policy = MetricPolicy()
        policy.set_period(5.0)
        policy.add_threshold(AboveThreshold(1.0))
        policy.clear_period()
        policy.clear_thresholds()
        assert policy.is_default

    def test_invalid_period_rejected(self):
        policy = MetricPolicy()
        with pytest.raises(ControlSyntaxError):
            policy.set_period(0)
        with pytest.raises(ControlSyntaxError):
            policy.set_period(float("inf"))

    def test_describe(self):
        policy = MetricPolicy()
        assert policy.describe() == "default"
        policy.set_period(2.0)
        policy.add_threshold(ChangeThreshold(15))
        assert policy.describe() == "period 2; change 15"


class TestThresholdStacking:
    """Conjunctive stacking of the three threshold families.

    The paper composes conditions: "update the CPU information once
    every 2 seconds IF the CPU utilization is above 80 %".  A policy
    may stack a percentage-change rule, a range rule and a
    relative-to-value (above/below) rule; a sample publishes only when
    *every* rule agrees.
    """

    @staticmethod
    def stacked() -> MetricPolicy:
        policy = MetricPolicy()
        policy.add_threshold(ChangeThreshold(10))       # moved >= 10 %
        policy.add_threshold(RangeThreshold(0.0, 1.0))  # plausible util
        policy.add_threshold(AboveThreshold(0.8))       # interesting
        return policy

    def test_all_rules_must_agree(self):
        policy = self.stacked()
        # moved 12.5 % from 0.8, inside [0, 1], above 0.8: publish.
        assert policy.should_send(0.9, 10.0, 0.8, 9.0)

    def test_change_rule_vetoes(self):
        policy = self.stacked()
        # In range and above the bound, but only ~1 % moved.
        assert not policy.should_send(0.90, 10.0, 0.89, 9.0)

    def test_range_rule_vetoes(self):
        policy = self.stacked()
        # Big move, above the bound, but outside [0, 1].
        assert not policy.should_send(1.5, 10.0, 0.8, 9.0)

    def test_above_rule_vetoes(self):
        policy = self.stacked()
        # Big move, in range, but not above 0.8.
        assert not policy.should_send(0.5, 10.0, 0.9, 9.0)

    def test_first_sample_gated_only_by_value_rules(self):
        # last_sent=None: the change rule always passes, but the
        # value-based rules still apply.
        policy = self.stacked()
        assert policy.should_send(0.9, 0.0, None, None)
        assert not policy.should_send(0.5, 0.0, None, None)

    def test_period_stacks_conjunctively_with_thresholds(self):
        policy = self.stacked()
        policy.set_period(2.0)
        # Every threshold passes but the period has not elapsed.
        assert not policy.should_send(0.99, 10.5, 0.8, 9.0)
        # Same sample once the period elapses.
        assert policy.should_send(0.99, 11.0, 0.8, 9.0)

    def test_stacking_order_is_irrelevant(self):
        a = MetricPolicy()
        a.add_threshold(ChangeThreshold(10))
        a.add_threshold(AboveThreshold(0.8))
        b = MetricPolicy()
        b.add_threshold(AboveThreshold(0.8))
        b.add_threshold(ChangeThreshold(10))
        for value, last in [(0.9, 0.8), (0.81, 0.8), (0.7, 0.1),
                            (0.95, None)]:
            assert a.should_send(value, 5.0, last, 4.0) \
                == b.should_send(value, 5.0, last, 4.0)

    def test_below_and_range_stack(self):
        policy = MetricPolicy()
        policy.add_threshold(BelowThreshold(0.5))
        policy.add_threshold(RangeThreshold(0.1, 0.9))
        assert policy.should_send(0.3, 1.0, None, None)
        assert not policy.should_send(0.05, 1.0, None, None)  # below lo
        assert not policy.should_send(0.7, 1.0, None, None)   # not below

    def test_describe_lists_every_stacked_rule(self):
        policy = self.stacked()
        policy.set_period(2.0)
        assert policy.describe() \
            == "period 2; change 10; range 0 1; above 0.8"


class TestSpecRoundTrips:
    """rule -> spec() -> parse_threshold_spec -> identical rule."""

    @pytest.mark.parametrize("rule", [
        AboveThreshold(0.8), AboveThreshold(123456.0),
        BelowThreshold(-2.5), BelowThreshold(1e-6),
        ChangeThreshold(15), ChangeThreshold(0.5),
        RangeThreshold(0.0, 1.0), RangeThreshold(-10.0, 10.0),
        RangeThreshold(2.0, 2.0),  # degenerate but legal
    ])
    def test_rule_round_trips_exactly(self, rule):
        assert parse_threshold_spec(rule.spec().split()) == rule

    def test_stacked_policy_round_trips_via_describe(self):
        """A whole policy survives describe() -> re-parse."""
        policy = MetricPolicy()
        policy.set_period(2.0)
        policy.add_threshold(ChangeThreshold(10))
        policy.add_threshold(RangeThreshold(0.0, 1.0))
        policy.add_threshold(AboveThreshold(0.8))

        rebuilt = MetricPolicy()
        for part in policy.describe().split("; "):
            words = part.split()
            if words[0] == "period":
                rebuilt.set_period(float(words[1]))
            else:
                rebuilt.add_threshold(parse_threshold_spec(words))
        assert rebuilt.period == policy.period
        assert rebuilt.thresholds == policy.thresholds
