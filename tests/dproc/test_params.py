"""Unit tests for the parameter engine (periods + thresholds)."""

from __future__ import annotations

import pytest

from repro.dproc import (AboveThreshold, BelowThreshold, ChangeThreshold,
                         MetricPolicy, RangeThreshold,
                         parse_threshold_spec)
from repro.errors import ControlSyntaxError


class TestThresholdRules:
    def test_above(self):
        rule = AboveThreshold(0.8)
        assert rule.should_send(0.9, None)
        assert not rule.should_send(0.8, None)
        assert not rule.should_send(0.1, None)

    def test_below(self):
        rule = BelowThreshold(4.0)  # "loadavg < number of CPUs"
        assert rule.should_send(3.9, None)
        assert not rule.should_send(4.0, None)

    def test_change_first_sample_always_sends(self):
        assert ChangeThreshold(15.0).should_send(0.0, None)

    def test_change_differential_filter(self):
        """The evaluation's 15% differential filter."""
        rule = ChangeThreshold(15.0)
        assert not rule.should_send(1.10, last_sent=1.0)
        assert rule.should_send(1.15, last_sent=1.0)
        assert rule.should_send(0.84, last_sent=1.0)
        assert not rule.should_send(0.90, last_sent=1.0)

    def test_change_relative_to_magnitude(self):
        rule = ChangeThreshold(10.0)
        assert rule.should_send(110.1, last_sent=100.0)
        assert not rule.should_send(109.0, last_sent=100.0)

    def test_change_from_zero(self):
        rule = ChangeThreshold(15.0)
        assert not rule.should_send(0.0, last_sent=0.0)
        assert rule.should_send(0.5, last_sent=0.0)

    def test_range(self):
        rule = RangeThreshold(2.0, 4.0)
        assert rule.should_send(3.0, None)
        assert rule.should_send(2.0, None)
        assert rule.should_send(4.0, None)
        assert not rule.should_send(1.9, None)
        assert not rule.should_send(4.1, None)

    def test_empty_range_rejected(self):
        with pytest.raises(ControlSyntaxError):
            RangeThreshold(5.0, 1.0)

    def test_specs_roundtrip_through_parser(self):
        for rule in (AboveThreshold(1.5), BelowThreshold(2),
                     ChangeThreshold(15), RangeThreshold(1, 9)):
            reparsed = parse_threshold_spec(rule.spec().split())
            assert reparsed == rule


class TestSpecParsing:
    def test_above_below(self):
        assert parse_threshold_spec(["above", "0.8"]) \
            == AboveThreshold(0.8)
        assert parse_threshold_spec(["below", "4"]) == BelowThreshold(4.0)

    def test_change_accepts_percent_sign(self):
        assert parse_threshold_spec(["change", "15%"]) \
            == ChangeThreshold(15.0)

    def test_range(self):
        assert parse_threshold_spec(["range", "1", "2"]) \
            == RangeThreshold(1.0, 2.0)

    @pytest.mark.parametrize("words", [
        [], ["above"], ["above", "x"], ["above", "1", "2"],
        ["change", "-5"], ["change", "0"], ["range", "1"],
        ["sideways", "1"],
    ])
    def test_bad_specs_rejected(self, words):
        with pytest.raises(ControlSyntaxError):
            parse_threshold_spec(words)


class TestMetricPolicy:
    def test_default_sends_always(self):
        policy = MetricPolicy()
        assert policy.is_default
        assert policy.should_send(1.0, now=0.0, last_sent=None,
                                  last_sent_at=None)
        assert policy.should_send(1.0, now=0.1, last_sent=1.0,
                                  last_sent_at=0.0)

    def test_period_gates_sends(self):
        policy = MetricPolicy()
        policy.set_period(2.0)
        assert policy.should_send(1.0, now=0.0, last_sent=None,
                                  last_sent_at=None)
        assert not policy.should_send(1.0, now=1.0, last_sent=1.0,
                                      last_sent_at=0.0)
        assert policy.should_send(1.0, now=2.0, last_sent=1.0,
                                  last_sent_at=0.0)

    def test_period_tolerates_jitter(self):
        policy = MetricPolicy()
        policy.set_period(1.0)
        assert policy.should_send(1.0, now=0.9999999,
                                  last_sent=1.0, last_sent_at=0.0)

    def test_combined_period_and_threshold(self):
        """Paper: 'update CPU info once every 2 seconds IF the CPU
        utilization is above 80%'."""
        policy = MetricPolicy()
        policy.set_period(2.0)
        policy.add_threshold(AboveThreshold(0.8))
        # period satisfied but threshold not:
        assert not policy.should_send(0.5, now=5.0, last_sent=0.9,
                                      last_sent_at=0.0)
        # threshold satisfied but period not:
        assert not policy.should_send(0.9, now=1.0, last_sent=0.9,
                                      last_sent_at=0.0)
        # both satisfied:
        assert policy.should_send(0.9, now=2.0, last_sent=0.9,
                                  last_sent_at=0.0)

    def test_multiple_thresholds_conjoin(self):
        policy = MetricPolicy()
        policy.add_threshold(AboveThreshold(1.0))
        policy.add_threshold(BelowThreshold(2.0))
        assert policy.should_send(1.5, 0.0, None, None)
        assert not policy.should_send(2.5, 0.0, None, None)
        assert not policy.should_send(0.5, 0.0, None, None)

    def test_clear_period_and_thresholds(self):
        policy = MetricPolicy()
        policy.set_period(5.0)
        policy.add_threshold(AboveThreshold(1.0))
        policy.clear_period()
        policy.clear_thresholds()
        assert policy.is_default

    def test_invalid_period_rejected(self):
        policy = MetricPolicy()
        with pytest.raises(ControlSyntaxError):
            policy.set_period(0)
        with pytest.raises(ControlSyntaxError):
            policy.set_period(float("inf"))

    def test_describe(self):
        policy = MetricPolicy()
        assert policy.describe() == "default"
        policy.set_period(2.0)
        policy.add_threshold(ChangeThreshold(15))
        assert policy.describe() == "period 2; change 15"
