"""Unit and integration tests for KECho channels."""

from __future__ import annotations

import pytest

from repro.errors import ChannelError
from repro.kecho import KechoBus, control_message_size
from repro.kecho.control import (ClearParameter, DeployFilter,
                                 RemoveFilter, SetParameter)
from repro.units import KB


@pytest.fixture
def bus():
    return KechoBus()


def wire(bus, cluster, name="monitor"):
    """Attach every node to the channel; return endpoints by host."""
    return {node.name: bus.connect(node, name) for node in cluster}


class TestEndpointLifecycle:
    def test_connect_is_idempotent(self, bus, cluster3):
        alan = cluster3["alan"]
        assert bus.connect(alan, "monitor") is bus.connect(alan, "monitor")

    def test_distinct_channels_distinct_endpoints(self, bus, cluster3):
        alan = cluster3["alan"]
        a = bus.connect(alan, "monitor")
        b = bus.connect(alan, "control")
        assert a is not b

    def test_close_then_reconnect(self, bus, cluster3):
        alan = cluster3["alan"]
        ep = bus.connect(alan, "monitor")
        ep.close()
        ep.close()  # idempotent
        ep2 = bus.connect(alan, "monitor")
        assert ep2 is not ep and not ep2.closed

    def test_submit_on_closed_endpoint_rejected(self, bus, cluster3):
        ep = bus.connect(cluster3["alan"], "monitor")
        ep.close()
        with pytest.raises(ChannelError):
            ep.submit("x", size=100)

    def test_subscribe_on_closed_endpoint_rejected(self, bus, cluster3):
        ep = bus.connect(cluster3["alan"], "monitor")
        ep.close()
        with pytest.raises(ChannelError):
            ep.subscribe(lambda e: None)

    def test_bad_size_rejected(self, bus, cluster3):
        ep = bus.connect(cluster3["alan"], "monitor")
        with pytest.raises(ChannelError):
            ep.submit("x", size=0)

    def test_cancel_after_close_is_noop(self, bus, cluster3):
        """Closing an endpoint deactivates its subscriptions, so a
        later cancel() is idempotent instead of a ChannelError."""
        ep = bus.connect(cluster3["alan"], "monitor")
        sub = ep.subscribe(lambda e: None)
        ep.close()
        assert not sub.active
        sub.cancel()  # must not raise
        sub.cancel()


class TestSubmitUnderFaults:
    def test_partition_lands_in_failed_targets(self, env, bus, cluster3):
        from repro.sim import FaultInjector
        eps = wire(bus, cluster3)
        eps["maui"].subscribe(lambda e: None)
        eps["etna"].subscribe(lambda e: None)
        FaultInjector(cluster3).partition(["alan", "etna"], ["maui"])
        receipt = eps["alan"].submit({"loadavg": 1.0}, size=100)
        assert receipt.remote_targets == ["maui", "etna"]
        env.run()
        assert receipt.failed_targets == ["maui"]
        assert receipt.delivered_targets == ["etna"]

    def test_endpoint_survives_failed_submit(self, env, bus, cluster3):
        """A partition-time submit must not corrupt publisher state:
        once the partition heals, the next submit goes through."""
        from repro.sim import FaultInjector
        eps = wire(bus, cluster3)
        got = []
        eps["maui"].subscribe(lambda e: got.append(e))
        injector = FaultInjector(cluster3)
        injector.partition(["alan"], ["maui", "etna"])
        first = eps["alan"].submit("during", size=100)
        env.run()
        assert first.failed_targets == ["maui"]
        assert not got
        injector.heal()
        second = eps["alan"].submit("after", size=100)
        env.run()
        assert second.failed_targets == []
        assert [e.payload for e in got] == ["after"]


class TestSubmitReceiptAccounting:
    def test_repeated_failed_target_excluded_exactly_once(self):
        """Regression: ``delivered_targets`` used an O(n·m) list scan
        that re-counted a target for every time it appeared in
        ``failed_targets`` — a twice-failed host (retried submits
        share a receipt in some harnesses) corrupted the delivered
        list.  Membership is a set check now."""
        from repro.kecho.channel import SubmitReceipt
        receipt = SubmitReceipt(
            event=None, cpu_seconds=0.0,
            remote_targets=["maui", "etna", "hood"],
            failed_targets=["maui", "maui", "maui"])
        assert receipt.delivered_targets == ["etna", "hood"]

    def test_all_failed_means_none_delivered(self):
        from repro.kecho.channel import SubmitReceipt
        receipt = SubmitReceipt(
            event=None, cpu_seconds=0.0,
            remote_targets=["maui", "etna"],
            failed_targets=["etna", "maui", "etna"])
        assert receipt.delivered_targets == []

    def test_duplicate_target_failing_once_drops_both_copies(self):
        """A host listed twice in ``remote_targets`` that fails is
        excluded everywhere, not just at its first position."""
        from repro.kecho.channel import SubmitReceipt
        receipt = SubmitReceipt(
            event=None, cpu_seconds=0.0,
            remote_targets=["maui", "etna", "maui"],
            failed_targets=["maui"])
        assert receipt.delivered_targets == ["etna"]


class TestPublishSubscribe:
    def test_event_reaches_remote_subscriber(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        got = []
        eps["maui"].subscribe(lambda e: got.append(e))
        receipt = eps["alan"].submit({"loadavg": 1.5}, size=100)
        env.run()
        assert receipt.remote_targets == ["maui"]
        assert len(got) == 1
        ev = got[0]
        assert ev.source == "alan"
        assert ev.payload == {"loadavg": 1.5}
        assert ev.delivered_at > ev.submitted_at
        assert ev.latency > 0

    def test_no_subscribers_no_traffic(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        receipt = eps["alan"].submit("x", size=100)
        env.run()
        assert receipt.remote_targets == []
        assert cluster3["maui"].stack.bytes_in.total == 0

    def test_fanout_to_all_subscribers(self, env, bus, cluster8):
        eps = wire(bus, cluster8)
        counts = {name: [] for name in cluster8.names}
        for name, ep in eps.items():
            ep.subscribe(lambda e, n=name: counts[n].append(e.eid))
        eps["alan"].submit("x", size=100)
        env.run()
        for name in cluster8.names:
            assert len(counts[name]) == 1  # incl. local delivery on alan

    def test_local_subscriber_immediate(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        got = []
        eps["alan"].subscribe(lambda e: got.append(env.now))
        eps["alan"].submit("x", size=100)
        assert got == [env.now]  # synchronous local upcall

    def test_subscription_cancel_stops_delivery(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        got = []
        sub = eps["maui"].subscribe(lambda e: got.append(e))
        eps["alan"].submit("first", size=100)
        env.run()
        sub.cancel()
        eps["alan"].submit("second", size=100)
        env.run()
        assert len(got) == 1

    def test_cancel_twice_ok(self, bus, cluster3):
        ep = bus.connect(cluster3["alan"], "monitor")
        sub = ep.subscribe(lambda e: None)
        sub.cancel()
        sub.cancel()

    def test_unsubscribed_node_not_pushed_to(self, env, bus, cluster3):
        """Data exchange only for registered interest (paper §2)."""
        eps = wire(bus, cluster3)
        eps["maui"].subscribe(lambda e: None)
        receipt = eps["alan"].submit("x", size=100)
        env.run()
        assert "etna" not in receipt.remote_targets

    def test_two_channels_are_isolated(self, env, bus, cluster3):
        mon = wire(bus, cluster3, "monitor")
        ctl = wire(bus, cluster3, "control")
        got_mon, got_ctl = [], []
        mon["maui"].subscribe(lambda e: got_mon.append(e))
        ctl["maui"].subscribe(lambda e: got_ctl.append(e))
        mon["alan"].submit("m", size=50)
        ctl["alan"].submit("c", size=50)
        env.run()
        assert [e.payload for e in got_mon] == ["m"]
        assert [e.payload for e in got_ctl] == ["c"]


class TestCostAccounting:
    def test_submit_cost_scales_with_subscribers(self, env, bus,
                                                 cluster8):
        eps = wire(bus, cluster8)
        r0 = eps["alan"].submit("x", size=100)
        for name in cluster8.names:
            if name != "alan":
                eps[name].subscribe(lambda e: None)
        r7 = eps["alan"].submit("x", size=100)
        assert r7.cpu_seconds > r0.cpu_seconds
        costs = cluster8["alan"].costs
        expected = costs.encode_cost(100) + costs.send_cost(100, 7)
        assert r7.cpu_seconds == pytest.approx(expected)

    def test_submit_cost_scales_with_size(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        eps["maui"].subscribe(lambda e: None)
        small = eps["alan"].submit("x", size=100)
        large = eps["alan"].submit("x", size=KB(5))
        assert large.cpu_seconds > small.cpu_seconds

    def test_submit_charges_cpu(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        eps["maui"].subscribe(lambda e: None)
        receipt = eps["alan"].submit("x", size=KB(5))
        env.run()
        alan = cluster3["alan"]
        alan.cpu.settle()
        assert alan.cpu.busy_cpu_seconds \
            == pytest.approx(receipt.cpu_seconds)

    def test_receive_cost_accumulates(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        eps["maui"].subscribe(lambda e: None)
        for _ in range(3):
            eps["alan"].submit("x", size=100)
        env.run()
        maui = cluster3["maui"]
        expected = 3 * maui.costs.receive_cost(100)
        assert eps["maui"].receive_cpu_seconds == pytest.approx(expected)

    def test_counters(self, env, bus, cluster3):
        eps = wire(bus, cluster3)
        eps["maui"].subscribe(lambda e: None)
        eps["etna"].subscribe(lambda e: None)
        eps["alan"].submit("x", size=200)
        env.run()
        assert eps["alan"].submitted.total == 1
        assert eps["alan"].bytes_out.total == pytest.approx(400)
        assert eps["maui"].received.total == 1
        assert eps["maui"].bytes_in.total == pytest.approx(200)


class TestControlMessages:
    def test_addressing(self):
        msg = SetParameter(sender="alan", target="maui", metric="cpu",
                           parameter="period", spec="2")
        assert msg.addressed_to("maui")
        assert not msg.addressed_to("etna")

    def test_broadcast(self):
        msg = SetParameter(sender="alan", target=None)
        assert msg.addressed_to("anyone")

    def test_sizes_grow_with_body(self):
        small = DeployFilter(sender="a", source="return 1;")
        big = DeployFilter(sender="a", source="return 1;" * 100)
        assert control_message_size(big) > control_message_size(small)

    def test_all_kinds_have_sizes(self):
        msgs = [
            SetParameter(sender="a", metric="cpu", spec="2"),
            ClearParameter(sender="a", metric="cpu"),
            DeployFilter(sender="a", source="{}", filter_id="f1"),
            RemoveFilter(sender="a", filter_id="f1"),
        ]
        for m in msgs:
            assert control_message_size(m) >= 48

    def test_control_message_over_channel(self, env, bus, cluster3):
        eps = wire(bus, cluster3, "control")
        got = []
        eps["maui"].subscribe(lambda e: got.append(e.payload))
        msg = DeployFilter(sender="alan", target="maui",
                           source="{ return 1; }", filter_id="f1")
        eps["alan"].submit(msg, size=control_message_size(msg))
        env.run()
        assert got == [msg]
