"""Unit tests for the channel registry (directory server)."""

from __future__ import annotations

import pytest

from repro.errors import RegistryError
from repro.kecho import ChannelRegistry


class TestRegistry:
    def test_first_open_creates(self):
        reg = ChannelRegistry()
        info, created = reg.open("monitor", "alan")
        assert created
        assert info.creator == "alan"
        assert info.members == ["alan"]

    def test_second_open_finds_existing(self):
        reg = ChannelRegistry()
        first, _ = reg.open("monitor", "alan")
        second, created = reg.open("monitor", "maui")
        assert not created
        assert second.channel_id == first.channel_id
        assert second.members == ["alan", "maui"]

    def test_reopen_same_host_idempotent(self):
        reg = ChannelRegistry()
        reg.open("monitor", "alan")
        info, created = reg.open("monitor", "alan")
        assert not created and info.members == ["alan"]

    def test_distinct_channels_distinct_ids(self):
        reg = ChannelRegistry()
        a, _ = reg.open("monitor", "alan")
        b, _ = reg.open("control", "alan")
        assert a.channel_id != b.channel_id

    def test_lookup_unknown_raises(self):
        with pytest.raises(RegistryError):
            ChannelRegistry().lookup("ghost")

    def test_leave(self):
        reg = ChannelRegistry()
        reg.open("monitor", "alan")
        reg.open("monitor", "maui")
        reg.leave("monitor", "alan")
        assert reg.lookup("monitor").members == ["maui"]

    def test_leave_nonmember_raises(self):
        reg = ChannelRegistry()
        reg.open("monitor", "alan")
        with pytest.raises(RegistryError):
            reg.leave("monitor", "etna")

    def test_empty_name_rejected(self):
        with pytest.raises(RegistryError):
            ChannelRegistry().open("", "alan")

    def test_channels_listing(self):
        reg = ChannelRegistry()
        reg.open("b-chan", "alan")
        reg.open("a-chan", "alan")
        assert reg.channels() == ["a-chan", "b-chan"]
