"""Unit and integration tests for derived event channels."""

from __future__ import annotations

import pytest

from repro.dproc import METRIC_CONSTANTS
from repro.ecode import MetricRecord, compile_filter
from repro.errors import ChannelError
from repro.kecho import KechoBus, ecode_transform


@pytest.fixture
def bus():
    return KechoBus()


def wire(bus, cluster, name):
    return {node.name: bus.connect(node, name) for node in cluster}


def downsample(event):
    """Toy transform: halve the payload list and the size."""
    payload = event.payload
    if not payload:
        return None
    return payload[: max(1, len(payload) // 2)], event.size / 2


class TestRegistration:
    def test_self_derivation_rejected(self, bus):
        with pytest.raises(ChannelError, match="itself"):
            bus.derive("a", "a", downsample)

    def test_cycle_rejected(self, bus):
        bus.derive("a", "b", downsample)
        bus.derive("b", "c", downsample)
        with pytest.raises(ChannelError, match="cycle"):
            bus.derive("c", "a", downsample)

    def test_chain_allowed(self, bus):
        bus.derive("a", "b", downsample)
        bus.derive("b", "c", downsample)
        assert len(bus.derivations_of("a")) == 1
        assert len(bus.derivations_of("b")) == 1

    def test_remove_derivation(self, bus):
        spec = bus.derive("a", "b", downsample)
        bus.remove_derivation(spec)
        assert bus.derivations_of("a") == []
        with pytest.raises(ChannelError):
            bus.remove_derivation(spec)


class TestDelivery:
    def test_derived_subscriber_gets_transformed_event(self, env, bus,
                                                       cluster3):
        wire(bus, cluster3, "full")
        derived = wire(bus, cluster3, "half")
        bus.derive("full", "half", downsample)
        got = []
        derived["maui"].subscribe(lambda e: got.append(e))
        publisher = bus.endpoint("full", "alan")
        publisher.submit([1, 2, 3, 4], size=400)
        env.run()
        assert len(got) == 1
        assert got[0].payload == [1, 2]
        assert got[0].size == 200
        assert got[0].attributes["derived_from"] == "full"

    def test_source_subscribers_unaffected(self, env, bus, cluster3):
        full = wire(bus, cluster3, "full")
        wire(bus, cluster3, "half")
        bus.derive("full", "half", downsample)
        got = []
        full["etna"].subscribe(lambda e: got.append(e))
        bus.endpoint("full", "alan").submit([1, 2, 3, 4], size=400)
        env.run()
        assert got[0].payload == [1, 2, 3, 4]

    def test_no_audience_no_transform(self, env, bus, cluster3):
        wire(bus, cluster3, "full")
        wire(bus, cluster3, "half")
        spec = bus.derive("full", "half", downsample)
        bus.endpoint("full", "alan").submit([1, 2], size=100)
        env.run()
        assert spec.offered.total == 0  # nobody subscribed to 'half'

    def test_transform_none_drops_event(self, env, bus, cluster3):
        wire(bus, cluster3, "full")
        derived = wire(bus, cluster3, "half")
        spec = bus.derive("full", "half", downsample)
        got = []
        derived["maui"].subscribe(lambda e: got.append(e))
        bus.endpoint("full", "alan").submit([], size=100)
        env.run()
        assert got == []
        assert spec.offered.total == 1 and spec.passed.total == 0

    def test_chained_derivations(self, env, bus, cluster3):
        wire(bus, cluster3, "full")
        wire(bus, cluster3, "half")
        quarter = wire(bus, cluster3, "quarter")
        bus.derive("full", "half", downsample)
        bus.derive("half", "quarter", downsample)
        got = []
        quarter["etna"].subscribe(lambda e: got.append(e))
        # 'half' needs an audience too for the chain to flow.
        bus.endpoint("half", "maui").subscribe(lambda e: None)
        bus.endpoint("full", "alan").submit([1, 2, 3, 4, 5, 6, 7, 8],
                                            size=800)
        env.run()
        assert len(got) == 1
        assert got[0].payload == [1, 2]

    def test_bad_size_from_transform_rejected(self, env, bus, cluster3):
        wire(bus, cluster3, "full")
        derived = wire(bus, cluster3, "bad")
        bus.derive("full", "bad", lambda e: (e.payload, 0.0))
        derived["maui"].subscribe(lambda e: None)
        with pytest.raises(ChannelError, match="non-positive"):
            bus.endpoint("full", "alan").submit([1], size=100)


class TestEcodeTransform:
    def make_records(self):
        return [
            MetricRecord("loadavg", 3.0),
            MetricRecord("freemem", 100e6),
        ]

    def test_filter_passthrough(self, env, bus, cluster3):
        wire(bus, cluster3, "metrics")
        derived = wire(bus, cluster3, "hot")
        compiled = compile_filter(
            "{ if (input[LOADAVG].value > 2)"
            "    output[0] = input[LOADAVG]; }",
            constants=METRIC_CONSTANTS)
        bus.derive("metrics", "hot", ecode_transform(compiled))
        got = []
        derived["maui"].subscribe(lambda e: got.append(e))
        pub = bus.endpoint("metrics", "alan")
        pub.submit(self.make_records(), size=64)
        env.run()
        assert len(got) == 1
        assert got[0].payload[0].name == "loadavg"
        assert got[0].size == 40 + 12  # header + one record

    def test_filter_blocks_quiet_events(self, env, bus, cluster3):
        wire(bus, cluster3, "metrics")
        derived = wire(bus, cluster3, "hot")
        compiled = compile_filter(
            "{ if (input[LOADAVG].value > 99)"
            "    output[0] = input[LOADAVG]; }",
            constants=METRIC_CONSTANTS)
        bus.derive("metrics", "hot", ecode_transform(compiled))
        got = []
        derived["maui"].subscribe(lambda e: got.append(e))
        bus.endpoint("metrics", "alan").submit(self.make_records(),
                                               size=64)
        env.run()
        assert got == []

    def test_non_record_payload_rejected(self, env, bus, cluster3):
        wire(bus, cluster3, "metrics")
        derived = wire(bus, cluster3, "hot")
        compiled = compile_filter("{ output[0] = input[0]; }")
        bus.derive("metrics", "hot", ecode_transform(compiled))
        derived["maui"].subscribe(lambda e: None)
        with pytest.raises(ChannelError, match="MetricRecord"):
            bus.endpoint("metrics", "alan").submit("raw", size=10)
