"""Golden span-tree regression test: one pinned causal trace.

A small seeded tracing scenario runs end to end; the sampler's
accounting and the full span tree of one fixed monitoring event are
compared field-for-field against the checked-in
``golden_span_tree.json``.  Any drift — a new instrumentation site, a
reordered hop, a changed delivery time — fails loudly.

Intentional changes (new span stage, different attrs) regenerate the
pin like the behavioural golden trace::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

Floats are rounded to six significant digits for readability; the
collector itself is bit-deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.tracecli import run_trace_scenario
from tests.golden.test_golden_trace import _round

GOLDEN = Path(__file__).with_name("golden_span_tree.json")

#: The pinned scenario: small cluster, head sampling on, two CPU-load
#: steps that force a traced SmartPointer adaptation.
SCENARIO = {
    "nodes": 8,
    "seed": 3,
    "duration": 12.0,
    "sample_rate": 0.5,
}


def _pinned_scenario() -> dict:
    # The checked-in golden keeps the historical "n_nodes" key; only
    # the serialized record translates back from the canonical kwarg.
    doc = dict(SCENARIO)
    doc["n_nodes"] = doc.pop("nodes")
    return doc


def build_record() -> dict:
    collector = run_trace_scenario(**SCENARIO)
    # Pin the biggest complete tree: deterministic, and it exercises
    # the full module -> dmon -> kecho -> transport -> delivery ->
    # update fan-out.
    best = max((t for t in collector.trees() if t.complete),
               key=lambda t: (len(t.spans), t.trace_id))
    return _round({
        "scenario": _pinned_scenario(),
        "accounting": {
            "traces_started": collector.traces_started,
            "traces_sampled_out": collector.traces_sampled_out,
            "traces_evicted": collector.traces_evicted,
            "spans_recorded": collector.spans_recorded,
            "spans_dropped": collector.spans_dropped,
        },
        "trace_ids": collector.trace_ids(),
        "tree": best.snapshot(),
    })


class TestGoldenSpanTree:
    def test_scenario_matches_golden_file(self, regen_golden):
        record = build_record()
        if regen_golden:
            GOLDEN.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
            pytest.skip(f"regenerated {GOLDEN.name}")
        assert GOLDEN.exists(), \
            f"{GOLDEN} missing - run with --regen-golden to create it"
        expected = json.loads(GOLDEN.read_text())
        for key in expected:
            assert record[key] == expected[key], f"drift in {key!r}"
        assert set(record) == set(expected)

    def test_golden_file_is_well_formed(self):
        """Fast guard (no simulation): the pin parses and the tree is
        a real end-to-end trace."""
        doc = json.loads(GOLDEN.read_text())
        assert doc["scenario"] == _round(_pinned_scenario())
        acct = doc["accounting"]
        # Head sampling at 0.5 really dropped something.
        assert acct["traces_sampled_out"] > 0
        assert acct["traces_started"] == len(doc["trace_ids"])
        tree = doc["tree"]
        assert tree["trace_id"] in doc["trace_ids"]
        stages = {span["stage"] for span in tree["spans"]}
        assert {"dmon", "module", "kecho", "transport",
                "delivery", "update"} <= stages
        assert all(span["status"] == "ok" for span in tree["spans"])
