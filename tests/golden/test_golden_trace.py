"""Golden-trace regression test: a pinned 50-node chaos scenario.

One seeded scenario runs end to end; its behavioural event trace
*and* its self-telemetry overhead report are compared field-for-field
against the checked-in ``golden_trace.json``.  Any drift — a changed
event time, a different recovery latency, a shifted monitoring-CPU
total — fails loudly with a diffable message.

When a change intentionally alters the trace (new cost model, new
protocol step), regenerate the golden file and review the diff like
any other code change::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

Floats are rounded to six significant digits before pinning so the
file stays readable; the simulation itself is bit-deterministic, so
the rounding is presentation, not slack.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.chaos import chaos_recovery

GOLDEN = Path(__file__).with_name("golden_trace.json")

#: The pinned scenario: 50 nodes, lossy window, a partition and a
#: crash/reboot, all inside 40 simulated seconds.
SCENARIO = {
    "nodes": 50,
    "seed": 11,
    "duration": 40.0,
    "loss_probability": 0.3,
    "loss_start": 5.0,
    "loss_end": 20.0,
    "partition_start": 10.0,
    "partition_end": 18.0,
    "crash_at": 12.0,
    "reboot_at": 20.0,
    "poll_interval": 1.0,
    "probe_interval": 0.5,
}


def _round(value):
    """Round every float to 6 significant digits, recursively."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float(f"{value:.6g}")
    if isinstance(value, dict):
        return {k: _round(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round(v) for v in value]
    return value


def _pinned_scenario() -> dict:
    # The checked-in golden keeps the historical "n_nodes" key; only
    # the serialized record translates back from the canonical kwarg.
    doc = dict(SCENARIO)
    doc["n_nodes"] = doc.pop("nodes")
    return doc


def build_record() -> dict:
    report = chaos_recovery(**SCENARIO)
    return _round({
        "scenario": _pinned_scenario(),
        "victim": report.victim,
        "recovery_time": report.recovery_time,
        "rejoin_time": report.rejoin_time,
        "victim_reported_dead": report.victim_reported_dead,
        "victim_never_silently_fresh":
            report.victim_never_silently_fresh,
        "events": [[t, desc] for t, desc in report.events],
        "final_liveness": dict(sorted(report.final_liveness.items())),
        "overhead": report.overhead,
    })


class TestGoldenTrace:
    def test_scenario_matches_golden_file(self, regen_golden):
        record = build_record()
        if regen_golden:
            GOLDEN.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
            pytest.skip(f"regenerated {GOLDEN.name}")
        assert GOLDEN.exists(), \
            f"{GOLDEN} missing - run with --regen-golden to create it"
        expected = json.loads(GOLDEN.read_text())
        # Compare section by section so a failure names the drifted
        # part instead of dumping two full documents.
        for key in expected:
            assert record[key] == expected[key], f"drift in {key!r}"
        assert set(record) == set(expected)

    def test_golden_file_is_well_formed(self):
        """Fast guard (no simulation): the checked-in file parses and
        carries both halves of the pin — behaviour and telemetry."""
        doc = json.loads(GOLDEN.read_text())
        assert doc["scenario"] == _round(_pinned_scenario())
        assert doc["events"], "pinned trace has no events"
        assert all(isinstance(t, (int, float)) and isinstance(d, str)
                   for t, d in doc["events"])
        overhead = doc["overhead"]
        assert overhead["source"] == "repro.telemetry"
        assert overhead["n_nodes"] == SCENARIO["nodes"]
        assert overhead["monitor_cpu_seconds"]["total"] > 0
