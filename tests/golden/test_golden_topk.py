"""Golden regression: a pinned 50-node top-K source-filtering run.

A seeded 50-node cluster runs the ``proc`` keyed stream with a
sketch-backed top-K CPU filter governing half the hosts.  The pinned
record covers both sides of the contract:

* **governed hosts** ship exactly their top-K (pid, weight) pairs —
  the sketch, the heap ordering and the cumulative count-min weights
  are all pinned byte-for-byte through the ``proc_top`` rendering;
* **ungoverned hosts** ship their full synthetic process table, so
  the volume asymmetry the filter exists to create is visible in the
  record-accounting numbers.

Intentional changes regenerate the pin like the other goldens::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

The pre-existing goldens (``golden_trace.json``,
``golden_span_tree.json``) do not include the proc module and must
stay bit-identical when this scenario changes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import Scenario
from repro.dproc import DMonConfig, topk_filter
from tests.golden.test_golden_trace import _round

GOLDEN = Path(__file__).with_name("golden_topk.json")

SCENARIO = {
    "nodes": 50,
    "seed": 11,
    "duration": 12.0,
    "poll_interval": 1.0,
    "modules": ["cpu", "mem", "proc"],
    "k": 3,
    "by": "cpu",
    "governed_every": 2,   # hosts 0, 2, 4, ... get the filter
}


def _governed(names: list[str]) -> list[str]:
    return names[::SCENARIO["governed_every"]]


def _pinned_scenario() -> dict:
    # The checked-in golden keeps the historical "n_nodes" key; only
    # the serialized record translates back from the canonical kwarg.
    doc = dict(SCENARIO)
    doc["n_nodes"] = doc.pop("nodes")
    return doc


def build_record() -> dict:
    sc = Scenario(
        nodes=SCENARIO["nodes"], seed=SCENARIO["seed"], backend="sim",
        dmon=DMonConfig(poll_interval=SCENARIO["poll_interval"]),
        modules=tuple(SCENARIO["modules"]))

    def control_writes(sc: Scenario) -> None:
        observer = sc.nodes.names[0]
        for host in _governed(sc.nodes.names):
            sc.dprocs[observer].write(
                f"/proc/cluster/{host}/control",
                topk_filter(SCENARIO["k"], SCENARIO["by"]))

    sc = sc.with_setup(control_writes).run(SCENARIO["duration"])
    observer = sc.nodes.names[0]
    proc_top = {host: sc.dprocs[observer].read(
        f"/proc/cluster/{host}/proc_top") for host in sc.nodes.names}
    filters = {}
    for host in _governed(sc.nodes.names):
        deployed = sc.dprocs[host].dmon.filters.filter_for("proc")
        filters[host] = {
            "invocations": deployed.invocations,
            "emitted": deployed.total_emitted,
            "outputs": deployed.total_outputs,
            "errors": deployed.errors,
        }
    accounting = {host: {
        "events_published": sc.dprocs[host].node.telemetry.value(
            "dmon.events_published"),
        "records_published": sc.dprocs[host].node.telemetry.value(
            "dmon.records_published"),
    } for host in sc.nodes.names}
    return _round({
        "scenario": _pinned_scenario(),
        "proc_top": proc_top,
        "filters": filters,
        "accounting": accounting,
    })


class TestGoldenTopK:
    def test_scenario_matches_golden_file(self, regen_golden):
        record = build_record()
        if regen_golden:
            GOLDEN.write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
            pytest.skip(f"regenerated {GOLDEN.name}")
        assert GOLDEN.exists(), \
            f"{GOLDEN} missing - run with --regen-golden to create it"
        expected = json.loads(GOLDEN.read_text())
        for key in expected:
            assert record[key] == expected[key], f"drift in {key!r}"
        assert set(record) == set(expected)

    def test_golden_file_is_well_formed(self):
        """Fast guard (no simulation): the pin shows the asymmetry the
        filter is for — K pairs from governed hosts, full tables from
        the rest — and the record accounting reflects it."""
        doc = json.loads(GOLDEN.read_text())
        assert doc["scenario"] == _round(_pinned_scenario())
        governed = set(doc["filters"])
        assert len(governed) * SCENARIO["governed_every"] \
            == doc["scenario"]["n_nodes"]
        for host, text in doc["proc_top"].items():
            lines = text.splitlines()
            if host in governed:
                assert lines[0] == "kind: top", host
                assert 0 < len(lines) - 1 <= doc["scenario"]["k"]
            else:
                assert lines[0] == "kind: full", host
                assert len(lines) - 1 > doc["scenario"]["k"]
        for stats in doc["filters"].values():
            assert stats["errors"] == 0
            assert stats["emitted"] > 0
        governed_records = [doc["accounting"][h]["records_published"]
                            for h in governed]
        ungoverned_records = [doc["accounting"][h]["records_published"]
                              for h in doc["accounting"]
                              if h not in governed]
        assert max(governed_records) < min(ungoverned_records), \
            "top-K hosts must publish fewer records than full-table hosts"
