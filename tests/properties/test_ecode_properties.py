"""Property-based tests for the E-code compiler.

The central property is *differential testing*: random expression trees
are rendered to E-code source, compiled, executed, and compared against
an independent reference interpreter implementing C semantics directly
on the trees.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dproc.params import ChangeThreshold
from repro.ecode import MetricRecord, compile_filter
from repro.errors import EcodeRuntimeError

SETTINGS = settings(max_examples=120, deadline=None)


# --- typed random expression trees --------------------------------------------
# Nodes: ("ilit", v) ("flit", v) ("bin", op, l, r) ("un", op, e)
# Every tree carries C typing: '%' only over int subtrees.

_INT_OPS = ("+", "-", "*", "/", "%")
_NUM_OPS = ("+", "-", "*", "/")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_LOGIC_OPS = ("&&", "||")


def _int_exprs(depth):
    if depth == 0:
        return st.tuples(st.just("ilit"),
                         st.integers(min_value=-50, max_value=50))
    sub = _int_exprs(depth - 1)
    return st.one_of(
        st.tuples(st.just("ilit"),
                  st.integers(min_value=-50, max_value=50)),
        st.tuples(st.just("bin"), st.sampled_from(_INT_OPS), sub, sub),
        st.tuples(st.just("bin"), st.sampled_from(_CMP_OPS), sub, sub),
        st.tuples(st.just("bin"), st.sampled_from(_LOGIC_OPS), sub,
                  sub),
        st.tuples(st.just("un"), st.sampled_from(("-", "!")), sub),
    )


def _float_exprs(depth):
    if depth == 0:
        return st.tuples(
            st.just("flit"),
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
    fsub = _float_exprs(depth - 1)
    isub = _int_exprs(depth - 1)
    mixed = st.one_of(fsub, isub)
    return st.one_of(
        st.tuples(st.just("flit"),
                  st.floats(min_value=0.0, max_value=1e3,
                            allow_nan=False)),
        st.tuples(st.just("bin"), st.sampled_from(_NUM_OPS), mixed,
                  fsub),
        st.tuples(st.just("bin"), st.sampled_from(_NUM_OPS), fsub,
                  mixed),
        st.tuples(st.just("un"), st.just("-"), fsub),
    )


expressions = st.one_of(_int_exprs(3), _float_exprs(3))


def render(node) -> str:
    kind = node[0]
    if kind == "ilit":
        v = node[1]
        return f"({v})" if v < 0 else str(v)
    if kind == "flit":
        return repr(float(node[1]))
    if kind == "bin":
        _, op, left, right = node
        return f"({render(left)} {op} {render(right)})"
    _, op, operand = node
    return f"({op}{render(operand)})"


class _DivByZero(Exception):
    pass


def is_int_typed(node) -> bool:
    kind = node[0]
    if kind == "ilit":
        return True
    if kind == "flit":
        return False
    if kind == "bin":
        _, op, left, right = node
        if op in _CMP_OPS or op in _LOGIC_OPS:
            return True
        return is_int_typed(left) and is_int_typed(right)
    _, op, operand = node
    if op == "!":
        return True
    return is_int_typed(operand)


def reference_eval(node):
    """Independent C-semantics evaluator over the expression tree."""
    kind = node[0]
    if kind == "ilit":
        return int(node[1])
    if kind == "flit":
        return float(node[1])
    if kind == "un":
        _, op, operand = node
        v = reference_eval(operand)
        if op == "-":
            return -v
        return 1 if v == 0 else 0
    _, op, left, right = node
    if op == "&&":
        if reference_eval(left) == 0:
            return 0
        return 1 if reference_eval(right) != 0 else 0
    if op == "||":
        if reference_eval(left) != 0:
            return 1
        return 1 if reference_eval(right) != 0 else 0
    lv = reference_eval(left)
    if op in _CMP_OPS:
        rv = reference_eval(right)
        table = {"<": lv < rv, "<=": lv <= rv, ">": lv > rv,
                 ">=": lv >= rv, "==": lv == rv, "!=": lv != rv}
        return 1 if table[op] else 0
    rv = reference_eval(right)
    both_int = is_int_typed(left) and is_int_typed(right)
    if op == "+":
        return lv + rv
    if op == "-":
        return lv - rv
    if op == "*":
        return lv * rv
    if op == "/":
        if rv == 0:
            raise _DivByZero
        if both_int:
            return int(math.trunc(lv / rv))
        return lv / rv
    assert op == "%"
    if rv == 0:
        raise _DivByZero
    return int(math.fmod(lv, rv))


class TestDifferentialExecution:
    @SETTINGS
    @given(expressions)
    def test_compiled_matches_reference(self, tree):
        source = f"return {render(tree)};"
        filt = compile_filter(source)
        try:
            expected = reference_eval(tree)
        except _DivByZero:
            with pytest.raises(EcodeRuntimeError):
                filt([])
            return
        got = filt([]).returned
        if isinstance(expected, float):
            # Overflow-to-inf chains can produce NaN (e.g. 0 * inf) in
            # both the compiled filter and the reference: treat that as
            # agreement.
            assert got == pytest.approx(expected, rel=1e-12, abs=1e-12,
                                        nan_ok=True)
        else:
            assert got == expected

    @SETTINGS
    @given(expressions)
    def test_compilation_is_pure(self, tree):
        """Compiling twice and running twice gives identical results."""

        def same(x, y):
            return x == y or (x != x and y != y)  # NaN-aware equality

        source = f"return {render(tree)};"
        a = compile_filter(source)
        b = compile_filter(source)
        try:
            ra = a([]).returned
        except EcodeRuntimeError:
            with pytest.raises(EcodeRuntimeError):
                b([])
            return
        assert same(b([]).returned, ra)
        assert same(a([]).returned, ra)  # re-running is side-effect free


class TestFilterVsParameterEquivalence:
    @SETTINGS
    @given(st.floats(min_value=0.01, max_value=1e6),
           st.floats(min_value=0.01, max_value=1e6))
    def test_differential_filter_matches_change_threshold(self, value,
                                                          last):
        """An E-code 15% differential filter agrees with the built-in
        ChangeThreshold parameter on every (value, last_sent) pair."""
        source = """
        {
            if (input[0].value > input[0].last_value_sent * 1.15 ||
                input[0].value < input[0].last_value_sent * 0.85) {
                output[0] = input[0];
            }
        }
        """
        filt = compile_filter(source)
        record = MetricRecord("x", value=value, last_value_sent=last)
        filter_sends = bool(filt([record]).outputs)
        rule_sends = ChangeThreshold(15.0).should_send(value, last)
        # The two formulations agree except exactly on the boundary.
        ratio = abs(value - last) / last
        if abs(ratio - 0.15) > 1e-9:
            assert filter_sends == rule_sends


class TestLoopProperties:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=500))
    def test_loop_iteration_count(self, n):
        src = f"int c = 0; for (int i = 0; i < {n}; i++) c++; return c;"
        result = compile_filter(src)([])
        assert result.returned == n
        assert result.steps == n

    @SETTINGS
    @given(st.integers(min_value=1, max_value=100))
    def test_sum_formula(self, n):
        src = (f"int s = 0; for (int i = 1; i <= {n}; i++) s += i;"
               f"return s;")
        assert compile_filter(src)([]).returned == n * (n + 1) // 2


class TestOutputProperties:
    @SETTINGS
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False),
                    min_size=1, max_size=8))
    def test_copy_all_preserves_values_and_order(self, values):
        records = [MetricRecord(f"m{i}", v)
                   for i, v in enumerate(values)]
        src = (f"for (int i = 0; i < {len(values)}; i++) "
               f"output[i] = input[i];")
        outputs = compile_filter(src)(records).outputs
        assert [o.value for o in outputs] == [r.value for r in records]
        assert [o.name for o in outputs] == [r.name for r in records]
