"""Property tests: E-code parse→unparse→parse round-trip stability.

Random-but-seeded *whole filter programs* (declarations, assignments,
``if``/``for`` statements, output emission) are rendered to source,
normalised through ``unparse(parse(...))`` and checked two ways:

* **syntactic fixed point** — the normalised form re-parses and
  re-renders to exactly itself (no drift, ever);
* **semantic agreement** — the compiled original and the compiled
  normalised form produce identical results (return value and emitted
  output records) over a fixed record set, so the unparser cannot
  silently change meaning.

Programs are generated well-typed by construction (no division, all
names predeclared), so every sample compiles and runs cleanly — a
failure is a genuine round-trip bug, not a generator artefact.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecode import MetricRecord, compile_filter, parse, unparse

SETTINGS = settings(max_examples=100, deadline=None)

CONSTS = {"LOADAVG": 0, "FREEMEM": 1, "DISKUSAGE": 2, "CACHE_MISS": 3}

RECORDS = [
    MetricRecord("loadavg", 2.75, last_value_sent=1.5),
    MetricRecord("freemem", 48e6, last_value_sent=52e6),
    MetricRecord("diskusage", 12000.0, last_value_sent=9000.0),
    MetricRecord("cache_miss", 37.0, last_value_sent=35.0),
]

_INT_NAMES = ("a", "b")
_FLOAT_NAMES = ("x", "y")
_METRICS = tuple(CONSTS)
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
#: Division and modulo are deliberately absent: the generated programs
#: must never fault at run time, so a mismatch is always a round-trip
#: bug.
_SAFE_OPS = ("+", "-", "*")

_int_lit = st.integers(min_value=-9, max_value=9)
_float_lit = st.floats(min_value=-100.0, max_value=100.0,
                       allow_nan=False, allow_infinity=False)


def _int_exprs(depth: int):
    leaf = st.one_of(_int_lit.map(str), st.sampled_from(_INT_NAMES))
    if depth == 0:
        return leaf
    sub = _int_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, st.sampled_from(_SAFE_OPS), sub)
          .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        # Parenthesise the operand: "-(-1)" stays two tokens and never
        # lexes as the decrement operator "--".
        sub.map(lambda e: f"(-({e}))"),
    )


def _float_exprs(depth: int):
    leaf = st.one_of(
        _float_lit.map(lambda v: repr(float(v))),
        st.sampled_from(_FLOAT_NAMES),
        st.sampled_from(_METRICS).map(lambda m: f"input[{m}].value"),
        st.sampled_from(_METRICS)
          .map(lambda m: f"input[{m}].last_value_sent"),
    )
    if depth == 0:
        return leaf
    sub = _float_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, st.sampled_from(_SAFE_OPS), sub)
          .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    )


def _conditions():
    num = st.one_of(_int_exprs(1), _float_exprs(1))
    simple = st.tuples(num, st.sampled_from(_CMP_OPS), num) \
        .map(lambda t: f"({t[0]} {t[1]} {t[2]})")
    return st.one_of(
        simple,
        st.tuples(simple, st.sampled_from(("&&", "||")), simple)
          .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        simple.map(lambda c: f"(!{c})"),
    )


def _statements(depth: int):
    assign_int = st.tuples(st.sampled_from(_INT_NAMES), _int_exprs(2)) \
        .map(lambda t: f"{t[0]} = {t[1]};")
    assign_float = st.tuples(st.sampled_from(_FLOAT_NAMES),
                             _float_exprs(2)) \
        .map(lambda t: f"{t[0]} = {t[1]};")
    emit = st.sampled_from(_METRICS) \
        .map(lambda m: f"output[n] = input[{m}]; n = n + 1;")
    options = [assign_int, assign_float, emit]
    if depth > 0:
        block = st.lists(_statements(depth - 1), min_size=1, max_size=3) \
            .map(lambda stmts: " ".join(stmts))
        # Loop bodies are straight-line only (depth 0): every loop
        # shares the counter `i`, so a nested `for` would reset the
        # outer counter and loop forever.
        flat = st.lists(st.one_of(assign_int, assign_float, emit),
                        min_size=1, max_size=3) \
            .map(lambda stmts: " ".join(stmts))
        options.append(
            st.tuples(_conditions(), block)
              .map(lambda t: f"if ({t[0]}) {{ {t[1]} }}"))
        options.append(
            st.tuples(_conditions(), block, block)
              .map(lambda t: f"if ({t[0]}) {{ {t[1]} }} "
                             f"else {{ {t[2]} }}"))
        options.append(
            st.tuples(st.integers(min_value=0, max_value=4), flat)
              .map(lambda t: f"for (i = 0; i < {t[0]}; i = i + 1) "
                             f"{{ {t[1]} }}"))
    return st.one_of(options)


@st.composite
def programs(draw) -> str:
    a = draw(_int_lit)
    b = draw(_int_lit)
    x = draw(_float_lit)
    y = draw(_float_lit)
    body = " ".join(draw(
        st.lists(_statements(2), min_size=1, max_size=6)))
    return (
        "{ "
        f"int i = 0; int n = 0; int a = {a}; int b = {b}; "
        f"double x = {float(x)!r}; double y = {float(y)!r}; "
        f"{body} "
        "return ((x + y) + (a + b)); "
        "}"
    )


#: Fixed keyed table for sketch/keyed programs: three per-process rows
#: ``(pid, cpu, mem, io)`` with distinct power-of-two CPU weights so
#: top-K membership is never a tie-break accident.
KEYED = [
    (101, 0.5, 1e6, 10.0),
    (102, 0.25, 2e6, 5.0),
    (103, 0.125, 5e5, 1.0),
]

_KEYED_IDX = ("0", "1", "2")


def _sketch_statements():
    """Statements exercising the sketch/keyed builtins, fault-free by
    construction (weights through ``fabs``, ranks guarded by size)."""
    idx = st.sampled_from(_KEYED_IDX)
    key = st.one_of(_int_exprs(1),
                    idx.map(lambda i: f"proc_pid({i})"))
    weight = st.one_of(
        _float_exprs(1).map(lambda e: f"fabs({e})"),
        idx.map(lambda i: f"proc_cpu({i})"),
        idx.map(lambda i: f"proc_mem({i})"),
        idx.map(lambda i: f"proc_io({i})"),
    )
    cms_add = st.tuples(key, weight) \
        .map(lambda t: f"x = cms_add(c, {t[0]}, {t[1]});")
    cms_est = key.map(lambda k: f"y = cms_estimate(c, {k});")
    cms_total = st.just("x = cms_total(c);")
    offer = st.tuples(key, weight) \
        .map(lambda t: f"a = topk_offer(t, {t[0]}, {t[1]});")
    size = st.just("b = topk_size(t);")
    ranked = st.just(
        "if (topk_size(t) > 0) "
        "{ a = topk_key(t, 0); y = topk_weight(t, 0); }")
    ctr = st.tuples(key, weight) \
        .map(lambda t: f"x = ctr_add(g, {t[0]}, {t[1]});")
    emit = st.tuples(key, weight) \
        .map(lambda t: f"a = emit({t[0]}, {t[1]});")
    nproc = st.just("b = nproc();")
    return st.one_of(cms_add, cms_est, cms_total, offer, size, ranked,
                     ctr, emit, nproc)


@st.composite
def sketch_programs(draw) -> str:
    """Whole filter programs mixing classic and sketch statements."""
    a = draw(_int_lit)
    x = draw(_float_lit)
    stmts = draw(st.lists(
        st.one_of(_statements(1), _sketch_statements()),
        min_size=1, max_size=8))
    return (
        "{ "
        f"int i = 0; int n = 0; int a = {a}; int b = 0; "
        f"double x = {float(x)!r}; double y = 0.0; "
        "int c = cms_new(64, 2, 7); "
        "int t = topk_new(2); "
        "int g = ctr_new(1); "
        f"{' '.join(stmts)} "
        "return (((x + y) + a) + cms_total(c)); "
        "}"
    )


def normalize(src: str) -> str:
    return unparse(parse(src))


def run(src: str):
    return compile_filter(src, constants=CONSTS)(list(RECORDS))


def run_keyed(src: str):
    """Fresh compile per call: sketch state starts empty every time."""
    compiled = compile_filter(src, constants=CONSTS)
    return compiled.run(list(RECORDS), keyed=list(KEYED))


class TestRoundTripStability:
    @SETTINGS
    @given(programs())
    def test_normal_form_is_a_fixed_point(self, src):
        """parse→unparse→parse→unparse lands where one pass landed."""
        once = normalize(src)
        assert normalize(once) == once

    @SETTINGS
    @given(programs())
    def test_compiled_original_and_normalised_agree(self, src):
        """The unparser preserves semantics, not just syntax."""
        original = run(src)
        roundtrip = run(normalize(src))
        assert roundtrip.returned == original.returned
        assert [(o.name, o.value) for o in roundtrip.outputs] \
            == [(o.name, o.value) for o in original.outputs]

    @SETTINGS
    @given(programs())
    def test_second_normalisation_preserves_semantics(self, src):
        """Iterating the round trip never drifts behaviour."""
        form = normalize(normalize(src))
        original = run(src)
        twice = run(form)
        assert twice.returned == original.returned
        assert len(twice.outputs) == len(original.outputs)


class TestSketchRoundTrip:
    """The round-trip properties hold for sketch/keyed programs too."""

    @SETTINGS
    @given(sketch_programs())
    def test_normal_form_is_a_fixed_point(self, src):
        once = normalize(src)
        assert normalize(once) == once

    @SETTINGS
    @given(sketch_programs())
    def test_compiled_original_and_normalised_agree(self, src):
        """Sketch state, emissions and return value all survive the
        unparser (both sides start from a fresh sketch space)."""
        original = run_keyed(src)
        roundtrip = run_keyed(normalize(src))
        assert roundtrip.returned == original.returned
        assert roundtrip.emitted == original.emitted
        assert [(o.name, o.value) for o in roundtrip.outputs] \
            == [(o.name, o.value) for o in original.outputs]

    @SETTINGS
    @given(sketch_programs())
    def test_repeated_runs_accumulate_identically(self, src):
        """Two fresh compiles fed the same polls agree poll by poll —
        the persistent sketch state is deterministic, not incidental."""
        first = compile_filter(src, constants=CONSTS)
        second = compile_filter(normalize(src), constants=CONSTS)
        for _ in range(3):
            ra = first.run(list(RECORDS), keyed=list(KEYED))
            rb = second.run(list(RECORDS), keyed=list(KEYED))
            assert rb.returned == ra.returned
            assert rb.emitted == ra.emitted
        assert second.sketch_state() == first.sketch_state()
