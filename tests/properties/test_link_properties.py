"""Property-based tests for the max-min bandwidth allocator."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.link import (ELASTIC_FLOOR_FRACTION, Flow, FlowKind, Link,
                            allocate_rates)

FAST = settings(max_examples=80, deadline=None)


@st.composite
def topologies(draw):
    """Random links plus random flows over subsets of them."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [Link(f"l{i}",
                  draw(st.floats(min_value=1e5, max_value=1e8)))
             for i in range(n_links)]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(n_flows):
        path_ids = draw(st.lists(
            st.integers(0, n_links - 1), min_size=1,
            max_size=n_links, unique=True))
        path = tuple(links[j] for j in path_ids)
        if draw(st.booleans()):
            flows.append(Flow(path=path, kind=FlowKind.FIXED,
                              demand=draw(st.floats(min_value=1e4,
                                                    max_value=2e8))))
        else:
            flows.append(Flow(path=path, kind=FlowKind.ELASTIC,
                              remaining=1e6))
    return links, flows


class TestAllocatorProperties:
    @FAST
    @given(topologies())
    def test_rates_non_negative(self, topo):
        _links, flows = topo
        allocate_rates(flows)
        for f in flows:
            assert f.rate >= 0.0

    @FAST
    @given(topologies())
    def test_fixed_flows_never_exceed_demand(self, topo):
        _links, flows = topo
        allocate_rates(flows)
        for f in flows:
            if f.kind is FlowKind.FIXED:
                assert f.rate <= f.demand * (1 + 1e-9)

    @FAST
    @given(topologies())
    def test_no_link_oversubscribed(self, topo):
        """Allocated rates never exceed link capacity (modulo the
        explicit starvation floor for elastic flows)."""
        links, flows = topo
        allocate_rates(flows)
        for link in links:
            used = sum(f.rate for f in flows if link in f.path)
            slack = ELASTIC_FLOOR_FRACTION * link.capacity * sum(
                1 for f in flows
                if link in f.path and f.kind is FlowKind.ELASTIC)
            assert used <= link.capacity + slack + 1e-6

    @FAST
    @given(topologies())
    def test_elastic_floor_guarantee(self, topo):
        """Every elastic flow gets at least its floor rate."""
        _links, flows = topo
        allocate_rates(flows)
        for f in flows:
            if f.kind is FlowKind.ELASTIC:
                floor = ELASTIC_FLOOR_FRACTION * min(
                    l.capacity for l in f.path)
                assert f.rate >= floor * (1 - 1e-9)

    @FAST
    @given(topologies())
    def test_deterministic(self, topo):
        """Same input, same allocation."""
        _links, flows = topo
        allocate_rates(flows)
        first = [f.rate for f in flows]
        allocate_rates(flows)
        assert [f.rate for f in flows] == first

    @FAST
    @given(st.integers(min_value=1, max_value=10),
           st.floats(min_value=1e5, max_value=1e8))
    def test_equal_flows_share_equally(self, n, capacity):
        link = Link("l", capacity)
        flows = [Flow(path=(link,), kind=FlowKind.ELASTIC,
                      remaining=1e6) for _ in range(n)]
        allocate_rates(flows)
        expected = max(capacity / n,
                       ELASTIC_FLOOR_FRACTION * capacity)
        for f in flows:
            assert abs(f.rate - expected) < 1e-6 * capacity
