"""Property-based tests for the live wire codec's framing layer.

The invariant under test is the transport's whole correctness story:
any sequence of events, grouped into BATCH super-frames any way the
sender likes and delivered in any chunking the kernel likes, decodes
to exactly the original events in order.  (The batching/backpressure
machinery only ever changes *grouping* and *chunking* — never
content — so this is the property that makes it safe.)
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.dproc import MetricId  # noqa: E402
from repro.errors import ChannelError  # noqa: E402
from repro.kecho.event import ChannelEvent  # noqa: E402
from repro.live.codec import (FrameDecoder, decode_frame,  # noqa: E402
                              encode_batch, encode_frame)

FAST = settings(max_examples=60, deadline=None)

_values = st.floats(min_value=-1e12, max_value=1e12,
                    allow_nan=False, width=64)


@st.composite
def events(draw):
    """Monitor, control-ish JSON, or arbitrary JSON payload events."""
    which = draw(st.integers(0, 2))
    source = draw(st.text(min_size=1, max_size=8))
    channel = draw(st.text(min_size=1, max_size=12))
    if which == 0:
        metrics = {MetricId(m): (draw(_values), draw(_values))
                   for m in draw(st.lists(
                       st.sampled_from([int(m) for m in MetricId]),
                       max_size=4, unique=True))}
        payload = {"host": source, "metrics": metrics}
        if draw(st.booleans()):
            # Zero-row sections decode to absent keys by design, so
            # only a non-empty table is expected to round-trip.
            payload["proc_top"] = {
                pid: draw(_values)
                for pid in draw(st.lists(st.integers(0, 2**31),
                                         min_size=1, max_size=3,
                                         unique=True))}
    elif which == 1:
        payload = draw(st.dictionaries(
            st.text(max_size=6),
            st.one_of(st.integers(-2**31, 2**31), st.text(max_size=8),
                      st.booleans(), st.none()),
            max_size=4))
    else:
        payload = draw(st.lists(
            st.one_of(st.integers(-100, 100), st.text(max_size=4)),
            max_size=5))
    return ChannelEvent(channel=channel, source=source,
                        payload=payload, size=draw(_values),
                        submitted_at=draw(_values))


@st.composite
def coalesced_streams(draw):
    """Events, a random grouping into batches, a random chunking."""
    evs = draw(st.lists(events(), min_size=1, max_size=12))
    frames = [encode_frame(f"t{i}", ev) for i, ev in enumerate(evs)]
    wire = bytearray()
    i = 0
    while i < len(frames):
        group = draw(st.integers(1, len(frames) - i))
        if group == 1 and draw(st.booleans()):
            wire.extend(frames[i])            # sent as itself
        else:
            wire.extend(encode_batch(frames[i:i + group]))
        i += group
    cuts = sorted(draw(st.lists(
        st.integers(1, max(1, len(wire) - 1)), max_size=8)))
    chunks, prev = [], 0
    for cut in cuts + [len(wire)]:
        if cut > prev:
            chunks.append(bytes(wire[prev:cut]))
            prev = cut
    return evs, chunks


def _normalize(event: ChannelEvent):
    return (event.channel, event.source, event.payload,
            event.size, event.submitted_at)


class TestCoalescedRoundTrip:
    @FAST
    @given(coalesced_streams())
    def test_any_grouping_any_chunking_roundtrips(self, case):
        evs, chunks = case
        decoder = FrameDecoder()
        bodies = []
        for chunk in chunks:
            bodies.extend(decoder.feed(chunk))
        decoder.finish()
        assert len(bodies) == len(evs)
        for i, (body, original) in enumerate(zip(bodies, evs)):
            tag, decoded = decode_frame(body)
            assert tag == f"t{i}"
            assert _normalize(decoded) == _normalize(original)

    @FAST
    @given(coalesced_streams())
    def test_interrupted_stream_resumes_without_phantoms(self, case):
        """A cut mid-stream yields only genuine prefix frames, and
        feeding the remainder completes the run losslessly."""
        evs, chunks = case
        wire = b"".join(chunks)
        cut = len(wire) // 2
        decoder = FrameDecoder()
        bodies = decoder.feed(wire[:cut])
        assert len(bodies) <= len(evs)
        for body, original in zip(bodies, evs):
            _, decoded = decode_frame(body)
            assert _normalize(decoded) == _normalize(original)
        bodies.extend(decoder.feed(wire[cut:]))
        decoder.finish()
        assert len(bodies) == len(evs)

    @FAST
    @given(coalesced_streams())
    def test_eof_inside_a_frame_is_an_error(self, case):
        evs, chunks = case
        wire = b"".join(chunks)
        decoder = FrameDecoder()
        decoder.feed(wire[:len(wire) - 1])
        with pytest.raises(ChannelError):
            decoder.finish()
