"""Property-based tests for the simulation kernel invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CPU, Environment, Store
from repro.sim.trace import EwmaLoad, WindowAverage

# Keep the DES property runs snappy.
FAST = settings(max_examples=60, deadline=None)


delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)


class TestEventLoopProperties:
    @FAST
    @given(delays)
    def test_events_fire_in_time_order(self, ds):
        """Callbacks always observe a non-decreasing clock."""
        env = Environment()
        fired: list[float] = []
        for d in ds:
            env.timeout(d).add_callback(lambda _e: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ds)

    @FAST
    @given(delays)
    def test_clock_ends_at_latest_event(self, ds):
        env = Environment()
        for d in ds:
            env.timeout(d)
        env.run()
        assert env.now == max(ds)

    @FAST
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
    def test_same_time_events_fifo(self, tags):
        """Events scheduled for the same instant process in schedule
        order."""
        env = Environment()
        fired: list[int] = []
        for tag in tags:
            env.timeout(1.0).add_callback(
                lambda _e, t=tag: fired.append(t))
        env.run()
        assert fired == tags


class TestCpuProperties:
    @FAST
    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=50.0),   # work
            st.floats(min_value=0.0, max_value=10.0)),   # arrival
        min_size=1, max_size=15),
        st.integers(min_value=1, max_value=4))
    def test_work_conservation(self, jobs, n_cpus):
        """Total CPU-seconds delivered equals total work requested,
        no matter the arrival pattern or contention."""
        env = Environment()
        cpu = CPU(env, n_cpus=n_cpus, mflops_per_cpu=10.0)
        events = []

        def submit(work, at):
            yield env.timeout(at)
            done = cpu.execute(work)
            events.append(done)
            yield done

        procs = [env.process(submit(w, a)) for w, a in jobs]
        env.run(env.all_of(procs))
        cpu.settle()
        total_work = sum(w for w, _ in jobs)
        delivered = cpu.busy_cpu_seconds * 10.0
        assert abs(delivered - total_work) < 1e-6 * max(1.0, total_work)
        assert all(ev.ok for ev in events)

    @FAST
    @given(st.lists(st.floats(min_value=0.01, max_value=20.0),
                    min_size=2, max_size=10))
    def test_shorter_jobs_finish_no_later(self, works):
        """Under PS, among jobs started together, less work never
        finishes later."""
        env = Environment()
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=5.0)
        finish: dict[int, float] = {}
        for i, w in enumerate(works):
            cpu.execute(w).add_callback(
                lambda _e, i=i: finish.setdefault(i, env.now))
        env.run()
        order = sorted(range(len(works)), key=lambda i: works[i])
        times = [finish[i] for i in order]
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))


class TestStoreProperties:
    @FAST
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    def test_fifo_preserves_sequence(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                got = yield store.get()
                received.append(got)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == items


class TestTraceProperties:
    @FAST
    @given(st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False), min_size=1, max_size=50),
        st.floats(min_value=0.5, max_value=100.0))
    def test_window_average_matches_numpy_mean(self, values, window):
        """With all samples inside the window, the running average is
        the arithmetic mean."""
        w = WindowAverage(window)
        # Pack all samples into a span strictly smaller than window.
        dt = window / (len(values) + 1)
        for i, v in enumerate(values):
            w.record(i * dt * 0.99, v)
        expected = sum(values) / len(values)
        assert abs(w.value - expected) <= 1e-9 * max(
            1.0, abs(expected)) + 1e-9

    @FAST
    @given(st.lists(st.floats(min_value=0.0, max_value=64.0),
                    min_size=1, max_size=50))
    def test_ewma_bounded_by_observations(self, samples):
        """The load averages never leave [0, max(observations)]."""
        load = EwmaLoad()
        for i, s in enumerate(samples):
            load.update(i * 5.0, s)
        for value in load.as_tuple():
            assert -1e-9 <= value <= max(samples) + 1e-9
