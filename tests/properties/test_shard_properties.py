"""Property-based tests for the shard partitioner and lookahead rules."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError, SchedulingError, ShardError
from repro.sim import Environment, WindowScheduler, partition_nodes, \
    partition_placement
from repro.sim.topology import DEFAULT_SHARD_LOOKAHEAD

FAST = settings(max_examples=60, deadline=None)

host_counts = st.integers(min_value=1, max_value=60)
worker_counts = st.integers(min_value=1, max_value=9)


def _names(n: int) -> list[str]:
    return [f"h{i:03d}" for i in range(n)]


class TestFlatPartitionProperties:
    @FAST
    @given(host_counts, worker_counts)
    def test_every_host_in_exactly_one_shard(self, n, workers):
        names = _names(n)
        plan = partition_nodes(names, workers)
        seen = [h for shard in plan.shards for h in shard]
        assert sorted(seen) == sorted(names)
        assert len(seen) == len(set(seen)) == n
        plan.validate(names)
        for host in names:
            assert host in plan.shards[plan.shard_of(host)]

    @FAST
    @given(host_counts, worker_counts)
    def test_shards_balanced_and_clamped(self, n, workers):
        plan = partition_nodes(_names(n), workers)
        assert plan.n_shards == min(workers, n)
        sizes = [len(s) for s in plan.shards]
        assert max(sizes) - min(sizes) <= 1
        assert all(sizes)

    @FAST
    @given(host_counts, worker_counts)
    def test_partition_is_deterministic(self, n, workers):
        names = _names(n)
        assert partition_nodes(names, workers) == \
            partition_nodes(names, workers)


#: A random two-level switch graph: switches with latency-weighted
#: trunks, hosts placed on switches.
@st.composite
def switch_topologies(draw):
    n_switches = draw(st.integers(min_value=1, max_value=8))
    switches = [f"s{i}" for i in range(n_switches)]
    graph = nx.Graph()
    graph.add_nodes_from(switches)
    for i in range(1, n_switches):
        # Connected: each switch links to an earlier one.
        peer = draw(st.integers(min_value=0, max_value=i - 1))
        latency = draw(st.floats(min_value=1e-5, max_value=0.1,
                                 allow_nan=False))
        graph.add_edge(switches[i], switches[peer], latency=latency)
    n_hosts = draw(st.integers(min_value=n_switches, max_value=40))
    placement = {f"h{i:03d}": switches[draw(st.integers(
        min_value=0, max_value=n_switches - 1))]
        for i in range(n_hosts)}
    return graph, placement


class TestPlacementPartitionProperties:
    @FAST
    @given(switch_topologies(), worker_counts)
    def test_hosts_covered_and_switches_kept_together(self, topo,
                                                      workers):
        graph, placement = topo
        plan = partition_placement(graph, placement, workers)
        seen = [h for shard in plan.shards for h in shard]
        assert sorted(seen) == sorted(placement)
        # Hosts sharing a switch never straddle a shard boundary.
        for host, switch in placement.items():
            peers = [h for h, s in placement.items() if s == switch]
            assert {plan.shard_of(p) for p in peers} == \
                {plan.shard_of(host)}

    @FAST
    @given(switch_topologies(), worker_counts)
    def test_cut_edges_are_exactly_the_inter_shard_trunks(self, topo,
                                                          workers):
        graph, placement = topo
        plan = partition_placement(graph, placement, workers)
        switch_shard = {s: plan.shard_of(hosts[0])
                        for s in graph.nodes
                        for hosts in [[h for h, sw in placement.items()
                                       if sw == s]]
                        if hosts}
        expected = sorted(
            (u, v) for u, v in graph.edges
            if u in switch_shard and v in switch_shard
            and switch_shard[u] != switch_shard[v])
        assert sorted(plan.cut_edges) == expected

    @FAST
    @given(switch_topologies(), worker_counts)
    def test_lookahead_never_exceeds_min_cut_latency(self, topo,
                                                     workers):
        graph, placement = topo
        plan = partition_placement(graph, placement, workers)
        cut_latencies = [graph.edges[e]["latency"]
                         for e in plan.cut_edges]
        if cut_latencies:
            assert plan.lookahead == pytest.approx(min(cut_latencies))
        else:
            assert plan.lookahead == DEFAULT_SHARD_LOOKAHEAD

    @FAST
    @given(switch_topologies(), worker_counts)
    def test_min_lookahead_floor_raises_instead_of_thrashing(
            self, topo, workers):
        graph, placement = topo
        plan = partition_placement(graph, placement, workers)
        if plan.cut_edges:
            with pytest.raises(NetworkError):
                partition_placement(graph, placement, workers,
                                    min_lookahead=plan.lookahead * 2)


lookaheads = st.floats(min_value=1e-6, max_value=1.0,
                       allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestLookaheadProperties:
    @FAST
    @given(lookaheads, times, times)
    def test_admissible_iff_arrival_respects_lookahead(self, la,
                                                       send, delta):
        sched = WindowScheduler(la, 1e9)
        arrival = send + delta
        assert sched.admissible(send, arrival) == (delta >= la)

    @FAST
    @given(lookaheads, times,
           st.lists(times, max_size=8), st.lists(times, max_size=8))
    def test_barrier_moves_and_respects_bounds(self, la, horizon_pad,
                                               peeks, arrivals):
        now = min(peeks + arrivals, default=0.0)
        horizon = now + horizon_pad + 1.0
        sched = WindowScheduler(la, horizon)
        barrier = sched.next_barrier(now, peeks, arrivals)
        assert barrier > now
        assert barrier <= horizon
        activity = min(peeks + arrivals, default=None)
        if activity is not None:
            # Conservative: never past the earliest activity plus L.
            assert barrier <= max(now, activity) + la

    @FAST
    @given(lookaheads)
    def test_scheduler_rejects_nonpositive_windows(self, la):
        with pytest.raises(SchedulingError):
            WindowScheduler(0.0, 10.0)
        with pytest.raises(SchedulingError):
            WindowScheduler(la, 0.0)

    @FAST
    @given(st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
           st.floats(min_value=1e-6, max_value=10.0, allow_nan=False))
    def test_router_rejects_arrivals_before_now(self, now, early):
        """A cross-shard event must never land in a shard's past."""
        from repro.sim.shard import ShardRouter
        plan = partition_nodes(_names(4), 2)
        env = Environment()
        env.run(until=now)
        router = ShardRouter(env, plan, 0)
        arrival = now - min(early, now) - 1e-9
        envelope = (arrival, 1, 0, plan.shards[0][0], b"")
        with pytest.raises(ShardError):
            router.inject([envelope])
