"""Property tests for the streaming-sketch primitives.

The guarantees the E-code stdlib advertises, checked over generated
workloads:

* **count-min never under-counts** — for every key, the estimate is at
  least the true accumulated weight (the sketch only merges keys,
  never loses weight);
* **count-min over-counts within ε·N** — with width ``w`` the estimate
  exceeds the truth by at most ``(e / w) · N`` where ``N`` is the total
  weight in the sketch (the classic Cormode–Muthukrishnan bound; with
  width 1024, depth 5 and ≤ 30 distinct keys the probability of the
  bound failing is ~1e-9 per query, and ``derandomize=True`` pins the
  examples, so this is deterministic in practice);
* **top-K matches the exact answer** — when each key is offered its
  exact cumulative weight and the k-th / (k+1)-th weights differ, the
  heap's membership equals ``sorted(...)[:k]`` computed naively;
* **same seed ⇒ byte-identical state** — two sketches fed the same
  multiset of updates (in any order) serialise to identical bytes;
* **per-key counters are exact** — no sketching, just bounded maps.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecode import CountMinSketch, KeyCounter, TopK

SETTINGS = settings(max_examples=200, derandomize=True, deadline=None)

WIDTH = 1024
DEPTH = 5

_keys = st.integers(min_value=-2**40, max_value=2**40)
_weights = st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False)
_seeds = st.integers(min_value=0, max_value=2**32 - 1)

#: ≤ 30 distinct keys in a 1024-wide sketch keeps all-rows collisions
#: out of reach; weights per update stay moderate so float rounding
#: cannot eat the bound.
_updates = st.lists(st.tuples(_keys, _weights), min_size=1, max_size=60)


def _totals(updates):
    totals: dict[int, float] = {}
    for key, weight in updates:
        totals[key] = totals.get(key, 0.0) + weight
    return totals


class TestCountMinBounds:
    @SETTINGS
    @given(_updates, _seeds)
    def test_never_undercounts(self, updates, seed):
        cms = CountMinSketch(WIDTH, DEPTH, seed)
        for key, weight in updates:
            cms.add(key, weight)
        for key, true_weight in _totals(updates).items():
            # Tiny relative slack only for float summation order.
            assert cms.estimate(key) >= true_weight * (1 - 1e-9)

    @SETTINGS
    @given(_updates, _seeds)
    def test_overcount_within_epsilon_n(self, updates, seed):
        cms = CountMinSketch(WIDTH, DEPTH, seed)
        for key, weight in updates:
            cms.add(key, weight)
        epsilon = math.e / WIDTH
        total = cms.total
        for key, true_weight in _totals(updates).items():
            assert cms.estimate(key) <= true_weight + epsilon * total

    @SETTINGS
    @given(_updates, _seeds)
    def test_total_is_exact_sum(self, updates, seed):
        cms = CountMinSketch(WIDTH, DEPTH, seed)
        for key, weight in updates:
            cms.add(key, weight)
        exact = sum(w for _, w in updates)
        assert abs(cms.total - exact) <= 1e-9 * max(1.0, exact)

    @SETTINGS
    @given(_updates, _seeds)
    def test_unseen_key_estimates_at_most_epsilon_n(self, updates, seed):
        cms = CountMinSketch(WIDTH, DEPTH, seed)
        for key, weight in updates:
            cms.add(key, weight)
        probe = 2**50 + 1  # outside the generated key range
        assert cms.estimate(probe) <= (math.e / WIDTH) * cms.total


class TestTopKExactness:
    @SETTINGS
    @given(st.dictionaries(_keys, _weights, min_size=1, max_size=30),
           st.integers(min_value=1, max_value=8),
           st.randoms(use_true_random=False))
    def test_membership_matches_exact_sort(self, totals, k, rnd):
        """Offered exact cumulative weights, the heap's members equal
        the naive top-k whenever the boundary weights differ."""
        heap = TopK(k)
        items = list(totals.items())
        rnd.shuffle(items)
        for key, weight in items:
            heap.offer(key, weight)
        exact = sorted(totals.items(), key=lambda p: (-p[1], p[0]))
        if len(exact) > k and exact[k - 1][1] == exact[k][1]:
            return  # tie at the boundary: membership is unspecified
        assert {key for key, _ in heap.items()} \
            == {key for key, _ in exact[:k]}

    @SETTINGS
    @given(st.dictionaries(_keys, _weights, min_size=1, max_size=30),
           st.integers(min_value=1, max_value=8))
    def test_items_sorted_heaviest_first(self, totals, k):
        heap = TopK(k)
        for key, weight in totals.items():
            heap.offer(key, weight)
        items = heap.items()
        assert len(items) == min(k, len(totals))
        assert items == sorted(items, key=lambda p: (-p[1], p[0]))

    @SETTINGS
    @given(st.dictionaries(_keys, _weights, min_size=1, max_size=30),
           st.integers(min_value=1, max_value=8))
    def test_offer_is_increase_key(self, totals, k):
        """Re-offering a smaller weight never downgrades a member."""
        heap = TopK(k)
        for key, weight in totals.items():
            heap.offer(key, weight)
        before = dict(heap.items())
        for key in before:
            heap.offer(key, 0.0)
        assert dict(heap.items()) == before


class TestDeterminism:
    @SETTINGS
    @given(_updates, _seeds)
    def test_same_seed_same_bytes(self, updates, seed):
        """Same seed, same update sequence → byte-identical state."""
        a = CountMinSketch(WIDTH, DEPTH, seed)
        b = CountMinSketch(WIDTH, DEPTH, seed)
        for key, weight in updates:
            a.add(key, weight)
        for key, weight in updates:
            b.add(key, weight)
        assert a.snapshot() == b.snapshot()

    @SETTINGS
    @given(st.lists(st.tuples(_keys,
                              st.integers(min_value=0, max_value=10**6)),
                    min_size=1, max_size=60),
           _seeds, st.randoms(use_true_random=False))
    def test_integer_weights_are_order_invariant(self, updates, seed,
                                                 rnd):
        """With exactly-representable weights the state is a pure
        function of the update *multiset* (float rounding is the only
        reason real-valued updates care about order)."""
        a = CountMinSketch(WIDTH, DEPTH, seed)
        b = CountMinSketch(WIDTH, DEPTH, seed)
        shuffled = list(updates)
        rnd.shuffle(shuffled)
        for key, weight in updates:
            a.add(key, float(weight))
        for key, weight in shuffled:
            b.add(key, float(weight))
        assert a.snapshot() == b.snapshot()

    @SETTINGS
    @given(_updates, _seeds)
    def test_estimates_are_reproducible(self, updates, seed):
        a = CountMinSketch(WIDTH, DEPTH, seed)
        b = CountMinSketch(WIDTH, DEPTH, seed)
        for key, weight in updates:
            assert a.add(key, weight) == b.add(key, weight)


class TestCounterExactness:
    @SETTINGS
    @given(_updates)
    def test_counter_sums_exactly(self, updates):
        counter = KeyCounter(tag=1)
        for key, weight in updates:
            counter.add(key, weight)
        for key, true_weight in _totals(updates).items():
            assert counter.get(key) == true_weight \
                or abs(counter.get(key) - true_weight) \
                <= 1e-9 * max(1.0, true_weight)
