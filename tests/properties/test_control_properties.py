"""Property-based tests for the dproc control plane."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dproc import (MetricId, METRIC_FILES, parse_control_text,
                         ProcFS, ProcFile)
from repro.dproc.params import MetricPolicy, parse_threshold_spec
from repro.errors import ControlSyntaxError, ProcfsError
import pytest

FAST = settings(max_examples=80, deadline=None)

metric_names = st.sampled_from(
    ["*", "cpu", "mem", "disk", "net"]
    + [f for f in METRIC_FILES.values()])


class TestControlFileProperties:
    @FAST
    @given(metric_names,
           st.floats(min_value=0.01, max_value=1e4))
    def test_period_command_round_trip(self, metric, seconds):
        text = f"period {metric} {seconds:g}"
        (msg,) = parse_control_text(text, sender="a", target="b")
        assert msg.metric == metric
        assert float(msg.spec) == pytest.approx(float(f"{seconds:g}"))

    @FAST
    @given(metric_names,
           st.sampled_from(["above", "below"]),
           st.floats(min_value=-1e6, max_value=1e6,
                     allow_nan=False))
    def test_bound_threshold_round_trip(self, metric, kind, bound):
        text = f"threshold {metric} {kind} {bound:g}"
        (msg,) = parse_control_text(text, sender="a", target="b")
        rule = parse_threshold_spec(msg.spec.split())
        # The parsed rule behaves per its definition at the boundary's
        # two sides.
        b = float(f"{bound:g}")
        eps = max(1.0, abs(b)) * 1e-6
        if kind == "above":
            assert rule.should_send(b + eps, None)
            assert not rule.should_send(b - eps, None)
        else:
            assert rule.should_send(b - eps, None)
            assert not rule.should_send(b + eps, None)

    @FAST
    @given(st.lists(st.sampled_from(
        ["period cpu 2", "threshold mem below 5e7",
         "clear disk period", "threshold * change 15",
         "# comment", ""]), min_size=1, max_size=8))
    def test_multi_command_count(self, lines):
        text = "\n".join(lines)
        real = [ln for ln in lines
                if ln and not ln.startswith("#")]
        if not real:
            with pytest.raises(ControlSyntaxError):
                parse_control_text(text, "a", "b")
        else:
            msgs = parse_control_text(text, "a", "b")
            assert len(msgs) == len(real)

    @FAST
    @given(st.text(alphabet="abcdefgh *0123456789", min_size=1,
                   max_size=30))
    def test_garbage_never_crashes(self, text):
        """Arbitrary input either parses or raises ControlSyntaxError —
        never any other exception."""
        try:
            parse_control_text(text, "a", "b")
        except ControlSyntaxError:
            pass


class TestThresholdProperties:
    @FAST
    @given(st.floats(min_value=0.01, max_value=1e6),
           st.floats(min_value=0.01, max_value=1e6),
           st.floats(min_value=1.0, max_value=99.0))
    def test_change_threshold_scale_invariant(self, value, last, pct):
        """Percentage-change decisions are invariant under rescaling
        both readings (they are ratios)."""
        from repro.dproc.params import ChangeThreshold
        rule = ChangeThreshold(pct)
        for scale in (10.0, 0.001):
            assert rule.should_send(value, last) \
                == rule.should_send(value * scale, last * scale)

    @FAST
    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=0.0, max_value=1e3),
           st.floats(min_value=-1e6, max_value=1e6))
    def test_range_membership(self, lo, width, value):
        from repro.dproc.params import RangeThreshold
        rule = RangeThreshold(lo, lo + width)
        assert rule.should_send(value, None) \
            == (lo <= value <= lo + width)

    @FAST
    @given(st.floats(min_value=0.1, max_value=1e4),
           st.lists(st.floats(min_value=0.0, max_value=1e4),
                    min_size=1, max_size=20))
    def test_period_limits_send_rate(self, period, gaps):
        """A policy with period P never approves two sends closer
        than P."""
        policy = MetricPolicy()
        policy.set_period(period)
        now = 0.0
        last_sent_at = None
        for gap in gaps:
            now += gap
            if policy.should_send(1.0, now, 1.0, last_sent_at):
                if last_sent_at is not None:
                    assert now - last_sent_at >= period * (1 - 1e-6)
                last_sent_at = now


class TestProcfsProperties:
    names = st.text(alphabet="abcdefgh123", min_size=1, max_size=8)

    @FAST
    @given(st.lists(st.tuples(names, names, names),
                    min_size=1, max_size=10, unique=True))
    def test_mount_read_roundtrip(self, triples):
        fs = ProcFS()
        mounted = {}
        for a, b, c in triples:
            path = f"/{a}/{b}/{c}"
            if path in mounted:
                continue
            content = f"{a}-{b}-{c}\n"
            try:
                fs.mount(path, ProcFile(lambda s=content: s))
            except ProcfsError:
                continue  # conflicting prefix; acceptable outcome
            mounted[path] = content
        for path, content in mounted.items():
            assert fs.read(path) == content
            assert fs.exists(path)

    @FAST
    @given(names, names)
    def test_listdir_contains_mounted_children(self, parent, child):
        fs = ProcFS()
        fs.mount(f"/{parent}/{child}", ProcFile(lambda: ""))
        assert child in fs.listdir(f"/{parent}")
