"""Stream-fed dtop: consumer-group feeding and the row-union fix."""

from __future__ import annotations

from repro.dproc import MetricId
from repro.stream import StreamBroker, StreamTop


def submit(broker, source, t, records):
    broker.stream("dproc.monitor").append(
        kind="submit", source=source, dest="", time=t,
        submitted_at=t, size=100.0, targets=("other",),
        records=tuple(records))


def deliver(broker, source, dest, t):
    broker.stream("dproc.monitor").append(
        kind="deliver", source=source, dest=dest, time=t,
        submitted_at=t - 0.01, size=100.0)


class TestRowUnion:
    def test_hosts_with_only_disk_or_net_metrics_keep_a_row(self):
        """Regression: the old snapshot dtop keyed rows on the
        load/freemem snapshots and silently dropped hosts that had
        reported only disk or network data."""
        broker = StreamBroker()
        submit(broker, "alan", 1.0,
               [(int(MetricId.LOADAVG), 0.5, 1.0)])
        submit(broker, "etna", 1.1,
               [(int(MetricId.FREEMEM), 2.0**28, 1.1)])
        submit(broker, "disko", 1.2,
               [(int(MetricId.DISKUSAGE), 3.5, 1.2)])
        submit(broker, "netty", 1.3,
               [(int(MetricId.NET_BANDWIDTH), 1e7, 1.3)])
        top = StreamTop(broker)
        top.feed(now=2.0)
        assert [r.host for r in top.rows()] \
            == ["alan", "disko", "etna", "netty"]
        table = top.render(now=2.0)
        for host in ("alan", "disko", "etna", "netty"):
            assert host in table

    def test_partial_metrics_render_as_nan_not_crash(self):
        broker = StreamBroker()
        submit(broker, "disko", 1.0,
               [(int(MetricId.DISKUSAGE), 3.5, 1.0)])
        top = StreamTop(broker)
        top.feed()
        row = top.rows()[0]
        assert row.value(MetricId.LOADAVG) is None
        assert row.value(MetricId.DISKUSAGE) == 3.5
        assert "nan" in top.render()


class TestFeeding:
    def test_feed_applies_submits_and_acks(self):
        broker = StreamBroker()
        submit(broker, "alan", 1.0,
               [(int(MetricId.LOADAVG), 0.5, 1.0)])
        deliver(broker, "alan", "maui", 1.01)
        top = StreamTop(broker)
        assert top.feed(now=2.0) == 1  # only the submit applies
        assert top.events_consumed == 2  # but both were consumed
        assert top.group.pending_for() == {}  # and acked

    def test_second_feed_never_double_counts(self):
        broker = StreamBroker()
        submit(broker, "alan", 1.0,
               [(int(MetricId.LOADAVG), 0.5, 1.0)])
        top = StreamTop(broker)
        top.feed()
        assert top.feed() == 0
        submit(broker, "alan", 2.0,
               [(int(MetricId.LOADAVG), 0.7, 2.0)])
        assert top.feed() == 1
        row = top.rows()[0]
        assert row.events == 2
        assert row.value(MetricId.LOADAVG) == 0.7

    def test_latest_value_wins_and_age_tracks(self):
        broker = StreamBroker()
        submit(broker, "alan", 1.0,
               [(int(MetricId.FREEMEM), 100.0, 1.0)])
        submit(broker, "alan", 5.0,
               [(int(MetricId.FREEMEM), 200.0, 5.0)])
        top = StreamTop(broker)
        top.feed(now=6.0)
        row = top.rows()[0]
        assert row.value(MetricId.FREEMEM) == 200.0
        assert row.last_seen == 5.0

    def test_aggregates(self):
        broker = StreamBroker()
        submit(broker, "a", 1.0, [(int(MetricId.LOADAVG), 1.0, 1.0),
                                  (int(MetricId.FREEMEM), 10.0, 1.0)])
        submit(broker, "b", 1.0, [(int(MetricId.LOADAVG), 3.0, 1.0),
                                  (int(MetricId.FREEMEM), 30.0, 1.0)])
        top = StreamTop(broker)
        top.feed()
        assert top.mean(MetricId.LOADAVG) == 2.0
        assert top.total(MetricId.FREEMEM) == 40.0
        assert top.least_loaded() == "a"
        assert top.most_free_memory() == "b"
