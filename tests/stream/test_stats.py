"""Stats-by-replay: recomputed summaries must match live telemetry."""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.stream import replay_stats, verify_stats


@pytest.fixture(scope="module")
def ran():
    return Scenario(nodes=6, seed=13).with_stream().run(8.0)


class TestReplayStats:
    def test_channel_summary_shape(self, ran):
        stats = replay_stats(ran.stream)
        mon = stats["channels"]["dproc.monitor"]
        assert mon["submits"] > 0
        assert mon["deliveries"] >= mon["submits"]  # fan-out
        assert mon["latency"]["count"] == mon["deliveries"]
        assert mon["latency"]["max"] >= mon["latency"]["mean"] >= 0
        assert stats["total_entries"] == ran.stream.total_entries()

    def test_per_source_covers_every_node(self, ran):
        stats = replay_stats(ran.stream)
        assert set(stats["per_source"]) == set(ran.nodes.names)


class TestVerifyStats:
    def test_clean_run_verifies_exactly(self, ran):
        assert verify_stats(ran.stream, ran.runtime.nodes) == []

    def test_faulted_run_verifies_exactly(self):
        def faulty(sc):
            names = sc.nodes.names
            sc.faults.schedule_loss(1.0, 0.4, until=4.0)
            sc.faults.schedule_partition(2.0, [names[:2], names[2:]],
                                         heal_at=5.0)

        scenario = Scenario(nodes=6, seed=21) \
            .with_faults(faulty).with_stream().run(8.0)
        assert verify_stats(scenario.stream,
                            scenario.runtime.nodes) == []

    def test_tampered_counter_is_detected(self):
        scenario = Scenario(nodes=3, seed=2).with_stream().run(4.0)
        node = next(iter(scenario.runtime.nodes))
        node.telemetry.counter("kecho.dproc.monitor.submits").inc(1)
        errors = verify_stats(scenario.stream, scenario.runtime.nodes)
        assert any("submits" in e and node.name in e for e in errors)
