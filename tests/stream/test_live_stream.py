"""The live backend's file-backed stream: JSONL segments on disk."""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.dproc import DMonConfig
from repro.stream import StreamBroker, reconcile, segment_name


@pytest.fixture(scope="module")
def live_run(tmp_path_factory):
    directory = tmp_path_factory.mktemp("live-stream")
    sc = Scenario(nodes=3, seed=11, backend="live",
                  dmon=DMonConfig(poll_interval=0.2)) \
        .with_stream(directory)
    sc.run(2.5)
    return sc, directory


class TestLivePersistence:
    def test_segments_written_and_closed(self, live_run):
        sc, directory = live_run
        seg = directory / segment_name("dproc.monitor")
        assert seg.is_file()
        assert sc.stream.sink.closed  # run() closed the sink
        assert sc.stream.sink.rows_written > 0

    def test_disk_matches_memory(self, live_run):
        sc, directory = live_run
        loaded = StreamBroker.load(directory)
        assert loaded.serialize() == sc.stream.serialize()

    def test_replay_reconciles_against_live_caches(self, live_run):
        sc, directory = live_run
        report = reconcile(StreamBroker.load(directory), sc.dprocs,
                           until=sc.stream.entries(
                               "dproc.monitor")[-1].time,
                           open_window=2.0)
        # Real sockets: nothing may go missing or duplicate, and the
        # remote caches must be exactly what the log delivered.
        assert not report.missing
        assert not report.duplicated
        assert not report.procfs_mismatches
        assert report.delivered > 0
