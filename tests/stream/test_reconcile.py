"""Replay-vs-ground-truth reconciliation, clean and under chaos."""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.harness.chaos import chaos_recovery
from repro.stream import reconcile

#: The pinned golden chaos scenario (ISSUE acceptance): 50 nodes
#: through loss, a partition and a crash+reboot — every missing
#: delivery must be attributed to the fault plane.
GOLDEN_CHAOS = dict(
    nodes=50, seed=11, duration=40.0,
    loss_probability=0.3, loss_start=5.0, loss_end=20.0,
    partition_start=10.0, partition_end=18.0,
    crash_at=12.0, reboot_at=20.0,
    poll_interval=1.0, probe_interval=0.5)


class TestCleanRun:
    @pytest.fixture(scope="class")
    def clean(self):
        scenario = Scenario(nodes=8, seed=3).with_stream().run(10.0)
        return scenario, reconcile(scenario.stream, scenario.dprocs,
                                   until=10.0)

    def test_zero_discrepancies(self, clean):
        _, report = clean
        assert report.ok
        assert not report.missing
        assert not report.duplicated
        assert not report.unexpected
        assert not report.dropped

    def test_every_submit_fully_delivered(self, clean):
        _, report = clean
        assert report.submits > 0
        assert report.delivered + len(report.in_flight) \
            == report.expected
        assert report.local_delivered == report.submits

    def test_procfs_ground_truth_checked(self, clean):
        _, report = clean
        assert report.procfs_checked > 0
        assert not report.procfs_mismatches

    def test_render_and_json(self, clean):
        _, report = clean
        text = report.render()
        assert "missing" in text and "procfs" in text
        doc = report.to_json()
        assert doc["ok"] is True
        assert doc["counts"]["missing"] == 0


class TestGoldenChaos:
    @pytest.fixture(scope="class")
    def report(self):
        return chaos_recovery(stream=True, **GOLDEN_CHAOS)

    def test_zero_unexplained_discrepancies(self, report):
        rec = report.reconciliation
        assert rec is not None and rec.ok
        assert not rec.missing  # every loss attributed, none silent
        assert not rec.duplicated and not rec.unexpected
        assert not rec.procfs_mismatches

    def test_drops_attributed_to_the_fault_plane(self, report):
        rec = report.reconciliation
        assert rec.dropped  # chaos definitely killed deliveries
        assert set(rec.dropped_by_fault) >= {"injected loss",
                                             "partition"}
        assert sum(rec.dropped_by_fault.values()) == len(rec.dropped)

    def test_report_trace_identical_with_stream_off(self, report):
        bare = chaos_recovery(stream=False, **GOLDEN_CHAOS)
        assert bare.trace == report.trace

    def test_per_host_findings_name_metric_files(self, report):
        rec = report.reconciliation
        assert rec.per_host
        metric_names = {name for metrics in rec.per_host.values()
                        for name in metrics}
        assert "loadavg" in metric_names


class TestAttribution:
    def test_crash_drops_carry_the_victim_name(self):
        def faulty(sc):
            sc.faults.schedule_crash(2.0, sc.nodes.names[0])

        scenario = Scenario(nodes=5, seed=9) \
            .with_faults(faulty).with_stream().run(8.0)
        report = reconcile(scenario.stream, scenario.dprocs,
                           until=8.0)
        assert report.ok
        victim = scenario.nodes.names[0]
        assert any(f.startswith("crash") and victim in f
                   for f in report.dropped_by_fault)
