"""File-backed persistence: JSONL segments, dump/load round trips."""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario
from repro.stream import (JsonlSink, StreamBroker, channel_of_segment,
                          dump_broker, load_broker, segment_name)


def small_broker() -> StreamBroker:
    broker = StreamBroker()
    st = broker.stream("dproc.monitor")
    st.append(kind="submit", source="alan", dest="", time=1.0,
              submitted_at=1.0, size=100.0, targets=("maui",),
              local=True, records=((0, 1.5, 1.0),))
    st.append(kind="deliver", source="alan", dest="maui", time=1.1,
              submitted_at=1.0, size=100.0, records=((0, 1.5, 1.0),))
    broker.stream("dproc.control").append(
        kind="drop", source="maui", dest="alan", time=2.0,
        submitted_at=1.9, size=50.0, fault="partition",
        sender_failed=False, summary="control:set")
    return broker


class TestSegmentNames:
    def test_round_trip(self):
        name = segment_name("dproc.monitor")
        assert name == "segment-dproc.monitor.jsonl"
        assert channel_of_segment(
            __import__("pathlib").Path(name)) == "dproc.monitor"

    def test_slashes_made_path_safe(self):
        assert "/" not in segment_name("a/b")


class TestDumpLoad:
    def test_round_trip_preserves_entries(self, tmp_path):
        broker = small_broker()
        paths = dump_broker(broker, tmp_path)
        assert sorted(p.name for p in paths) == [
            "segment-dproc.control.jsonl",
            "segment-dproc.monitor.jsonl"]
        back = load_broker(tmp_path)
        assert back.serialize() == broker.serialize()

    def test_load_regenerates_seqs_after_trim(self, tmp_path):
        broker = small_broker()
        broker.stream("dproc.monitor").trim_to(1)
        broker.dump(tmp_path)
        back = StreamBroker.load(tmp_path)
        st = back.stream("dproc.monitor")
        assert st.first_seq == 1 and len(st) == 1
        assert st.entries()[0].kind == "deliver"

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_broker(tmp_path / "nope")


class TestJsonlSink:
    def test_sink_writes_rows_eagerly(self, tmp_path):
        sink = JsonlSink(tmp_path)
        broker = StreamBroker(sink=sink)
        broker.stream("c")  # creating a stream writes nothing
        broker._append("c", kind="submit", source="s", dest="",
                       time=0.5, submitted_at=0.5, size=1.0)
        assert sink.rows_written == 1
        sink.close()
        sink.close()  # idempotent
        rows = [json.loads(line) for line in
                (tmp_path / segment_name("c")).read_text().splitlines()]
        assert rows[0]["source"] == "s"
        back = load_broker(tmp_path)
        assert back.total_entries() == 1

    def test_closed_sink_ignores_writes(self, tmp_path):
        sink = JsonlSink(tmp_path)
        sink.close()
        sink.write("c", {"seq": 1})
        assert sink.rows_written == 0


class TestScenarioDump:
    def test_sim_run_dump_load_reconciles_offline(self, tmp_path):
        scenario = Scenario(nodes=4, seed=5).with_stream().run(5.0)
        live = scenario.stream
        scenario.stream.dump(tmp_path)
        offline = StreamBroker.load(tmp_path)
        assert offline.serialize() == live.serialize()
        # Replay-only reconciliation (no cluster): still clean.
        from repro.stream import reconcile
        report = reconcile(offline, until=5.0)
        assert report.ok
        assert report.procfs_checked == 0
