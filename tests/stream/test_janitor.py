"""Janitor retention policy: age vs acked state, property-tested."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream import Janitor, StreamBroker


def build_broker(n: int = 20, dt: float = 1.0) -> StreamBroker:
    broker = StreamBroker()
    stream = broker.stream("c")
    for i in range(n):
        stream.append(kind="submit", source="s", dest="",
                      time=i * dt, submitted_at=i * dt, size=1.0)
    return broker


class TestPolicyEdges:
    def test_negative_max_age_rejected(self):
        with pytest.raises(ValueError):
            Janitor(build_broker(), max_age=-1.0)

    def test_no_groups_no_age_trims_nothing(self):
        broker = build_broker(10)
        report = Janitor(broker).run(now=1e9)
        assert report.total == 0
        assert broker.total_entries() == 10

    def test_age_only_trims_exactly_the_old_prefix(self):
        broker = build_broker(10)  # times 0..9
        report = Janitor(broker, max_age=4.0).run(now=9.0)
        # Entries with time <= 9 - 4 = 5 (seqs 1..6) go.
        assert report.removed == {"c": 6}
        assert report.floor == {"c": 6}
        assert broker.stream("c").first_seq == 7

    def test_max_age_zero_is_valid_and_aggressive(self):
        broker = build_broker(5)
        Janitor(broker, max_age=0.0).run(now=10.0)
        assert len(broker.stream("c")) == 0

    def test_ack_only_trims_to_the_group_floor(self):
        broker = build_broker(10)
        grp = broker.group("c", "g")
        grp.read("alice", count=6)
        grp.ack(1, 2, 3, 5)  # 4 unacked blocks everything past 3
        report = Janitor(broker).run(now=1e9)
        assert report.removed == {"c": 3}
        assert broker.stream("c").first_seq == 4

    def test_slowest_group_wins(self):
        broker = build_broker(10)
        fast = broker.group("c", "fast")
        fast.read("a")
        fast.ack(*range(1, 11))
        slow = broker.group("c", "slow")
        slow.read("b", count=2)  # nothing acked: floor 0
        report = Janitor(broker, max_age=0.0).run(now=1e9)
        assert report.total == 0


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    reads=st.integers(min_value=0, max_value=30),
    ack_mask=st.lists(st.booleans(), min_size=30, max_size=30),
    max_age=st.one_of(st.none(),
                      st.floats(min_value=0.0, max_value=40.0,
                                allow_nan=False)),
    now=st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
)
def test_janitor_never_drops_an_unacked_entry(n, reads, ack_mask,
                                              max_age, now):
    """With a consumer group attached, an entry that has been read but
    not acked — or not read at all — survives every janitor pass."""
    broker = build_broker(n)
    grp = broker.group("c", "g")
    got = grp.read("alice", count=reads)
    acked = {e.seq for e, keep in zip(got, ack_mask) if keep}
    grp.ack(*acked)
    unacked = {e.seq for e in broker.stream("c").entries()} - acked

    Janitor(broker, max_age=max_age).run(now=now)

    survived = {e.seq for e in broker.stream("c").entries()}
    assert unacked <= survived


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    max_age=st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
    now=st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
)
def test_age_only_trim_is_exact_without_groups(n, max_age, now):
    """No consumer groups: the janitor removes precisely the entries
    whose age exceeds ``max_age``, oldest-first, and nothing newer."""
    broker = build_broker(n)
    times = {e.seq: e.time for e in broker.stream("c").entries()}
    Janitor(broker, max_age=max_age).run(now=now)
    survived = {e.seq for e in broker.stream("c").entries()}
    expect = {seq for seq, t in times.items() if t > now - max_age}
    assert survived == expect
