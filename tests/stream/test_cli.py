"""``python -m repro.harness stream`` subcommand smoke tests."""

from __future__ import annotations

import json

import pytest

from repro.harness.streamcli import main

FAST = ["--nodes", "4", "--seed", "3", "--duration", "4"]


class TestTail:
    def test_tail_prints_channel_and_entries(self, capsys):
        assert main(["tail", *FAST, "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "dproc.monitor" in out
        assert "deliver" in out

    def test_tail_json(self, capsys):
        assert main(["tail", *FAST, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "dproc.monitor" in doc
        assert doc["dproc.monitor"][0]["seq"] > 0


class TestStats:
    def test_stats_verifies_against_telemetry(self, capsys):
        assert main(["stats", *FAST]) == 0
        out = capsys.readouterr().out
        assert "match the live telemetry" in out

    def test_stats_json(self, capsys):
        assert main(["stats", *FAST, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["channels"]["dproc.monitor"]["submits"] > 0
        assert doc["verification_errors"] == []


class TestReconcile:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["reconcile", *FAST]) == 0
        assert "missing:        0" in capsys.readouterr().out

    def test_faulted_run_attributes_and_exits_zero(self, capsys):
        assert main(["reconcile", "--nodes", "8", "--seed", "11",
                     "--duration", "12", "--faults", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counts"]["missing"] == 0
        assert sum(doc["dropped_by_fault"].values()) \
            == doc["counts"]["dropped"] > 0


class TestTrimAndDumpLoad:
    def test_trim_reports_removed(self, capsys):
        assert main(["trim", *FAST, "--max-age", "1"]) == 0
        assert "trimmed" in capsys.readouterr().out

    def test_dump_then_load_round_trips(self, tmp_path, capsys):
        target = str(tmp_path / "dump")
        assert main(["tail", *FAST, "--dump", target]) == 0
        first = capsys.readouterr().out
        assert main(["tail", "--load", target]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_load_reconciles_without_a_cluster(self, tmp_path,
                                               capsys):
        target = str(tmp_path / "dump")
        main(["tail", *FAST, "--dump", target])
        capsys.readouterr()
        assert main(["reconcile", "--load", target,
                     "--duration", "4"]) == 0


class TestArgs:
    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["vacuum"])
