"""Broker semantics: monotone ids, consumer groups, ring bound."""

from __future__ import annotations

import pytest

from repro.runtime.protocol import EventStream
from repro.stream import (ChannelStream, StreamBroker, StreamEntry,
                          merge_brokers)


def fill(stream: ChannelStream, n: int, t0: float = 0.0) -> None:
    for i in range(n):
        stream.append(kind="submit", source=f"h{i % 3}", dest="",
                      time=t0 + i, submitted_at=t0 + i, size=100.0)


class TestChannelStream:
    def test_monotone_one_based_seqs(self):
        st = ChannelStream("c")
        fill(st, 5)
        assert [e.seq for e in st.entries()] == [1, 2, 3, 4, 5]
        assert st.first_seq == 1 and st.last_seq == 5

    def test_get_is_offset_addressed(self):
        st = ChannelStream("c")
        fill(st, 10)
        st.trim_to(4)
        assert st.get(4) is None
        assert st.get(5).seq == 5
        assert st.get(11) is None
        assert st.first_seq == 5 and st.trimmed == 4

    def test_read_after_and_tail(self):
        st = ChannelStream("c")
        fill(st, 6)
        assert [e.seq for e in st.read_after(3)] == [4, 5, 6]
        assert [e.seq for e in st.read_after(3, count=2)] == [4, 5]
        assert [e.seq for e in st.tail(2)] == [5, 6]
        assert st.tail(0) == []

    def test_max_len_is_a_hard_ring_bound(self):
        st = ChannelStream("c", max_len=4)
        fill(st, 10)
        assert len(st) == 4
        assert st.first_seq == 7 and st.last_seq == 10
        assert st.trimmed == 6

    def test_seqs_keep_rising_past_trims(self):
        st = ChannelStream("c", max_len=2)
        fill(st, 5)
        st.append(kind="submit", source="x", dest="", time=9.0,
                  submitted_at=9.0, size=1.0)
        assert st.last_seq == 6


class TestConsumerGroup:
    def test_read_parks_pending_and_advances_cursor(self):
        st = ChannelStream("c")
        fill(st, 4)
        grp = st.group("g")
        got = grp.read("alice", count=3, now=1.0)
        assert [e.seq for e in got] == [1, 2, 3]
        assert grp.cursor == 3
        assert sorted(grp.pending_for("alice")) == [1, 2, 3]
        # A second read never re-hands-out unacked entries.
        again = grp.read("alice")
        assert [e.seq for e in again] == [4]

    def test_ack_clears_pending(self):
        st = ChannelStream("c")
        fill(st, 3)
        grp = st.group("g")
        grp.read("alice")
        assert grp.ack(1, 2) == 2
        assert grp.ack(1) == 0  # double-ack is a no-op
        assert sorted(grp.pending) == [3]

    def test_acked_floor_tracks_lowest_unacked(self):
        st = ChannelStream("c")
        fill(st, 5)
        grp = st.group("g")
        grp.read("alice")
        assert grp.acked_floor == 0
        grp.ack(1, 2, 4)  # 3 still pending
        assert grp.acked_floor == 2
        grp.ack(3)
        assert grp.acked_floor == 4
        grp.ack(5)
        assert grp.acked_floor == 5 == grp.cursor

    def test_claim_reassigns_stuck_entries(self):
        st = ChannelStream("c")
        fill(st, 3)
        grp = st.group("g")
        grp.read("alice", now=1.0)
        claimed = grp.claim("bob", [2, 3, 99], now=7.0)
        assert [e.seq for e in claimed] == [2, 3]
        assert set(grp.pending_for("bob")) == {2, 3}
        assert set(grp.pending_for("alice")) == {1}
        info = grp.pending[2]
        assert info.delivery_count == 2
        assert info.last_delivered == 7.0

    def test_groups_are_named_and_independent(self):
        st = ChannelStream("c")
        fill(st, 2)
        a = st.group("a")
        assert st.group("a") is a
        b = st.group("b")
        a.read("x")
        assert b.cursor == 0 and not b.pending


class TestStreamBroker:
    def test_satisfies_the_runtime_protocol(self):
        assert isinstance(StreamBroker(), EventStream)

    def test_streams_created_on_demand(self):
        broker = StreamBroker()
        st = broker.stream("dproc.monitor")
        assert broker.stream("dproc.monitor") is st
        assert broker.channels() == ["dproc.monitor"]

    def test_serialize_is_canonical(self):
        a, b = StreamBroker(), StreamBroker()
        for broker in (a, b):
            fill(broker.stream("z"), 3)
            fill(broker.stream("a"), 2)
        assert a.serialize() == b.serialize()
        assert a.serialize().index('"channel":"a"') \
            < a.serialize().index('"channel":"z"')

    def test_max_len_applies_per_channel(self):
        broker = StreamBroker(max_len=3)
        fill(broker.stream("c"), 8)
        assert len(broker.stream("c")) == 3
        assert broker.total_entries() == 3


class TestEntryRoundTrip:
    def test_record_round_trip_preserves_everything(self):
        entry = StreamEntry(
            seq=7, kind="drop", channel="c", source="alan",
            dest="maui", time=3.5, submitted_at=3.25, size=512.0,
            records=((0, 1.5, 3.0),), summary="", targets=("maui",),
            local=True, fault="partition", sender_failed=False)
        back = StreamEntry.from_record(entry.to_record())
        assert back == entry

    def test_defaults_are_omitted_from_records(self):
        entry = StreamEntry(seq=1, kind="submit", channel="c",
                            source="alan", dest="", time=1.0,
                            submitted_at=1.0, size=10.0)
        rec = entry.to_record()
        assert "fault" not in rec and "local" not in rec
        assert StreamEntry.from_record(rec) == entry

    def test_natural_key_and_latency(self):
        entry = StreamEntry(seq=1, kind="deliver", channel="c",
                            source="alan", dest="maui", time=2.0,
                            submitted_at=1.5, size=10.0)
        assert entry.key == ("c", "alan", 1.5)
        assert entry.latency == pytest.approx(0.5)


class TestMergeBrokers:
    def test_merge_orders_by_time_then_shard(self):
        a, b = StreamBroker(), StreamBroker()
        a.stream("c").append(kind="submit", source="s0", dest="",
                             time=1.0, submitted_at=1.0, size=1.0)
        a.stream("c").append(kind="submit", source="s0", dest="",
                             time=3.0, submitted_at=3.0, size=1.0)
        b.stream("c").append(kind="submit", source="s1", dest="",
                             time=1.0, submitted_at=1.0, size=1.0)
        b.stream("c").append(kind="submit", source="s1", dest="",
                             time=2.0, submitted_at=2.0, size=1.0)
        merged = merge_brokers([a, b])
        got = [(e.seq, e.source, e.time) for e in merged.entries("c")]
        # Tie at t=1.0 breaks on shard index; seqs are reassigned.
        assert got == [(1, "s0", 1.0), (2, "s1", 1.0),
                       (3, "s1", 2.0), (4, "s0", 3.0)]
