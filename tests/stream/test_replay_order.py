"""Replay fidelity: stream order equals delivery order, per backend."""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.stream import DELIVER, reconcile


def record_deliveries(scenario: Scenario, log: list) -> None:
    """Subscribe a passive recorder on every node's monitor endpoint.

    The d-mon endpoints already subscribe, so adding a handler changes
    no audience set and stays out of the event schedule.
    """
    def hook(sc):
        for node in sc.runtime.nodes:
            endpoint = sc.dprocs[node.name].dmon._monitor_ep
            endpoint.subscribe(
                lambda e, dest=node.name:
                log.append((dest, e.source, e.submitted_at)))

    scenario.with_setup(hook)


class TestWorkersOne:
    def test_stream_order_equals_handler_delivery_order(self):
        log: list = []
        scenario = Scenario(nodes=6, seed=17).with_stream()
        record_deliveries(scenario, log)
        scenario.run(6.0)
        streamed = [(e.dest, e.source, e.submitted_at)
                    for e in scenario.stream.entries("dproc.monitor")
                    if e.kind == DELIVER]
        # The recorder only sees remote deliveries dispatched to its
        # node's endpoint; the tee sees the same dispatches in the
        # same order (local self-deliveries included in both).
        assert streamed == log

    def test_same_seed_byte_identical_stream(self):
        runs = [Scenario(nodes=6, seed=17).with_stream().run(6.0)
                        .stream.serialize() for _ in range(2)]
        assert runs[0] == runs[1]


class TestWorkersFour:
    @pytest.fixture(scope="class")
    def sharded(self):
        return Scenario(nodes=12, seed=17) \
            .with_stream().with_workers(4, mode="inline").run(6.0)

    def test_same_seed_byte_identical_stream(self, sharded):
        again = Scenario(nodes=12, seed=17) \
            .with_stream().with_workers(4, mode="inline").run(6.0)
        assert again.stream.serialize() == sharded.stream.serialize()

    def test_merged_stream_reconciles_clean(self, sharded):
        report = reconcile(sharded.stream, sharded.dprocs,
                           until=6.0)
        assert report.ok
        assert not report.out_of_order

    def test_per_dest_order_is_preserved_by_the_merge(self, sharded):
        """Each host lives in exactly one shard, so the merged
        per-(dest, source) delivery order must be monotone in
        submission time — the conduit never reorders a flow."""
        last: dict = {}
        for entry in sharded.stream.entries("dproc.monitor"):
            if entry.kind != DELIVER:
                continue
            key = (entry.dest, entry.source)
            assert entry.submitted_at >= last.get(key, -1.0)
            last[key] = entry.submitted_at

    def test_stream_property_is_cached_after_run(self, sharded):
        assert sharded.stream is sharded.stream
