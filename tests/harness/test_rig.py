"""Unit tests for the SmartPointer experiment rig."""

from __future__ import annotations

import pytest

from repro.harness.appbench import (CPU_PROFILE, CPU_RATE,
                                    SmartPointerRig)
from repro.smartpointer import NoAdaptation


class TestRigConstruction:
    def test_node_roles(self, env=None):
        from repro.sim import Environment
        rig = SmartPointerRig.build(NoAdaptation(), CPU_PROFILE,
                                    CPU_RATE)
        names = sorted(rig.cluster.names)
        assert names == ["client", "iperf1", "iperf2", "server"]
        assert rig.cluster["server"].cpu.n_cpus == 4
        assert rig.cluster["client"].cpu.n_cpus == 1
        assert rig.client_node is rig.cluster["client"]

    def test_shared_segment_wires_all_hosts(self):
        rig = SmartPointerRig.build(NoAdaptation(), CPU_PROFILE,
                                    CPU_RATE, shared_segment=True)
        fabric = rig.cluster.fabric
        seg_link = fabric.segments["shared"].link
        # Every pair's path crosses the shared segment.
        path = fabric.path("server", "client")
        assert seg_link in path
        path = fabric.path("iperf1", "iperf2")
        assert seg_link in path

    def test_no_segment_by_default(self):
        rig = SmartPointerRig.build(NoAdaptation(), CPU_PROFILE,
                                    CPU_RATE)
        assert rig.cluster.fabric.segments == {}

    def test_dproc_on_server_and_client_only(self):
        rig = SmartPointerRig.build(NoAdaptation(), CPU_PROFILE,
                                    CPU_RATE)
        dprocs = rig.server.dproc
        assert dprocs is not None
        assert sorted(dprocs.hosts()) == ["client", "server"]

    def test_stream_runs(self):
        rig = SmartPointerRig.build(NoAdaptation(), CPU_PROFILE,
                                    CPU_RATE)
        rig.env.run(until=10.0)
        assert rig.client.processed.total \
            == pytest.approx(10 * CPU_RATE, abs=3)

    def test_client_disk_logging_option(self):
        rig = SmartPointerRig.build(NoAdaptation(), CPU_PROFILE,
                                    CPU_RATE, client_logs_to_disk=True)
        rig.env.run(until=10.0)
        assert rig.cluster["client"].disk.writes.total > 10

    def test_seed_determinism(self):
        def run(seed):
            rig = SmartPointerRig.build(NoAdaptation(), CPU_PROFILE,
                                        CPU_RATE, seed=seed)
            rig.env.run(until=20.0)
            return (rig.client.processed.total,
                    rig.client.latencies.mean())

        assert run(5) == run(5)
        # different seed shifts the d-mon stagger -> different traces
        # are permitted (not asserted) but the rig must still work.
        run(6)
