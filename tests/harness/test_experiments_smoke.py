"""Smoke tests: every figure experiment runs at tiny scale and produces
well-formed, directionally sane results.

The full shape assertions live in benchmarks/ (run with
``pytest benchmarks/ --benchmark-only``); these tests only guarantee
that the experiment definitions stay runnable and structurally sound.
"""

from __future__ import annotations

import pytest

from repro.harness import (EXPERIMENTS, fig4_cpu_perturbation,
                           fig5_network_perturbation,
                           fig6_submission_overhead,
                           fig8_receive_overhead, fig9a_latency_timeline,
                           fig9b_event_rate, fig10_latency_vs_network,
                           fig11_hybrid_monitors, run_experiment)
from repro.harness.microbench import CONFIG_LABELS


class TestMicrobenchSmoke:
    def test_fig4_structure(self):
        result = fig4_cpu_perturbation(nodes=(0, 4), duration=15.0)
        assert [s.label for s in result.series] == list(CONFIG_LABELS)
        for s in result.series:
            assert s.y_at(0) == pytest.approx(17.4, rel=0.05)

    def test_fig5_structure(self):
        result = fig5_network_perturbation(nodes=(0, 2), duration=10.0)
        for s in result.series:
            assert 90 < s.y_at(0) < 100

    def test_fig6_overhead_positive_and_ordered(self):
        result = fig6_submission_overhead(nodes=(2, 4), duration=30.0)
        p1 = result.get("update period=1s")
        p2 = result.get("update period=2s")
        assert p1.y_at(4) > p1.y_at(2) > 0
        assert p2.y_at(4) < p1.y_at(4)

    def test_fig8_single_node_receives_nothing(self):
        result = fig8_receive_overhead(nodes=(1, 2), duration=20.0)
        for s in result.series:
            assert s.y_at(1) == 0.0
            assert s.y_at(2) >= 0.0

    def test_bad_config_mode_rejected(self):
        from repro.harness.microbench import _scenario
        with pytest.raises(ValueError, match="unknown configuration"):
            _scenario(2, "hourly", seed=0).build()


class TestAppbenchSmoke:
    def test_fig9a_series_nonempty(self):
        result = fig9a_latency_timeline(duration=120.0,
                                        thread_interval=60.0,
                                        sample_every=30.0)
        assert len(result.series) == 3
        for s in result.series:
            assert len(s.x) >= 3
            assert all(y >= 0 for y in s.y)

    def test_fig9b_unloaded_rates(self):
        result = fig9b_event_rate(threads=(0,), settle=10.0,
                                  measure=20.0)
        for s in result.series:
            assert s.y_at(0) == pytest.approx(5.0, rel=0.15)

    def test_fig10_low_perturbation_is_flat(self):
        result = fig10_latency_vs_network(perturbations=(0, 30),
                                          settle=10.0, measure=20.0)
        for s in result.series:
            assert s.y_at(0) < 1.0
            assert s.y_at(30) < 1.0

    def test_fig11_light_step_ok(self):
        result = fig11_hybrid_monitors(steps=(1,), settle=10.0,
                                       measure=20.0)
        for s in result.series:
            assert s.y_at(1) < 2.0


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9a", "fig9b", "fig10", "fig11"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_specs_have_both_scales(self):
        for spec in EXPERIMENTS.values():
            assert callable(spec.full) and callable(spec.quick)
            assert spec.paper_ref.startswith("Figure")


class TestCli:
    def test_main_runs_one_figure(self, capsys):
        from repro.harness.__main__ import main
        # fig8 quick is among the cheapest full experiments; use an
        # explicit tiny run through the module API instead of --full.
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "receive" in out.lower()

    def test_main_rejects_unknown(self, capsys):
        from repro.harness.__main__ import main
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_main_plot_flag(self, capsys):
        from repro.harness.__main__ import main
        assert main(["fig8", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "|" in out  # canvas rows
        assert "* update period=1s" in out

    def test_main_save_flag(self, capsys, tmp_path):
        from repro.analysis import load_result
        from repro.harness.__main__ import main
        assert main(["fig8", "--save", str(tmp_path / "out")]) == 0
        loaded = load_result(tmp_path / "out" / "fig8.json")
        assert loaded.experiment_id == "fig8"
        assert len(loaded.series) == 3
