"""Unit tests for the ASCII plot renderer."""

from __future__ import annotations

import pytest

import math

from repro.harness import ExperimentResult
from repro.harness.asciiplot import (SERIES_GLYPHS, SPARK_GLYPHS,
                                     render_plot, sparkline)


@pytest.fixture
def result():
    r = ExperimentResult(experiment_id="figT", title="Test figure",
                         xlabel="nodes", ylabel="usec")
    r.add_series("rising", [0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
    r.add_series("flat", [0, 1, 2, 3], [1.0, 1.0, 1.0, 1.0])
    return r


class TestRenderPlot:
    def test_contains_title_axes_legend(self, result):
        out = render_plot(result)
        assert "figT" in out and "Test figure" in out
        assert "nodes" in out and "usec" in out
        assert "* rising" in out and "o flat" in out

    def test_dimensions(self, result):
        out = render_plot(result, width=40, height=10)
        canvas_lines = [line for line in out.splitlines()
                        if "|" in line]
        assert len(canvas_lines) == 10
        for line in canvas_lines:
            assert len(line.split("|", 1)[1]) == 40

    def test_rising_series_touches_corners(self, result):
        out = render_plot(result, width=20, height=8)
        rows = [line.split("|", 1)[1] for line in out.splitlines()
                if "|" in line]
        # max point in the top row, min in the bottom row
        assert "*" in rows[0]
        assert "*" in rows[-1]

    def test_flat_series_single_row(self, result):
        out = render_plot(result, width=20, height=8)
        rows = [line.split("|", 1)[1] for line in out.splitlines()
                if "|" in line]
        rows_with_o = [i for i, row in enumerate(rows) if "o" in row]
        assert len(rows_with_o) == 1

    def test_line_interpolation_fills_gaps(self):
        r = ExperimentResult(experiment_id="f", title="t",
                             xlabel="x", ylabel="y")
        r.add_series("s", [0, 10], [0.0, 10.0])
        out = render_plot(r, width=30, height=10)
        rows = [line.split("|", 1)[1] for line in out.splitlines()
                if "|" in line]
        # every row of the diagonal is populated
        assert all("*" in row for row in rows)

    def test_log_scale_marker(self, result):
        out = render_plot(result, log_y=True)
        assert "[log y]" in out

    def test_log_scale_spreads_magnitudes(self):
        r = ExperimentResult(experiment_id="f", title="t",
                             xlabel="x", ylabel="y")
        r.add_series("s", [0, 1, 2], [0.01, 1.0, 100.0])
        out = render_plot(r, width=30, height=9, log_y=True)
        rows = [line.split("|", 1)[1] for line in out.splitlines()
                if "|" in line]
        # mid point lands mid-canvas under log scaling
        mid_rows = [i for i, row in enumerate(rows)
                    if "*" in row]
        assert min(mid_rows) == 0 and max(mid_rows) == 8
        assert any(2 <= i <= 6 for i in mid_rows)

    def test_empty_result_rejected(self):
        r = ExperimentResult(experiment_id="f", title="t",
                             xlabel="x", ylabel="y")
        with pytest.raises(ValueError, match="no series"):
            render_plot(r)

    def test_glyph_assignment_order(self, result):
        result.add_series("third", [0, 1], [0.5, 0.5])
        out = render_plot(result)
        assert f"{SERIES_GLYPHS[2]} third" in out

    def test_constant_zero_series(self):
        r = ExperimentResult(experiment_id="f", title="t",
                             xlabel="x", ylabel="y")
        r.add_series("zero", [0, 1], [0.0, 0.0])
        out = render_plot(r)  # must not divide by zero
        assert "zero" in out


class TestDegenerateRanges:
    """Single-point and constant series must render, not crash."""

    def _plot(self, xs, ys, **kw):
        r = ExperimentResult(experiment_id="f", title="t",
                             xlabel="x", ylabel="y")
        r.add_series("s", xs, ys)
        return render_plot(r, **kw)

    def test_single_point_series(self):
        out = self._plot([3], [7.0], width=20, height=6)
        rows = [line.split("|", 1)[1] for line in out.splitlines()
                if "|" in line]
        # The lone point lands somewhere on the canvas.
        assert any("*" in row for row in rows)

    def test_single_point_at_zero(self):
        out = self._plot([0], [0.0])
        assert "*" in out

    def test_constant_zero_series_renders_midband(self):
        # y anchors at 0 for nonnegative data, so all-zero is the
        # truly degenerate span: the pad centres it on the canvas.
        out = self._plot([0, 1, 2], [0.0, 0.0, 0.0], width=20,
                         height=8)
        rows = [line.split("|", 1)[1] for line in out.splitlines()
                if "|" in line]
        hit = [i for i, row in enumerate(rows) if "*" in row]
        assert len(hit) == 1
        assert 0 < hit[0] < len(rows) - 1

    def test_constant_nonzero_series_single_row(self):
        out = self._plot([0, 1, 2], [5.0, 5.0, 5.0], width=20,
                         height=8)
        rows = [line.split("|", 1)[1] for line in out.splitlines()
                if "|" in line]
        assert sum(1 for row in rows if "*" in row) == 1

    def test_axis_labels_finite_on_degenerate_span(self):
        out = self._plot([2], [4.0])
        assert "nan" not in out and "inf" not in out

    def test_same_x_different_y(self):
        out = self._plot([1, 1], [0.0, 3.0], width=10, height=5)
        assert "*" in out


class TestSparkline:
    def test_empty_and_all_nan(self):
        assert sparkline([]) == ""
        assert sparkline([math.nan, math.nan]) == "  "

    def test_constant_series_uses_mid_glyph(self):
        out = sparkline([2.0, 2.0, 2.0])
        assert out == SPARK_GLYPHS[len(SPARK_GLYPHS) // 2] * 3

    def test_min_and_max_hit_the_extremes(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0])
        assert out[0] == SPARK_GLYPHS[0]
        assert out[-1] == SPARK_GLYPHS[-1]
        assert len(out) == 4

    def test_monotone_input_monotone_glyphs(self):
        out = sparkline([float(i) for i in range(8)])
        ranks = [SPARK_GLYPHS.index(ch) for ch in out]
        assert ranks == sorted(ranks)

    def test_width_downsamples(self):
        out = sparkline([float(i) for i in range(100)], width=10)
        assert len(out) == 10

    def test_nan_renders_as_gap(self):
        out = sparkline([0.0, math.nan, 1.0])
        assert out[1] == " "
        assert out[0] in SPARK_GLYPHS and out[2] in SPARK_GLYPHS
