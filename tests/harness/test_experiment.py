"""Unit tests for experiment result containers and rendering."""

from __future__ import annotations

import pytest

from repro.harness import ExperimentResult, SeriesResult


@pytest.fixture
def result():
    r = ExperimentResult(experiment_id="figX", title="Demo",
                         xlabel="nodes", ylabel="usec",
                         expectation="goes up")
    r.add_series("a", [1, 2, 4], [10.0, 20.0, 40.0])
    r.add_series("b", [1, 2, 8], [1.0, 2.0, 8.0])
    return r


class TestSeriesResult:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            SeriesResult("x", (1.0, 2.0), (1.0,))

    def test_y_at(self, result):
        assert result.get("a").y_at(2) == 20.0

    def test_y_at_missing_raises(self, result):
        with pytest.raises(ValueError, match="no point"):
            result.get("a").y_at(8)


class TestExperimentResult:
    def test_get_series(self, result):
        assert result.get("a").label == "a"
        with pytest.raises(KeyError):
            result.get("zzz")

    def test_xs_union_sorted(self, result):
        assert result.xs == (1.0, 2.0, 4.0, 8.0)

    def test_table_contains_everything(self, result):
        table = result.table()
        assert "figX" in table and "Demo" in table
        assert "goes up" in table
        assert "nodes" in table and "usec" in table
        # missing points render as '-'
        assert "-" in table.splitlines()[-1] or \
               any("-" in line for line in table.splitlines()[5:])

    def test_table_rows_align_by_x(self, result):
        lines = result.table().splitlines()
        row4 = next(line for line in lines if line.strip()
                    .startswith("4"))
        assert "40" in row4
        # series b has no x=4 point
        assert row4.rstrip().endswith("-")

    def test_str_is_table(self, result):
        assert str(result) == result.table()
