"""Chaos-recovery scenario: acceptance criteria and determinism."""

from __future__ import annotations

import pytest

from repro.harness.chaos import ChaosReport, chaos_recovery

SMALL = dict(nodes=10, duration=40.0, seed=7)


@pytest.fixture(scope="module")
def report() -> ChaosReport:
    """One small chaos run shared by the acceptance assertions."""
    return chaos_recovery(**SMALL)


class TestAcceptance:
    def test_survivors_recover_after_heal(self, report):
        """After the partition heals and loss clears, every surviving
        pair exchanges fresh data again."""
        assert report.recovery_time is not None
        assert report.recovery_time < 15.0

    def test_rebooted_node_rejoins(self, report):
        assert report.rejoin_time is not None
        assert report.rejoin_time < 15.0

    def test_downed_peer_flagged_never_silently_fresh(self, report):
        assert report.victim_reported_dead
        assert report.victim_never_silently_fresh

    def test_cluster_ends_fully_fresh(self, report):
        assert set(report.final_liveness.values()) == {"fresh"}

    def test_trace_contains_fault_schedule(self, report):
        texts = [text for _t, text in report.events]
        assert "loss 0.3 on all links" in texts
        assert "partition healed" in texts
        assert f"crash {report.victim}" in texts
        assert f"reboot {report.victim}" in texts


class TestDeterminism:
    def test_same_seed_bit_identical(self, report):
        again = chaos_recovery(**SMALL)
        assert again.trace == report.trace
        assert again.events == report.events

    def test_different_seed_diverges(self, report):
        other = chaos_recovery(nodes=10, duration=40.0, seed=8)
        assert other.trace != report.trace
