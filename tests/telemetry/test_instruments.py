"""Unit tests for the telemetry instrument primitives."""

from __future__ import annotations

import math

import pytest

from repro.telemetry import (DEFAULT_LATENCY_BOUNDS, Counter, Gauge,
                             Histogram, SpanLog)


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter("c")
        assert c.value == 0.0
        assert c.updates == 0
        assert math.isnan(c.mean)

    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        assert c.updates == 2
        assert c.mean == pytest.approx(1.75)

    def test_never_decreases(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="only increase"):
            c.inc(-1.0)
        assert c.value == 0.0

    def test_zero_increment_counts_as_update(self):
        """inc(0) still bumps `updates` — a poll that cost nothing
        happened, and per-poll means must reflect it."""
        c = Counter("c")
        c.inc(0.0)
        assert c.updates == 1
        assert c.mean == 0.0

    def test_snapshot(self):
        c = Counter("c")
        c.inc(4.0)
        assert c.snapshot() == {"type": "counter", "value": 4.0,
                                "updates": 1}


class TestGauge:
    def test_tracks_extremes(self):
        g = Gauge("g")
        g.set(5.0)
        g.adjust(-3.0)
        g.adjust(10.0)
        assert g.value == pytest.approx(12.0)
        assert g.high == pytest.approx(12.0)
        assert g.low == pytest.approx(2.0)

    def test_untouched_snapshot_has_no_extremes(self):
        snap = Gauge("g").snapshot()
        assert snap["high"] is None and snap["low"] is None
        assert snap["updates"] == 0

    def test_queue_depth_pattern(self):
        g = Gauge("g")
        for _ in range(3):
            g.adjust(1)
        for _ in range(3):
            g.adjust(-1)
        assert g.value == 0.0
        assert g.high == 3.0  # high-water mark survives the drain


class TestHistogram:
    def test_default_bounds_are_latency_shaped(self):
        h = Histogram("h")
        assert h.bounds == DEFAULT_LATENCY_BOUNDS
        assert len(h.counts) == len(h.bounds) + 1  # overflow bucket

    def test_binning_and_overflow(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 99.0):
            h.observe(v)
        # bisect_right: 1.0 falls in the second bucket (bounds are
        # exclusive upper edges for equality).
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.mean == pytest.approx((0.5 + 1.0 + 1.5 + 99.0) / 4)
        assert (h.min, h.max) == (0.5, 99.0)

    def test_nan_counted_not_binned(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(float("nan"))
        h.observe(0.5)
        assert h.nan_count == 1
        assert h.count == 1
        assert h.total == pytest.approx(0.5)

    def test_quantiles(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert math.isnan(Histogram("e").quantile(0.5))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", bounds=())

    def test_empty_snapshot(self):
        snap = Histogram("h", bounds=(1.0,)).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert math.isnan(snap["mean"])


class TestSpanLog:
    def test_record_and_duration(self):
        log = SpanLog("s")
        span = log.record("poll", 1.0, 1.5, cpu=0.01)
        assert span.duration == pytest.approx(0.5)
        assert dict(span.attrs) == {"cpu": 0.01}
        assert len(log) == 1

    def test_bounded_retention(self):
        log = SpanLog("s", max_spans=3)
        for i in range(10):
            log.record("p", float(i), float(i))
        assert len(log) == 3
        assert log.recorded == 10
        assert [s.start for s in log.spans] == [7.0, 8.0, 9.0]

    def test_rejects_backwards_span(self):
        with pytest.raises(ValueError, match="before it starts"):
            SpanLog("s").record("p", 2.0, 1.0)

    def test_attrs_are_deterministically_ordered(self):
        span = SpanLog("s").record("p", 0.0, 0.0, z=1, a=2)
        assert span.attrs == (("a", 2), ("z", 1))

    def test_snapshot(self):
        log = SpanLog("s", max_spans=2)
        log.record("p", 0.0, 1.0)
        snap = log.snapshot()
        assert snap["recorded"] == 1
        assert snap["spans"][0] == {"name": "p", "start": 0.0,
                                    "end": 1.0, "attrs": {}}
