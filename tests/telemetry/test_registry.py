"""Unit tests for the per-node telemetry registry."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (Counter, Gauge, Histogram, SpanLog,
                             TelemetryRegistry)


class TestGetOrCreate:
    def test_same_name_same_instrument(self):
        reg = TelemetryRegistry(scope="n0")
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.spans("s") is reg.spans("s")

    def test_kind_mismatch_rejected(self):
        reg = TelemetryRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError, match="not a Gauge"):
            reg.gauge("x")
        with pytest.raises(TelemetryError, match="not a Histogram"):
            reg.histogram("x")
        with pytest.raises(TelemetryError, match="not a SpanLog"):
            reg.spans("x")
        reg.spans("s")
        with pytest.raises(TelemetryError, match="not a Counter"):
            reg.counter("s")

    def test_mismatch_error_names_the_scope(self):
        reg = TelemetryRegistry(scope="node7")
        reg.counter("x")
        with pytest.raises(TelemetryError, match="node7:x"):
            reg.gauge("x")

    def test_histogram_bounds_apply_on_first_creation_only(self):
        reg = TelemetryRegistry()
        h = reg.histogram("h", bounds=(1.0, 2.0))
        assert reg.histogram("h", bounds=(9.0,)) is h
        assert h.bounds == (1.0, 2.0)

    def test_span_log_inherits_registry_cap(self):
        reg = TelemetryRegistry(max_spans=2)
        log = reg.spans("s")
        for i in range(5):
            log.record("p", float(i), float(i))
        assert len(log) == 2


class TestQueries:
    def test_value_and_get(self):
        reg = TelemetryRegistry()
        reg.counter("c").inc(3.0)
        reg.gauge("g").set(7.0)
        assert reg.value("c") == 3.0
        assert reg.value("g") == 7.0
        assert reg.value("missing") == 0.0
        assert reg.value("missing", default=-1.0) == -1.0
        assert reg.get("missing") is None

    def test_value_of_non_scalar_is_default(self):
        reg = TelemetryRegistry()
        reg.histogram("h").observe(1.0)
        assert reg.value("h", default=-1.0) == -1.0

    def test_names_sorted_and_filtered(self):
        reg = TelemetryRegistry()
        for name in ("b.two", "a.one", "b.one"):
            reg.counter(name)
        assert reg.names() == ["a.one", "b.one", "b.two"]
        assert reg.names("b.") == ["b.one", "b.two"]

    def test_empty_registry_is_truthy(self):
        """Regression: `telemetry or fallback` must never silently
        replace a real-but-still-empty registry."""
        assert TelemetryRegistry()
        assert TelemetryRegistry(enabled=False)

    def test_len_and_contains(self):
        reg = TelemetryRegistry()
        reg.counter("c")
        assert len(reg) == 1
        assert "c" in reg and "d" not in reg

    def test_snapshot_is_plain_data(self):
        import json

        reg = TelemetryRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.spans("s").record("p", 0.0, 1.0, k="v")
        snap = reg.snapshot()
        json.dumps(snap)  # must be JSON-serialisable as-is
        assert set(snap) == {"c", "g", "s"}
        assert snap["c"]["type"] == "counter"


class TestDisabledRegistry:
    def test_hands_out_shared_nulls(self):
        reg = TelemetryRegistry(enabled=False)
        other = TelemetryRegistry(enabled=False)
        assert reg.counter("a") is other.counter("b")
        assert reg.gauge("a") is other.gauge("b")
        assert reg.histogram("a") is other.histogram("b")
        assert reg.spans("a") is other.spans("b")

    def test_records_are_dropped(self):
        reg = TelemetryRegistry(enabled=False)
        reg.counter("c").inc(5.0)
        reg.gauge("g").adjust(3.0)
        reg.histogram("h").observe(1.0)
        reg.spans("s").record("p", 0.0, 1.0)
        assert reg.counter("c").value == 0.0
        assert reg.gauge("g").value == 0.0
        assert reg.histogram("h").count == 0
        assert len(reg.spans("s")) == 0

    def test_nothing_registered(self):
        reg = TelemetryRegistry(enabled=False)
        reg.counter("c").inc()
        assert len(reg) == 0
        assert reg.snapshot() == {}
        assert reg.value("c") == 0.0

    def test_null_instruments_share_the_real_interface(self):
        """Code instrumented against a real registry must run
        unchanged against a disabled one."""
        import math

        reg = TelemetryRegistry(enabled=False)
        assert math.isnan(reg.counter("c").mean)
        assert math.isnan(reg.histogram("h").quantile(0.5))
        assert reg.gauge("g").updates == 0
        assert reg.spans("s").recorded == 0


class TestInstrumentKinds:
    def test_factories_return_expected_types(self):
        reg = TelemetryRegistry()
        assert isinstance(reg.counter("c"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)
        assert isinstance(reg.spans("s"), SpanLog)
