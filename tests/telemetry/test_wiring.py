"""Integration tests: telemetry wired into the dproc hot paths.

These exercise a real monitored cluster and assert that the registry
fills in from the d-mon poll loop, the KECho channels and the network
stack — and that instrumenting those paths never perturbs a seeded
run (telemetry on and off give bit-identical traces).
"""

from __future__ import annotations

import pytest

from repro.dproc import MetricId, deploy_dproc
from repro.sim import Environment, NodeConfig, build_cluster


@pytest.fixture
def monitored(env, cluster3):
    dprocs = deploy_dproc(cluster3)
    env.run(until=10.0)
    return cluster3, dprocs


class TestDmonInstrumentation:
    def test_poll_counters_fill_in(self, monitored):
        cluster, _ = monitored
        for name in cluster.names:
            reg = cluster[name].telemetry
            assert reg.value("dmon.polls") > 0
            assert reg.value("dmon.collect_seconds") > 0
            assert reg.value("dmon.submit_seconds") > 0

    def test_per_module_poll_cost(self, monitored):
        cluster, _ = monitored
        reg = cluster["alan"].telemetry
        module_names = reg.names("dmon.module.")
        assert "dmon.module.cpu.collect_seconds" in module_names
        assert reg.value("dmon.module.cpu.collect_seconds") > 0

    def test_poll_spans_traced(self, monitored):
        cluster, _ = monitored
        log = cluster["alan"].telemetry.spans("dmon.poll")
        assert log.recorded > 0
        span = log.spans[-1]
        assert span.name == "poll"
        assert dict(span.attrs)["cpu"] > 0

    def test_publish_counters(self, monitored):
        cluster, _ = monitored
        total_events = sum(
            cluster[n].telemetry.value("dmon.events_published")
            for n in cluster.names)
        assert total_events > 0


class TestChannelInstrumentation:
    def test_submit_side(self, monitored):
        cluster, _ = monitored
        reg = cluster["alan"].telemetry
        submits = [n for n in reg.names("kecho.")
                   if n.endswith(".submits")]
        assert submits
        assert any(reg.value(n) > 0 for n in submits)

    def test_delivery_latency_histogram(self, monitored):
        cluster, _ = monitored
        seen = 0
        for name in cluster.names:
            reg = cluster[name].telemetry
            for hist_name in reg.names("kecho."):
                if hist_name.endswith(".delivery_seconds"):
                    hist = reg.get(hist_name)
                    seen += hist.count
                    if hist.count:
                        assert hist.min >= 0.0
        assert seen > 0

    def test_fanout_histogram(self, monitored):
        cluster, _ = monitored
        reg = cluster["alan"].telemetry
        fanouts = [reg.get(n) for n in reg.names("kecho.")
                   if n.endswith(".fanout")]
        assert any(h.count > 0 for h in fanouts)
        # 3-node cluster: fan-out can never exceed 2 subscribers.
        assert all(h.max <= 2 for h in fanouts if h.count)


class TestTransportInstrumentation:
    def test_delivered_and_in_flight(self, monitored):
        cluster, _ = monitored
        total = sum(cluster[n].telemetry.value("net.delivered")
                    for n in cluster.names)
        assert total > 0
        for name in cluster.names:
            gauge = cluster[name].telemetry.get("net.in_flight")
            if gauge is not None and gauge.updates:
                assert gauge.value >= 0


class TestSelfMonModule:
    def test_dproc_metrics_published(self, env):
        cluster = build_cluster(env, nodes=2, seed=7)
        dprocs = deploy_dproc(
            cluster, modules=("cpu", "mem", "dproc"))
        env.run(until=10.0)
        value = dprocs["alan"].metric("maui",
                                      MetricId.DMON_POLL_COST)
        assert value == value  # published, not NaN
        assert value > 0

    def test_overhead_procfs_file(self, env):
        cluster = build_cluster(env, nodes=2, seed=7)
        dprocs = deploy_dproc(cluster)
        env.run(until=10.0)
        text = dprocs["alan"].read(
            "/proc/cluster/alan/dproc/overhead")
        assert "polls:" in text
        assert "monitor_cpu_seconds:" in text

    def test_channels_and_dmon_procfs_files(self, env):
        cluster = build_cluster(env, nodes=2, seed=7)
        dprocs = deploy_dproc(cluster)
        env.run(until=10.0)
        channels = dprocs["alan"].read(
            "/proc/cluster/alan/dproc/channels")
        assert "kecho." in channels
        dmon = dprocs["alan"].read("/proc/cluster/alan/dproc/dmon")
        assert "dmon.polls:" in dmon


class TestZeroPerturbation:
    @staticmethod
    def run_trace(telemetry: bool):
        env = Environment()
        cluster = build_cluster(env, nodes=4, seed=99,
                                config=NodeConfig(telemetry=telemetry))
        dprocs = deploy_dproc(cluster)
        env.run(until=15.0)
        return [
            (name, metric,
             dprocs[name].metric(name, metric))
            for name in cluster.names
            for metric in (MetricId.LOADAVG, MetricId.FREEMEM)
        ]

    def test_disabling_telemetry_does_not_change_the_run(self):
        assert self.run_trace(True) == self.run_trace(False)
