"""Unit tests for telemetry rendering and the overhead summary."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (MONITOR_CPU_COUNTERS, TelemetryRegistry,
                             overhead_summary, render_json, render_text)


def make_registry(scope: str = "n0") -> TelemetryRegistry:
    reg = TelemetryRegistry(scope=scope)
    reg.counter("dmon.polls").inc(10.0)
    reg.counter("dmon.collect_seconds").inc(0.25)
    reg.counter("dmon.submit_seconds").inc(0.05)
    reg.gauge("net.in_flight").adjust(2)
    reg.histogram("kecho.health.delivery_seconds", bounds=(0.01, 0.1)) \
        .observe(0.02)
    reg.spans("dmon.poll").record("poll", 1.0, 1.0, cpu=0.01)
    return reg


class TestRenderText:
    def test_one_line_per_instrument(self):
        text = render_text(make_registry())
        lines = text.strip().splitlines()
        assert len(lines) == 6
        assert text.endswith("\n")

    def test_counter_and_gauge_lines(self):
        text = render_text(make_registry())
        assert "dmon.polls: 10\n" in text
        assert "net.in_flight: 2 (high 2)\n" in text

    def test_histogram_line(self):
        text = render_text(make_registry())
        assert ("kecho.health.delivery_seconds: count=1 mean=0.02 "
                in text)

    def test_span_line_is_a_summary(self):
        text = render_text(make_registry())
        assert "dmon.poll: recorded=1 retained=1\n" in text

    def test_prefix_slices(self):
        text = render_text(make_registry(), prefix="dmon.")
        assert "dmon.polls" in text
        assert "net.in_flight" not in text

    def test_empty_registry_renders_empty(self):
        assert render_text(TelemetryRegistry()) == ""

    def test_rendering_does_not_mutate(self):
        reg = make_registry()
        before = reg.snapshot()
        render_text(reg)
        assert reg.snapshot() == before


class TestRenderJson:
    def test_matches_snapshot(self):
        reg = make_registry()
        assert render_json(reg) == reg.snapshot()
        assert render_json(reg, "dmon.") == reg.snapshot("dmon.")

    def test_serialisable(self):
        json.dumps(render_json(make_registry()))


class TestOverheadSummary:
    def make_cluster(self):
        regs = {}
        for i, cost in enumerate((0.1, 0.3)):
            reg = TelemetryRegistry(scope=f"n{i}")
            reg.counter("dmon.polls").inc(5.0)
            reg.counter("dmon.collect_seconds").inc(cost)
            reg.counter("dmon.events_published").inc(2.0)
            reg.counter("net.drops_fault").inc(1.0)
            regs[f"n{i}"] = reg
        return regs

    def test_totals_and_means(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=10.0)
        assert summary["n_nodes"] == 2
        assert summary["polls"] == 10.0
        assert summary["events_published"] == 4.0
        cpu = summary["monitor_cpu_seconds"]
        assert cpu["total"] == pytest.approx(0.4)
        assert cpu["per_node_mean"] == pytest.approx(0.2)
        assert cpu["busiest_node"] == "n1"
        assert cpu["busiest_node_seconds"] == pytest.approx(0.3)
        assert cpu["components"]["collect_seconds"] == pytest.approx(0.4)

    def test_cpu_fraction_normalises_by_node_count(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=10.0)
        # 0.4 CPU-seconds over 2 nodes * 10 s of node time each.
        assert summary["cpu_fraction_of_node_time"] \
            == pytest.approx(0.4 / 20.0)

    def test_network_section(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=1.0)
        assert summary["network"]["drops_fault"] == 2.0
        assert summary["network"]["wan_retries"] == 0.0

    def test_empty_cluster(self):
        summary = overhead_summary({}, sim_seconds=1.0)
        assert summary["n_nodes"] == 0
        assert summary["monitor_cpu_seconds"]["total"] == 0.0
        assert summary["monitor_cpu_seconds"]["busiest_node"] is None
        assert summary["cpu_fraction_of_node_time"] == 0.0

    def test_rejects_nonpositive_span(self):
        with pytest.raises(ValueError):
            overhead_summary({}, sim_seconds=0.0)

    def test_serialisable(self):
        json.dumps(overhead_summary(self.make_cluster(),
                                    sim_seconds=5.0))

    def test_component_names_cover_the_monitor_counters(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=1.0)
        components = summary["monitor_cpu_seconds"]["components"]
        assert set(components) \
            == {name.split(".", 1)[1] for name in MONITOR_CPU_COUNTERS}
