"""Unit tests for telemetry rendering and the overhead summary."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (MONITOR_CPU_COUNTERS, TelemetryRegistry,
                             merge_overhead_summaries, overhead_summary,
                             render_json, render_text,
                             zero_overhead_summary)


def make_registry(scope: str = "n0") -> TelemetryRegistry:
    reg = TelemetryRegistry(scope=scope)
    reg.counter("dmon.polls").inc(10.0)
    reg.counter("dmon.collect_seconds").inc(0.25)
    reg.counter("dmon.submit_seconds").inc(0.05)
    reg.gauge("net.in_flight").adjust(2)
    reg.histogram("kecho.health.delivery_seconds", bounds=(0.01, 0.1)) \
        .observe(0.02)
    reg.spans("dmon.poll").record("poll", 1.0, 1.0, cpu=0.01)
    return reg


class TestRenderText:
    def test_one_line_per_instrument(self):
        text = render_text(make_registry())
        lines = text.strip().splitlines()
        assert len(lines) == 6
        assert text.endswith("\n")

    def test_counter_and_gauge_lines(self):
        text = render_text(make_registry())
        assert "dmon.polls: 10\n" in text
        assert "net.in_flight: 2 (high 2)\n" in text

    def test_histogram_line(self):
        text = render_text(make_registry())
        assert ("kecho.health.delivery_seconds: count=1 mean=0.02 "
                in text)

    def test_span_line_is_a_summary(self):
        text = render_text(make_registry())
        assert "dmon.poll: recorded=1 retained=1\n" in text

    def test_prefix_slices(self):
        text = render_text(make_registry(), prefix="dmon.")
        assert "dmon.polls" in text
        assert "net.in_flight" not in text

    def test_empty_registry_renders_empty(self):
        assert render_text(TelemetryRegistry()) == ""

    def test_rendering_does_not_mutate(self):
        reg = make_registry()
        before = reg.snapshot()
        render_text(reg)
        assert reg.snapshot() == before


class TestRenderJson:
    def test_matches_snapshot(self):
        reg = make_registry()
        assert render_json(reg) == reg.snapshot()
        assert render_json(reg, "dmon.") == reg.snapshot("dmon.")

    def test_serialisable(self):
        json.dumps(render_json(make_registry()))


class TestOverheadSummary:
    def make_cluster(self):
        regs = {}
        for i, cost in enumerate((0.1, 0.3)):
            reg = TelemetryRegistry(scope=f"n{i}")
            reg.counter("dmon.polls").inc(5.0)
            reg.counter("dmon.collect_seconds").inc(cost)
            reg.counter("dmon.events_published").inc(2.0)
            reg.counter("net.drops_fault").inc(1.0)
            regs[f"n{i}"] = reg
        return regs

    def test_totals_and_means(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=10.0)
        assert summary["n_nodes"] == 2
        assert summary["polls"] == 10.0
        assert summary["events_published"] == 4.0
        cpu = summary["monitor_cpu_seconds"]
        assert cpu["total"] == pytest.approx(0.4)
        assert cpu["per_node_mean"] == pytest.approx(0.2)
        assert cpu["busiest_node"] == "n1"
        assert cpu["busiest_node_seconds"] == pytest.approx(0.3)
        assert cpu["components"]["collect_seconds"] == pytest.approx(0.4)

    def test_cpu_fraction_normalises_by_node_count(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=10.0)
        # 0.4 CPU-seconds over 2 nodes * 10 s of node time each.
        assert summary["cpu_fraction_of_node_time"] \
            == pytest.approx(0.4 / 20.0)

    def test_network_section(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=1.0)
        assert summary["network"]["drops_fault"] == 2.0
        assert summary["network"]["wan_retries"] == 0.0

    def test_empty_cluster(self):
        summary = overhead_summary({}, sim_seconds=1.0)
        assert summary["n_nodes"] == 0
        assert summary["monitor_cpu_seconds"]["total"] == 0.0
        assert summary["monitor_cpu_seconds"]["busiest_node"] is None
        assert summary["cpu_fraction_of_node_time"] == 0.0

    def test_rejects_nonpositive_span(self):
        with pytest.raises(ValueError):
            overhead_summary({}, sim_seconds=0.0)

    def test_serialisable(self):
        json.dumps(overhead_summary(self.make_cluster(),
                                    sim_seconds=5.0))

    def test_component_names_cover_the_monitor_counters(self):
        summary = overhead_summary(self.make_cluster(), sim_seconds=1.0)
        components = summary["monitor_cpu_seconds"]["components"]
        assert set(components) \
            == {name.split(".", 1)[1] for name in MONITOR_CPU_COUNTERS}

    def test_summary_is_a_pure_read(self):
        regs = self.make_cluster()
        before = {name: reg.snapshot() for name, reg in regs.items()}
        overhead_summary(regs, sim_seconds=10.0)
        after = {name: reg.snapshot() for name, reg in regs.items()}
        assert after == before

    def test_summary_is_stable_across_calls(self):
        regs = self.make_cluster()
        first = overhead_summary(regs, sim_seconds=10.0)
        second = overhead_summary(regs, sim_seconds=10.0)
        assert first == second


class TestZeroOverheadSummary:
    def test_shape_matches_real_summary(self):
        zero = zero_overhead_summary()
        real = overhead_summary(
            {"n0": TelemetryRegistry(scope="n0")}, sim_seconds=1.0)
        assert set(zero) == set(real)
        assert set(zero["network"]) == set(real["network"])
        assert set(zero["monitor_cpu_seconds"]) \
            == set(real["monitor_cpu_seconds"])
        assert set(zero["monitor_cpu_seconds"]["components"]) \
            == set(real["monitor_cpu_seconds"]["components"])

    def test_all_zero_and_serialisable(self):
        zero = zero_overhead_summary()
        assert zero["n_nodes"] == 0
        assert zero["polls"] == 0.0
        assert zero["monitor_cpu_seconds"]["total"] == 0.0
        assert zero["monitor_cpu_seconds"]["busiest_node"] is None
        assert zero["cpu_fraction_of_node_time"] == 0.0
        json.dumps(zero)

    def test_sim_seconds_passthrough(self):
        assert zero_overhead_summary(sim_seconds=5.0)["sim_seconds"] \
            == 5.0

    def test_empty_merge_returns_zero_summary(self):
        assert merge_overhead_summaries([]) == zero_overhead_summary()
        # Falsy entries are filtered, not merged.
        assert merge_overhead_summaries([None, {}]) \
            == zero_overhead_summary()

    def test_merging_zero_with_real_is_identity(self):
        reg = TelemetryRegistry(scope="n0")
        reg.counter("dmon.polls").inc(3.0)
        reg.counter("dmon.collect_seconds").inc(0.2)
        real = overhead_summary({"n0": reg}, sim_seconds=2.0)
        merged = merge_overhead_summaries(
            [real, zero_overhead_summary(sim_seconds=2.0)])
        assert merged["polls"] == real["polls"]
        assert merged["n_nodes"] == real["n_nodes"]
        assert merged["monitor_cpu_seconds"]["total"] \
            == pytest.approx(real["monitor_cpu_seconds"]["total"])
        assert merged["monitor_cpu_seconds"]["busiest_node"] == "n0"


class TestDegenerateHistograms:
    """Renderers must cope with empty and NaN-only histograms."""

    def test_empty_histogram_text(self):
        reg = TelemetryRegistry(scope="n0")
        reg.histogram("h.empty", bounds=(0.01, 0.1))
        text = render_text(reg)
        assert "h.empty: count=0" in text
        assert "inf" not in text  # quantiles of nothing are NaN, not inf

    def test_nan_only_histogram_text(self):
        reg = TelemetryRegistry(scope="n0")
        hist = reg.histogram("h.nan", bounds=(0.01, 0.1))
        hist.observe(float("nan"))
        text = render_text(reg)
        # Must render a line without raising; one line per instrument.
        assert text.count("\n") == 1
        assert text.startswith("h.nan:")

    def test_empty_histogram_json_serialisable(self):
        reg = TelemetryRegistry(scope="n0")
        reg.histogram("h.empty", bounds=(0.01, 0.1))
        doc = render_json(reg)
        json.dumps(doc, allow_nan=True)

    def test_render_does_not_mutate_empty_histogram(self):
        reg = TelemetryRegistry(scope="n0")
        reg.histogram("h.empty", bounds=(0.01, 0.1))
        before = reg.snapshot()
        render_text(reg)
        render_json(reg)
        assert reg.snapshot() == before
