"""Integration tests: heterogeneous clients on one SmartPointer server.

The paper's client zoo (§4.2): "different clients which can range from
high-end display like ImmersaDesk to smaller display like iPAQ, storage
clients and fast desktop machines.  The clients can subscribe to any of
a number of different derivations of that data."
"""

from __future__ import annotations

import pytest

from repro.dproc import DMonConfig, deploy_dproc
from repro.sim import Environment, NodeConfig, build_cluster
from repro.smartpointer import (ClientCapabilities, DynamicAdaptation,
                                NoAdaptation, SmartPointerClient,
                                SmartPointerServer, StaticAdaptation,
                                StreamProfile, Transform)
from repro.units import KB, MB
from repro.workloads import Linpack


@pytest.fixture
def zoo(env):
    """Server + ImmersaDesk (big display), iPAQ (weak handheld) and a
    storage client, all with dproc deployed."""
    cluster = build_cluster(
        env, 4, seed=21,
        names=["server", "immersadesk", "ipaq", "storage"],
        node_configs=[
            NodeConfig(n_cpus=4),                        # server
            NodeConfig(n_cpus=2, mflops_per_cpu=17.4),   # display wall
            NodeConfig(n_cpus=1, mflops_per_cpu=2.0),    # handheld
            NodeConfig(n_cpus=1, disk_rate=MB(10)),      # archiver
        ])
    dprocs = deploy_dproc(cluster, config=DMonConfig(poll_interval=1.0))
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 4.0)
    server = SmartPointerServer(cluster["server"],
                                dproc=dprocs["server"])
    profile = StreamProfile(base_size=KB(150), base_client_cost=1.8,
                            server_preprocess_cost=1.5)
    return cluster, server, profile


class TestHeterogeneousClients:
    def test_three_independent_derivations(self, env, zoo):
        cluster, server, profile = zoo
        desk = SmartPointerClient(cluster["immersadesk"]).start()
        ipaq = SmartPointerClient(cluster["ipaq"]).start()
        storage = SmartPointerClient(cluster["storage"],
                                     logs_to_disk=True).start()
        server.add_client("immersadesk", profile, rate=5.0,
                          policy=NoAdaptation(),
                          caps=ClientCapabilities(mflops=17.4,
                                                  n_cpus=2))
        # The handheld subscribes to a heavily reduced derivation:
        # positions only, fully pre-rendered at the server.
        server.add_client("ipaq", profile, rate=2.0,
                          policy=StaticAdaptation(
                              Transform(preprocess=1.0, content=0.55)),
                          caps=ClientCapabilities(mflops=2.0))
        server.add_client("storage", profile, rate=5.0,
                          policy=NoAdaptation(),
                          caps=ClientCapabilities(
                              disk_rate=MB(10), logs_to_disk=True))
        env.run(until=30.0)
        # Everyone keeps up with their own derivation.
        assert desk.event_rate(10.0) == pytest.approx(5.0, rel=0.15)
        assert ipaq.event_rate(10.0) == pytest.approx(2.0, rel=0.2)
        assert storage.event_rate(10.0) == pytest.approx(5.0, rel=0.15)
        # The storage client actually archived frames.
        assert cluster["storage"].disk.writes.total > 100

    def test_per_client_streams_are_isolated(self, env, zoo):
        """Overloading one client must not disturb another's stream."""
        cluster, server, profile = zoo
        desk = SmartPointerClient(cluster["immersadesk"]).start()
        ipaq = SmartPointerClient(cluster["ipaq"]).start()
        server.add_client("immersadesk", profile, rate=5.0,
                          policy=DynamicAdaptation(resources=("cpu",)),
                          caps=ClientCapabilities(mflops=17.4,
                                                  n_cpus=2))
        server.add_client("ipaq", profile, rate=2.0,
                          policy=DynamicAdaptation(resources=("cpu",)),
                          caps=ClientCapabilities(mflops=2.0))
        env.run(until=20.0)
        for _ in range(6):
            Linpack(cluster["ipaq"]).start()
        env.run(until=80.0)
        # The wall display is untouched by the handheld's overload.
        assert desk.event_rate(20.0) == pytest.approx(5.0, rel=0.15)
        assert desk.mean_latency(since=60.0) < 0.5
        # The handheld's stream degraded gracefully (adapted, alive).
        assert ipaq.event_rate(20.0) == pytest.approx(2.0, rel=0.3)

    def test_weak_client_needs_adaptation(self, env, zoo):
        """The iPAQ cannot render the full feed: without adaptation it
        drowns; the dynamic policy sizes the stream to its 2 Mflops."""
        cluster, server, profile = zoo
        ipaq = SmartPointerClient(cluster["ipaq"]).start()
        server.add_client("ipaq", profile, rate=2.0,
                          policy=NoAdaptation(),
                          caps=ClientCapabilities(mflops=2.0))
        env.run(until=60.0)
        # full frame: 1.8 Mflop at 2 Mflops = 0.9 s per event > 0.5 s
        assert ipaq.queue_length > 10
        assert ipaq.mean_latency(since=40.0) > 5.0

    def test_dynamic_policy_fits_weak_client(self, env, zoo):
        cluster, server, profile = zoo
        ipaq = SmartPointerClient(cluster["ipaq"]).start()
        policy = DynamicAdaptation(resources=("cpu",))
        server.add_client("ipaq", profile, rate=2.0, policy=policy,
                          caps=ClientCapabilities(mflops=2.0))
        env.run(until=60.0)
        assert ipaq.event_rate(20.0) == pytest.approx(2.0, rel=0.15)
        assert ipaq.mean_latency(since=40.0) < 1.0
        # it visibly reduced the stream for the weak device
        assert policy.last_choice.quality() < 1.0
