"""Integration tests for the SmartPointer server/client pipeline."""

from __future__ import annotations

import pytest

from repro.dproc import DMonConfig, deploy_dproc
from repro.errors import SimulationError
from repro.sim import NodeConfig, build_cluster
from repro.smartpointer import (ClientCapabilities, DynamicAdaptation,
                                NoAdaptation, SmartPointerClient,
                                SmartPointerServer, StaticAdaptation,
                                StreamProfile, Transform)
from repro.units import KB
from repro.workloads import Linpack


@pytest.fixture
def profile():
    return StreamProfile(base_size=KB(200), base_client_cost=2.4,
                         server_preprocess_cost=2.0)


def make_pair(env, server_cpus=4):
    cluster = build_cluster(
        env, 2, seed=7,
        node_configs=[NodeConfig(n_cpus=server_cpus),
                      NodeConfig(n_cpus=1)])
    return cluster, cluster["alan"], cluster["maui"]


class TestPipeline:
    def test_events_flow_at_configured_rate(self, env, profile):
        _, server_node, client_node = make_pair(env)
        client = SmartPointerClient(client_node).start()
        server = SmartPointerServer(server_node)
        server.add_client("maui", profile, rate=5.0,
                          policy=NoAdaptation())
        env.run(until=20.0)
        assert client.processed.total == pytest.approx(100, abs=3)
        assert client.event_rate(window=10.0) == pytest.approx(5.0,
                                                               rel=0.1)

    def test_latency_includes_queueing(self, env, profile):
        _, server_node, client_node = make_pair(env)
        client = SmartPointerClient(client_node).start()
        server = SmartPointerServer(server_node)
        # cost 5.8 Mflop at 17.4 -> 0.33 s per event but 5/s arrivals:
        heavy = StreamProfile(base_size=KB(100), base_client_cost=5.8)
        server.add_client("maui", heavy, rate=5.0,
                          policy=NoAdaptation())
        env.run(until=30.0)
        # Queue must be building and latency climbing.
        assert client.queue_length > 10
        assert client.mean_latency(since=20.0) > 1.0

    def test_duplicate_client_rejected(self, env, profile):
        _, server_node, _ = make_pair(env)
        server = SmartPointerServer(server_node)
        server.add_client("maui", profile, rate=1.0,
                          policy=NoAdaptation())
        with pytest.raises(SimulationError):
            server.add_client("maui", profile, rate=1.0,
                              policy=NoAdaptation())

    def test_remove_client_stops_stream(self, env, profile):
        _, server_node, client_node = make_pair(env)
        client = SmartPointerClient(client_node).start()
        server = SmartPointerServer(server_node)
        server.add_client("maui", profile, rate=5.0,
                          policy=NoAdaptation())
        env.run(until=5.0)
        server.remove_client("maui")
        count = client.arrivals.total
        env.run(until=10.0)
        assert client.arrivals.total <= count + 1
        with pytest.raises(SimulationError):
            server.remove_client("maui")

    def test_logging_client_writes_to_disk(self, env, profile):
        _, server_node, client_node = make_pair(env)
        client = SmartPointerClient(client_node,
                                    logs_to_disk=True).start()
        server = SmartPointerServer(server_node)
        server.add_client("maui", profile, rate=2.0,
                          policy=NoAdaptation())
        env.run(until=10.0)
        assert client_node.disk.writes.total > 10

    def test_observations_without_dproc_are_empty(self, env, profile):
        _, server_node, _ = make_pair(env)
        server = SmartPointerServer(server_node)
        assert server.observations("maui") == {}
        assert not server.has_fresh_data("maui")

    def test_quality_trace_recorded(self, env, profile):
        _, server_node, client_node = make_pair(env)
        SmartPointerClient(client_node).start()
        server = SmartPointerServer(server_node)
        stream = server.add_client(
            "maui", profile, rate=5.0,
            policy=StaticAdaptation(Transform(downsample=0.5)))
        env.run(until=5.0)
        assert stream.quality.last() == pytest.approx(0.5)


class TestDynamicAdaptationEndToEnd:
    def make_system(self, env, policy, profile):
        cluster, server_node, client_node = make_pair(env)
        dprocs = deploy_dproc(cluster,
                              config=DMonConfig(poll_interval=1.0))
        for dp in dprocs.values():
            dp.dmon.modules["cpu"].configure("period", 5.0)
        client = SmartPointerClient(client_node).start()
        server = SmartPointerServer(server_node, dproc=dprocs["alan"])
        server.add_client("maui", profile, rate=5.0, policy=policy,
                          caps=ClientCapabilities(mflops=17.4, n_cpus=1))
        return cluster, server, client

    def test_figure9_shape(self, env, profile):
        """CPU-loaded client: dynamic beats static beats no-filter."""
        policy = DynamicAdaptation(resources=("cpu",))
        cluster, server, client = self.make_system(env, policy, profile)
        env.run(until=30.0)
        for _ in range(4):
            Linpack(cluster["maui"]).start()
        env.run(until=120.0)
        # The dynamic stream keeps up: full rate, low latency.
        assert client.event_rate(window=20.0) == pytest.approx(5.0,
                                                               rel=0.1)
        assert client.mean_latency(since=100.0) < 1.0
        # And it visibly adapted (reduced client cost).
        assert policy.last_choice.client_cost(profile) \
            < profile.base_client_cost

    def test_no_filter_collapses_under_load(self, env, profile):
        cluster, server, client = self.make_system(
            env, NoAdaptation(), profile)
        env.run(until=30.0)
        for _ in range(4):
            Linpack(cluster["maui"]).start()
        env.run(until=120.0)
        assert client.event_rate(window=20.0) < 3.0
        assert client.mean_latency(since=100.0) > 10.0

    def test_server_reads_fresh_monitoring_data(self, env, profile):
        cluster, server, client = self.make_system(
            env, DynamicAdaptation(), profile)
        env.run(until=10.0)
        assert server.has_fresh_data("maui")
        obs = server.observations("maui")
        assert obs["net_bandwidth"] > 0
