"""Unit tests for stream data and transforms."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.smartpointer import (BYTES_PER_ATOM, FULL_QUALITY,
                                MDFrameGenerator, StreamProfile,
                                Transform)
from repro.units import KB


@pytest.fixture
def profile():
    return StreamProfile(base_size=KB(200), base_client_cost=2.4,
                         server_preprocess_cost=2.0)


class TestStreamProfile:
    def test_atom_count_from_size(self, profile):
        assert profile.n_atoms == int(KB(200) / BYTES_PER_ATOM)

    def test_validation(self):
        with pytest.raises(SimulationError):
            StreamProfile(base_size=0, base_client_cost=1)
        with pytest.raises(SimulationError):
            StreamProfile(base_size=1, base_client_cost=-1)


class TestFrameGenerator:
    def test_sequential_frames(self, profile):
        gen = MDFrameGenerator(profile, seed=1)
        f1 = gen.next_frame(0.0)
        f2 = gen.next_frame(1.0)
        assert (f1.seq, f2.seq) == (1, 2)
        assert f1.n_atoms == profile.n_atoms
        assert f1.positions.shape[1] == 3

    def test_deterministic(self, profile):
        a = MDFrameGenerator(profile, seed=5).next_frame(0.0)
        b = MDFrameGenerator(profile, seed=5).next_frame(0.0)
        assert (a.positions == b.positions).all()

    def test_dynamics_move_atoms(self, profile):
        gen = MDFrameGenerator(profile, seed=1)
        f1 = gen.next_frame(0.0)
        f2 = gen.next_frame(1.0)
        assert not (f1.positions == f2.positions).all()

    def test_positions_stay_in_box(self, profile):
        gen = MDFrameGenerator(profile, seed=2, box=10.0)
        for _ in range(100):
            frame = gen.next_frame(0.0)
        assert (frame.positions >= 0).all()
        assert (frame.positions < 10.0).all()

    def test_size_bytes(self, profile):
        frame = MDFrameGenerator(profile).next_frame(0.0)
        assert frame.size_bytes == pytest.approx(profile.base_size,
                                                 rel=0.01)


class TestTransformModel:
    def test_identity_changes_nothing(self, profile):
        assert FULL_QUALITY.wire_size(profile) == profile.base_size
        assert FULL_QUALITY.client_cost(profile) \
            == profile.base_client_cost
        assert FULL_QUALITY.server_cost(profile) == 0.0
        assert FULL_QUALITY.quality() == 1.0

    def test_downsample_shrinks_wire_but_raises_client_cost(self,
                                                            profile):
        """The paper's Figure 11 coupling: downsampling helps the
        network and hurts the client CPU."""
        t = Transform(downsample=0.25)
        assert t.wire_size(profile) < profile.base_size
        assert t.client_cost(profile) > profile.base_client_cost

    def test_preprocess_relieves_client_but_inflates_wire(self, profile):
        """Pre-processing helps the client CPU and hurts the network
        (and downstream disk)."""
        t = Transform(preprocess=1.0)
        assert t.client_cost(profile) < profile.base_client_cost
        assert t.wire_size(profile) > profile.base_size
        assert t.server_cost(profile) == profile.server_preprocess_cost

    def test_quality_ordering(self):
        assert Transform(downsample=1.0).quality() \
            > Transform(downsample=0.5).quality() \
            > Transform(downsample=0.25).quality()
        assert Transform(preprocess=0.0).quality() \
            > Transform(preprocess=1.0).quality()

    def test_validation(self):
        with pytest.raises(SimulationError):
            Transform(downsample=0.0)
        with pytest.raises(SimulationError):
            Transform(downsample=1.5)
        with pytest.raises(SimulationError):
            Transform(preprocess=-0.1)

    def test_apply_downsample_drops_atoms(self, profile):
        frame = MDFrameGenerator(profile, seed=1).next_frame(0.0)
        out = Transform(downsample=0.5).apply(frame)
        assert out.n_atoms == pytest.approx(frame.n_atoms / 2, abs=1)
        assert len(out.positions) == pytest.approx(
            len(frame.positions) / 2, abs=1)

    def test_apply_preprocess_flattens_depth(self, profile):
        frame = MDFrameGenerator(profile, seed=1).next_frame(0.0)
        out = Transform(preprocess=1.0).apply(frame)
        assert (out.positions[:, 2] == 0).all()
        assert (frame.positions[:, 2] != 0).any()
