"""Unit tests for the adaptation policies."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.smartpointer import (ClientCapabilities, DynamicAdaptation,
                                FULL_QUALITY, NoAdaptation,
                                StaticAdaptation, StreamProfile,
                                Transform)
from repro.units import KB, mbps


@pytest.fixture
def profile():
    return StreamProfile(base_size=KB(200), base_client_cost=2.4)


@pytest.fixture
def caps():
    return ClientCapabilities(mflops=17.4, n_cpus=1)


def obs(loadavg=math.nan, net=math.nan, disk=math.nan):
    return {"loadavg": loadavg, "net_bandwidth": net, "diskusage": disk}


class TestBaselines:
    def test_no_adaptation_is_identity(self, profile, caps):
        policy = NoAdaptation()
        assert policy.choose(obs(loadavg=50), profile, 5.0, caps) \
            is FULL_QUALITY

    def test_static_is_constant(self, profile, caps):
        fixed = Transform(downsample=0.5)
        policy = StaticAdaptation(fixed)
        assert policy.choose(obs(), profile, 5.0, caps) is fixed
        assert policy.choose(obs(loadavg=99), profile, 5.0, caps) \
            is fixed


class TestDynamicValidation:
    def test_unknown_resource_rejected(self):
        with pytest.raises(SimulationError):
            DynamicAdaptation(resources=("gpu",))

    def test_empty_resources_rejected(self):
        with pytest.raises(SimulationError):
            DynamicAdaptation(resources=())

    def test_bad_margin_rejected(self):
        with pytest.raises(SimulationError):
            DynamicAdaptation(margin=0)
        with pytest.raises(SimulationError):
            DynamicAdaptation(margin=1.5)

    def test_name_lists_resources(self):
        assert DynamicAdaptation(resources=("net", "cpu")).name \
            == "dynamic(cpu+net)"


class TestDynamicDecisions:
    def test_unloaded_client_gets_full_stream(self, profile, caps):
        policy = DynamicAdaptation()
        choice = policy.choose(obs(loadavg=0.1, net=mbps(100)),
                               profile, 5.0, caps)
        assert choice.quality() == 1.0

    def test_unknown_observations_mean_no_constraint(self, profile,
                                                     caps):
        policy = DynamicAdaptation()
        choice = policy.choose(obs(), profile, 5.0, caps)
        assert choice.quality() == 1.0

    def test_cpu_load_triggers_preprocessing(self, profile, caps):
        policy = DynamicAdaptation(resources=("cpu",))
        choice = policy.choose(obs(loadavg=8.0), profile, 5.0, caps)
        # cost must come down: preprocessing is the lever.
        assert choice.preprocess > 0
        assert choice.client_cost(profile) < profile.base_client_cost

    def test_network_squeeze_triggers_downsampling(self, caps):
        profile = StreamProfile(base_size=3 * 1024 * 1024,
                                base_client_cost=0.1)
        policy = DynamicAdaptation(resources=("net",))
        choice = policy.choose(obs(net=mbps(10)), profile, 1.25, caps)
        assert choice.downsample < 1.0
        assert choice.wire_size(profile) < profile.base_size

    def test_cpu_only_policy_ignores_network(self, caps):
        """The Figure 11 failure mode: a cpu-only monitor inflates the
        stream even when the network is the bottleneck."""
        profile = StreamProfile(base_size=3 * 1024 * 1024,
                                base_client_cost=2.4)
        policy = DynamicAdaptation(resources=("cpu",))
        choice = policy.choose(obs(loadavg=8.0, net=mbps(5)),
                               profile, 1.25, caps)
        # It preprocesses (good for CPU) without noticing the wire
        # size now exceeds what 5 Mbps can carry.
        assert choice.preprocess > 0
        assert choice.wire_size(profile) / mbps(5) > 1.0 / 1.25

    def test_hybrid_respects_both(self, caps):
        profile = StreamProfile(base_size=3 * 1024 * 1024,
                                base_client_cost=2.4)
        policy = DynamicAdaptation(resources=("cpu", "net"))
        choice = policy.choose(obs(loadavg=8.0, net=mbps(20)),
                               profile, 1.25, caps)
        budget = 0.75 / 1.25
        assert choice.wire_size(profile) / mbps(20) <= budget * 1.01
        share = 17.4 / 8.0  # ~mflops/(1+loadavg-1)
        assert choice.client_cost(profile) / share <= budget * 1.3

    def test_disk_constraint_applies_to_logging_clients(self, profile):
        slow_disk = ClientCapabilities(mflops=17.4,
                                       disk_rate=KB(64),
                                       logs_to_disk=True)
        policy = DynamicAdaptation(resources=("disk",))
        choice = policy.choose(obs(disk=100.0), profile, 5.0, slow_disk)
        assert choice.wire_size(profile) < profile.base_size

    def test_disk_ignored_for_non_logging_clients(self, profile):
        caps = ClientCapabilities(mflops=17.4, disk_rate=KB(64),
                                  logs_to_disk=False)
        policy = DynamicAdaptation(resources=("disk",))
        choice = policy.choose(obs(disk=100.0), profile, 5.0, caps)
        assert choice.quality() == 1.0

    def test_infeasible_falls_back_to_least_bad(self, caps):
        profile = StreamProfile(base_size=100 * 1024 * 1024,
                                base_client_cost=500.0)
        policy = DynamicAdaptation(resources=("cpu", "net"))
        choice = policy.choose(obs(loadavg=20.0, net=mbps(1)),
                               profile, 10.0, caps)
        # Nothing fits the budget; policy must pick the minimal
        # bottleneck (maximal shrink) rather than give up.
        assert choice.downsample == pytest.approx(0.12)

    def test_last_choice_tracked(self, profile, caps):
        policy = DynamicAdaptation()
        choice = policy.choose(obs(loadavg=5.0), profile, 5.0, caps)
        assert policy.last_choice is choice

    def test_monotone_in_load(self, profile, caps):
        """More load never yields a more expensive client transform."""
        policy = DynamicAdaptation(resources=("cpu",))
        costs = []
        for load in (0.5, 2.0, 4.0, 8.0, 16.0):
            t = policy.choose(obs(loadavg=load), profile, 5.0, caps)
            costs.append(t.client_cost(profile))
        assert costs == sorted(costs, reverse=True)
