"""OpenMetrics rendering and the strict validating mini-parser."""

from __future__ import annotations

import pytest

from repro.obs import (ObsError, parse_openmetrics,
                       render_openmetrics)
from repro.obs.openmetrics import CONTENT_TYPE, metric_name
from repro.telemetry import TelemetryRegistry


def make_registry(scope: str = "n0") -> TelemetryRegistry:
    reg = TelemetryRegistry(scope=scope)
    reg.counter("dmon.polls").inc(4.0)
    reg.gauge("net.in_flight").adjust(3)
    hist = reg.histogram("kecho.monitor.delivery_seconds",
                         bounds=(0.01, 0.1))
    hist.observe(0.02)
    hist.observe(0.2)
    reg.spans("dmon.poll").record("poll", 1.0, 1.0, cpu=0.01)
    return reg


class TestMetricName:
    def test_dots_and_dashes_flatten(self):
        assert metric_name("dmon.collect_seconds") \
            == "repro_dmon_collect_seconds"
        assert metric_name("a-b.c", prefix="x") == "x_a_b_c"
        assert metric_name("plain", prefix="") == "plain"


class TestRender:
    def test_counter_gauge_histogram_forms(self):
        text = render_openmetrics({"n0": make_registry()})
        assert "# TYPE repro_dmon_polls counter" in text
        assert 'repro_dmon_polls_total{node="n0"} 4' in text
        assert 'repro_net_in_flight{node="n0"} 3' in text
        assert ('repro_kecho_monitor_delivery_seconds_bucket'
                '{le="+Inf",node="n0"} 2') in text
        assert ('repro_kecho_monitor_delivery_seconds_count'
                '{node="n0"} 2') in text
        assert text.endswith("# EOF\n")

    def test_span_logs_become_recorded_counters(self):
        text = render_openmetrics({"n0": make_registry()})
        assert ('repro_dmon_poll_spans_recorded_total'
                '{node="n0"} 1') in text

    def test_multi_node_sorted_and_stable(self):
        regs = {"b": make_registry("b"), "a": make_registry("a")}
        text = render_openmetrics(regs)
        assert text.index('node="a"') < text.index('node="b"')
        assert text == render_openmetrics(dict(reversed(
            list(regs.items()))))

    def test_health_gauges_appended(self):
        health = {"healthy": False,
                  "rules": [{"rule": "r1", "subject": "cluster",
                             "status": "degraded",
                             "degraded_subjects": ["n0"]}]}
        text = render_openmetrics({}, health=health)
        assert 'repro_health_ok{rule="r1",subject="cluster"} 0' \
            in text
        assert "repro_healthy 0" in text

    def test_healthy_cluster_renders_one(self):
        text = render_openmetrics({}, health={"healthy": True,
                                              "rules": []})
        assert "repro_healthy 1" in text

    def test_content_type_is_openmetrics(self):
        assert "openmetrics-text" in CONTENT_TYPE


class TestRoundTrip:
    def test_render_parses_clean(self):
        regs = {"n0": make_registry("n0"),
                "n1": make_registry("n1")}
        health = {"healthy": True, "rules": []}
        families = parse_openmetrics(
            render_openmetrics(regs, health=health))
        assert families["repro_dmon_polls"]["type"] == "counter"
        samples = families["repro_dmon_polls"]["samples"]
        assert {s.labels["node"] for s in samples} == {"n0", "n1"}
        assert all(s.value == 4.0 for s in samples)

    def test_histogram_ladder_is_cumulative(self):
        families = parse_openmetrics(
            render_openmetrics({"n0": make_registry()}))
        fam = families["repro_kecho_monitor_delivery_seconds"]
        buckets = [s for s in fam["samples"]
                   if s.name.endswith("_bucket")]
        counts = [s.value for s in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].labels["le"] == "+Inf"


class TestParserRejections:
    def test_missing_eof(self):
        with pytest.raises(ObsError, match="EOF"):
            parse_openmetrics("# TYPE m gauge\nm 1\n")

    def test_missing_trailing_newline(self):
        with pytest.raises(ObsError, match="newline"):
            parse_openmetrics("# TYPE m gauge\nm 1\n# EOF")

    def test_sample_without_type(self):
        with pytest.raises(ObsError, match="no preceding TYPE"):
            parse_openmetrics("m_total 1\n# EOF\n")

    def test_duplicate_type(self):
        with pytest.raises(ObsError, match="duplicate TYPE"):
            parse_openmetrics(
                "# TYPE m gauge\n# TYPE m gauge\n# EOF\n")

    def test_non_numeric_value(self):
        with pytest.raises(ObsError, match="non-numeric"):
            parse_openmetrics("# TYPE m gauge\nm fast\n# EOF\n")

    def test_bad_label_syntax(self):
        with pytest.raises(ObsError, match="bad label"):
            parse_openmetrics(
                '# TYPE m gauge\nm{node=unquoted} 1\n# EOF\n')

    def test_blank_line_rejected(self):
        with pytest.raises(ObsError, match="blank"):
            parse_openmetrics("# TYPE m gauge\n\nm 1\n# EOF\n")

    def test_conflicting_family_types_rejected_at_render(self):
        reg_a = TelemetryRegistry(scope="a")
        reg_a.counter("same.name")
        reg_b = TelemetryRegistry(scope="b")
        reg_b.gauge("same.name")
        with pytest.raises(ObsError, match="both"):
            render_openmetrics({"a": reg_a, "b": reg_b})
