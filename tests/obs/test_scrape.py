"""The live ``/metrics`` + ``/healthz`` endpoint, over real sockets."""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario
from repro.dproc import DMonConfig
from repro.obs import parse_openmetrics


async def _get(host: str, port: int, path: str,
               method: str = "GET") -> tuple[int, str]:
    import asyncio
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"{method} {path} HTTP/1.1\r\n"
                 f"Host: {host}\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode("utf-8")


@pytest.fixture(scope="module")
def scraped():
    """Run a short live cluster and scrape it mid-run."""
    responses: dict[str, tuple[int, str]] = {}
    sc = Scenario(nodes=3, seed=9, backend="live",
                  dmon=DMonConfig(poll_interval=0.2)) \
        .with_observability(sample_interval=0.2, scrape_port=0)

    def hook(scenario: Scenario) -> None:
        import asyncio

        async def fetch() -> None:
            # Servers bind after setup hooks run; wait for the port,
            # then let a few polls land before scraping.
            await asyncio.sleep(0.8)
            host, port = scenario.scrape.address
            for path in ("/metrics", "/healthz", "/nope"):
                responses[path] = await _get(host, port, path)
            responses["POST /metrics"] = await _get(
                host, port, "/metrics", method="POST")
        asyncio.get_event_loop().create_task(fetch())

    sc.with_setup(hook)
    sc.run(2.0)
    return sc, responses


class TestScrapeEndpoint:
    def test_metrics_route_serves_valid_openmetrics(self, scraped):
        _, responses = scraped
        status, body = responses["/metrics"]
        assert status == 200
        sc, _ = scraped
        families = parse_openmetrics(body)
        polls = families["repro_dmon_polls"]["samples"]
        assert {s.labels["node"] for s in polls} \
            == set(sc.nodes.names)
        assert all(s.value > 0 for s in polls)

    def test_metrics_include_health_gauges(self, scraped):
        _, responses = scraped
        families = parse_openmetrics(responses["/metrics"][1])
        assert "repro_healthy" in families
        assert "repro_health_ok" in families

    def test_healthz_route(self, scraped):
        _, responses = scraped
        status, body = responses["/healthz"]
        assert status == 200
        verdict = json.loads(body)
        assert verdict["healthy"] is True
        assert {row["rule"] for row in verdict["rules"]} \
            == {"delivery-latency-p99", "drop-burn",
                "monitor-cpu-burn"}

    def test_unknown_route_404(self, scraped):
        _, responses = scraped
        assert responses["/nope"][0] == 404

    def test_non_get_405(self, scraped):
        _, responses = scraped
        assert responses["POST /metrics"][0] == 405

    def test_hits_counted_per_path(self, scraped):
        sc, _ = scraped
        # Rejected methods never reach the router, so POST /metrics
        # is not counted.
        assert sc.scrape.hits["/metrics"] == 1
        assert sc.scrape.hits["/healthz"] == 1
        assert sc.scrape.hits["/nope"] == 1

    def test_sampler_ran_on_the_live_clock(self, scraped):
        sc, _ = scraped
        assert sc.obs.samples_taken >= 5
        assert len(sc.obs.tsdb.keys("dmon.polls")) == 3
