"""The health/SLO engine: hysteresis, rollup, audit trail."""

from __future__ import annotations

import math

import pytest

from repro.obs import (DEGRADED, HEALTHY, HealthEngine, HealthRule,
                       ObsError, TimeSeriesDB, attribute_transitions,
                       default_rules, health_section_from_overhead)
from repro.stream import StreamBroker


def make_engine(rules, nodes=("n0",), log=None):
    tsdb = TimeSeriesDB(interval=1.0)
    return tsdb, HealthEngine(tsdb, rules, nodes=nodes,
                              log_broker=log)


def gauge_rule(**overrides) -> HealthRule:
    base = dict(name="lat", metric="m", threshold=1.0, op="<",
                agg="avg", window=5.0, for_bad=2, for_ok=2)
    base.update(overrides)
    return HealthRule(**base)


def feed(tsdb, t, value, node="n0"):
    tsdb.observe("m", (("node", node),), t, value)


class TestRuleValidation:
    def test_bad_op_scope_window(self):
        with pytest.raises(ObsError):
            gauge_rule(op="!=")
        with pytest.raises(ObsError):
            gauge_rule(scope="rack")
        with pytest.raises(ObsError):
            gauge_rule(window=0.0)
        with pytest.raises(ObsError):
            gauge_rule(for_bad=0)

    def test_duplicate_rule_names_rejected(self):
        tsdb = TimeSeriesDB()
        with pytest.raises(ObsError, match="duplicate"):
            HealthEngine(tsdb, [gauge_rule(), gauge_rule()])

    def test_unknown_aggregation_raises_at_query(self):
        tsdb, engine = make_engine([gauge_rule(agg="median")])
        feed(tsdb, 0.0, 1.0)
        with pytest.raises(ObsError, match="aggregation"):
            engine.evaluate(1.0)

    def test_nan_is_vacuously_healthy(self):
        assert gauge_rule().holds(math.nan)


class TestHysteresis:
    def test_degrades_only_after_for_bad_streak(self):
        tsdb, engine = make_engine([gauge_rule(for_bad=3)])
        for t in range(5):
            feed(tsdb, float(t), 9.0)  # violates < 1.0
            engine.evaluate(float(t))
            expected = HEALTHY if t < 2 else DEGRADED
            assert engine.status("lat", "n0") == expected
        assert len(engine.transitions) == 1
        assert engine.transitions[0].time == 2.0

    def test_single_spike_does_not_flap(self):
        # Short window so each evaluation sees only the newest sample.
        tsdb, engine = make_engine(
            [gauge_rule(for_bad=2, window=0.5)])
        for t, v in enumerate([0.1, 9.0, 0.1, 9.0, 0.1]):
            feed(tsdb, float(t), v)  # never 2 bad in a row
            engine.evaluate(float(t))
        assert engine.status("lat", "n0") == HEALTHY
        assert engine.transitions == []

    def test_recovery_needs_for_ok_streak(self):
        tsdb, engine = make_engine(
            [gauge_rule(for_bad=1, for_ok=3, window=0.5)])
        timeline = [9.0, 0.1, 0.1, 0.1, 0.1]
        statuses = []
        for t, v in enumerate(timeline):
            feed(tsdb, float(t), v)
            engine.evaluate(float(t))
            statuses.append(engine.status("lat", "n0"))
        assert statuses == [DEGRADED, DEGRADED, DEGRADED, HEALTHY,
                            HEALTHY]
        assert [tr.to_status for tr in engine.transitions] \
            == [DEGRADED, HEALTHY]

    def test_silence_before_first_sample_is_healthy(self):
        _, engine = make_engine([gauge_rule()])
        engine.evaluate(0.0)
        engine.evaluate(1.0)
        assert engine.status("lat", "n0") == HEALTHY
        assert engine.verdict()["healthy"] is True


class TestVerdictRollup:
    def test_any_degraded_node_degrades_the_cluster_row(self):
        tsdb, engine = make_engine(
            [gauge_rule(for_bad=1, window=0.5)], nodes=("n0", "n1"))
        for t in range(2):
            feed(tsdb, float(t), 0.1, node="n0")
            feed(tsdb, float(t), 9.0, node="n1")
            engine.evaluate(float(t))
        doc = engine.verdict(now=1.0)
        (row,) = doc["rules"]
        assert row["status"] == DEGRADED
        assert row["degraded_subjects"] == ["n1"]
        assert doc["healthy"] is False
        assert doc["time"] == 1.0

    def test_cluster_scope_rule_single_subject(self):
        tsdb, engine = make_engine(
            [gauge_rule(scope="cluster", for_bad=1, window=0.5)],
            nodes=("n0", "n1"))
        tsdb.observe("m", (), 0.0, 9.0)
        engine.evaluate(0.0)
        assert engine.status("lat", "cluster") == DEGRADED


class TestDurableTransitionLog:
    def test_flips_append_to_obs_health_channel(self):
        log = StreamBroker()
        tsdb, engine = make_engine(
            [gauge_rule(for_bad=1, for_ok=1, window=0.5)], log=log)
        feed(tsdb, 0.0, 9.0)
        engine.evaluate(0.0)
        feed(tsdb, 1.0, 0.1)
        engine.evaluate(1.0)
        entries = log.entries(HealthEngine.CHANNEL)
        assert [e.summary for e in entries] \
            == ["lat:degraded", "lat:healthy"]
        assert entries[0].kind == "health"
        assert entries[0].source == "n0"
        assert entries[0].fault == "healthy->degraded"
        assert [e.seq for e in entries] == [1, 2]

    def test_no_log_broker_is_fine(self):
        tsdb, engine = make_engine(
            [gauge_rule(for_bad=1, window=0.5)])
        feed(tsdb, 0.0, 9.0)
        engine.evaluate(0.0)
        assert len(engine.transitions) == 1


class TestAttribution:
    def _transitions(self, engine_times=((1.0, DEGRADED),
                                         (5.0, HEALTHY))):
        from repro.obs.health import HealthTransition
        out = []
        prev = HEALTHY
        for t, to in engine_times:
            out.append(HealthTransition(
                time=t, rule="drop-burn", subject="n0",
                from_status=prev, to_status=to, value=2.0,
                threshold=1.0))
            prev = to
        return out

    def _broker_with_drop(self, t, source="n0", fault="loss"):
        broker = StreamBroker()
        broker.stream("dproc.monitor").append(
            kind="drop", source=source, dest="n1", time=t,
            submitted_at=t, size=10.0, fault=fault)
        return broker

    def test_drop_inside_window_attributes(self):
        windows = attribute_transitions(
            self._transitions(), self._broker_with_drop(3.0))
        (w,) = windows
        assert w["start"] == 1.0 and w["end"] == 5.0
        assert w["attributed"] is True
        assert w["faults"] == ["loss"]

    def test_drop_outside_window_does_not(self):
        windows = attribute_transitions(
            self._transitions(), self._broker_with_drop(9.0))
        assert windows[0]["attributed"] is False
        assert windows[0]["faults"] == []

    def test_other_nodes_drops_ignored_for_node_subject(self):
        windows = attribute_transitions(
            self._transitions(),
            self._broker_with_drop(3.0, source="n7"))
        # n7 -> n1 does not involve subject n0.
        assert windows[0]["attributed"] is False

    def test_open_window_extends_to_infinity(self):
        windows = attribute_transitions(
            self._transitions(((1.0, DEGRADED),)),
            self._broker_with_drop(100.0))
        assert windows[0]["end"] == math.inf
        assert windows[0]["attributed"] is True

    def test_none_broker_yields_unattributed_windows(self):
        windows = attribute_transitions(self._transitions(), None)
        assert windows[0]["attributed"] is False


class TestDefaultRules:
    def test_stock_set_names_and_window_scaling(self):
        rules = default_rules(poll_interval=2.0)
        assert sorted(r.name for r in rules) == [
            "delivery-latency-p99", "drop-burn", "monitor-cpu-burn"]
        assert all(r.window == 20.0 for r in rules)


class TestHealthSectionFromOverhead:
    def test_missing_overhead_is_unknown(self):
        assert health_section_from_overhead(None) \
            == {"verdict": "unknown", "checks": []}

    def test_quiet_run_is_healthy(self):
        overhead = {"cpu_fraction_of_node_time": 0.01,
                    "events_published": 100.0,
                    "network": {"drops_fault": 0.0,
                                "drops_congestion": 0.0}}
        section = health_section_from_overhead(overhead)
        assert section["verdict"] == HEALTHY
        assert all(c["ok"] for c in section["checks"])

    def test_cpu_burn_degrades(self):
        overhead = {"cpu_fraction_of_node_time": 0.2,
                    "events_published": 100.0, "network": {}}
        section = health_section_from_overhead(overhead)
        assert section["verdict"] == DEGRADED
        by_name = {c["name"]: c for c in section["checks"]}
        assert by_name["monitor-cpu-fraction"]["ok"] is False
        assert by_name["fault-drop-ratio"]["ok"] is True
