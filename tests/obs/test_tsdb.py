"""The ring-buffer TSDB: tiers, queries, merge, determinism."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (ObsError, Series, TimeSeriesDB, merge_tsdbs,
                       series_key)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("cpu") == "cpu"

    def test_labels_sorted_into_canonical_form(self):
        assert series_key("cpu", {"b": "2", "a": "1"}) \
            == "cpu{a=1,b=2}"
        assert series_key("cpu", (("b", "2"), ("a", "1"))) \
            == series_key("cpu", {"a": "1", "b": "2"})


class TestSeriesRings:
    def test_same_bucket_aggregates(self):
        s = Series("m", interval=1.0)
        s.observe(0.2, 1.0)
        s.observe(0.8, 3.0)
        ((t, bucket),) = s.samples()
        assert t == 0.0
        assert bucket.count == 2
        assert bucket.min == 1.0 and bucket.max == 3.0
        assert bucket.last == 3.0
        assert bucket.mean == pytest.approx(2.0)

    def test_interval_multiple_lands_in_its_own_bucket(self):
        s = Series("m", interval=1.0)
        s.observe(0.0, 1.0)
        s.observe(1.0, 2.0)
        assert [t for t, _ in s.samples()] == [0.0, 1.0]

    def test_time_backwards_raises(self):
        s = Series("m", interval=1.0)
        s.observe(5.0, 1.0)
        with pytest.raises(ObsError, match="time went backwards"):
            s.observe(2.0, 1.0)

    def test_nan_samples_ignored(self):
        s = Series("m", interval=1.0)
        s.observe(0.0, math.nan)
        assert s.samples() == []
        assert s.latest is None

    def test_overflow_folds_into_coarser_tier(self):
        s = Series("m", interval=1.0, capacity=4, rollup_factor=4,
                   n_tiers=2)
        for t in range(8):
            s.observe(float(t), float(t))
        base, coarse = s.tiers[0], s.tiers[1]
        assert len(base.buckets) == 4
        assert len(coarse.buckets) == 1
        folded = coarse.buckets[0]
        # t=0..3 rolled up into one 4s bucket.
        assert folded.count == 4
        assert folded.min == 0.0 and folded.max == 3.0
        assert folded.last == 3.0
        assert s.dropped == 0

    def test_coarsest_tier_drops_and_counts(self):
        s = Series("m", interval=1.0, capacity=2, rollup_factor=2,
                   n_tiers=2)
        for t in range(20):
            s.observe(float(t), 1.0)
        assert s.dropped > 0
        total_buckets = sum(len(t.buckets) for t in s.tiers)
        assert total_buckets <= 4  # 2 tiers x capacity 2

    def test_memory_is_bounded_regardless_of_run_length(self):
        s = Series("m", interval=1.0, capacity=8, rollup_factor=4,
                   n_tiers=3)
        for t in range(5000):
            s.observe(float(t), float(t))
        assert sum(len(t.buckets) for t in s.tiers) <= 24

    def test_samples_ordered_oldest_first_across_tiers(self):
        s = Series("m", interval=1.0, capacity=4, rollup_factor=4,
                   n_tiers=2)
        for t in range(12):
            s.observe(float(t), float(t))
        times = [t for t, _ in s.samples()]
        assert times == sorted(times)

    def test_latest_survives_folding(self):
        s = Series("m", interval=1.0, capacity=2, rollup_factor=2,
                   n_tiers=3)
        for t in range(30):
            s.observe(float(t), float(t) * 10)
        assert s.latest == 290.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ObsError):
            Series("m", interval=0.0)
        with pytest.raises(ObsError):
            Series("m", capacity=0)
        with pytest.raises(ObsError):
            Series("m", rollup_factor=1)


class TestQueries:
    @pytest.fixture
    def db(self):
        db = TimeSeriesDB(interval=1.0)
        for t in range(10):
            db.observe("gauge", (("node", "n0"),), float(t),
                       float(t))
            db.observe("cum", (("node", "n0"),), float(t),
                       float(t) * 2, kind="counter")
        return db

    def test_avg_over_time(self, db):
        # window [5, 9]: values 5..9
        assert db.avg_over_time("gauge", (("node", "n0"),),
                                window=4.0, now=9.0) \
            == pytest.approx(7.0)

    def test_min_max_over_time(self, db):
        labels = (("node", "n0"),)
        assert db.min_over_time("gauge", labels, window=4.0,
                                now=9.0) == 5.0
        assert db.max_over_time("gauge", labels, window=4.0,
                                now=9.0) == 9.0

    def test_quantile_over_time(self, db):
        labels = (("node", "n0"),)
        assert db.quantile_over_time(0.5, "gauge", labels,
                                     window=100.0, now=9.0) == 4.0
        assert db.quantile_over_time(1.0, "gauge", labels,
                                     window=100.0, now=9.0) == 9.0
        assert db.quantile_over_time(0.0, "gauge", labels,
                                     window=100.0, now=9.0) == 0.0

    def test_rate_of_cumulative_counter(self, db):
        # cum rises by 2 per second.
        assert db.rate("cum", (("node", "n0"),), window=5.0,
                       now=9.0) == pytest.approx(2.0)

    def test_rate_handles_counter_reset(self):
        db = TimeSeriesDB(interval=1.0)
        for t, v in enumerate([10.0, 20.0, 5.0]):
            db.observe("c", (), float(t), v, kind="counter")
        # 10 -> 20 is +10; 20 -> 5 is a reset contributing 5.
        assert db.rate("c", (), window=10.0, now=2.0) \
            == pytest.approx(15.0 / 2.0)

    def test_empty_windows_are_nan(self, db):
        labels = (("node", "n0"),)
        assert math.isnan(db.avg_over_time("missing", (),
                                           window=5.0, now=9.0))
        assert math.isnan(db.rate("gauge", labels, window=0.5,
                                  now=100.0))

    def test_bad_window_and_quantile_rejected(self, db):
        with pytest.raises(ObsError):
            db.avg_over_time("gauge", (), window=0.0, now=1.0)
        with pytest.raises(ObsError):
            db.quantile_over_time(1.5, "gauge", (), window=1.0,
                                  now=1.0)

    def test_keys_filter_and_sorted(self, db):
        assert db.keys() == ["cum{node=n0}", "gauge{node=n0}"]
        assert db.keys("gauge") == ["gauge{node=n0}"]
        assert len(db) == 2
        assert "cum{node=n0}" in db


class TestExportDeterminism:
    def _build(self):
        db = TimeSeriesDB(interval=0.5, capacity=8)
        for t in range(40):
            for node in ("b", "a"):
                db.observe("m", (("node", node),), t * 0.5,
                           float(t))
        return db

    def test_same_feed_same_bytes(self):
        assert self._build().export_json() \
            == self._build().export_json()

    def test_export_is_valid_canonical_json(self):
        text = self._build().export_json()
        doc = json.loads(text)
        assert json.dumps(doc, sort_keys=True,
                          separators=(",", ":")) == text
        assert sorted(doc["series"]) == list(doc["series"])


class TestMerge:
    def test_disjoint_keys_union(self):
        a, b = TimeSeriesDB(), TimeSeriesDB()
        a.observe("m", (("node", "n0"),), 1.0, 1.0)
        b.observe("m", (("node", "n1"),), 1.0, 2.0)
        merged = merge_tsdbs([a, b])
        assert merged.keys() == ["m{node=n0}", "m{node=n1}"]
        assert merged.get("m", (("node", "n1"),)).latest == 2.0

    def test_shared_key_interleaves_in_time_order(self):
        a, b = TimeSeriesDB(), TimeSeriesDB()
        for t in (0.0, 2.0):
            a.observe("m", (), t, t)
        for t in (1.0, 3.0):
            b.observe("m", (), t, t)
        merged = merge_tsdbs([a, b])
        assert [t for t, _ in merged.get("m").samples()] \
            == [0.0, 1.0, 2.0, 3.0]

    def test_merge_preserves_bucket_aggregates(self):
        a = TimeSeriesDB()
        a.observe("m", (), 0.1, 1.0)
        a.observe("m", (), 0.2, 9.0)
        merged = merge_tsdbs([a, TimeSeriesDB()])
        ((_, bucket),) = merged.get("m").samples()
        assert bucket.count == 2
        assert bucket.min == 1.0 and bucket.max == 9.0

    def test_merge_empty_and_order_determinism(self):
        assert len(merge_tsdbs([])) == 0
        a, b = TimeSeriesDB(), TimeSeriesDB()
        for t in range(6):
            a.observe("m", (("node", "x"),), float(t), float(t))
            b.observe("m", (("node", "y"),), float(t), -float(t))
        assert merge_tsdbs([a, b]).export_json() \
            == merge_tsdbs([a, b]).export_json()
