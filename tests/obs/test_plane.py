"""The plane end to end: sampling, ingest, passivity, sharded merge."""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioError
from repro.obs import ObservabilityPlane, merge_planes


def run_scenario(*, obs: bool, nodes: int = 6, seed: int = 3,
                 duration: float = 8.0, stream: bool = True,
                 workers: int = 1):
    sc = Scenario(nodes=nodes, seed=seed)
    if stream:
        sc.with_stream()
    if obs:
        sc.with_observability(sample_interval=1.0)
    if workers > 1:
        sc.with_workers(workers, mode="inline")
    return sc.run(duration)


class TestSampling:
    @pytest.fixture(scope="class")
    def sc(self):
        return run_scenario(obs=True)

    def test_sampler_ticks_once_per_interval(self, sc):
        # One tick per second of virtual time, t=0 and t=8 inclusive.
        assert sc.obs.samples_taken == 9
        assert sc.obs.last_sample_at == 8.0

    def test_per_node_series_exist(self, sc):
        keys = sc.obs.tsdb.keys("dmon.polls")
        assert len(keys) == 6
        assert all("node=" in k for k in keys)

    def test_counter_series_are_monotone(self, sc):
        name = sc.nodes.names[0]
        series = sc.obs.tsdb.get("dmon.polls", (("node", name),))
        values = [v for _, v in series.points()]
        assert values == sorted(values)
        assert series.kind == "counter"

    def test_histogram_series_carry_stat_labels(self, sc):
        assert sc.obs.tsdb.keys("stat=count")
        assert sc.obs.tsdb.keys("stat=p99")

    def test_stream_ingest_adds_channel_series(self, sc):
        keys = sc.obs.tsdb.keys("stream.")
        assert any("stream.submits" in k for k in keys)
        assert any("stream.deliver_latency" in k for k in keys)
        # Ingest is lazy but once-only: re-reading .obs must not
        # double the ingested points.
        first = sc.obs.export_json()
        assert sc.obs.export_json() == first

    def test_verdict_on_quiet_run_is_healthy(self, sc):
        assert sc.obs.verdict()["healthy"] is True
        assert sc.obs.transitions == []


class TestPassivity:
    """Obs on vs off: the monitored system must not notice."""

    @pytest.fixture(scope="class")
    def pair(self):
        return (run_scenario(obs=False, seed=5),
                run_scenario(obs=True, seed=5))

    def test_stream_bytes_bit_identical(self, pair):
        off, on = pair
        assert off.stream.serialize() == on.stream.serialize()

    def test_overhead_summary_identical(self, pair):
        off, on = pair
        assert off.overhead() == on.overhead()

    def test_procfs_identical(self, pair):
        off, on = pair
        name = off.nodes.names[0]
        d_off, d_on = off.dprocs[name], on.dprocs[name]
        path = f"/proc/cluster/{name}/dproc/overhead"
        assert d_off.read(path) == d_on.read(path)


class TestExportDeterminism:
    def test_same_seed_byte_identical_export(self):
        a = run_scenario(obs=True, seed=11).obs.export_json()
        b = run_scenario(obs=True, seed=11).obs.export_json()
        assert a == b

    def test_different_seed_differs(self):
        a = run_scenario(obs=True, seed=11).obs.export_json()
        b = run_scenario(obs=True, seed=12).obs.export_json()
        assert a != b


class TestShardedObs:
    def test_sharded_plane_merges_all_nodes(self):
        sc = run_scenario(obs=True, nodes=9, workers=3,
                          duration=6.0, stream=False)
        plane = sc.obs
        assert len(plane.tsdb.keys("dmon.polls")) == 9
        # 3 shards x 7 ticks each (t=0 and t=6 inclusive).
        assert plane.samples_taken == 21
        assert plane.engine is not None
        assert len(plane.engine.nodes) == 9

    def test_sharded_export_deterministic(self):
        a = run_scenario(obs=True, nodes=9, workers=3,
                         duration=6.0, stream=False)
        b = run_scenario(obs=True, nodes=9, workers=3,
                         duration=6.0, stream=False)
        assert a.obs.export_json() == b.obs.export_json()

    def test_merged_plane_is_cached_after_run(self):
        sc = run_scenario(obs=True, nodes=9, workers=3,
                          duration=4.0, stream=False)
        assert sc.obs is sc.obs


class TestMergePlanes:
    def test_empty_merge(self):
        plane = merge_planes([])
        assert plane.samples_taken == 0
        assert plane.verdict()["healthy"] is True

    def test_merge_carries_transitions_sorted(self):
        from repro.obs.health import HealthTransition
        a = ObservabilityPlane(sample_interval=1.0)
        b = ObservabilityPlane(sample_interval=1.0)
        a.bind(["n0"])
        b.bind(["n1"])
        tr = lambda t, subject: HealthTransition(
            time=t, rule="drop-burn", subject=subject,
            from_status="healthy", to_status="degraded", value=2.0,
            threshold=1.0)
        a.engine.transitions.append(tr(4.0, "n0"))
        b.engine.transitions.append(tr(2.0, "n1"))
        merged = merge_planes([a, b])
        assert [t.time for t in merged.transitions] == [2.0, 4.0]
        assert merged.engine.nodes == ("n0", "n1")


class TestScenarioGuards:
    def test_scrape_port_rejected_on_sim(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=4).with_observability(scrape_port=0)

    def test_chaos_obs_flag_attaches_plane(self):
        from repro.harness.chaos import chaos_recovery
        report = chaos_recovery(nodes=10, duration=30.0, seed=7,
                                obs=True)
        assert report.obs_plane is not None
        assert report.obs_plane.samples_taken > 0
        # The paper's loss window must trip drop-burn.
        assert any(t.rule == "drop-burn"
                   for t in report.obs_plane.transitions)

    def test_chaos_without_obs_has_no_plane(self):
        from repro.harness.chaos import chaos_recovery
        report = chaos_recovery(nodes=8, duration=20.0, seed=7)
        assert report.obs_plane is None
