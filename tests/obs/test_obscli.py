"""``python -m repro.harness obs``: dashboard, exports, watch."""

from __future__ import annotations

import json
import threading

import pytest

from repro.harness.obscli import main, render_dashboard
from repro.obs import parse_openmetrics

ARGS = ["--nodes", "6", "--seed", "3", "--duration", "8"]


class TestDashboard:
    @pytest.fixture(scope="class")
    def output(self):
        import io
        import contextlib
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert main(ARGS) == 0
        return buf.getvalue()

    def test_health_header_and_rules(self, output):
        assert "health: healthy" in output
        assert "delivery-latency-p99" in output
        assert "drop-burn" in output

    def test_series_panels_with_sparklines(self, output):
        assert "dmon.polls" in output
        assert "stream.submits" in output
        from repro.harness.asciiplot import SPARK_GLYPHS
        assert any(g in output for g in SPARK_GLYPHS)

    def test_grep_filters_panels(self, capsys):
        assert main(ARGS + ["--grep", "dmon.polls"]) == 0
        out = capsys.readouterr().out
        assert "dmon.polls" in out
        assert "kecho." not in out

    def test_no_match_grep_says_so(self, capsys):
        assert main(ARGS + ["--grep", "zzz-nothing"]) == 0
        assert "(no series matched)" in capsys.readouterr().out


class TestFaultsDashboard:
    def test_chaos_run_shows_attributed_windows(self, capsys):
        assert main(["--nodes", "10", "--seed", "7", "--duration",
                     "30", "--faults"]) == 0
        out = capsys.readouterr().out
        assert "chaos run: 10 nodes" in out
        assert "transitions (" in out
        assert "degraded windows:" in out
        # The injected loss must be named by at least one window.
        assert "injected loss" in out


class TestExports:
    def test_json_export_is_canonical_and_deterministic(self, capsys):
        assert main(ARGS + ["--export", "json"]) == 0
        first = capsys.readouterr().out
        doc = json.loads(first)
        assert doc["schema"] == "repro.obs/1"
        assert doc["samples_taken"] == 9
        assert main(ARGS + ["--export", "json"]) == 0
        assert capsys.readouterr().out == first

    def test_openmetrics_export_parses(self, capsys):
        assert main(ARGS + ["--export", "openmetrics"]) == 0
        families = parse_openmetrics(capsys.readouterr().out)
        assert "repro_healthy" in families
        assert "repro_dmon_polls" in families


class TestWatch:
    def test_watch_validates_a_live_server(self, capsys):
        import asyncio

        from repro.obs import ObservabilityPlane
        from repro.live.scrape import ScrapeServer
        from repro.telemetry import TelemetryRegistry

        class FakeNode:
            def __init__(self, name):
                self.name = name
                self.telemetry = TelemetryRegistry(scope=name)
                self.telemetry.counter("dmon.polls").inc(2.0)

        plane = ObservabilityPlane(sample_interval=1.0)
        plane.bind(["n0"])
        server = ScrapeServer([FakeNode("n0")], plane)
        loop = asyncio.new_event_loop()
        ready = threading.Event()
        done: asyncio.Event | None = None

        async def serve():
            nonlocal done
            done = asyncio.Event()
            await server.start()
            ready.set()
            await done.wait()
            await server.stop()

        thread = threading.Thread(
            target=lambda: loop.run_until_complete(serve()),
            daemon=True)
        thread.start()
        assert ready.wait(5.0)
        try:
            rc = main(["--watch",
                       f"{server.url}",
                       "--count", "2", "--every", "0.05"])
        finally:
            loop.call_soon_threadsafe(done.set)
            thread.join(5.0)
        assert rc == 0
        out = capsys.readouterr().out
        assert "poll 1/2" in out and "poll 2/2" in out
        assert "health healthy" in out

    def test_watch_unreachable_endpoint_fails(self, capsys):
        rc = main(["--watch", "http://127.0.0.1:9/metrics",
                   "--count", "1"])
        assert rc == 1
        assert "FETCH FAILED" in capsys.readouterr().err


class TestRenderDashboardUnit:
    def test_plane_without_engine_renders(self):
        from repro.obs import ObservabilityPlane
        plane = ObservabilityPlane(sample_interval=1.0)
        out = render_dashboard(plane)
        assert "health: healthy" in out
        assert "(no series matched)" in out
