"""Unit tests for the units module."""

from __future__ import annotations

import pytest

from repro import units


class TestTime:
    def test_usec_msec_sec(self):
        assert units.usec(1) == 1e-6
        assert units.msec(1) == 1e-3
        assert units.sec(2) == 2.0
        assert units.minutes(2) == 120.0

    def test_round_trips(self):
        assert units.to_usec(units.usec(250)) == pytest.approx(250)
        assert units.to_msec(units.msec(1.5)) == pytest.approx(1.5)


class TestSizes:
    def test_binary_sizes(self):
        assert units.KB(1) == 1024
        assert units.MB(1) == 1024 ** 2
        assert units.kb is units.KB and units.mb is units.MB

    def test_constants(self):
        assert units.PAGE_SIZE == 4096
        assert units.SECTOR_SIZE == 512
        assert units.ETHERNET_MTU == 1500


class TestBandwidth:
    def test_mbps_is_decimal_bits(self):
        # network convention: 100 Mbps = 100e6 bits/s = 12.5e6 B/s
        assert units.mbps(100) == 12.5e6
        assert units.kbps(100) == 12.5e3

    def test_to_mbps_round_trip(self):
        assert units.to_mbps(units.mbps(42.5)) == pytest.approx(42.5)


class TestPublicApi:
    """Export-integrity checks for every subpackage."""

    @pytest.mark.parametrize("module_name", [
        "repro", "repro.sim", "repro.ecode", "repro.kecho",
        "repro.dproc", "repro.smartpointer", "repro.workloads",
        "repro.harness", "repro.analysis", "repro.units",
        "repro.errors",
    ])
    def test_all_names_resolve(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), \
                f"{module_name}.__all__ lists missing name {name!r}"

    def test_error_hierarchy_roots_at_repro_error(self):
        from repro import errors
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, Exception)
            assert issubclass(cls, errors.ReproError)

    def test_version(self):
        import repro
        assert repro.__version__.count(".") == 2
