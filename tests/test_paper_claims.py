"""The paper's three evaluation goals, as regression tests.

§4 states the experiments' purpose verbatim; each test here pins one of
those claims at reduced scale so any regression in the system breaks
the claim *in the unit suite* (the full-scale reproductions live in
benchmarks/):

1. "application-specific filtering of monitoring information can
   reduce the overhead and perturbation caused by the monitoring
   mechanisms",
2. "monitoring information can be used to make intelligent decisions
   how to manipulate and customize data streams in order to reduce
   resource requirements and to adapt streams to a clients'
   capabilities",
3. "resource monitoring information has to comprise information about
   multiple resources in a system to enable an application to properly
   identify and remove resource bottlenecks".
"""

from __future__ import annotations

import pytest

from repro.harness import (fig6_submission_overhead, fig9b_event_rate,
                           fig11_hybrid_monitors)


class TestClaim1FilteringReducesOverhead:
    def test_differential_filter_cuts_submission_overhead(self):
        result = fig6_submission_overhead(nodes=(8,), duration=40.0)
        periodic = result.get("update period=1s").y_at(8)
        differential = result.get("differential filter").y_at(8)
        assert differential < periodic / 4

    def test_longer_period_cuts_overhead_proportionally(self):
        result = fig6_submission_overhead(nodes=(8,), duration=40.0)
        p1 = result.get("update period=1s").y_at(8)
        p2 = result.get("update period=2s").y_at(8)
        assert p2 == pytest.approx(p1 / 2, rel=0.2)


class TestClaim2MonitoringEnablesAdaptation:
    def test_dynamic_filter_keeps_stream_rate_under_load(self):
        result = fig9b_event_rate(threads=(0, 4), settle=25.0,
                                  measure=35.0)
        dynamic = result.get("dynamic filter")
        none = result.get("no filter")
        # adapted stream holds the full rate; unadapted collapses
        assert dynamic.y_at(4) == pytest.approx(5.0, rel=0.15)
        assert none.y_at(4) < 2.5

    def test_adaptation_requires_the_monitoring_data(self):
        """Without dproc (no observations) the dynamic policy cannot
        adapt — it behaves like the full stream."""
        from repro.smartpointer import (ClientCapabilities,
                                        DynamicAdaptation, FULL_QUALITY,
                                        StreamProfile)
        policy = DynamicAdaptation(resources=("cpu",))
        profile = StreamProfile(base_size=1e5, base_client_cost=2.4)
        choice = policy.choose({}, profile, 5.0,
                               ClientCapabilities())
        assert choice == FULL_QUALITY


class TestClaim3MultiResourceMonitoring:
    def test_hybrid_beats_single_resource_monitors(self):
        result = fig11_hybrid_monitors(steps=(6,), settle=15.0,
                                       measure=35.0)
        hybrid = result.get("hybrid monitor").y_at(6)
        cpu_only = result.get("cpu monitor").y_at(6)
        net_only = result.get("network monitor").y_at(6)
        assert hybrid < cpu_only / 2
        assert hybrid < net_only / 2

    def test_single_resource_adaptation_backfires(self):
        """'adaptation based on only one resource can have a negative
        effect on the requirements of another resource' — shown
        directly in the transform space."""
        from repro.smartpointer import StreamProfile, Transform
        profile = StreamProfile(base_size=3e6, base_client_cost=2.4)
        # The CPU-relieving transform inflates the wire...
        cpu_fix = Transform(preprocess=1.0)
        assert cpu_fix.client_cost(profile) < profile.base_client_cost
        assert cpu_fix.wire_size(profile) > profile.base_size
        # ...and the network-relieving transform inflates client work.
        net_fix = Transform(downsample=0.25)
        assert net_fix.wire_size(profile) < profile.base_size
        assert net_fix.client_cost(profile) > profile.base_client_cost
