"""Both backends structurally satisfy the runtime protocol."""

from __future__ import annotations

import pytest

from repro.live.runtime import LiveRuntime
from repro.runtime.protocol import (Bus, Clock, NodeGroup, Runtime,
                                    RuntimeNode, Transport)
from repro.runtime.sim import SimRuntime


@pytest.fixture(params=["sim", "live"])
def runtime(request):
    if request.param == "sim":
        return SimRuntime(nodes=2, seed=0)
    return LiveRuntime(nodes=2, seed=0)


class TestProtocolConformance:
    def test_runtime(self, runtime):
        assert isinstance(runtime, Runtime)
        assert runtime.backend in ("sim", "live")

    def test_clock(self, runtime):
        assert isinstance(runtime.clock, Clock)

    def test_node_group(self, runtime):
        group = runtime.nodes
        assert isinstance(group, NodeGroup)
        assert len(group) == 2
        assert group.names == [n.name for n in group]
        assert group[group.names[0]] is next(iter(group))

    def test_nodes(self, runtime):
        for node in runtime.nodes:
            assert isinstance(node, RuntimeNode)
            assert isinstance(node.stack, Transport)

    def test_bus(self, runtime):
        assert isinstance(runtime.make_bus(), Bus)

    def test_bus_is_idempotent(self, runtime):
        assert runtime.make_bus() is runtime.make_bus()


class TestBackendTags:
    def test_sim_tag(self):
        assert SimRuntime(nodes=1).backend == "sim"

    def test_live_tag(self):
        assert LiveRuntime(nodes=1).backend == "live"

    def test_live_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            LiveRuntime(nodes=0)

    def test_live_rejects_name_mismatch(self):
        with pytest.raises(ValueError):
            LiveRuntime(nodes=2, names=["only-one"])
