"""The sharded runtime behind the Scenario facade: wiring and guards."""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioError
from repro.errors import FaultInjectionError
from repro.telemetry import merge_overhead_summaries


class TestWithWorkersGuards:
    def test_workers_must_be_positive(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=8).with_workers(0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=8).with_workers(2, mode="threads")

    def test_live_backend_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=8, backend="live").with_workers(2)

    def test_build_and_run_until_are_one_shot_violations(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=8).with_workers(2).build()
        with pytest.raises(ScenarioError):
            Scenario(nodes=8).with_workers(2).run_until(5.0)

    def test_processes_mode_refuses_hooks(self):
        sc = Scenario(nodes=8).with_workers(2, mode="processes") \
            .with_setup(lambda s: None)
        with pytest.raises(ScenarioError):
            sc.run(1.0)

    def test_cluster_hooks_refused(self):
        sc = Scenario(nodes=8).with_workers(2, mode="inline") \
            .with_cluster_setup(lambda s: None)
        with pytest.raises(ScenarioError):
            sc.run(1.0)

    def test_sharded_scenario_runs_once(self):
        sc = Scenario(nodes=8).with_workers(2)
        sc.run(1.0)
        with pytest.raises(ScenarioError):
            sc.run(1.0)


class TestShardedScenarioSurface:
    def test_inline_exposes_merged_world(self):
        sc = Scenario(nodes=10, seed=2) \
            .with_workers(3, mode="inline").run(3.0)
        assert len(sc.nodes) == 10
        assert len(sc.dprocs) == 10
        # Global name order is preserved across the shard interleave.
        assert sc.nodes.names == sc._global_names()
        assert sc.shard_result.n_shards == 3
        assert sc.shard_result.events_processed > 0
        assert sc.overhead()["n_nodes"] == 10

    def test_monitor_hosts_subset_spans_shards(self):
        sc = Scenario(nodes=10, seed=2, monitor_hosts=4) \
            .with_workers(3, mode="inline").run(3.0)
        assert sorted(sc.dprocs) == sorted(sc._global_names()[:4])
        # Every dproc still sees the full monitored view.
        for dproc in sc.dprocs.values():
            hosts = {h for h in sc._global_names()[:4]}
            assert hosts <= dproc._mounted_hosts

    def test_auto_mode_picks_inline_for_hooked_scenarios(self):
        sc = Scenario(nodes=8, seed=2).with_workers(2) \
            .with_faults(lambda s: s.faults.set_message_loss(0.1))
        sc.run(2.0)
        assert sc.runtime.processes is False
        assert sc.faults.log[0][1] == "loss 0.1 on all links"


class TestShardedFaultInjector:
    def _scenario(self, configure):
        return (Scenario(nodes=8, seed=4)
                .with_workers(2, mode="inline")
                .with_faults(configure))

    def test_scheduled_faults_log_like_plain_injector(self):
        sc = self._scenario(lambda s: (
            s.faults.schedule_loss(1.0, 0.3, until=2.0),
            s.faults.schedule_partition(
                1.5, [s.nodes.names[:4], s.nodes.names[4:]],
                heal_at=2.5))).run(4.0)
        assert [entry[1] for entry in sc.faults.log] == [
            "loss 0.3 on all links",
            "partition " + ",".join(sc.nodes.names[:4]) + " | "
            + ",".join(sc.nodes.names[4:]),
            "loss 0 on all links",
            "partition healed",
        ]
        assert [entry[0] for entry in sc.faults.log] == \
            [1.0, 1.5, 2.0, 2.5]

    def test_crash_handlers_run_once_in_owning_shard(self):
        crashes = []
        def configure(s):
            s.faults.on_crash(lambda h: crashes.append(h))
            s.faults.on_reboot(lambda h: crashes.append(("up", h)))
            s.faults.schedule_crash(1.0, s.nodes.names[0],
                                    reboot_at=2.0)
        sc = self._scenario(configure).run(3.0)
        victim = sc.nodes.names[0]
        assert crashes == [victim, ("up", victim)]

    def test_unknown_host_rejected(self):
        with pytest.raises(FaultInjectionError):
            self._scenario(
                lambda s: s.faults.schedule_crash(1.0, "nope")
            ).run(2.0)

    def test_partition_blocks_cross_group_monitoring(self):
        sc = self._scenario(lambda s: s.faults.schedule_partition(
            0.5, [s.nodes.names[:4], s.nodes.names[4:]])).run(6.0)
        a = sc.nodes.names[0]
        z = sc.nodes.names[-1]
        # Both sides ended up isolated: each watcher's view of the
        # other half went stale/dead (state is not "fresh").
        from repro.dproc import PEER_FRESH
        assert sc.dprocs[a].dmon.peer_state(z) != PEER_FRESH
        assert sc.dprocs[z].dmon.peer_state(a) != PEER_FRESH


class TestMergeOverheadSummaries:
    def test_merge_matches_unsharded_accounting(self):
        sharded = Scenario(nodes=12, seed=6) \
            .with_workers(3, mode="inline").run(4.0)
        merged = merge_overhead_summaries(
            [s.extra["overhead"]
             for s in sharded.shard_result.shards])
        direct = sharded.overhead()
        assert merged["n_nodes"] == direct["n_nodes"] == 12
        assert merged["polls"] == direct["polls"]
        total = sum(
            s.extra["overhead"]["monitor_cpu_seconds"]["total"]
            for s in sharded.shard_result.shards)
        assert merged["monitor_cpu_seconds"]["total"] == \
            pytest.approx(total)

    def test_empty_merge_is_zero_summary(self):
        merged = merge_overhead_summaries([])
        assert merged["n_nodes"] == 0
        assert merged["polls"] == 0.0
        assert merged["monitor_cpu_seconds"]["total"] == 0.0
        assert merged["monitor_cpu_seconds"]["busiest_node"] is None
        assert merged["cpu_fraction_of_node_time"] == 0.0
        # Same shape as a real summary: every top-level key present.
        real = Scenario(nodes=2, seed=1).run(2.0).overhead()
        assert set(merged) == set(real)
        assert set(merged["network"]) == set(real["network"])
        assert set(merged["monitor_cpu_seconds"]) \
            == set(real["monitor_cpu_seconds"])

    def test_mismatched_spans_rejected(self):
        a = {"sim_seconds": 1.0}
        b = {"sim_seconds": 2.0}
        with pytest.raises(ValueError):
            merge_overhead_summaries([a, b])
