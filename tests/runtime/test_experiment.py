"""The Experiment/Policy API: hysteresis logic and backend parity.

Policies are pure decision functions over a MetricView, so the latch
behavior is pinned against a fake view with scripted values.  The
backend-parity tests are the API's headline contract: the same
experiment list yields identical records on repeated sim runs and
``comparable()``-equal reports between the plain and sharded kernels.
"""

from __future__ import annotations

import math

import pytest

from repro.dproc import MetricId
from repro.dproc.control_api import (ClearCommand, ControlRequest,
                                     PeriodCommand)
from repro.experiment import (Experiment, MultiResourcePolicy, Policy,
                              ResourceRule, StaticPolicy,
                              ThresholdPolicy, run_experiments,
                              standard_experiments)

SLOW = ControlRequest([PeriodCommand(4.0)])
RESTORE = ControlRequest([ClearCommand("period")])


class FakeView:
    """A MetricView stand-in with scripted per-host values."""

    def __init__(self, values: dict) -> None:
        self.hosts = sorted(values)
        self.now = 0.0
        self._values = values

    def value(self, host: str, metric: MetricId) -> float:
        return self._values[host].get(metric, math.nan)


class TestThresholdHysteresis:
    POLICY = ThresholdPolicy(metric=MetricId.LOADAVG, high=2.0,
                             relief=SLOW, low=1.0, restore=RESTORE)

    def test_quiet_below_high(self):
        view = FakeView({"maui": {MetricId.LOADAVG: 1.9}})
        assert self.POLICY.decide(view, {}) == []

    def test_relief_fires_once_above_high(self):
        state = {}
        view = FakeView({"maui": {MetricId.LOADAVG: 2.5}})
        actions = self.POLICY.decide(view, state)
        assert [a.request for a in actions] == [SLOW]
        assert actions[0].target == "maui"
        assert actions[0].observed == 2.5
        # Latched: staying hot does not re-fire.
        assert self.POLICY.decide(view, state) == []

    def test_band_between_low_and_high_holds_the_latch(self):
        state = {}
        self.POLICY.decide(
            FakeView({"maui": {MetricId.LOADAVG: 2.5}}), state)
        view = FakeView({"maui": {MetricId.LOADAVG: 1.5}})
        assert self.POLICY.decide(view, state) == []

    def test_restore_fires_below_low_then_rearms(self):
        state = {}
        self.POLICY.decide(
            FakeView({"maui": {MetricId.LOADAVG: 2.5}}), state)
        actions = self.POLICY.decide(
            FakeView({"maui": {MetricId.LOADAVG: 0.5}}), state)
        assert [a.request for a in actions] == [RESTORE]
        # Unlatched: the next spike triggers relief again.
        actions = self.POLICY.decide(
            FakeView({"maui": {MetricId.LOADAVG: 3.0}}), state)
        assert [a.request for a in actions] == [SLOW]

    def test_nan_hosts_are_skipped(self):
        view = FakeView({"maui": {}, "etna": {MetricId.LOADAVG: 9.0}})
        actions = self.POLICY.decide(view, {})
        assert [a.target for a in actions] == ["etna"]

    def test_per_host_latches_are_independent(self):
        state = {}
        view = FakeView({"maui": {MetricId.LOADAVG: 2.5},
                         "etna": {MetricId.LOADAVG: 0.1}})
        assert len(self.POLICY.decide(view, state)) == 1
        view = FakeView({"maui": {MetricId.LOADAVG: 2.5},
                         "etna": {MetricId.LOADAVG: 2.5}})
        actions = self.POLICY.decide(view, state)
        assert [a.target for a in actions] == ["etna"]


class TestMultiResource:
    RULES = (ResourceRule(resource="cpu", metric=MetricId.LOADAVG,
                          high=2.0, relief=SLOW),
             ResourceRule(resource="mem", metric=MetricId.FREEMEM,
                          high=8e9, relief=RESTORE))

    def test_each_rule_latches_separately(self):
        policy = MultiResourcePolicy(rules=self.RULES)
        state = {}
        view = FakeView({"maui": {MetricId.LOADAVG: 3.0,
                                  MetricId.FREEMEM: 9e9}})
        actions = policy.decide(view, state)
        assert len(actions) == 2
        assert {a.request for a in actions} == {SLOW, RESTORE}
        assert policy.decide(view, state) == []

    def test_relief_without_restore_never_rearms(self):
        policy = MultiResourcePolicy(rules=self.RULES[:1])
        state = {}
        hot = FakeView({"maui": {MetricId.LOADAVG: 3.0}})
        cold = FakeView({"maui": {MetricId.LOADAVG: 0.0}})
        assert len(policy.decide(hot, state)) == 1
        policy.decide(cold, state)
        assert policy.decide(hot, state) == []


class TestStaticPolicy:
    def test_initial_targets_every_host_once(self):
        policy = StaticPolicy(request=SLOW)
        view = FakeView({"alan": {}, "maui": {}})
        actions = policy.initial(view)
        assert sorted(a.target for a in actions) == ["alan", "maui"]
        assert policy.decide(view, {}) == []

    def test_base_policy_is_inert(self):
        view = FakeView({"alan": {}})
        assert Policy().initial(view) == []
        assert Policy().decide(view, {}) == []


@pytest.mark.slow
class TestBackendParity:
    """The API's contract: one experiment list, any backend."""

    ARGS = dict(nodes=4, seed=13, duration=8.0)

    def _sweep(self, **overrides):
        kwargs = dict(self.ARGS)
        kwargs.update(overrides)
        return run_experiments(standard_experiments(), **kwargs)

    def test_sim_runs_are_deterministic(self):
        first = [r.to_record() for r in self._sweep()]
        second = [r.to_record() for r in self._sweep()]
        assert first == second

    def test_adaptive_policies_act_on_sim(self):
        by_name = {r.experiment: r for r in self._sweep()}
        assert by_name["baseline"].adaptations == 0
        assert by_name["dynamic"].adaptations > 0
        assert by_name["multi"].adaptations > 0
        # Relief works: stretched periods publish fewer events.
        assert (by_name["dynamic"].events_published
                < by_name["baseline"].events_published)

    def test_sharded_kernel_matches_plain_sim(self):
        plain = self._sweep()
        sharded = self._sweep(workers=4)
        assert [r.comparable() for r in plain] \
            == [r.comparable() for r in sharded]
