"""Cross-backend conformance for sketch-backed top-K source filtering.

The same scenario — a ``proc`` module publishing the keyed per-process
stream, one host governed by a :func:`~repro.dproc.topk_filter` — runs
on both backends.  The simulator's process table is synthetic and
deterministic, the live backend's is the real host ``/proc``, so the
assertions are split the same way the metric conformance suite splits
them: structural/schema contracts must agree exactly, values are
checked for rank-stability rather than equality (the live host's
per-PID CPU shares move between polls).
"""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.dproc import DMonConfig, topk_filter

POLL = 0.2
DURATION = 1.5
MODULES = ("cpu", "proc")
K = 3


def _wire(scenario: Scenario) -> Scenario:
    def control_writes(sc: Scenario) -> None:
        n0, n1 = sc.nodes.names[:2]
        sc.dprocs[n0].write(f"/proc/cluster/{n1}/control",
                            topk_filter(K, "cpu"))

    return scenario.with_setup(control_writes)


@pytest.fixture(scope="module")
def sim_run() -> Scenario:
    sc = Scenario(nodes=3, seed=11, backend="sim",
                  dmon=DMonConfig(poll_interval=POLL), modules=MODULES)
    return _wire(sc).run(DURATION)


@pytest.fixture(scope="module")
def live_run() -> Scenario:
    sc = Scenario(nodes=3, seed=11, backend="live",
                  dmon=DMonConfig(poll_interval=POLL), modules=MODULES)
    return _wire(sc).run(DURATION)


@pytest.fixture(scope="module", params=["sim", "live"])
def each_run(request, sim_run, live_run) -> Scenario:
    return sim_run if request.param == "sim" else live_run


def _proc_top(sc: Scenario, reader: str, host: str) -> tuple[str, list]:
    """Parse ``/proc/cluster/<host>/proc_top`` → (kind, rows)."""
    text = sc.dprocs[reader].read(f"/proc/cluster/{host}/proc_top")
    lines = text.splitlines()
    assert lines and lines[0].startswith("kind: ")
    kind = lines[0].split(": ", 1)[1]
    rows = [line.split() for line in lines[1:]]
    return kind, rows


class TestProcfsLayout:
    def test_proc_top_file_present_for_every_host(self, each_run):
        sc = each_run
        n0 = sc.nodes.names[0]
        for host in sc.nodes.names:
            listing = sc.dprocs[n0].listdir(f"/proc/cluster/{host}")
            assert "proc_top" in listing, sc.backend

    def test_layouts_agree_across_backends(self, sim_run, live_run):
        n0 = sim_run.nodes.names[0]
        for host in sim_run.nodes.names:
            assert sim_run.dprocs[n0].listdir(
                f"/proc/cluster/{host}") == \
                live_run.dprocs[n0].listdir(f"/proc/cluster/{host}")


class TestFilteredStream:
    def test_filter_compiled_and_error_free(self, each_run):
        sc = each_run
        n1 = sc.nodes.names[1]
        deployed = sc.dprocs[n1].dmon.filters.filter_for("proc")
        assert deployed is not None, sc.backend
        assert deployed.filter_id == "topk"
        assert deployed.invocations > 0, sc.backend
        assert deployed.errors == 0, sc.backend
        assert deployed.total_emitted > 0, sc.backend

    def test_governed_host_ships_top_pairs_only(self, each_run):
        sc = each_run
        n0, n1 = sc.nodes.names[:2]
        kind, rows = _proc_top(sc, n0, n1)
        assert kind == "top", sc.backend
        assert 0 < len(rows) <= K, (sc.backend, rows)
        # Rows are (pid, weight), heaviest first.
        weights = [float(r[1]) for r in rows]
        assert all(len(r) == 2 for r in rows), sc.backend
        assert weights == sorted(weights, reverse=True), sc.backend
        assert all(w >= 0 for w in weights), sc.backend

    def test_ungoverned_host_ships_full_table(self, each_run):
        sc = each_run
        n0, n2 = sc.nodes.names[0], sc.nodes.names[2]
        kind, rows = _proc_top(sc, n0, n2)
        assert kind == "full", sc.backend
        assert len(rows) > K, sc.backend
        assert all(len(r) == 4 for r in rows), sc.backend

    def test_remote_view_matches_publisher_view(self, each_run):
        """What n0 received is exactly what n1 last published."""
        sc = each_run
        n0, n1 = sc.nodes.names[:2]
        assert _proc_top(sc, n0, n1) == _proc_top(sc, n1, n1)

    def test_top_pairs_are_rank_stable(self, each_run):
        """The heaviest shipped pid really is a heavy pid in the local
        table (value-exactness is a sim-only guarantee: the live table
        keeps moving between publish and read)."""
        sc = each_run
        n0, n1 = sc.nodes.names[:2]
        _, rows = _proc_top(sc, n0, n1)
        shipped = [int(r[0]) for r in rows]
        table = sc.dprocs[n1].dmon.modules["proc"].keyed_collect(
            float(DURATION))
        pids = {row[0] for row in table}
        assert set(shipped) <= pids, (sc.backend, shipped)

    def test_sim_top_pair_is_exact_cumulative_max(self, sim_run):
        """Sim-only strong check: the shipped leader's weight equals
        the count-min cumulative estimate, which for a collision-free
        table is the exact sum of its per-poll CPU shares — and the
        leader outranks every other shipped pid."""
        sc = sim_run
        n0, n1 = sc.nodes.names[:2]
        _, rows = _proc_top(sc, n0, n1)
        leader_pid, leader_w = int(rows[0][0]), float(rows[0][1])
        for pid_s, w_s in rows[1:]:
            assert leader_w >= float(w_s)
        # The leader accumulated over >= 2 polls, so its cumulative
        # weight exceeds any single-poll share (which is <= 1.0 per
        # simulated CPU) unless the table is nearly idle.
        deployed = sc.dprocs[n1].dmon.filters.filter_for("proc")
        assert deployed.invocations >= 2
        assert leader_pid >= 1000  # a synthetic table pid
