"""Live-backend scaling machinery: batching, backpressure, node pool.

Unit level: a :class:`_PeerLink` against fake writers pins the
coalescing watermarks and the pause/defer/drop flow-control ladder.
End to end: real sockets prove frames coalesce on the wire, a slow
consumer trips the high watermark and resumes after drain, a
multi-process node pool delivers every host's metrics, and a streamed
run reconciles clean (backpressure drops are attributed, never
silent).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.kecho.event import ChannelEvent
from repro.live.codec import FrameDecoder, decode_frame, encode_frame
from repro.live.transport import (BatchConfig, FlowConfig, LiveStack,
                                  _PeerLink)
from repro.telemetry import TelemetryRegistry


class _FakeTransport:
    def __init__(self) -> None:
        self.buffer = 0
        self.closing = False
        self.limits = None

    def set_write_buffer_limits(self, high=None, low=None) -> None:
        self.limits = (high, low)

    def get_write_buffer_size(self) -> int:
        return self.buffer

    def is_closing(self) -> bool:
        return self.closing


class _FakeWriter:
    """Counts writes into a pretend kernel buffer that drain() empties."""

    def __init__(self) -> None:
        self.transport = _FakeTransport()
        self.writes: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.writes.append(data)
        self.transport.buffer += len(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)
        self.transport.buffer = 0

    def close(self) -> None:
        self.transport.closing = True


class _Clock:
    now = 0.0


def _event(i: int = 0) -> ChannelEvent:
    return ChannelEvent(channel="c", source="s", payload={"i": i},
                        size=32.0, submitted_at=float(i))


def _frame(i: int = 0) -> bytes:
    return encode_frame("t", _event(i))


def _stack(batch=None, flow=None) -> LiveStack:
    return LiveStack("alan", _Clock(), TelemetryRegistry("alan"),
                     batch=batch, flow=flow)


async def _link(stack: LiveStack, writer=None) -> _PeerLink:
    """A link with the dial replaced by a fake (or absent) writer."""
    link = _PeerLink(stack, "maui")
    link._opener.cancel()
    await asyncio.sleep(0)
    link._writer = writer
    return link


class TestPeerLinkBatching:
    def test_flush_on_frame_watermark(self):
        async def run():
            stack = _stack(batch=BatchConfig(max_bytes=1 << 30,
                                             max_delay=60.0,
                                             max_frames=3))
            writer = _FakeWriter()
            link = await _link(stack, writer)
            for i in range(3):
                assert link.send(_frame(i), _event(i))
            return stack, writer
        stack, writer = asyncio.run(run())
        assert len(writer.writes) == 1
        bodies = FrameDecoder().feed(writer.writes[0])
        assert [decode_frame(b)[1].payload["i"]
                for b in bodies] == [0, 1, 2]
        assert stack._t_batches.value == 1
        assert stack._t_wire_frames.value == 1
        assert stack._t_frames.value == 0  # counted by LiveConnection

    def test_flush_on_byte_watermark(self):
        async def run():
            stack = _stack(batch=BatchConfig(
                max_bytes=len(_frame(0)) + 1, max_delay=60.0,
                max_frames=1000))
            writer = _FakeWriter()
            link = await _link(stack, writer)
            link.send(_frame(0), _event(0))
            assert writer.writes == []          # still coalescing
            link.send(_frame(1), _event(1))     # crosses max_bytes
            return writer
        writer = asyncio.run(run())
        assert len(writer.writes) == 1
        assert len(FrameDecoder().feed(writer.writes[0])) == 2

    def test_flush_on_time_watermark(self):
        async def run():
            stack = _stack(batch=BatchConfig(max_bytes=1 << 30,
                                             max_delay=0.01,
                                             max_frames=1000))
            writer = _FakeWriter()
            link = await _link(stack, writer)
            link.send(_frame(0), _event(0))
            link.send(_frame(1), _event(1))
            assert writer.writes == []
            await asyncio.sleep(0.05)
            return writer
        writer = asyncio.run(run())
        assert len(writer.writes) == 1
        assert len(FrameDecoder().feed(writer.writes[0])) == 2

    def test_single_frame_flushes_as_itself(self):
        async def run():
            stack = _stack(batch=BatchConfig(max_delay=0.01))
            writer = _FakeWriter()
            link = await _link(stack, writer)
            link.send(_frame(7), _event(7))
            await asyncio.sleep(0.05)
            return stack, writer
        stack, writer = asyncio.run(run())
        assert len(writer.writes) == 1
        # No BATCH wrapper for a lone frame: bytes are the frame.
        assert writer.writes[0] == _frame(7)
        assert stack._t_batches.value == 0

    def test_preconnect_frames_counted_once(self):
        async def run():
            stack = _stack()
            link = await _link(stack, writer=None)
            link.send(_frame(0), _event(0))
            link.send(_frame(1), _event(1))
            assert stack._t_wire_frames.value == 0  # parked, not sent
            writer = _FakeWriter()
            link._writer = writer
            pending, link._pending = link._pending, []
            for data in pending:        # what _open() does on connect
                link._write_out(data)
            return stack, writer
        stack, writer = asyncio.run(run())
        assert len(writer.writes) == 2
        assert stack._t_wire_frames.value == 2


class TestPeerLinkBackpressure:
    FLOW = FlowConfig(high_watermark=100, low_watermark=10,
                      max_deferred=2)

    def test_pause_defer_resume_preserves_order(self):
        async def run():
            stack = _stack(flow=self.FLOW)
            writer = _FakeWriter()
            link = await _link(stack, writer)
            big = encode_frame("t", ChannelEvent(
                channel="c", source="s", payload={"x": "y" * 200},
                size=1.0, submitted_at=0.0))
            link.send(big, _event(0))          # buffer > high: pause
            assert link.paused
            assert stack._t_pauses.value == 1
            assert link.send(_frame(1), _event(1))  # deferred
            assert link.send(_frame(2), _event(2))
            assert stack._t_deferred.value == 2
            assert len(writer.writes) == 1     # nothing new on wire
            await asyncio.sleep(0.01)          # drainer runs
            return stack, writer
        stack, writer = asyncio.run(run())
        assert stack._t_resumes.value == 1
        assert [decode_frame(FrameDecoder().feed(w)[0])[1]
                .payload.get("i") for w in writer.writes[1:]] == [1, 2]

    def test_overflow_drops_are_recorded_and_attributed(self):
        async def run():
            stack = _stack(flow=self.FLOW)
            drops = []
            stack.drop_hook = (
                lambda event, dst, reason, now:
                drops.append((event.payload.get("i"), dst, reason)))
            writer = _FakeWriter()
            link = await _link(stack, writer)
            link.paused = True                 # as if past high water
            assert link.send(_frame(1), _event(1))
            assert link.send(_frame(2), _event(2))
            assert not link.send(_frame(3), _event(3))  # queue full
            return stack, drops
        stack, drops = asyncio.run(run())
        assert stack._t_drops.value == 1
        assert drops == [(3, "maui", "backpressure")]

    def test_dead_link_fails_sends_without_raising(self):
        async def run():
            stack = _stack()
            link = await _link(stack, _FakeWriter())
            link._dead = True
            return link.send(_frame(0), _event(0))
        assert asyncio.run(run()) is False


class TestSlowConsumerLive:
    """Real sockets: a peer that stops reading trips the watermark."""

    def test_watermark_pause_and_resume(self):
        async def run():
            stack = _stack(flow=FlowConfig(high_watermark=16 * 1024,
                                           low_watermark=4 * 1024,
                                           max_deferred=8))
            gate = asyncio.Event()

            async def slow_peer(reader, writer):
                await gate.wait()              # ... then drain it all
                while await reader.read(1 << 16):
                    pass

            server = await asyncio.start_server(
                slow_peer, "127.0.0.1", 0)
            address = server.sockets[0].getsockname()[:2]
            stack.resolve = lambda host: address
            conn = stack.connect("maui", "t")
            big = ChannelEvent(channel="c", source="s",
                               payload={"x": "y" * 65536}, size=1.0,
                               submitted_at=0.0)
            for _ in range(200):               # ~13 MB at the peer
                conn.send(big, size=1.0)
                await asyncio.sleep(0)
                if stack._t_pauses.value:
                    break
            assert stack._t_pauses.value >= 1, \
                "slow consumer never tripped the high watermark"
            gate.set()                         # peer starts reading
            for _ in range(200):
                await asyncio.sleep(0.02)
                if stack._t_resumes.value:
                    break
            assert stack._t_resumes.value >= 1, \
                "drain never resumed the link"
            await stack.stop()
            server.close()
            await server.wait_closed()
        asyncio.run(run())


@pytest.mark.slow
class TestLiveEndToEnd:
    def test_batching_reduces_wire_frames(self):
        import math
        from repro.api import Scenario
        from repro.dproc import DMonConfig, MetricId
        sc = Scenario(nodes=3, seed=5, backend="live",
                      dmon=DMonConfig(poll_interval=0.2))
        sc.with_node_pool(1, batch=BatchConfig(max_delay=0.4))
        sc.run(2.5)
        wire = sc.runtime.wire_stats()
        assert wire["net.tx_batches"] > 0
        assert wire["net.tx_wire_frames"] < wire["net.tx_frames"]
        # Content got there: a remote loadavg is cached at node 0.
        observer = sc.dprocs[sc.nodes.names[0]]
        assert not math.isnan(observer.metric(sc.nodes.names[1],
                                              MetricId.LOADAVG))

    def test_node_pool_delivers_all_hosts(self):
        from repro.api import Scenario
        from repro.dproc import DMonConfig, MetricId
        import math
        sc = Scenario(nodes=8, seed=3, backend="live",
                      dmon=DMonConfig(poll_interval=0.25))
        sc.with_node_pool(2)
        sc.run(4.0)
        observer = sc.dprocs[sc.nodes.names[0]]
        missing = [host for host in observer.hosts()
                   if host != sc.nodes.names[0]
                   and math.isnan(observer.metric(host,
                                                  MetricId.LOADAVG))]
        assert not missing, f"no delivery from {missing}"
        overhead = sc.overhead()
        assert overhead["n_nodes"] == 8  # both processes merged

    def test_streamed_live_run_reconciles_clean(self, tmp_path):
        from repro.api import Scenario
        from repro.dproc import DMonConfig
        from repro.stream import reconcile
        sc = Scenario(nodes=3, seed=9, backend="live",
                      dmon=DMonConfig(poll_interval=0.25))
        sc.with_node_pool(1, batch=BatchConfig(max_delay=0.3))
        sc.with_stream(str(tmp_path / "stream"))
        sc.run(2.5)
        report = reconcile(sc.stream, sc.dprocs)
        assert report.ok, report.render()
