"""Wire codec: frame round-trips and the incremental decoder."""

from __future__ import annotations

import struct

import pytest

from repro.dproc import MetricId
from repro.errors import ChannelError
from repro.kecho.control import DeployFilter, SetParameter
from repro.kecho.event import ChannelEvent
from repro.live.codec import (FrameDecoder, MAGIC, MAX_FRAME_BYTES,
                              decode_frame, encode_batch,
                              encode_frame)


def _roundtrip(tag: str, event: ChannelEvent):
    frame = encode_frame(tag, event)
    bodies = FrameDecoder().feed(frame)
    assert len(bodies) == 1
    return decode_frame(bodies[0])


class TestRoundTrip:
    def test_monitor_event(self):
        event = ChannelEvent(
            channel="dproc.monitor", source="maui",
            payload={"host": "maui",
                     "metrics": {MetricId.LOADAVG: (1.5, 2.0),
                                 MetricId.FREEMEM: (64e6, 2.0)}},
            size=88.0, submitted_at=2.0)
        tag, decoded = _roundtrip("kecho:dproc.monitor", event)
        assert tag == "kecho:dproc.monitor"
        assert decoded.channel == event.channel
        assert decoded.source == "maui"
        assert decoded.payload["host"] == "maui"
        metrics = decoded.payload["metrics"]
        assert metrics[MetricId.LOADAVG] == (1.5, 2.0)
        assert isinstance(next(iter(metrics)), MetricId)

    def test_control_event(self):
        msg = SetParameter(sender="alan", target="maui", metric="cpu",
                           parameter="period", spec="2")
        event = ChannelEvent(channel="dproc.control", source="alan",
                             payload=msg, size=32.0, submitted_at=0.5)
        _, decoded = _roundtrip("kecho:dproc.control", event)
        assert decoded.payload == msg

    def test_filter_deploy_event(self):
        msg = DeployFilter(sender="alan", target="maui", metric="*",
                           source="{ output[0] = input[LOADAVG]; }",
                           filter_id="f1")
        event = ChannelEvent(channel="dproc.control", source="alan",
                             payload=msg, size=64.0, submitted_at=1.0)
        _, decoded = _roundtrip("kecho:dproc.control", event)
        assert decoded.payload == msg

    def test_json_event(self):
        event = ChannelEvent(channel="app", source="alan",
                             payload={"k": [1, 2, {"v": "x"}]},
                             size=10.0, submitted_at=3.25)
        _, decoded = _roundtrip("custom:app", event)
        assert decoded.payload == {"k": [1, 2, {"v": "x"}]}

    def test_unencodable_payload_rejected(self):
        event = ChannelEvent(channel="app", source="alan",
                             payload=object(), size=1.0,
                             submitted_at=0.0)
        with pytest.raises(ChannelError):
            encode_frame("custom:app", event)


class TestProcSections:
    """Optional keyed-stream sections on MONITOR frames."""

    def _monitor(self, payload) -> ChannelEvent:
        return ChannelEvent(channel="dproc.monitor", source="maui",
                            payload=payload, size=88.0,
                            submitted_at=2.0)

    def test_top_pairs_roundtrip(self):
        payload = {"host": "maui",
                   "metrics": {MetricId.LOADAVG: (1.5, 2.0)},
                   "proc_top": {101: 2.5, 100: 3.0}}
        _, decoded = _roundtrip("kecho:dproc.monitor",
                                self._monitor(payload))
        assert decoded.payload["proc_top"] == {101: 2.5, 100: 3.0}

    def test_full_rows_roundtrip(self):
        payload = {"host": "maui",
                   "metrics": {MetricId.LOADAVG: (1.5, 2.0)},
                   "procs": {1000: (0.25, 2e6, 30.0),
                             1001: (0.125, 4e6, 0.0)}}
        _, decoded = _roundtrip("kecho:dproc.monitor",
                                self._monitor(payload))
        assert decoded.payload["procs"] == {1000: (0.25, 2e6, 30.0),
                                            1001: (0.125, 4e6, 0.0)}

    def test_absent_sections_stay_absent(self):
        payload = {"host": "maui",
                   "metrics": {MetricId.LOADAVG: (1.5, 2.0)}}
        _, decoded = _roundtrip("kecho:dproc.monitor",
                                self._monitor(payload))
        assert "proc_top" not in decoded.payload
        assert "procs" not in decoded.payload
        assert decoded.payload == payload

    def test_legacy_frame_without_sections_decodes(self):
        """A frame from a peer that predates the keyed sections (body
        ends right after the metric records) still decodes."""
        payload = {"host": "maui",
                   "metrics": {MetricId.LOADAVG: (1.5, 2.0)}}
        body = FrameDecoder().feed(
            encode_frame("t", self._monitor(payload)))[0]
        legacy = body[:-4]  # strip the two zero-count u16 sections
        _, decoded = decode_frame(legacy)
        assert decoded.payload == payload

    def test_too_many_rows_rejected(self):
        payload = {"host": "maui", "metrics": {},
                   "proc_top": {pid: 1.0 for pid in range(0x10000)}}
        with pytest.raises(ChannelError):
            encode_frame("t", self._monitor(payload))


class TestIncrementalDecoder:
    def _frames(self, n: int) -> list[bytes]:
        return [encode_frame("t", ChannelEvent(
            channel="c", source="s", payload={"i": i}, size=1.0,
            submitted_at=float(i))) for i in range(n)]

    def test_byte_at_a_time(self):
        stream = b"".join(self._frames(3))
        decoder = FrameDecoder()
        bodies = []
        for i in range(len(stream)):
            bodies.extend(decoder.feed(stream[i:i + 1]))
        assert [decode_frame(b)[1].payload["i"]
                for b in bodies] == [0, 1, 2]

    def test_multiple_frames_in_one_chunk(self):
        stream = b"".join(self._frames(4))
        assert len(FrameDecoder().feed(stream)) == 4

    def test_partial_frame_held_back(self):
        frame = self._frames(1)[0]
        decoder = FrameDecoder()
        assert decoder.feed(frame[:7]) == []
        assert len(decoder.feed(frame[7:])) == 1

    def test_oversize_length_prefix_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ChannelError):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))


class TestBadFrames:
    def test_bad_magic(self):
        body = FrameDecoder().feed(encode_frame("t", ChannelEvent(
            channel="c", source="s", payload={}, size=1.0,
            submitted_at=0.0)))[0]
        corrupt = struct.pack(">H", MAGIC ^ 0xFFFF) + body[2:]
        with pytest.raises(ChannelError):
            decode_frame(corrupt)

    def test_truncated_body(self):
        body = FrameDecoder().feed(encode_frame("t", ChannelEvent(
            channel="c", source="s", payload={}, size=1.0,
            submitted_at=0.0)))[0]
        with pytest.raises(ChannelError):
            decode_frame(body[:-3])


class TestBatch:
    def _frames(self, n: int) -> list[bytes]:
        return [encode_frame("t", ChannelEvent(
            channel="c", source="s", payload={"i": i}, size=1.0,
            submitted_at=float(i))) for i in range(n)]

    def test_batch_unwraps_in_order(self):
        batch = encode_batch(self._frames(5))
        bodies = FrameDecoder().feed(batch)
        assert [decode_frame(b)[1].payload["i"]
                for b in bodies] == [0, 1, 2, 3, 4]

    def test_mixed_stream_of_batches_and_singles(self):
        frames = self._frames(6)
        stream = (frames[0] + encode_batch(frames[1:4]) + frames[4]
                  + encode_batch(frames[5:]))
        bodies = FrameDecoder().feed(stream)
        assert [decode_frame(b)[1].payload["i"]
                for b in bodies] == [0, 1, 2, 3, 4, 5]

    def test_batch_byte_at_a_time(self):
        batch = encode_batch(self._frames(3))
        decoder = FrameDecoder()
        bodies = []
        for i in range(len(batch)):
            bodies.extend(decoder.feed(batch[i:i + 1]))
        assert len(bodies) == 3
        decoder.finish()

    def test_decode_frame_refuses_batch_body(self):
        batch = encode_batch(self._frames(2))
        with pytest.raises(ChannelError, match="unwrapped"):
            decode_frame(batch[4:])

    def test_empty_batch_rejected(self):
        with pytest.raises(ChannelError):
            encode_batch([])

    def test_member_bound_enforced(self):
        from repro.live.codec import MAX_BATCH_FRAMES
        frame = self._frames(1)[0]
        with pytest.raises(ChannelError, match="bound"):
            encode_batch([frame] * (MAX_BATCH_FRAMES + 1))

    def test_nested_batch_rejected(self):
        inner = encode_batch(self._frames(2))
        outer = encode_batch([inner, self._frames(1)[0]])
        with pytest.raises(ChannelError, match="nested"):
            FrameDecoder().feed(outer)

    def test_trailing_bytes_rejected(self):
        batch = bytearray(encode_batch(self._frames(2)))
        # Claim one member but carry two: trailing bytes after count.
        struct.pack_into(">I", batch, 4 + 3, 1)
        with pytest.raises(ChannelError, match="trailing"):
            FrameDecoder().feed(bytes(batch))


class TestDecoderHardening:
    def test_zero_length_frame_rejected(self):
        with pytest.raises(ChannelError, match="zero-length"):
            FrameDecoder().feed(struct.pack(">I", 0))

    def test_finish_clean_at_frame_boundary(self):
        frame = encode_frame("t", ChannelEvent(
            channel="c", source="s", payload={}, size=1.0,
            submitted_at=0.0))
        decoder = FrameDecoder()
        decoder.feed(frame)
        decoder.finish()  # no residue -> no error

    def test_finish_raises_on_partial_header(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00")
        with pytest.raises(ChannelError, match="mid-frame"):
            decoder.finish()

    def test_finish_raises_on_partial_body(self):
        frame = encode_frame("t", ChannelEvent(
            channel="c", source="s", payload={}, size=1.0,
            submitted_at=0.0))
        decoder = FrameDecoder()
        decoder.feed(frame[:-1])
        with pytest.raises(ChannelError, match="mid-frame"):
            decoder.finish()

    def test_pending_bytes_tracks_buffer(self):
        frame = encode_frame("t", ChannelEvent(
            channel="c", source="s", payload={}, size=1.0,
            submitted_at=0.0))
        decoder = FrameDecoder()
        decoder.feed(frame[:10])
        assert decoder.pending_bytes == 10
        decoder.feed(frame[10:])
        assert decoder.pending_bytes == 0
