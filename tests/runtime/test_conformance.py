"""Cross-backend conformance: sim and live expose the same surface.

One scenario script runs on both backends (nodes, modules, control
writes, an E-code filter) and every observable contract — the procfs
layout, the delivered metric schema, control-file semantics, filter
behavior — must agree.  The live run costs ~2 wall seconds and is
shared by the whole module.
"""

from __future__ import annotations

import math

import pytest

from repro.api import Scenario
from repro.dproc import DMonConfig, MODULE_METRICS, MetricId

POLL = 0.2
DURATION = 1.5
MODULES = ("cpu", "mem", "net")

#: Scope-``cpu`` halving filter: only LOADAVG flows for the cpu module
#: on the filtered host, at half value.
HALF_FILTER = ("filter cpu id=half\n"
               "{\n"
               "    output[0] = input[LOADAVG];\n"
               "    output[0].value = input[LOADAVG].value * 0.5;\n"
               "}\n")


def _wire(scenario: Scenario) -> Scenario:
    """The shared scenario script: identical on both backends."""

    def control_writes(sc: Scenario) -> None:
        n0, n1, n2 = sc.nodes.names
        sc.dprocs[n0].write(f"/proc/cluster/{n1}/control",
                            "period cpu 2")
        sc.dprocs[n0].write(f"/proc/cluster/{n2}/control", HALF_FILTER)

    return scenario.with_setup(control_writes)


@pytest.fixture(scope="module")
def sim_run() -> Scenario:
    sc = Scenario(nodes=3, seed=11, backend="sim",
                  dmon=DMonConfig(poll_interval=POLL), modules=MODULES)
    return _wire(sc).run(DURATION)


@pytest.fixture(scope="module")
def live_run() -> Scenario:
    sc = Scenario(nodes=3, seed=11, backend="live",
                  dmon=DMonConfig(poll_interval=POLL), modules=MODULES)
    return _wire(sc).run(DURATION)


@pytest.fixture(scope="module", params=["sim", "live"])
def each_run(request, sim_run, live_run) -> Scenario:
    return sim_run if request.param == "sim" else live_run


class TestProcfsLayout:
    def test_node_names_agree(self, sim_run, live_run):
        assert sim_run.nodes.names == live_run.nodes.names

    def test_cluster_dir_lists_all_hosts(self, each_run):
        sc = each_run
        for dproc in sc.dprocs.values():
            assert set(dproc.listdir("/proc/cluster")) == \
                set(sc.nodes.names)

    def test_host_dirs_identical_across_backends(self, sim_run,
                                                 live_run):
        n0 = sim_run.nodes.names[0]
        for host in sim_run.nodes.names:
            assert sim_run.dprocs[n0].listdir(
                f"/proc/cluster/{host}") == \
                live_run.dprocs[n0].listdir(f"/proc/cluster/{host}")

    def test_metric_files_read_as_floats(self, each_run):
        sc = each_run
        n0, n1 = sc.nodes.names[:2]
        for fname in ("loadavg", "freemem", "net_bandwidth"):
            text = sc.dprocs[n0].read(f"/proc/cluster/{n1}/{fname}")
            float(text.split()[0])  # parses, both backends


class TestDeliveredSchema:
    def test_unfiltered_modules_deliver_full_schema(self, each_run):
        sc = each_run
        n0, n1 = sc.nodes.names[:2]
        observer = sc.dprocs[n0]
        for module in ("mem", "net"):
            for metric in MODULE_METRICS[module]:
                assert not math.isnan(observer.metric(n1, metric)), \
                    f"{sc.backend}: {metric.name} not delivered"

    def test_schema_sets_agree(self, sim_run, live_run):
        def delivered(sc: Scenario) -> set[MetricId]:
            n0, n2 = sc.nodes.names[0], sc.nodes.names[2]
            return {m for m in MetricId
                    if not math.isnan(sc.dprocs[n0].metric(n2, m))}
        assert delivered(sim_run) == delivered(live_run)


class TestControlSemantics:
    def test_period_applied_at_target(self, each_run):
        sc = each_run
        n1 = sc.nodes.names[1]
        policy = sc.dprocs[n1].dmon.policies[MetricId.LOADAVG]
        assert policy.period == 2.0, sc.backend

    def test_control_readback_logs_write(self, each_run):
        sc = each_run
        n0, n1 = sc.nodes.names[:2]
        log = sc.dprocs[n0].read(f"/proc/cluster/{n1}/control")
        assert "period cpu 2" in log, sc.backend


class TestFilterBehavior:
    def test_filter_compiled_at_target(self, each_run):
        sc = each_run
        n2 = sc.nodes.names[2]
        deployed = sc.dprocs[n2].dmon.filters.filter_for("cpu")
        assert deployed is not None and deployed.filter_id == "half"
        assert deployed.invocations > 0
        assert deployed.errors == 0

    def test_filter_halves_loadavg(self, each_run):
        sc = each_run
        n0, n2 = sc.nodes.names[0], sc.nodes.names[2]
        remote = sc.dprocs[n0].metric(n2, MetricId.LOADAVG)
        local = sc.dprocs[n2].metric(n2, MetricId.LOADAVG)
        assert not math.isnan(remote), sc.backend
        # Published value is half the local reading (small slack: the
        # live loadavg moves between publish and read).
        assert remote <= local * 0.5 + 0.05, (sc.backend, remote, local)
