"""The Scenario facade and the deprecation shims."""

from __future__ import annotations

import warnings

import pytest

from repro.api import Scenario, ScenarioError
from repro.deprecation import reset_deprecations
from repro.dproc import MetricId
from repro.sim import Environment, build_cluster


@pytest.fixture(autouse=True)
def _fresh_deprecations():
    reset_deprecations()
    yield
    reset_deprecations()


class TestBuildAndRun:
    def test_build_exposes_world(self):
        sc = Scenario(nodes=3, seed=1).build()
        assert sc.backend == "sim"
        assert len(sc.nodes) == 3
        assert set(sc.dprocs) == set(sc.nodes.names)
        assert sc.env.now == 0.0
        assert sc.clock is sc.env

    def test_build_is_idempotent(self):
        sc = Scenario(nodes=2).build()
        runtime = sc.runtime
        assert sc.build().runtime is runtime

    def test_run_advances_and_returns_self(self):
        sc = Scenario(nodes=2, seed=3)
        assert sc.run(5.0) is sc
        assert sc.env.now == 5.0
        sc.run(5.0)
        assert sc.env.now == 10.0

    def test_run_until_is_absolute(self):
        sc = Scenario(nodes=2, seed=3).run_until(4.0)
        assert sc.env.now == 4.0

    def test_monitor_hosts_int_prefix(self):
        sc = Scenario(nodes=4, seed=0, monitor_hosts=2).build()
        assert list(sc.dprocs) == sc.nodes.names[:2]

    def test_monitor_hosts_by_name(self):
        sc = Scenario(nodes=3, seed=0,
                      monitor_hosts=["etna"]).build()
        assert list(sc.dprocs) == ["etna"]

    def test_same_seed_same_world(self):
        def reading(seed):
            sc = Scenario(nodes=3, seed=seed).run(10.0)
            n0, n1 = sc.nodes.names[:2]
            return sc.dprocs[n0].metric(n1, MetricId.FREEMEM)
        assert reading(7) == reading(7)

    def test_overhead_summary_shape(self):
        sc = Scenario(nodes=2, seed=0).run(5.0)
        report = sc.overhead()
        assert report["n_nodes"] == 2
        assert report["sim_seconds"] == 5.0
        assert report["polls"] > 0


class TestPhaseErrors:
    def test_unknown_backend(self):
        with pytest.raises(ScenarioError):
            Scenario(backend="quantum")

    def test_world_needs_build(self):
        with pytest.raises(ScenarioError):
            Scenario().nodes

    def test_hooks_frozen_after_build(self):
        sc = Scenario(nodes=2).build()
        with pytest.raises(ScenarioError):
            sc.with_setup(lambda s: None)

    def test_live_rejects_eager_build(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").build()

    def test_live_rejects_run_until(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").run_until(1.0)

    def test_live_rejects_faults(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").with_faults()

    def test_live_rejects_tracing(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").with_tracing()

    def test_sim_has_env_live_does_not(self):
        sc = Scenario(nodes=2, backend="live")
        with pytest.raises(ScenarioError):
            sc.env


class TestHookOrder:
    def test_cluster_hook_runs_before_deploy(self):
        order = []
        sc = (Scenario(nodes=2, seed=0)
              .with_cluster_setup(
                  lambda s: order.append(("cluster", bool(s.dprocs))))
              .with_setup(
                  lambda s: order.append(("setup", bool(s.dprocs))))
              .build())
        assert order == [("cluster", False), ("setup", True)]
        assert sc.dprocs

    def test_fault_hook_sees_injector(self):
        seen = []
        (Scenario(nodes=2, seed=0)
         .with_faults(lambda s: seen.append(s.faults))
         .build())
        assert seen and seen[0] is not None


class TestDeprecationShims:
    def test_n_nodes_warns_exactly_once(self):
        env = Environment()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build_cluster(env, n_nodes=2, seed=0)
            build_cluster(Environment(), n_nodes=2, seed=0)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "n_nodes" in str(w.message)]
        assert len(deprecations) == 1
        assert "nodes=" in str(deprecations[0].message)

    def test_n_nodes_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cluster = build_cluster(Environment(), n_nodes=3, seed=0)
        assert len(cluster) == 3

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="deprecated alias"):
            build_cluster(Environment(), nodes=2, n_nodes=2)

    def test_chaos_recovery_alias(self):
        from repro.harness.chaos import chaos_recovery
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = chaos_recovery(n_nodes=4, duration=10.0,
                                    crash_at=4.0, reboot_at=7.0)
        assert report.n_nodes == 4
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
