"""The Scenario facade and the removed-alias guard rails."""

from __future__ import annotations

import pytest

from repro.api import Scenario, ScenarioError
from repro.dproc import MetricId
from repro.sim import Environment, build_cluster


class TestBuildAndRun:
    def test_build_exposes_world(self):
        sc = Scenario(nodes=3, seed=1).build()
        assert sc.backend == "sim"
        assert len(sc.nodes) == 3
        assert set(sc.dprocs) == set(sc.nodes.names)
        assert sc.env.now == 0.0
        assert sc.clock is sc.env

    def test_build_is_idempotent(self):
        sc = Scenario(nodes=2).build()
        runtime = sc.runtime
        assert sc.build().runtime is runtime

    def test_run_advances_and_returns_self(self):
        sc = Scenario(nodes=2, seed=3)
        assert sc.run(5.0) is sc
        assert sc.env.now == 5.0
        sc.run(5.0)
        assert sc.env.now == 10.0

    def test_run_until_is_absolute(self):
        sc = Scenario(nodes=2, seed=3).run_until(4.0)
        assert sc.env.now == 4.0

    def test_monitor_hosts_int_prefix(self):
        sc = Scenario(nodes=4, seed=0, monitor_hosts=2).build()
        assert list(sc.dprocs) == sc.nodes.names[:2]

    def test_monitor_hosts_by_name(self):
        sc = Scenario(nodes=3, seed=0,
                      monitor_hosts=["etna"]).build()
        assert list(sc.dprocs) == ["etna"]

    def test_same_seed_same_world(self):
        def reading(seed):
            sc = Scenario(nodes=3, seed=seed).run(10.0)
            n0, n1 = sc.nodes.names[:2]
            return sc.dprocs[n0].metric(n1, MetricId.FREEMEM)
        assert reading(7) == reading(7)

    def test_overhead_summary_shape(self):
        sc = Scenario(nodes=2, seed=0).run(5.0)
        report = sc.overhead()
        assert report["n_nodes"] == 2
        assert report["sim_seconds"] == 5.0
        assert report["polls"] > 0


class TestPhaseErrors:
    def test_unknown_backend(self):
        with pytest.raises(ScenarioError):
            Scenario(backend="quantum")

    def test_world_needs_build(self):
        with pytest.raises(ScenarioError):
            Scenario().nodes

    def test_hooks_frozen_after_build(self):
        sc = Scenario(nodes=2).build()
        with pytest.raises(ScenarioError):
            sc.with_setup(lambda s: None)

    def test_live_rejects_eager_build(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").build()

    def test_live_rejects_run_until(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").run_until(1.0)

    def test_live_rejects_faults(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").with_faults()

    def test_live_rejects_tracing(self):
        with pytest.raises(ScenarioError):
            Scenario(nodes=2, backend="live").with_tracing()

    def test_sim_has_env_live_does_not(self):
        sc = Scenario(nodes=2, backend="live")
        with pytest.raises(ScenarioError):
            sc.env


class TestHookOrder:
    def test_cluster_hook_runs_before_deploy(self):
        order = []
        sc = (Scenario(nodes=2, seed=0)
              .with_cluster_setup(
                  lambda s: order.append(("cluster", bool(s.dprocs))))
              .with_setup(
                  lambda s: order.append(("setup", bool(s.dprocs))))
              .build())
        assert order == [("cluster", False), ("setup", True)]
        assert sc.dprocs

    def test_fault_hook_sees_injector(self):
        seen = []
        (Scenario(nodes=2, seed=0)
         .with_faults(lambda s: seen.append(s.faults))
         .build())
        assert seen and seen[0] is not None


class TestRemovedAliases:
    """The PR 5 ``n_nodes`` shims are gone; the error says what to do."""

    def test_build_cluster_rejects_n_nodes(self):
        with pytest.raises(TypeError, match="nodes=..."):
            build_cluster(Environment(), n_nodes=3, seed=0)

    def test_chaos_recovery_rejects_n_nodes(self):
        from repro.harness.chaos import chaos_recovery
        with pytest.raises(TypeError, match="nodes=..."):
            chaos_recovery(n_nodes=4, duration=10.0)

    def test_deprecation_module_removed(self):
        with pytest.raises(ImportError):
            import repro.deprecation  # noqa: F401
