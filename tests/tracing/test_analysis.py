"""Critical-path math, latency breakdown, and audit resolution on
hand-built traces with known answers."""

from __future__ import annotations

import math

import pytest

from repro.tracing import (TraceCollector, adaptation_audit,
                           critical_path, latency_breakdown,
                           render_audit, render_breakdown)
from repro.tracing.analysis import _percentile, _resolve_trigger


def build_pipeline_trace(collector: TraceCollector, trace_id: str,
                         base: float, net: float = 0.004) -> None:
    """One module -> dmon -> kecho -> transport -> delivery -> update
    chain with all the latency (``net``) in the transport hop."""
    root = collector.begin_trace(trace_id, name="poll:a", stage="dmon",
                                 node="a", start=base)
    collector.record_span(root.context, name="module:cpu",
                          stage="module", node="a", start=base,
                          end=base, samples=2)
    collector.record_span(root.context, name="param:loadavg",
                          stage="dmon.param", node="a", start=base,
                          end=base, metric="loadavg", value=1.4,
                          decision="send", rule="period 1; change 5")
    submit = collector.start_span(root.context, name="submit:metrics",
                                  stage="kecho", node="a", start=base)
    hop = collector.start_span(submit.context, name="hop:a->b",
                               stage="transport", node="a", start=base)
    submit.finish(base)
    deliver = collector.record_span(hop.context, name="deliver:b",
                                    stage="delivery", node="b",
                                    start=base + net, end=base + net)
    hop.finish(base + net)
    collector.record_span(deliver.context, name="update:b",
                          stage="update", node="b", start=base + net,
                          end=base + net, records=1)
    root.finish(base)


class TestCriticalPath:
    def test_hand_built_chain(self):
        collector = TraceCollector()
        build_pipeline_trace(collector, "t", base=10.0, net=0.004)
        segments = critical_path(collector.tree("t"))
        stages = [span.stage for span, _ in segments]
        assert stages == ["dmon", "kecho", "transport", "delivery",
                          "update"]
        shares = {span.stage: share for span, share in segments}
        # All the latency sits in the hop: the gap between the hop
        # starting and the delivery span starting.
        assert shares["transport"] == pytest.approx(0.004)
        assert sum(s for _, s in segments) == pytest.approx(0.004)

    def test_shares_sum_to_end_to_end(self):
        collector = TraceCollector()
        build_pipeline_trace(collector, "t", base=3.0, net=0.123)
        tree = collector.tree("t")
        segments = critical_path(tree)
        terminal = segments[-1][0]
        chain_root = segments[0][0]
        total = sum(share for _, share in segments)
        assert math.isclose(total, terminal.end - chain_root.start)

    def test_empty_and_open_traces(self):
        collector = TraceCollector()
        collector.begin_trace("t", name="poll", stage="dmon", node="a",
                              start=0.0)  # never finished
        assert critical_path(collector.tree("t")) == []


class TestPercentiles:
    def test_nearest_rank(self):
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.95) == 95.0
        assert _percentile(values, 0.99) == 99.0
        assert _percentile([7.0], 0.99) == 7.0
        assert math.isnan(_percentile([], 0.5))


class TestLatencyBreakdown:
    def test_aggregation_and_skips(self):
        collector = TraceCollector()
        for i, net in enumerate((0.002, 0.004, 0.010)):
            build_pipeline_trace(collector, f"t{i}", base=float(i),
                                 net=net)
        # A trace that never reached a consumer is skipped.
        stub = collector.begin_trace("stub", name="poll", stage="dmon",
                                     node="a", start=9.0)
        stub.finish(9.0)
        report = latency_breakdown(collector)
        assert report["n_traces"] == 3
        assert report["n_traces_skipped"] == 1
        assert report["end_to_end"]["count"] == 3
        assert report["end_to_end"]["p50"] == pytest.approx(0.004)
        assert report["end_to_end"]["max"] == pytest.approx(0.010)
        # Stage keys come out in pipeline order.
        assert list(report["stages"]) == ["dmon", "kecho", "transport",
                                          "delivery", "update"]
        assert report["stages"]["transport"]["p50"] == \
            pytest.approx(0.004)

    def test_render_smoke(self):
        collector = TraceCollector()
        build_pipeline_trace(collector, "t", base=0.0)
        text = render_breakdown(latency_breakdown(collector))
        assert "transport" in text
        assert "end-to-end" in text
        assert "p99" in text


class TestAuditResolution:
    def audit_collector(self):
        collector = TraceCollector()
        build_pipeline_trace(collector, "b:poll:5", base=5.0,
                             net=0.004)
        collector.record_adaptation(
            time=5.5, node="server", client="b",
            policy="dynamic(cpu)", previous="downsample=1",
            chosen="downsample=2",
            observations={"loadavg": 1.4},
            triggers=({"metric": "loadavg", "observation": "loadavg",
                       "value": 1.4, "trace_id": "b:poll:5",
                       "received_at": 5.004},))
        return collector

    def test_param_rule_resolved(self):
        collector = self.audit_collector()
        audit = adaptation_audit(collector)
        assert len(audit) == 1
        trigger = audit[0]["triggers"][0]
        assert trigger["rule"] == "period 1; change 5"
        assert trigger["filter_id"] is None
        assert math.isclose(trigger["monitor_latency"], 0.004)

    def test_filter_evaluation_resolved(self):
        collector = TraceCollector()
        root = collector.begin_trace("t", name="poll", stage="dmon",
                                     node="a", start=0.0)
        collector.record_span(root.context, name="filter:f1",
                              stage="dmon.filter", node="a", start=0.0,
                              end=0.0, filter_id="f1", scope="*",
                              kept=("cpu", "loadavg"))
        root.finish(0.0)
        resolved = _resolve_trigger(collector, {
            "metric": "loadavg", "value": 1.0, "trace_id": "t",
            "received_at": 0.1})
        assert resolved["filter_id"] == "f1"
        assert resolved["rule"] is None
        assert math.isclose(resolved["monitor_latency"], 0.1)

    def test_untraced_and_evicted_triggers_degrade(self):
        collector = self.audit_collector()
        untraced = _resolve_trigger(collector, {
            "metric": "loadavg", "value": 1.0, "trace_id": None,
            "received_at": None})
        assert untraced["rule"] is None
        assert untraced["monitor_latency"] is None
        evicted = _resolve_trigger(collector, {
            "metric": "loadavg", "value": 1.0, "trace_id": "gone",
            "received_at": 1.0})
        assert evicted["rule"] is None
        assert evicted["monitor_latency"] is None

    def test_render_audit(self):
        text = render_audit(adaptation_audit(self.audit_collector()))
        assert "dynamic(cpu)" in text
        assert "downsample=1 -> downsample=2" in text
        assert "rule 'period 1; change 5'" in text
        assert "trace b:poll:5" in text
        assert "monitor latency" in text
        assert render_audit([]).startswith("adaptation audit: no")
