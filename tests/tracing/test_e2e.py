"""End-to-end tracing: 20-node scenario, determinism pins, CLI.

The determinism tests are the contract the tentpole rests on: tracing
is passive (a traced run is bit-identical to an untraced one) and the
collector itself is reproducible (same seed -> same sampled span
trees).
"""

from __future__ import annotations

import json

import pytest

from repro.harness.chaos import chaos_recovery
from repro.harness.tracecli import (main as trace_main,
                                    pick_showcase_trace,
                                    run_trace_scenario)
from repro.tracing import (TraceCollector, adaptation_audit,
                           latency_breakdown, to_chrome_trace)

CHAOS = dict(nodes=50, duration=30.0, seed=11)


@pytest.fixture(scope="module")
def scenario20() -> TraceCollector:
    """The acceptance scenario: 20 nodes, seed 1, full sampling."""
    return run_trace_scenario(nodes=20, seed=1, duration=30.0)


@pytest.fixture(scope="module")
def chaos_pair():
    """The same 50-node chaos run, untraced and traced."""
    plain = chaos_recovery(**CHAOS)
    tracer = TraceCollector(seed=CHAOS["seed"], max_traces=16384)
    traced = chaos_recovery(**CHAOS, tracer=tracer)
    return plain, traced, tracer


class TestScenario:
    def test_all_pipeline_stages_traced(self, scenario20):
        stages = {span.stage for tree in scenario20.trees()
                  for span in tree.spans}
        assert {"dmon", "module", "dmon.param", "kecho", "transport",
                "delivery", "update", "control"} <= stages

    def test_breakdown_reaches_consumers(self, scenario20):
        report = latency_breakdown(scenario20)
        assert report["n_traces"] > 100
        assert report["end_to_end"]["p50"] > 0.0
        assert report["stages"]["transport"]["count"] > 0

    def test_audit_names_rule_and_trace(self, scenario20):
        """>=1 SmartPointer adaptation is linked to the exact metric
        event and threshold rule that triggered it."""
        audit = adaptation_audit(scenario20)
        assert audit, "no adaptation decisions recorded"
        resolved = [
            trig for entry in audit for trig in entry["triggers"]
            if trig.get("rule") and trig.get("trace_id") in scenario20]
        assert resolved, "no trigger resolved to a rule + trace"
        assert any(t["metric"] == "loadavg" for t in resolved)
        assert any("change 5" in t["rule"] for t in resolved)
        # The showcase picker prefers exactly such a trace.
        showcase = pick_showcase_trace(scenario20, audit)
        assert showcase in scenario20

    def test_perfetto_schema(self, scenario20):
        doc = json.loads(json.dumps(to_chrome_trace(scenario20)))
        assert set(doc) == {"traceEvents", "displayTimeUnit",
                            "otherData"}
        assert doc["otherData"]["n_traces"] == len(scenario20)
        assert len(doc["traceEvents"]) > 1000
        for event in doc["traceEvents"]:
            assert event["ph"] in ("M", "X")
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["args"]["trace_id"]


class TestDeterminism:
    def test_tracing_is_passive(self, chaos_pair):
        """Seeded 50-node run: identical with tracing on vs off."""
        plain, traced, _ = chaos_pair
        assert plain.trace == traced.trace
        assert plain.recovery_time == traced.recovery_time
        assert plain.rejoin_time == traced.rejoin_time

    def test_same_seed_same_span_trees(self):
        a = run_trace_scenario(nodes=10, seed=5, duration=12.0)
        b = run_trace_scenario(nodes=10, seed=5, duration=12.0)
        assert a.snapshot() == b.snapshot()

    def test_sampling_deterministic_and_subsetting(self):
        kwargs = dict(nodes=8, seed=5, duration=10.0)
        full = run_trace_scenario(**kwargs, sample_rate=1.0)
        s1 = run_trace_scenario(**kwargs, sample_rate=0.4)
        s2 = run_trace_scenario(**kwargs, sample_rate=0.4)
        assert s1.snapshot() == s2.snapshot()
        assert 0 < len(s1) < len(full)
        assert set(s1.trace_ids()) < set(full.trace_ids())
        assert s1.traces_sampled_out > 0


class TestDropAccounting:
    def test_faults_annotate_spans(self, chaos_pair):
        """Loss / partition / crash surface as dropped spans carrying
        the fault kind — satellite 2."""
        _, _, tracer = chaos_pair
        dropped = [span for tree in tracer.trees()
                   for span in tree.spans if span.status == "dropped"]
        assert dropped
        faults = {span.attrs.get("fault") for span in dropped}
        faults.discard(None)
        assert faults, "dropped spans lost their fault annotation"
        assert any(f == "partition" or f.startswith("crash:")
                   or f == "loss" for f in faults)


class TestCli:
    def test_chrome_export(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = trace_main(["--nodes", "6", "--seed", "3",
                         "--duration", "8", "--export", "chrome",
                         "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "critical-path latency breakdown" in printed
        assert "adaptation audit" in printed
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["source"] == "repro.tracing"

    def test_rejects_tiny_cluster(self):
        with pytest.raises(SystemExit):
            trace_main(["--nodes", "1"])
