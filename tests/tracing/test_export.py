"""Chrome trace-event JSON schema and text span-tree rendering."""

from __future__ import annotations

import json

from repro.tracing import TraceCollector, render_tree, to_chrome_trace

from tests.tracing.test_analysis import build_pipeline_trace


def small_collector() -> TraceCollector:
    collector = TraceCollector(seed=3, sample_rate=1.0)
    build_pipeline_trace(collector, "t0", base=0.0, net=0.004)
    build_pipeline_trace(collector, "t1", base=1.0, net=0.002)
    return collector


class TestChromeTrace:
    def test_schema(self):
        doc = to_chrome_trace(small_collector())
        # Round-trips through JSON (Perfetto ingests the text form).
        doc = json.loads(json.dumps(doc))
        assert set(doc) == {"traceEvents", "displayTimeUnit",
                            "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["source"] == "repro.tracing"
        assert doc["otherData"]["n_traces"] == 2
        assert doc["otherData"]["seed"] == 3
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        for event in doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            assert {"name", "cat", "ts", "dur", "pid",
                    "tid", "args"} <= set(event)
            assert event["dur"] >= 0
            args = event["args"]
            assert {"trace_id", "span_id", "parent_id",
                    "status"} <= set(args)

    def test_pid_per_node_tid_per_trace(self):
        doc = to_chrome_trace(small_collector())
        procs = {e["args"]["name"]: e["pid"]
                 for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        # Nodes sorted by name get 1-based pids.
        assert procs == {"a": 1, "b": 2}
        threads = {e["args"]["name"]: e["tid"]
                   for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert threads["t0"] == 1
        assert threads["t1"] == 2

    def test_timestamps_in_microseconds(self):
        doc = to_chrome_trace(small_collector())
        deliver = next(e for e in doc["traceEvents"]
                       if e["ph"] == "X" and e["name"] == "deliver:b"
                       and e["args"]["trace_id"] == "t0")
        assert deliver["ts"] == 0.004 * 1e6
        assert deliver["cat"] == "delivery"

    def test_open_spans_skipped_and_subsetting(self):
        collector = small_collector()
        collector.begin_trace("open", name="poll", stage="dmon",
                              node="a", start=5.0)  # never finished
        doc = to_chrome_trace(collector, trace_ids=["t1", "missing"])
        assert doc["otherData"]["n_traces"] == 1
        traced = {e["args"]["trace_id"] for e in doc["traceEvents"]
                  if e["ph"] == "X"}
        assert traced == {"t1"}


class TestRenderTree:
    def test_shape(self):
        collector = small_collector()
        text = render_tree(collector.tree("t0"))
        lines = text.splitlines()
        assert lines[0].startswith("trace t0")
        assert "7 spans" in lines[0]
        assert any("- poll:a [dmon] @a" in line for line in lines)
        assert any("deliver:b [delivery] @b" in line for line in lines)
        # The delivery span is nested under the transport hop.
        hop_depth = next(line for line in lines
                         if "hop:a->b" in line).index("-")
        deliver_depth = next(line for line in lines
                             if "deliver:b" in line).index("-")
        assert deliver_depth > hop_depth

    def test_status_and_drop_markers(self):
        collector = TraceCollector(max_spans_per_trace=2)
        root = collector.begin_trace("t", name="poll", stage="dmon",
                                     node="a", start=0.0)
        hop = collector.start_span(root.context, name="hop",
                                   stage="transport", node="a",
                                   start=0.0)
        hop.finish(0.001, status="dropped", fault="partition")
        collector.record_span(root.context, name="over-cap",
                              stage="module", node="a", start=0.0,
                              end=0.0)
        root.finish(0.0)
        text = render_tree(collector.tree("t"))
        assert "1 dropped" in text.splitlines()[0]
        assert "!dropped" in text
        assert "fault=partition" in text
