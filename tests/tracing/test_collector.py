"""Unit tests for the trace collector: sampling, bounds, assembly."""

from __future__ import annotations

import pytest

from repro.errors import TracingError
from repro.telemetry.instruments import SpanLog
from repro.telemetry.ordering import (check_interval, freeze_attrs,
                                      span_sort_key)
from repro.tracing import NULL_TRACER, TraceCollector, trace_hash
from repro.tracing.context import TraceContext


class TestSharedOrdering:
    """SpanLog and TraceCollector share one span-semantics contract."""

    def test_reversed_interval_rejected_everywhere(self):
        with pytest.raises(ValueError, match="before it starts"):
            check_interval("x", 2.0, 1.0)
        log = SpanLog("t")
        with pytest.raises(ValueError, match="before it starts"):
            log.record("x", 2.0, 1.0)
        collector = TraceCollector()
        span = collector.begin_trace("t1", name="x", stage="dmon",
                                     node="n", start=2.0)
        with pytest.raises(ValueError, match="before it starts"):
            span.finish(1.0)

    def test_nan_endpoints_rejected(self):
        with pytest.raises(ValueError, match="NaN endpoint"):
            check_interval("x", float("nan"), 1.0)
        log = SpanLog("t")
        with pytest.raises(ValueError, match="NaN endpoint"):
            log.record("x", 0.0, float("nan"))

    def test_attrs_normalised_identically(self):
        """Same kwargs, any order -> identical frozen attributes."""
        log = SpanLog("t")
        a = log.record("x", 0.0, 1.0, zebra=1, alpha=2)
        b = log.record("x", 0.0, 1.0, alpha=2, zebra=1)
        assert a.attrs == b.attrs == freeze_attrs(
            {"zebra": 1, "alpha": 2})
        collector = TraceCollector()
        span = collector.begin_trace("t1", name="x", stage="dmon",
                                     node="n", start=0.0,
                                     zebra=1, alpha=2)
        assert tuple(span.record.snapshot()["attrs"]) == ("alpha",
                                                          "zebra")

    def test_open_spans_sort_after_finished(self):
        finished = span_sort_key(1.0, 1.5, 3)
        open_ = span_sort_key(1.0, None, 1)
        assert finished < open_

    def test_instantaneous_spans_allowed(self):
        check_interval("x", 1.0, 1.0)
        SpanLog("t").record("x", 1.0, 1.0)


class TestSampling:
    def test_deterministic_across_collectors(self):
        ids = [f"node{i}:poll:{j}" for i in range(10)
               for j in range(20)]
        a = TraceCollector(seed=7, sample_rate=0.3)
        b = TraceCollector(seed=7, sample_rate=0.3)
        assert [a.sampled(t) for t in ids] == \
            [b.sampled(t) for t in ids]
        kept = sum(a.sampled(t) for t in ids)
        assert 0 < kept < len(ids)

    def test_seed_changes_the_subset(self):
        ids = [f"n:poll:{j}" for j in range(200)]
        a = TraceCollector(seed=1, sample_rate=0.5)
        b = TraceCollector(seed=2, sample_rate=0.5)
        assert [a.sampled(t) for t in ids] != \
            [b.sampled(t) for t in ids]

    def test_hash_is_stable(self):
        # Pinned: crc32 is platform-independent, so this value is too.
        assert trace_hash(1, "x") == trace_hash(1, "x")
        assert 0.0 <= trace_hash(1, "x") < 1.0

    def test_rate_bounds(self):
        assert TraceCollector(sample_rate=1.0).sampled("anything")
        assert not TraceCollector(sample_rate=0.0).sampled("anything")
        with pytest.raises(TracingError):
            TraceCollector(sample_rate=1.5)
        with pytest.raises(TracingError):
            TraceCollector(max_traces=0)

    def test_sampled_out_trace_degrades_to_none(self):
        collector = TraceCollector(sample_rate=0.0)
        assert collector.begin_trace("t", name="x", stage="dmon",
                                     node="n", start=0.0) is None
        assert collector.traces_sampled_out == 1
        # Downstream stages propagate the None context harmlessly.
        assert collector.start_span(None, name="y", stage="kecho",
                                    node="n", start=0.0) is None


class TestBounds:
    def test_duplicate_trace_id_raises(self):
        collector = TraceCollector()
        collector.begin_trace("t", name="x", stage="dmon", node="n",
                              start=0.0)
        with pytest.raises(TracingError, match="already exists"):
            collector.begin_trace("t", name="x", stage="dmon",
                                  node="n", start=1.0)

    def test_fifo_eviction(self):
        collector = TraceCollector(max_traces=2)
        for i in range(4):
            collector.begin_trace(f"t{i}", name="x", stage="dmon",
                                  node="n", start=float(i))
        assert collector.trace_ids() == ["t2", "t3"]
        assert collector.traces_evicted == 2
        # Spans for an evicted trace are dropped, not resurrected.
        ctx = TraceContext(trace_id="t0", span_id=1)
        assert collector.start_span(ctx, name="y", stage="kecho",
                                    node="n", start=5.0) is None
        assert collector.spans_dropped == 1

    def test_per_trace_span_cap(self):
        collector = TraceCollector(max_spans_per_trace=3)
        root = collector.begin_trace("t", name="r", stage="dmon",
                                     node="n", start=0.0)
        kept = [collector.start_span(root.context, name=f"s{i}",
                                     stage="module", node="n",
                                     start=0.0)
                for i in range(5)]
        assert sum(s is not None for s in kept) == 2
        tree = collector.tree("t")
        assert len(tree.spans) == 3
        assert tree.dropped == 3
        assert collector.spans_dropped == 3

    def test_double_finish_raises(self):
        collector = TraceCollector()
        span = collector.begin_trace("t", name="x", stage="dmon",
                                     node="n", start=0.0)
        span.finish(1.0)
        with pytest.raises(TracingError, match="finished twice"):
            span.finish(2.0)

    def test_audit_log_bounded(self):
        collector = TraceCollector(max_audit=2)
        for i in range(4):
            collector.record_adaptation(
                time=float(i), node="s", client="c", policy="p",
                previous=None, chosen=f"t{i}", observations={},
                triggers=())
        assert [e.chosen for e in collector.audit] == ["t2", "t3"]


class TestAssembly:
    def build(self):
        """A trace whose spans finish out of submission order."""
        collector = TraceCollector()
        root = collector.begin_trace("t", name="root", stage="dmon",
                                     node="a", start=0.0)
        slow = collector.start_span(root.context, name="hop:slow",
                                    stage="transport", node="a",
                                    start=0.0)
        fast = collector.start_span(root.context, name="hop:fast",
                                    stage="transport", node="a",
                                    start=0.0)
        # The later-submitted hop finishes first.
        fast.finish(0.001)
        collector.record_span(fast.context, name="deliver:b",
                              stage="delivery", node="b", start=0.001,
                              end=0.001)
        slow.finish(0.005)
        collector.record_span(slow.context, name="deliver:c",
                              stage="delivery", node="c", start=0.005,
                              end=0.005)
        root.finish(0.0)
        return collector

    def test_out_of_order_completion_keeps_shared_order(self):
        tree = self.build().tree("t")
        assert [s.name for s in tree.spans] == [
            "root", "hop:fast", "hop:slow", "deliver:b", "deliver:c"]
        # Children of the root stay in arrival order (same start):
        # hop:slow was submitted first, and with equal starts the
        # earlier *end* sorts first — the shared contract.
        kids = [s.name for s in tree.children[tree.root.span_id]]
        assert kids == ["hop:fast", "hop:slow"]

    def test_tree_structure(self):
        tree = self.build().tree("t")
        assert tree.root.name == "root"
        assert tree.complete
        deliver_b = next(s for s in tree.spans
                         if s.name == "deliver:b")
        parent = tree.span(deliver_b.parent_id)
        assert parent.name == "hop:fast"
        assert deliver_b.depth == 2
        assert deliver_b.duration == 0.0
        assert parent.duration == 0.001

    def test_open_spans_visible_and_incomplete(self):
        collector = TraceCollector()
        root = collector.begin_trace("t", name="root", stage="dmon",
                                     node="a", start=0.0)
        collector.start_span(root.context, name="hop", stage="transport",
                             node="a", start=0.0)
        tree = collector.tree("t")
        assert not tree.complete
        assert tree.spans[-1].status == "open"
        assert tree.spans[-1].duration is None

    def test_orphaned_child_surfaces_at_top_level(self):
        collector = TraceCollector()
        root = collector.begin_trace("t", name="root", stage="dmon",
                                     node="a", start=0.0)
        ghost = TraceContext(trace_id="t", span_id=9999, hop=3)
        collector.record_span(ghost, name="stray", stage="delivery",
                              node="b", start=1.0, end=1.0)
        tree = collector.tree("t")
        tops = [s.name for s in tree.children[None]]
        assert tops == ["root", "stray"]

    def test_snapshot_is_reproducible(self):
        assert self.build().snapshot() == self.build().snapshot()

    def test_dropped_status_and_fault_attr(self):
        collector = TraceCollector()
        root = collector.begin_trace("t", name="root", stage="dmon",
                                     node="a", start=0.0)
        hop = collector.start_span(root.context, name="hop",
                                   stage="transport", node="a",
                                   start=0.0)
        hop.finish(0.002, status="dropped", fault="crash:b")
        span = next(s for s in collector.tree("t").spans
                    if s.name == "hop")
        assert span.status == "dropped"
        assert span.attrs["fault"] == "crash:b"


class TestNullTracer:
    def test_disabled_singleton_is_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.begin_trace("t", name="x", stage="dmon",
                                       node="n", start=0.0) is None
        assert NULL_TRACER.start_span(None, name="x", stage="kecho",
                                      node="n", start=0.0) is None
        assert NULL_TRACER.record_span(None, name="x", stage="kecho",
                                       node="n", start=0.0,
                                       end=0.0) is None
        assert NULL_TRACER.record_adaptation() is None
        assert not NULL_TRACER.sampled("t")
