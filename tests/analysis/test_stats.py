"""Unit tests for replication statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import replicate, summarize, truncate_warmup
from repro.harness import ExperimentResult, SeriesResult


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == pytest.approx(3.0)
        assert s.n == 5
        assert s.std == pytest.approx(math.sqrt(2.5))
        assert s.lo < 3.0 < s.hi

    def test_single_sample_honest_interval(self):
        s = summarize([7.0])
        assert s.mean == 7.0
        assert math.isinf(s.half_width)

    def test_zero_variance(self):
        s = summarize([2.0] * 10)
        assert s.half_width == 0.0
        assert s.lo == s.hi == 2.0

    def test_higher_confidence_wider_interval(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert summarize(data, 0.99).half_width \
            > summarize(data, 0.90).half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    def test_str_format(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "±" in text and "n=3" in text

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=2, max_size=50))
    def test_mean_always_inside_interval(self, data):
        s = summarize(data)
        assert s.lo <= s.mean <= s.hi

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3),
                    min_size=3, max_size=30),
           st.integers(min_value=2, max_value=5))
    def test_interval_shrinks_with_replication(self, data, k):
        """Repeating the same spread with more samples tightens CI."""
        small = summarize(data)
        big = summarize(data * k)
        assert big.half_width <= small.half_width + 1e-9


class TestReplicate:
    @staticmethod
    def fake_experiment(seed: int) -> ExperimentResult:
        r = ExperimentResult(experiment_id="figF", title="Fake",
                             xlabel="x", ylabel="y")
        r.add_series("s", [1, 2], [10.0 + seed, 20.0 + seed])
        return r

    def test_means_across_seeds(self):
        agg = replicate(self.fake_experiment, seeds=[0, 2, 4])
        assert agg.get("s").y_at(1) == pytest.approx(12.0)
        assert agg.get("s").y_at(2) == pytest.approx(22.0)

    def test_summaries_attached(self):
        agg = replicate(self.fake_experiment, seeds=[0, 2, 4])
        summary = agg.summaries["s"][1]
        assert summary.n == 3
        assert summary.lo <= 12.0 <= summary.hi

    def test_title_and_notes_mention_seeds(self):
        agg = replicate(self.fake_experiment, seeds=[1, 2])
        assert "2 seeds" in agg.title
        assert "[1, 2]" in agg.notes

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(self.fake_experiment, seeds=[])

    def test_mismatched_series_rejected(self):
        def flaky(seed):
            r = ExperimentResult(experiment_id="f", title="t",
                                 xlabel="x", ylabel="y")
            r.add_series(f"s{seed}", [1], [1.0])
            return r

        with pytest.raises(ValueError, match="different series"):
            replicate(flaky, seeds=[1, 2])

    def test_real_experiment_replication(self):
        """End-to-end: replicate a tiny fig6 run over three seeds."""
        from repro.harness import fig6_submission_overhead

        agg = replicate(
            lambda seed: fig6_submission_overhead(
                nodes=(2,), duration=20.0, seed=seed),
            seeds=[0, 1, 2])
        point = agg.summaries["update period=1s"][2]
        assert point.n == 3
        assert point.mean > 0


class TestTruncateWarmup:
    def test_drops_leading_fraction(self):
        s = SeriesResult("s", tuple(range(10)),
                         tuple(float(i) for i in range(10)))
        out = truncate_warmup(s, fraction=0.5)
        assert out.x[0] >= 4.5
        assert out.y == out.x  # values preserved

    def test_zero_fraction_keeps_all(self):
        s = SeriesResult("s", (0.0, 1.0), (5.0, 6.0))
        assert truncate_warmup(s, 0.0) == s

    def test_validation(self):
        s = SeriesResult("s", (0.0,), (1.0,))
        with pytest.raises(ValueError):
            truncate_warmup(s, 1.0)
        with pytest.raises(ValueError):
            truncate_warmup(SeriesResult("s", (), ()), 0.5)
