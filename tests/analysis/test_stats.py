"""Unit tests for replication statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import histogram, replicate, summarize, \
    truncate_warmup
from repro.harness import ExperimentResult, SeriesResult


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == pytest.approx(3.0)
        assert s.n == 5
        assert s.std == pytest.approx(math.sqrt(2.5))
        assert s.lo < 3.0 < s.hi

    def test_single_sample_honest_interval(self):
        s = summarize([7.0])
        assert s.mean == 7.0
        assert math.isinf(s.half_width)

    def test_zero_variance(self):
        s = summarize([2.0] * 10)
        assert s.half_width == 0.0
        assert s.lo == s.hi == 2.0

    def test_higher_confidence_wider_interval(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert summarize(data, 0.99).half_width \
            > summarize(data, 0.90).half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    def test_str_format(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "±" in text and "n=3" in text

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=2, max_size=50))
    def test_mean_always_inside_interval(self, data):
        s = summarize(data)
        assert s.lo <= s.mean <= s.hi

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3),
                    min_size=3, max_size=30),
           st.integers(min_value=2, max_value=5))
    def test_interval_shrinks_with_replication(self, data, k):
        """Repeating the same spread with more samples tightens CI."""
        small = summarize(data)
        big = summarize(data * k)
        assert big.half_width <= small.half_width + 1e-9


class TestReplicate:
    @staticmethod
    def fake_experiment(seed: int) -> ExperimentResult:
        r = ExperimentResult(experiment_id="figF", title="Fake",
                             xlabel="x", ylabel="y")
        r.add_series("s", [1, 2], [10.0 + seed, 20.0 + seed])
        return r

    def test_means_across_seeds(self):
        agg = replicate(self.fake_experiment, seeds=[0, 2, 4])
        assert agg.get("s").y_at(1) == pytest.approx(12.0)
        assert agg.get("s").y_at(2) == pytest.approx(22.0)

    def test_summaries_attached(self):
        agg = replicate(self.fake_experiment, seeds=[0, 2, 4])
        summary = agg.summaries["s"][1]
        assert summary.n == 3
        assert summary.lo <= 12.0 <= summary.hi

    def test_title_and_notes_mention_seeds(self):
        agg = replicate(self.fake_experiment, seeds=[1, 2])
        assert "2 seeds" in agg.title
        assert "[1, 2]" in agg.notes

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(self.fake_experiment, seeds=[])

    def test_mismatched_series_rejected(self):
        def flaky(seed):
            r = ExperimentResult(experiment_id="f", title="t",
                                 xlabel="x", ylabel="y")
            r.add_series(f"s{seed}", [1], [1.0])
            return r

        with pytest.raises(ValueError, match="different series"):
            replicate(flaky, seeds=[1, 2])

    def test_real_experiment_replication(self):
        """End-to-end: replicate a tiny fig6 run over three seeds."""
        from repro.harness import fig6_submission_overhead

        agg = replicate(
            lambda seed: fig6_submission_overhead(
                nodes=(2,), duration=20.0, seed=seed),
            seeds=[0, 1, 2])
        point = agg.summaries["update period=1s"][2]
        assert point.n == 3
        assert point.mean > 0


class TestTruncateWarmup:
    def test_drops_leading_fraction(self):
        s = SeriesResult("s", tuple(range(10)),
                         tuple(float(i) for i in range(10)))
        out = truncate_warmup(s, fraction=0.5)
        assert out.x[0] >= 4.5
        assert out.y == out.x  # values preserved

    def test_zero_fraction_keeps_all(self):
        s = SeriesResult("s", (0.0, 1.0), (5.0, 6.0))
        assert truncate_warmup(s, 0.0) == s

    def test_validation(self):
        s = SeriesResult("s", (0.0,), (1.0,))
        with pytest.raises(ValueError):
            truncate_warmup(s, 1.0)
        with pytest.raises(ValueError):
            truncate_warmup(SeriesResult("s", (), ()), 0.5)


class TestSummarizeNanPolicy:
    def test_propagate_is_default_and_visible(self):
        s = summarize([1.0, float("nan"), 3.0])
        assert math.isnan(s.mean)  # poisoned, never silently wrong

    def test_omit_drops_nans(self):
        s = summarize([1.0, float("nan"), 3.0], nan_policy="omit")
        assert s.n == 2
        assert s.mean == pytest.approx(2.0)

    def test_raise_rejects_nans(self):
        with pytest.raises(ValueError, match="NaN"):
            summarize([1.0, float("nan")], nan_policy="raise")

    def test_all_nan_omit_is_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            summarize([float("nan")] * 3, nan_policy="omit")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="nan_policy"):
            summarize([1.0], nan_policy="ignore")


class TestHistogram:
    def test_basic_binning(self):
        h = histogram([0.1, 0.2, 0.6, 0.9], bins=2,
                      value_range=(0.0, 1.0))
        assert h.counts == (2, 2)
        assert h.edges == (0.0, 0.5, 1.0)
        assert h.n == 4 and h.nan_count == 0
        assert h.mean == pytest.approx(0.45)
        assert (h.min, h.max) == (0.1, 0.9)

    def test_empty_series_is_not_an_error(self):
        h = histogram([], bins=4)
        assert h.counts == (0, 0, 0, 0)
        assert h.n == 0 and h.total == 0
        assert math.isnan(h.mean)
        assert math.isnan(h.min) and math.isnan(h.max)

    def test_empty_series_respects_range(self):
        h = histogram([], bins=2, value_range=(10.0, 20.0))
        assert h.edges == (10.0, 15.0, 20.0)

    def test_single_sample_widens_degenerate_range(self):
        h = histogram([5.0], bins=2)
        assert sum(h.counts) == 1
        assert h.edges[0] == pytest.approx(4.5)
        assert h.edges[-1] == pytest.approx(5.5)
        assert h.mean == 5.0

    def test_all_equal_samples(self):
        h = histogram([3.0, 3.0, 3.0], bins=3)
        assert sum(h.counts) == 3
        assert h.min == h.max == 3.0

    def test_nan_omit_counts_separately(self):
        h = histogram([1.0, float("nan"), 2.0, float("nan")], bins=2)
        assert h.n == 2
        assert h.nan_count == 2
        assert h.total == 4
        assert sum(h.counts) == 2
        assert h.mean == pytest.approx(1.5)  # NaNs never binned

    def test_nan_propagate_poisons_stats_not_counts(self):
        h = histogram([1.0, float("nan"), 2.0], bins=2,
                      nan_policy="propagate")
        assert sum(h.counts) == 2       # counts stay usable
        assert math.isnan(h.mean)       # stats are visibly poisoned
        assert math.isnan(h.min) and math.isnan(h.max)

    def test_nan_raise(self):
        with pytest.raises(ValueError, match="NaN"):
            histogram([float("nan")], nan_policy="raise")

    def test_all_nan_omit_behaves_like_empty(self):
        h = histogram([float("nan")] * 5, bins=2)
        assert h.n == 0 and h.nan_count == 5
        assert sum(h.counts) == 0
        assert math.isnan(h.mean)

    def test_validation(self):
        with pytest.raises(ValueError, match="bins"):
            histogram([1.0], bins=0)
        with pytest.raises(ValueError, match="value_range"):
            histogram([1.0], value_range=(2.0, 1.0))
        with pytest.raises(ValueError, match="nan_policy"):
            histogram([1.0], nan_policy="whatever")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=50),
           st.integers(min_value=1, max_value=20))
    def test_every_finite_sample_lands_in_a_bin(self, data, bins):
        h = histogram(data, bins=bins)
        assert sum(h.counts) == len(data) == h.n
        assert len(h.counts) == bins
        assert len(h.edges) == bins + 1
        assert all(a <= b for a, b in zip(h.edges, h.edges[1:]))
