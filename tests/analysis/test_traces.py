"""Unit tests for experiment-record export/import."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.traces import (dump_result, load_result,
                                   result_from_json, result_to_json,
                                   series_from_csv, series_to_csv,
                                   timeseries_to_csv)
from repro.harness import ExperimentResult, SeriesResult
from repro.sim.trace import TimeSeries


@pytest.fixture
def result():
    r = ExperimentResult(experiment_id="figX", title="Round trip",
                         xlabel="nodes", ylabel="usec",
                         expectation="grows", notes="test")
    r.add_series("a", [1, 2, 4], [0.1, 0.2, 0.4])
    r.add_series("b", [1, 2, 4], [1.0, 2.0, 4.0])
    return r


class TestJsonRoundTrip:
    def test_exact_round_trip(self, result):
        loaded = result_from_json(result_to_json(result))
        assert loaded.experiment_id == result.experiment_id
        assert loaded.title == result.title
        assert loaded.expectation == result.expectation
        assert [s.label for s in loaded.series] == ["a", "b"]
        assert loaded.get("a").y == result.get("a").y
        assert loaded.table() == result.table()

    def test_file_round_trip(self, result, tmp_path):
        path = dump_result(result, tmp_path / "figX.json")
        assert path.exists()
        loaded = load_result(path)
        assert loaded.get("b").y_at(4) == 4.0

    def test_json_is_valid_and_versioned(self, result):
        payload = json.loads(result_to_json(result))
        assert payload["format_version"] == 1

    def test_unknown_version_rejected(self, result):
        payload = json.loads(result_to_json(result))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            result_from_json(json.dumps(payload))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-1e9, max_value=1e9),
        st.floats(min_value=-1e9, max_value=1e9)),
        min_size=1, max_size=20))
    def test_values_survive_exactly(self, points):
        points.sort()
        r = ExperimentResult(experiment_id="p", title="t",
                             xlabel="x", ylabel="y")
        xs, ys = zip(*points)
        r.add_series("s", xs, ys)
        loaded = result_from_json(result_to_json(r))
        assert loaded.get("s").x == r.get("s").x
        assert loaded.get("s").y == r.get("s").y


class TestCsv:
    def test_series_round_trip(self):
        s = SeriesResult("latency", (0.0, 1.5, 3.0), (0.1, 0.2, 0.3))
        loaded = series_from_csv(series_to_csv(s))
        assert loaded == s

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="series CSV"):
            series_from_csv("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            series_from_csv("")

    def test_timeseries_export(self):
        ts = TimeSeries("queue")
        ts.record(0.0, 1.0)
        ts.record(2.5, 3.5)
        text = timeseries_to_csv(ts)
        lines = text.strip().splitlines()
        assert lines[0] == "time,queue"
        assert lines[1] == "0.0,1.0"
        assert lines[2] == "2.5,3.5"

    def test_full_precision_floats(self):
        s = SeriesResult("s", (0.1 + 0.2,), (1e-17,))
        loaded = series_from_csv(series_to_csv(s))
        assert loaded.x[0] == s.x[0]
        assert loaded.y[0] == s.y[0]


class TestEndToEnd:
    def test_real_experiment_archives(self, tmp_path):
        from repro.harness import fig8_receive_overhead
        result = fig8_receive_overhead(nodes=(1, 2), duration=15.0)
        path = dump_result(result, tmp_path / "fig8.json")
        loaded = load_result(path)
        assert loaded.get("update period=1s").y_at(1) == 0.0
