"""Shared fixtures for the dproc reproduction test suite."""

from __future__ import annotations

import pytest

from repro.sim import Environment, build_cluster


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite the checked-in golden-trace files from the "
             "current code instead of comparing against them")


@pytest.fixture
def regen_golden(request) -> bool:
    """True when the run should regenerate golden files."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def cluster3(env):
    """A small 3-node cluster (alan/maui/etna, as in the paper)."""
    return build_cluster(env, nodes=3, seed=42)


@pytest.fixture
def cluster8(env):
    """The paper's full 8-node cluster."""
    return build_cluster(env, nodes=8, seed=42)


def run_process(env: Environment, gen, until: float | None = None):
    """Run ``gen`` as a process and return its result."""
    proc = env.process(gen)
    if until is None:
        return env.run(proc)
    env.run(until)
    return proc
