"""Shared fixtures for the dproc reproduction test suite."""

from __future__ import annotations

import pytest

from repro.sim import Environment, build_cluster


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def cluster3(env):
    """A small 3-node cluster (alan/maui/etna, as in the paper)."""
    return build_cluster(env, n_nodes=3, seed=42)


@pytest.fixture
def cluster8(env):
    """The paper's full 8-node cluster."""
    return build_cluster(env, n_nodes=8, seed=42)


def run_process(env: Environment, gen, until: float | None = None):
    """Run ``gen`` as a process and return its result."""
    proc = env.process(gen)
    if until is None:
        return env.run(proc)
    env.run(until)
    return proc
