"""Unit tests for E-code ``break`` and ``continue``."""

from __future__ import annotations

import pytest

from repro.ecode import compile_filter, parse
from repro.ecode import ast_nodes as A
from repro.errors import EcodeSyntaxError, EcodeTypeError


def returned(source: str):
    return compile_filter(source)([]).returned


class TestParsing:
    def test_break_statement(self):
        prog = parse("while (1) { break; }")
        loop = prog.body.statements[0]
        assert isinstance(loop.body.statements[0], A.Break)

    def test_continue_statement(self):
        prog = parse("for (;;) { continue; }")
        loop = prog.body.statements[0]
        assert isinstance(loop.body.statements[0], A.Continue)

    def test_semicolon_required(self):
        with pytest.raises(EcodeSyntaxError):
            parse("while (1) { break }")


class TestAnalysis:
    def test_break_outside_loop_rejected(self):
        with pytest.raises(EcodeTypeError, match="outside of a loop"):
            compile_filter("break;")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(EcodeTypeError, match="outside of a loop"):
            compile_filter("if (1) continue;")

    def test_break_in_if_inside_loop_ok(self):
        compile_filter("for (;;) { if (1) break; }")

    def test_break_after_loop_rejected(self):
        with pytest.raises(EcodeTypeError, match="outside of a loop"):
            compile_filter("while (0) { } break;")


class TestForLoopSemantics:
    def test_break_exits_before_step(self):
        # i stays 3 at the break: step must not have run for the
        # breaking iteration.
        src = """
        int last = -1;
        for (int i = 0; i < 10; i++) {
            last = i;
            if (i == 3) break;
        }
        return last;
        """
        assert returned(src) == 3

    def test_break_partial_sum(self):
        assert returned(
            "int s = 0;"
            "for (int i = 0; i < 10; i++) { if (i == 3) break; s += i; }"
            "return s;") == 3

    def test_continue_runs_step(self):
        """`continue` must execute the for-step (no infinite loop)."""
        assert returned(
            "int s = 0;"
            "for (int i = 0; i < 5; i++) { if (i % 2 == 0) continue;"
            " s += i; } return s;") == 4

    def test_continue_skips_rest_of_body(self):
        assert returned(
            "int hits = 0;"
            "for (int i = 0; i < 6; i++) { continue; hits++; }"
            "return hits;") == 0

    def test_nested_for_break_is_local(self):
        assert returned(
            "int c = 0;"
            "for (int i = 0; i < 3; i++)"
            "  for (int j = 0; j < 10; j++) { if (j == 2) break; c++; }"
            "return c;") == 6

    def test_break_deep_in_ifs(self):
        assert returned(
            "int s = 0;"
            "for (int i = 0; i < 10; i++) {"
            "  if (i > 2) { if (i > 4) break; s += 10; }"
            "  s += 1;"
            "} return s;") == 25

    def test_step_counter_respects_break(self):
        result = compile_filter(
            "for (int i = 0; i < 1000; i++) if (i == 4) break;")([])
        assert result.steps == 5


class TestWhileLoopSemantics:
    def test_break(self):
        assert returned(
            "int n = 0; while (1) { n++; if (n == 7) break; }"
            "return n;") == 7

    def test_continue(self):
        assert returned(
            "int n = 0; int s = 0;"
            "while (n < 6) { n++; if (n % 2 == 0) continue; s += n; }"
            "return s;") == 9

    def test_continue_still_counts_iterations(self):
        """Budget ticks must fire even on continue-heavy loops."""
        from repro.errors import EcodeLimitError
        with pytest.raises(EcodeLimitError):
            compile_filter("while (1) { continue; }",
                           max_steps=100)([])

    def test_while_break_inside_for(self):
        assert returned(
            "int c = 0;"
            "for (int i = 0; i < 3; i++) {"
            "  int j = 0;"
            "  while (1) { j++; if (j == 2) break; }"
            "  c += j;"
            "} return c;") == 6

    def test_for_break_beside_inner_while(self):
        """Outer-for break coexists with a complete inner while."""
        assert returned(
            "int c = 0;"
            "for (int i = 0; i < 10; i++) {"
            "  int j = 0;"
            "  while (j < 3) { j++; }"
            "  c += j;"
            "  if (i == 1) break;"
            "} return c;") == 6
