"""Execution-semantics tests for compiled E-code filters."""

from __future__ import annotations

import pytest

from repro.ecode import MetricRecord, compile_filter
from repro.errors import (EcodeLimitError, EcodeRuntimeError,
                          EcodeTypeError)

CONSTS = {"LOADAVG": 0, "DISKUSAGE": 1, "FREEMEM": 2, "CACHE_MISS": 3}


def run(source: str, records=(), constants=CONSTS, **kw):
    return compile_filter(source, constants=constants, **kw)(list(records))


def returned(source: str, **kw):
    return run(source, **kw).returned


class TestArithmetic:
    def test_integer_arithmetic(self):
        assert returned("return 2 + 3 * 4 - 1;") == 13

    def test_division_int_truncates_toward_zero(self):
        assert returned("return 7 / 2;") == 3
        assert returned("return -7 / 2;") == -3  # C semantics, not floor

    def test_division_double(self):
        assert returned("return 7.0 / 2;") == pytest.approx(3.5)

    def test_modulo_c_semantics(self):
        assert returned("return 7 % 3;") == 1
        assert returned("return -7 % 3;") == -1  # sign of dividend

    def test_division_by_zero_raises(self):
        with pytest.raises(EcodeRuntimeError, match="zero"):
            run("return 1 / 0;")
        with pytest.raises(EcodeRuntimeError, match="zero"):
            run("return 1.0 / 0.0;")
        with pytest.raises(EcodeRuntimeError, match="zero"):
            run("return 1 % 0;")

    def test_unary_operators(self):
        assert returned("return -(3 + 4);") == -7
        assert returned("return +5;") == 5
        assert returned("return !0;") == 1
        assert returned("return !3;") == 0

    def test_scientific_literal(self):
        assert returned("return 50e6;") == 50e6

    def test_double_to_int_assignment_truncates(self):
        assert returned("int x = 3.9; return x;") == 3
        assert returned("int x = -3.9; return x;") == -3

    def test_int_to_double_assignment(self):
        assert returned("double x = 3; return x;") == 3.0

    def test_augmented_assignment(self):
        assert returned("int x = 10; x += 5; return x;") == 15
        assert returned("int x = 10; x -= 3; return x;") == 7
        assert returned("int x = 10; x *= 2; return x;") == 20
        assert returned("int x = 10; x /= 3; return x;") == 3
        assert returned("int x = 10; x %= 3; return x;") == 1

    def test_augmented_division_keeps_int_semantics(self):
        assert returned("int x = -7; x /= 2; return x;") == -3

    def test_increment_decrement(self):
        assert returned("int i = 5; i++; i++; i--; return i;") == 6

    def test_builtins(self):
        assert returned("return abs(-4);") == 4
        assert returned("return fabs(-4.5);") == 4.5
        assert returned("return min(3, 7);") == 3
        assert returned("return max(3, 7);") == 7
        assert returned("return floor(2.9);") == 2
        assert returned("return ceil(2.1);") == 3
        assert returned("return sqrt(16.0);") == 4.0

    def test_sqrt_of_negative_raises(self):
        with pytest.raises(EcodeRuntimeError):
            run("return sqrt(-1.0);")


class TestComparisonsAndLogic:
    def test_comparisons_yield_int(self):
        assert returned("return 3 < 4;") == 1
        assert returned("return 3 > 4;") == 0
        assert returned("return (1 < 2) + (3 >= 3);") == 2

    def test_equality(self):
        assert returned("return 2 == 2;") == 1
        assert returned("return 2 != 2;") == 0

    def test_logical_and_or(self):
        assert returned("return 1 && 2;") == 1
        assert returned("return 1 && 0;") == 0
        assert returned("return 0 || 3;") == 1
        assert returned("return 0 || 0;") == 0

    def test_short_circuit_and(self):
        # RHS would divide by zero; && must not evaluate it.
        assert returned("return 0 && (1 / 0);") == 0

    def test_short_circuit_or(self):
        assert returned("return 1 || (1 / 0);") == 1

    def test_no_short_circuit_when_needed(self):
        with pytest.raises(EcodeRuntimeError):
            run("return 1 && (1 / 0);")


class TestControlFlow:
    def test_if_taken(self):
        assert returned("if (2 > 1) return 10; return 20;") == 10

    def test_if_not_taken(self):
        assert returned("if (2 < 1) return 10; return 20;") == 20

    def test_if_else(self):
        assert returned(
            "int x = 5;"
            "if (x > 10) { return 1; } else { return 2; }") == 2

    def test_else_if_chain(self):
        src = """
        int x = 0;
        if (x > 0) return 1;
        else if (x < 0) return -1;
        else return 0;
        """
        assert returned(src) == 0

    def test_for_loop_sum(self):
        assert returned(
            "int s = 0; for (int i = 1; i <= 10; i++) s += i;"
            "return s;") == 55

    def test_for_loop_with_assignment_step(self):
        assert returned(
            "int s = 0; for (int i = 0; i < 8; i = i + 2) s += i;"
            "return s;") == 12

    def test_nested_loops(self):
        assert returned(
            "int s = 0;"
            "for (int i = 0; i < 3; i++)"
            "  for (int j = 0; j < 4; j++) s++;"
            "return s;") == 12

    def test_while_loop(self):
        assert returned(
            "int n = 100; int steps = 0;"
            "while (n > 1) { n = n / 2; steps++; }"
            "return steps;") == 6

    def test_early_return_from_loop(self):
        assert returned(
            "for (int i = 0; i < 100; i++) if (i == 7) return i;"
            "return -1;") == 7

    def test_no_return_yields_none(self):
        assert returned("int i = 0;") is None

    def test_return_void(self):
        assert returned("return;") is None

    def test_block_scoping_preserves_outer_value(self):
        # Inner i must not clobber outer i (unique mangling).
        assert returned(
            "int i = 42; { int i = 0; i = 7; } return i;") == 42

    def test_infinite_loop_hits_budget(self):
        with pytest.raises(EcodeLimitError, match="budget"):
            run("while (1) { }", max_steps=1000)

    def test_budget_counts_all_loops(self):
        result = run("for (int i = 0; i < 10; i++) { }")
        assert result.steps == 10


class TestRecordsAndOutput:
    def make_records(self):
        return [
            MetricRecord("loadavg", 3.0, last_value_sent=1.0,
                         timestamp=10.0),
            MetricRecord("diskusage", 20000.0),
            MetricRecord("freemem", 40e6),
            MetricRecord("cache_miss", 100.0, last_value_sent=50.0),
        ]

    def test_read_fields(self):
        recs = self.make_records()
        assert run("return input[LOADAVG].value;",
                   recs).returned == 3.0
        assert run("return input[LOADAVG].last_value_sent;",
                   recs).returned == 1.0
        assert run("return input[LOADAVG].timestamp;",
                   recs).returned == 10.0

    def test_copy_through_filter(self):
        result = run("output[0] = input[LOADAVG];", self.make_records())
        assert len(result.outputs) == 1
        assert result.outputs[0].name == "loadavg"
        assert result.outputs[0].value == 3.0

    def test_output_is_a_copy_not_alias(self):
        recs = self.make_records()
        result = run(
            "output[0] = input[LOADAVG]; output[0].value = 99.0;", recs)
        assert result.outputs[0].value == 99.0
        assert recs[0].value == 3.0  # input untouched

    def test_outputs_in_slot_order(self):
        src = """
        output[2] = input[FREEMEM];
        output[0] = input[LOADAVG];
        output[1] = input[DISKUSAGE];
        """
        result = run(src, self.make_records())
        assert [o.name for o in result.outputs] == [
            "loadavg", "diskusage", "freemem"]

    def test_empty_output_blocks_event(self):
        result = run("int i = 0;", self.make_records())
        assert result.outputs == []

    def test_out_of_range_input_index(self):
        with pytest.raises(EcodeRuntimeError, match="out of range"):
            run("return input[99].value;", self.make_records())

    def test_negative_output_index(self):
        with pytest.raises(EcodeRuntimeError, match="outside"):
            run("output[0 - 1] = input[0];", self.make_records())

    def test_field_write_before_store_rejected(self):
        with pytest.raises(EcodeRuntimeError, match="before being"):
            run("output[0].value = 1.0;", self.make_records())

    def test_figure3_full_semantics(self):
        """The paper's Figure 3 filter end to end."""
        src = """
        {
            int i = 0;
            if(input[LOADAVG].value > 2){
                output[i] = input[LOADAVG];
                i = i + 1;
            }
            if(input[DISKUSAGE].value > 10000 &&
               input[FREEMEM].value < 50e6){
                output[i] = input[DISKUSAGE];
                i = i + 1;
                output[i] = input[FREEMEM];
                i = i + 1;
            }
            if(input[CACHE_MISS].value >
               input[CACHE_MISS].last_value_sent){
                output[i] = input[CACHE_MISS];
                i = i + 1;
            }
        }
        """
        filt = compile_filter(src, constants=CONSTS)
        # all conditions true
        full = filt(self.make_records())
        assert [o.name for o in full.outputs] == [
            "loadavg", "diskusage", "freemem", "cache_miss"]
        # all conditions false
        quiet = filt([
            MetricRecord("loadavg", 0.5),
            MetricRecord("diskusage", 10.0),
            MetricRecord("freemem", 400e6),
            MetricRecord("cache_miss", 10.0, last_value_sent=50.0),
        ])
        assert quiet.outputs == []


class TestSandboxing:
    def test_no_python_builtins_leak(self):
        # Python-level names must not be visible in E-code.
        with pytest.raises(EcodeTypeError, match="undeclared"):
            run("return len;")

    def test_no_dunder_access(self):
        with pytest.raises(EcodeTypeError):
            run("return __import__;")

    def test_compiled_filter_is_reusable(self):
        filt = compile_filter("return input[0].value * 2;",
                              constants=CONSTS)
        for v in (1.0, 2.0, 3.0):
            assert filt([MetricRecord("x", v)]).returned == 2 * v

    def test_deterministic_compilation(self):
        src = "int i = 0; for (i = 0; i < 5; i++) { } return i;"
        a = compile_filter(src, constants=CONSTS)
        b = compile_filter(src, constants=CONSTS)
        assert a([]).returned == b([]).returned == 5
