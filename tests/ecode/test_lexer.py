"""Unit tests for the E-code lexer."""

from __future__ import annotations

import pytest

from repro.ecode import tokenize
from repro.ecode.tokens import TokenType as T
from repro.errors import EcodeSyntaxError


def types(source: str) -> list[T]:
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


class TestBasics:
    def test_empty_source_is_just_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].type is T.EOF

    def test_whitespace_only(self):
        assert types("  \n\t  ") == []

    def test_identifiers_and_keywords(self):
        assert types("int foo") == [T.KW_INT, T.IDENTIFIER]
        assert types("integer") == [T.IDENTIFIER]  # not a keyword prefix
        assert types("if else for while return double long float") == [
            T.KW_IF, T.KW_ELSE, T.KW_FOR, T.KW_WHILE, T.KW_RETURN,
            T.KW_DOUBLE, T.KW_LONG, T.KW_FLOAT]

    def test_underscore_identifiers(self):
        toks = tokenize("_x x_1 last_value_sent")
        assert [t.text for t in toks[:-1]] == ["_x", "x_1",
                                               "last_value_sent"]


class TestNumbers:
    def test_int_literal(self):
        tok = tokenize("12345")[0]
        assert tok.type is T.INT_LITERAL and tok.text == "12345"

    def test_float_with_dot(self):
        assert tokenize("3.14")[0].type is T.FLOAT_LITERAL

    def test_scientific_notation(self):
        # The paper's example uses 50e6.
        tok = tokenize("50e6")[0]
        assert tok.type is T.FLOAT_LITERAL and float(tok.text) == 50e6

    def test_scientific_with_sign(self):
        assert float(tokenize("1.5e-3")[0].text) == 1.5e-3
        assert float(tokenize("2E+2")[0].text) == 200.0

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].type is T.FLOAT_LITERAL

    def test_trailing_dot_rejected(self):
        with pytest.raises(EcodeSyntaxError):
            tokenize("3.")

    def test_e_followed_by_identifier_splits(self):
        # '5ex' lexes as number 5 then identifier 'ex'.
        assert types("5ex") == [T.INT_LITERAL, T.IDENTIFIER]


class TestOperators:
    def test_two_char_before_one_char(self):
        assert types("<= >= == != && || += -= ++ --") == [
            T.LE, T.GE, T.EQ, T.NE, T.AND, T.OR, T.PLUS_ASSIGN,
            T.MINUS_ASSIGN, T.INCREMENT, T.DECREMENT]

    def test_single_char_operators(self):
        assert types("+ - * / % < > ! = . , ;") == [
            T.PLUS, T.MINUS, T.STAR, T.SLASH, T.PERCENT, T.LT, T.GT,
            T.NOT, T.ASSIGN, T.DOT, T.COMMA, T.SEMICOLON]

    def test_brackets(self):
        assert types("( ) { } [ ]") == [
            T.LPAREN, T.RPAREN, T.LBRACE, T.RBRACE,
            T.LBRACKET, T.RBRACKET]

    def test_adjacent_operators(self):
        assert types("a==b") == [T.IDENTIFIER, T.EQ, T.IDENTIFIER]

    def test_unknown_character_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="unexpected"):
            tokenize("a # b")


class TestComments:
    def test_line_comment(self):
        assert types("a // comment here\nb") == [T.IDENTIFIER,
                                                 T.IDENTIFIER]

    def test_block_comment(self):
        assert types("a /* ignore \n all this */ b") == [
            T.IDENTIFIER, T.IDENTIFIER]

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="unterminated"):
            tokenize("a /* never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("x\n  @")
        except EcodeSyntaxError as exc:
            assert exc.line == 2 and exc.column == 3
        else:  # pragma: no cover
            pytest.fail("expected lex error")
