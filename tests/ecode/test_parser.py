"""Unit tests for the E-code parser."""

from __future__ import annotations

import pytest

from repro.ecode import parse
from repro.ecode import ast_nodes as A
from repro.errors import EcodeSyntaxError


def body(source: str) -> list[A.Stmt]:
    return parse(source).body.statements


class TestPrograms:
    def test_braced_program(self):
        prog = parse("{ int i = 0; }")
        assert isinstance(prog.body, A.Block)
        assert len(prog.body.statements) == 1

    def test_bare_statement_list(self):
        stmts = body("int i = 0; i = i + 1;")
        assert len(stmts) == 2

    def test_empty_program(self):
        assert body("") == []

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EcodeSyntaxError):
            parse("{ int i = 0; } extra")

    def test_unterminated_block_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="missing '}'"):
            parse("{ int i = 0;")


class TestDeclarations:
    @pytest.mark.parametrize("ctype", ["int", "long", "double", "float"])
    def test_all_types(self, ctype):
        (decl,) = body(f"{ctype} x;")
        assert isinstance(decl, A.VarDecl)
        assert decl.ctype == ctype and decl.init is None

    def test_initialised_declaration(self):
        (decl,) = body("int i = 41 + 1;")
        assert isinstance(decl.init, A.Binary)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="';'"):
            parse("int i = 0")

    def test_missing_name_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="variable name"):
            parse("int = 0;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        (stmt,) = body("int x = 1 + 2 * 3;")
        expr = stmt.init
        assert expr.op == "+"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "*"

    def test_parentheses_override(self):
        (stmt,) = body("int x = (1 + 2) * 3;")
        assert stmt.init.op == "*"

    def test_comparison_precedence(self):
        (stmt,) = body("int x = a + 1 < b * 2;")
        assert stmt.init.op == "<"

    def test_logical_precedence(self):
        # && binds tighter than ||
        (stmt,) = body("int x = a || b && c;")
        assert stmt.init.op == "||"
        assert stmt.init.right.op == "&&"

    def test_left_associativity(self):
        (stmt,) = body("int x = 10 - 4 - 3;")
        expr = stmt.init
        assert expr.op == "-" and isinstance(expr.left, A.Binary)

    def test_unary_minus(self):
        (stmt,) = body("int x = -y;")
        assert isinstance(stmt.init, A.Unary) and stmt.init.op == "-"

    def test_double_unary(self):
        (stmt,) = body("int x = !!y;")
        assert isinstance(stmt.init.operand, A.Unary)

    def test_index_and_attribute_chain(self):
        (stmt,) = body("double v = input[LOADAVG].value;")
        attr = stmt.init
        assert isinstance(attr, A.Attribute) and attr.name == "value"
        assert isinstance(attr.base, A.Index)
        assert attr.base.base.ident == "input"

    def test_call_with_args(self):
        (stmt,) = body("double m = max(a, b);")
        call = stmt.init
        assert isinstance(call, A.Call)
        assert call.func == "max" and len(call.args) == 2

    def test_call_no_args(self):
        (stmt,) = body("double m = foo();")
        assert stmt.init.args == []

    def test_unclosed_paren_rejected(self):
        with pytest.raises(EcodeSyntaxError):
            parse("int x = (1 + 2;")

    def test_bad_expression_start_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="unexpected"):
            parse("int x = * 2;")


class TestAssignments:
    def test_simple_assign(self):
        (stmt,) = body("x = 5;")
        assert isinstance(stmt, A.Assign) and stmt.op == "="

    @pytest.mark.parametrize("op", ["+=", "-=", "*=", "/=", "%="])
    def test_augmented_assign(self, op):
        (stmt,) = body(f"x {op} 5;")
        assert stmt.op == op

    def test_output_slot_assign(self):
        (stmt,) = body("output[i] = input[LOADAVG];")
        assert isinstance(stmt.target, A.Index)

    def test_field_assign(self):
        (stmt,) = body("output[0].value = 3.5;")
        assert isinstance(stmt.target, A.Attribute)

    def test_literal_target_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="assignment target"):
            parse("5 = x;")

    def test_increment_statement(self):
        (stmt,) = body("i++;")
        assert isinstance(stmt, A.IncDec) and stmt.op == "++"

    def test_decrement_statement(self):
        (stmt,) = body("i--;")
        assert stmt.op == "--"

    def test_increment_of_expression_rejected(self):
        with pytest.raises(EcodeSyntaxError, match="simple variables"):
            parse("input[0]++;")


class TestControlFlow:
    def test_if_without_else(self):
        (stmt,) = body("if (x > 0) { y = 1; }")
        assert isinstance(stmt, A.If) and stmt.else_body is None

    def test_if_else(self):
        (stmt,) = body("if (x > 0) { y = 1; } else { y = 2; }")
        assert stmt.else_body is not None

    def test_else_if_chain(self):
        (stmt,) = body(
            "if (x > 0) { y = 1; } else if (x < 0) { y = 2; } "
            "else { y = 3; }")
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, A.If)
        assert nested.else_body is not None

    def test_unbraced_body(self):
        (stmt,) = body("if (x) y = 1;")
        assert len(stmt.then_body.statements) == 1

    def test_for_full_header(self):
        (stmt,) = body("for (int i = 0; i < 10; i = i + 1) { x = i; }")
        assert isinstance(stmt, A.For)
        assert isinstance(stmt.init, A.VarDecl)
        assert stmt.cond is not None and stmt.step is not None

    def test_for_with_incdec_step(self):
        (stmt,) = body("for (i = 0; i < 10; i++) x = i;")
        assert isinstance(stmt.step, A.IncDec)

    def test_for_empty_header(self):
        (stmt,) = body("for (;;) { x = 1; }")
        assert stmt.init is None and stmt.cond is None \
            and stmt.step is None

    def test_while(self):
        (stmt,) = body("while (x < 10) { x = x + 1; }")
        assert isinstance(stmt, A.While)

    def test_return_value(self):
        (stmt,) = body("return x + 1;")
        assert isinstance(stmt, A.Return) and stmt.value is not None

    def test_return_void(self):
        (stmt,) = body("return;")
        assert stmt.value is None

    def test_nested_blocks(self):
        (stmt,) = body("{ { int i = 0; } }")
        assert isinstance(stmt, A.Block)

    def test_empty_statement(self):
        stmts = body(";;")
        assert len(stmts) == 2

    def test_missing_condition_paren_rejected(self):
        with pytest.raises(EcodeSyntaxError):
            parse("if x > 0 { }")


class TestPaperExample:
    def test_figure3_filter_parses(self):
        """The filter from the paper's Figure 3, verbatim."""
        src = """
        {
            int i = 0;
            if(input[LOADAVG].value > 2){
                output[i] = input[LOADAVG];
                i = i + 1;
            }
            if(input[DISKUSAGE].value > 10000 &&
               input[FREEMEM].value < 50e6){
                output[i] = input[DISKUSAGE];
                i = i + 1;
                output[i] = input[FREEMEM];
                i = i + 1;
            }
            if(input[CACHE_MISS].value >
               input[CACHE_MISS].last_value_sent){
                output[i] = input[CACHE_MISS];
                i = i + 1;
            }
        }
        """
        prog = parse(src)
        assert len(prog.body.statements) == 4  # decl + three ifs
