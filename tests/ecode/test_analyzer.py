"""Unit tests for E-code semantic analysis and type checking."""

from __future__ import annotations

import pytest

from repro.ecode import analyze, parse
from repro.errors import EcodeTypeError

CONSTS = {"LOADAVG": 0, "FREEMEM": 1, "RATIO": 1.5}


def check(source: str, constants=CONSTS):
    return analyze(parse(source), constants)


def fails(source: str, match: str, constants=CONSTS):
    with pytest.raises(EcodeTypeError, match=match):
        check(source, constants)


class TestDeclarationsAndScope:
    def test_simple_declaration_ok(self):
        check("int i = 0;")

    def test_undeclared_identifier(self):
        fails("x = 1;", "undeclared")

    def test_redeclaration_same_scope(self):
        fails("int i = 0; int i = 1;", "redeclaration")

    def test_shadowing_in_inner_block_ok(self):
        check("int i = 0; { double i = 1.0; }")

    def test_sibling_blocks_independent(self):
        check("{ int i = 0; } { double i = 1.0; }")

    def test_inner_variable_not_visible_outside(self):
        fails("{ int i = 0; } i = 1;", "undeclared")

    def test_cannot_shadow_input_output(self):
        fails("int input = 0;", "builtin")
        fails("int output = 0;", "builtin")

    def test_cannot_redeclare_constant(self):
        fails("int LOADAVG = 0;", "predefined constant")

    def test_for_header_scope(self):
        check("for (int i = 0; i < 3; i++) { int j = i; }")
        fails("for (int i = 0; i < 3; i++) { } i = 1;", "undeclared")

    def test_outer_variable_visible_in_loop(self):
        check("int total = 0; for (int i = 0; i < 3; i++) total += i;")


class TestConstants:
    def test_constant_usable_as_index(self):
        check("output[0] = input[LOADAVG];")

    def test_float_constant_not_an_index(self):
        fails("output[0] = input[RATIO];", "integer")

    def test_assignment_to_constant_rejected(self):
        fails("LOADAVG = 2;", "constant")

    def test_increment_of_constant_rejected(self):
        fails("LOADAVG++;", "constant")

    def test_float_constant_in_arithmetic(self):
        check("double x = RATIO * 2.0;")


class TestArraysAndRecords:
    def test_input_read_ok(self):
        check("double v = input[0].value;")

    def test_all_record_fields(self):
        check("double a = input[0].value;"
              "double b = input[0].last_value_sent;"
              "double c = input[0].timestamp;")

    def test_unknown_field_rejected(self):
        fails("double v = input[0].bogus;", "unknown record field")

    def test_field_on_non_record_rejected(self):
        fails("int i = 0; double v = i.value;", "record")

    def test_index_on_scalar_rejected(self):
        fails("int i = 0; double v = i[0].value;",
              "input.. and output")

    def test_output_assignment_requires_record(self):
        fails("output[0] = 5;", "monitoring records")

    def test_output_augmented_assign_rejected(self):
        fails("output[0] += input[0];", "not supported")

    def test_output_read_in_expression_rejected(self):
        # output[] is write-only; reading a slot's field is invalid
        # because fields are writable only (not readable).
        fails("double v = output[0].value + 1.0;", "write-only")

    def test_output_field_write_ok(self):
        check("output[0] = input[0]; output[0].value = 1.0;")

    def test_field_write_on_input_rejected(self):
        fails("input[0].value = 1.0;", "output")

    def test_output_index_must_be_int(self):
        fails("double d = 0.5; output[d] = input[0];", "integer")

    def test_record_in_arithmetic_rejected(self):
        fails("double v = input[0] + 1;", "numeric")

    def test_record_comparison_rejected(self):
        fails("if (input[0] == input[1]) { return; }", "numeric")


class TestOperators:
    def test_int_int_arith_is_int(self):
        check("int x = 2 + 3 * 4;")

    def test_mixed_arith_promotes(self):
        check("double x = 1 + 2.5;")

    def test_modulo_needs_ints(self):
        fails("double x = 5.0 % 2;", "integer")
        fails("int x = 5 % 2.0;", "integer")
        check("int x = 5 % 2;")

    def test_modulo_assign_needs_ints(self):
        fails("double x = 1.0; x %= 2;", "integer")

    def test_logical_ops_on_numbers(self):
        check("int x = 1 && 0 || !2;")

    def test_condition_must_be_numeric(self):
        fails("if (input[0]) { return; }", "numeric")

    def test_return_numeric_ok(self):
        check("return 1 + 2;")

    def test_return_void_ok(self):
        check("return;")

    def test_return_record_rejected(self):
        fails("return input[0];", "numeric")


class TestBuiltins:
    def test_known_builtins(self):
        check("double x = sqrt(2.0); double y = fabs(-1.0);"
              "int z = abs(-3); int m = min(1, 2); int n = max(3, 4);"
              "double f = floor(1.7); double c = ceil(1.2);")

    def test_unknown_function_rejected(self):
        fails("double x = cos(1.0);", "unknown function")

    def test_wrong_arity_rejected(self):
        fails("double x = sqrt(1.0, 2.0);", "argument")
        fails("double x = min(1);", "argument")

    def test_non_numeric_argument_rejected(self):
        fails("double x = fabs(input[0]);", "numeric")

    def test_int_preserving_builtins_as_index(self):
        check("output[abs(-1)] = input[0];")
        check("output[min(0, 1)] = input[0];")

    def test_sqrt_result_not_an_index(self):
        fails("output[sqrt(4.0)] = input[0];", "integer")


class TestAnalysisMetadata:
    def test_loop_detection(self):
        assert check("for (int i = 0; i < 2; i++) { }").has_loops
        assert check("while (0) { }").has_loops
        assert not check("int i = 0;").has_loops

    def test_variables_collected(self):
        result = check("int i = 0; { double j = 1.0; }")
        assert result.variables == {"i", "j"}

    def test_figure3_analyzes_clean(self):
        src = """
        {
            int i = 0;
            if(input[LOADAVG].value > 2){
                output[i] = input[LOADAVG];
                i = i + 1;
            }
        }
        """
        check(src)
