"""Tests for the E-code unparser, including round-trip properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecode import compile_filter, parse, unparse

CONSTS = {"LOADAVG": 0, "FREEMEM": 1, "DISKUSAGE": 2, "CACHE_MISS": 3}

SAMPLES = [
    "int i = 0;",
    "double x = 3.5; x += 1.0; x *= 2.0;",
    "i++;",
    "return;",
    "return 1 + 2 * 3;",
    "if (x > 0) { y = 1; } else { y = 2; }",
    "if (a) if (b) c = 1;",
    "for (int i = 0; i < 10; i++) { s += i; }",
    "for (;;) { break; }",
    "while (n > 1) { n /= 2; continue; }",
    "output[0] = input[LOADAVG];",
    "output[0].value = input[LOADAVG].value * 2.0;",
    "double m = max(a, min(b, c));",
    "{ int i = 0; { double i = 1.0; } }",
    "int y = !x && (a || b);",
    "int z = -x + +y;",
]


def normalize(src: str) -> str:
    """Canonical form: parse then unparse."""
    return unparse(parse(src))


class TestRoundTrip:
    @pytest.mark.parametrize("src", SAMPLES)
    def test_unparse_reparses_to_fixed_point(self, src):
        """parse∘unparse is idempotent: the rendered form re-parses and
        re-renders to itself."""
        once = normalize(src)
        twice = normalize(once)
        assert once == twice

    def test_figure3_round_trip(self):
        src = """
        {
            int i = 0;
            if(input[LOADAVG].value > 2){
                output[i] = input[LOADAVG];
                i = i + 1;
            }
            if(input[DISKUSAGE].value > 10000 &&
               input[FREEMEM].value < 50e6){
                output[i] = input[DISKUSAGE];
                i = i + 1;
                output[i] = input[FREEMEM];
                i = i + 1;
            }
            if(input[CACHE_MISS].value >
               input[CACHE_MISS].last_value_sent){
                output[i] = input[CACHE_MISS];
                i = i + 1;
            }
        }
        """
        rendered = normalize(src)
        assert normalize(rendered) == rendered
        # semantics preserved: compile both, compare behaviour
        from repro.ecode import MetricRecord
        records = [
            MetricRecord("loadavg", 3.0),
            MetricRecord("diskusage", 20000.0),
            MetricRecord("freemem", 40e6),
            MetricRecord("cache_miss", 10.0, last_value_sent=5.0),
        ]
        original = compile_filter(src, constants=CONSTS)(records)
        roundtrip = compile_filter(rendered, constants=CONSTS)(records)
        assert [o.name for o in original.outputs] \
            == [o.name for o in roundtrip.outputs]

    def test_precedence_preserved(self):
        """Fully parenthesised output keeps the original tree even
        when precedence differed from appearance."""
        src = "int x = (1 + 2) * 3;"
        rendered = normalize(src)
        assert compile_filter(rendered)([]).returned is None
        assert "((1 + 2) * 3)" in rendered

    @settings(max_examples=80, deadline=None)
    @given(st.integers(-100, 100), st.integers(-100, 100),
           st.sampled_from(["+", "-", "*", "<", "<=", "==", "&&"]))
    def test_random_binary_semantics_survive_round_trip(self, a, b, op):
        src = f"return ({a}) {op} ({b});"
        direct = compile_filter(src)([]).returned
        rendered = normalize(src)
        again = compile_filter(rendered)([]).returned
        assert direct == again


class TestFormatting:
    def test_indentation(self):
        out = normalize("if (x > 0) { if (y > 0) { z = 1; } }")
        lines = out.splitlines()
        assert lines[0].startswith("if")
        assert lines[1].startswith("    if")
        assert lines[2].startswith("        z")

    def test_else_rendering(self):
        out = normalize("if (a) b = 1; else b = 2;")
        assert "} else {" in out

    def test_empty_for_header(self):
        out = normalize("for (;;) { break; }")
        assert "for (; ; )" in out
