"""Unit tests for the streaming-sketch primitives and SketchSpace.

The property suite (``tests/properties/test_sketch_bounds.py``) covers
the statistical guarantees; this file pins the edge cases — parameter
validation, handle hygiene, memoisation, eviction order, snapshot
layout — with hand-picked examples.
"""

from __future__ import annotations

import pytest

from repro.ecode import (CountMinSketch, KeyCounter, SketchSpace, TopK,
                         compile_filter)
from repro.ecode.sketches import MAX_DEPTH, MAX_K, MAX_WIDTH, mix64
from repro.errors import EcodeError, EcodeRuntimeError


class TestMix64:
    def test_is_deterministic_and_spreads(self):
        assert mix64(0) == mix64(0)
        outputs = {mix64(i) for i in range(1000)}
        assert len(outputs) == 1000  # no collisions on small ints

    def test_stays_in_64_bits(self):
        for x in (0, 1, -1, 2**64 - 1, 2**70):
            assert 0 <= mix64(x) < 2**64


class TestCountMinEdges:
    @pytest.mark.parametrize("width,depth", [
        (0, 4), (MAX_WIDTH + 1, 4), (64, 0), (64, MAX_DEPTH + 1)])
    def test_bad_shape_rejected(self, width, depth):
        with pytest.raises(EcodeRuntimeError):
            CountMinSketch(width, depth, 1)

    def test_width_one_degenerates_to_total(self):
        cms = CountMinSketch(1, 3, 9)
        cms.add(1, 2.0)
        cms.add(2, 3.0)
        assert cms.estimate(1) == 5.0
        assert cms.estimate(999) == 5.0
        assert cms.total == 5.0

    def test_add_returns_post_add_estimate(self):
        cms = CountMinSketch(64, 4, 9)
        assert cms.add(7, 2.0) == cms.estimate(7) == 2.0
        assert cms.add(7, 0.5) == 2.5

    def test_negative_keys_are_valid(self):
        cms = CountMinSketch(64, 4, 9)
        cms.add(-12345, 4.0)
        assert cms.estimate(-12345) == 4.0

    def test_snapshot_length_matches_shape(self):
        cms = CountMinSketch(16, 2, 1)
        # >IIQd head = 24 bytes, 2 rows of 16 f64 cells.
        assert len(cms.snapshot()) == 24 + 2 * 16 * 8

    def test_different_seeds_hash_differently(self):
        a = CountMinSketch(1024, 1, 1)
        b = CountMinSketch(1024, 1, 2)
        buckets_a = [a.bucket(0, k) for k in range(64)]
        buckets_b = [b.bucket(0, k) for k in range(64)]
        assert buckets_a != buckets_b


class TestTopKEdges:
    @pytest.mark.parametrize("k", [0, -1, MAX_K + 1])
    def test_bad_k_rejected(self, k):
        with pytest.raises(EcodeRuntimeError):
            TopK(k)

    def test_eviction_requires_strictly_heavier(self):
        heap = TopK(1)
        assert heap.offer(1, 5.0) == 1
        assert heap.offer(2, 5.0) == 0  # equal weight: incumbent wins
        assert heap.items() == [(1, 5.0)]
        assert heap.offer(2, 5.5) == 1
        assert heap.items() == [(2, 5.5)]

    def test_equal_weight_eviction_prefers_smaller_key(self):
        heap = TopK(2)
        heap.offer(10, 1.0)
        heap.offer(3, 1.0)
        heap.offer(7, 2.0)  # evicts one of the 1.0 entries
        kept = {key for key, _ in heap.items()}
        # The lightest by (weight, -key) is the *larger* key, so the
        # smaller key survives — deterministic either way.
        assert kept == {3, 7}

    def test_reoffer_existing_key_retains_without_eviction(self):
        heap = TopK(2)
        heap.offer(1, 5.0)
        heap.offer(2, 4.0)
        assert heap.offer(2, 0.1) == 1  # member: retained, not demoted
        assert dict(heap.items())[2] == 4.0

    def test_snapshot_orders_heaviest_first(self):
        heap = TopK(3)
        for key, weight in ((5, 1.0), (6, 3.0), (7, 2.0)):
            heap.offer(key, weight)
        assert heap.items() == [(6, 3.0), (7, 2.0), (5, 1.0)]
        assert len(heap.snapshot()) == 8 + 3 * 16


class TestKeyCounterEdges:
    def test_key_universe_bounded(self):
        counter = KeyCounter(tag=1)
        counter._counts = {i: 1.0 for i in range(KeyCounter.MAX_KEYS)}
        counter.add(0, 1.0)  # existing key still fine
        with pytest.raises(EcodeRuntimeError, match="distinct keys"):
            counter.add(KeyCounter.MAX_KEYS + 1, 1.0)

    def test_get_unknown_key_is_zero(self):
        assert KeyCounter(tag=1).get(42) == 0.0


class TestSketchSpace:
    def test_allocation_is_memoised_on_arguments(self):
        space = SketchSpace()
        h1 = space.cms_new(64, 4, 7)
        h2 = space.cms_new(64, 4, 7)
        h3 = space.cms_new(64, 4, 8)
        assert h1 == h2
        assert h3 != h1
        assert len(space) == 2

    def test_wrong_handle_type_rejected(self):
        space = SketchSpace()
        cms = space.cms_new(64, 4, 7)
        with pytest.raises(EcodeRuntimeError, match="TopK"):
            space.topk_offer(cms, 1, 1.0)
        with pytest.raises(EcodeRuntimeError, match="CountMinSketch"):
            space.cms_add(space.topk_new(2), 1, 1.0)

    def test_dead_handle_rejected_after_reset(self):
        space = SketchSpace()
        handle = space.cms_new(64, 4, 7)
        space.cms_add(handle, 1, 1.0)
        space.reset()
        with pytest.raises(EcodeRuntimeError):
            space.cms_add(handle, 1, 1.0)
        assert space.snapshot() == b""

    def test_object_cap_enforced(self):
        space = SketchSpace()
        for i in range(SketchSpace.MAX_OBJECTS):
            space.ctr_new(i)
        with pytest.raises(EcodeRuntimeError, match="sketch objects"):
            space.ctr_new(SketchSpace.MAX_OBJECTS)

    def test_negative_weight_rejected_through_builtins(self):
        space = SketchSpace()
        with pytest.raises(EcodeRuntimeError, match="non-negative"):
            space.cms_add(space.cms_new(64, 4, 7), 1, -1.0)
        with pytest.raises(EcodeRuntimeError, match="non-negative"):
            space.topk_offer(space.topk_new(2), 1, float("nan"))

    def test_rank_out_of_range_rejected(self):
        space = SketchSpace()
        handle = space.topk_new(2)
        space.topk_offer(handle, 1, 1.0)
        with pytest.raises(EcodeRuntimeError):
            space.topk_key(handle, 1)
        with pytest.raises(EcodeRuntimeError):
            space.topk_weight(handle, -1)


class TestCompiledFilterState:
    SRC = """
    {
        int c = cms_new(32, 2, 3);
        double w = cms_add(c, 7, 1.5);
        return w;
    }
    """

    def test_state_persists_across_invocations(self):
        compiled = compile_filter(self.SRC)
        assert compiled.uses_sketch
        assert compiled.run([]).returned == 1.5
        assert compiled.run([]).returned == 3.0
        assert compiled.run([]).returned == 4.5

    def test_reset_state_restarts_accumulation(self):
        compiled = compile_filter(self.SRC)
        compiled.run([])
        compiled.run([])
        assert compiled.sketch_state() != b""
        compiled.reset_state()
        assert compiled.sketch_state() == b""
        assert compiled.run([]).returned == 1.5

    def test_two_same_source_filters_have_independent_state(self):
        a = compile_filter(self.SRC)
        b = compile_filter(self.SRC)
        a.run([])
        a.run([])
        b.run([])
        assert a.run([]).returned == 4.5
        assert b.run([]).returned == 3.0

    def test_non_literal_shape_rejected_at_runtime_bounds(self):
        src = "{ int c = cms_new(99999999, 2, 3); return 0; }"
        compiled = compile_filter(src)
        with pytest.raises(EcodeError):
            compiled.run([])
