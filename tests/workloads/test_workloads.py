"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import NodeConfig, build_cluster
from repro.workloads import (AmbientActivity, IperfMeasure, IperfPerturb,
                             Linpack)


class TestLinpack:
    def test_idle_node_achieves_rated_mflops(self, env, cluster3):
        lp = Linpack(cluster3["alan"]).start()
        env.run(until=20.0)
        assert lp.mflops() == pytest.approx(17.4, rel=0.02)

    def test_kernel_work_lowers_score(self, env, cluster3):
        node = cluster3["alan"]
        lp = Linpack(node).start()

        def thief():
            while True:
                node.charge_kernel_seconds(0.01)  # 10 ms/s => ~1%
                yield env.timeout(1.0)

        env.process(thief())
        env.run(until=30.0)
        assert lp.mflops() == pytest.approx(17.4 * 0.99, rel=0.01)

    def test_two_threads_share_one_cpu(self, env, cluster3):
        node = cluster3["alan"]
        a = Linpack(node).start()
        b = Linpack(node).start()
        env.run(until=20.0)
        assert a.mflops() == pytest.approx(8.7, rel=0.05)
        assert b.mflops() == pytest.approx(8.7, rel=0.05)

    def test_quad_cpu_runs_four_threads_full_speed(self, env):
        cluster = build_cluster(env, 1, config=NodeConfig(n_cpus=4))
        threads = [Linpack(cluster["alan"]).start() for _ in range(4)]
        env.run(until=20.0)
        for t in threads:
            assert t.mflops() == pytest.approx(17.4, rel=0.05)

    def test_stop_freezes_measurement(self, env, cluster3):
        lp = Linpack(cluster3["alan"]).start()
        env.run(until=5.0)
        lp.stop()
        env.run(until=10.0)
        assert lp.mflops() == pytest.approx(17.4, rel=0.05)

    def test_double_start_rejected(self, env, cluster3):
        lp = Linpack(cluster3["alan"]).start()
        with pytest.raises(SimulationError):
            lp.start()

    def test_measure_before_start_rejected(self, cluster3):
        with pytest.raises(SimulationError):
            Linpack(cluster3["alan"]).mflops()


class TestIperfMeasure:
    def test_idle_network_hits_cpu_limit(self, env, cluster3):
        iperf = IperfMeasure(cluster3["alan"], cluster3["maui"]).start()
        env.run(until=20.0)
        assert iperf.bandwidth_mbps(since=2.0) \
            == pytest.approx(96.5, rel=0.02)

    def test_kernel_load_on_sender_lowers_bandwidth(self, env, cluster3):
        sender = cluster3["alan"]
        iperf = IperfMeasure(sender, cluster3["maui"]).start()

        def thief():
            while True:
                sender.charge_kernel_seconds(0.02)  # 2% of the CPU
                yield env.timeout(1.0)

        env.process(thief())
        env.run(until=30.0)
        measured = iperf.bandwidth_mbps(since=2.0)
        assert measured == pytest.approx(96.5 * 0.98, rel=0.01)

    def test_same_node_rejected(self, cluster3):
        with pytest.raises(SimulationError):
            IperfMeasure(cluster3["alan"], cluster3["alan"])

    def test_stop(self, env, cluster3):
        iperf = IperfMeasure(cluster3["alan"], cluster3["maui"]).start()
        env.run(until=2.0)
        iperf.stop()
        total = iperf.received.total
        env.run(until=4.0)
        assert iperf.received.total == pytest.approx(total,
                                                     rel=0.05)


class TestIperfPerturb:
    def test_takes_requested_bandwidth(self, env, cluster3):
        perturb = IperfPerturb(cluster3["alan"], cluster3["maui"],
                               rate_mbps=70).start()
        env.run(until=1.0)
        assert perturb.achieved_mbps == pytest.approx(70.0)
        mon_avail = cluster3.fabric.available_bandwidth("alan", "maui")
        assert mon_avail == pytest.approx(30e6 / 8, rel=0.01)
        perturb.stop()

    def test_set_rate(self, env, cluster3):
        perturb = IperfPerturb(cluster3["alan"], cluster3["maui"],
                               rate_mbps=10).start()
        env.run(until=0.5)
        perturb.set_rate(50)
        env.run(until=1.0)
        assert perturb.achieved_mbps == pytest.approx(50.0)
        perturb.stop()

    def test_validation(self, env, cluster3):
        with pytest.raises(SimulationError):
            IperfPerturb(cluster3["alan"], cluster3["maui"], 0)
        p = IperfPerturb(cluster3["alan"], cluster3["maui"], 10)
        with pytest.raises(SimulationError):
            p.set_rate(10)  # not running yet
        p.start()
        with pytest.raises(SimulationError):
            p.start()
        p.stop()
        assert not p.running


class TestAmbient:
    def test_generates_activity(self, env, cluster3):
        node = cluster3["alan"]
        AmbientActivity(node, intensity=2.0).start()
        env.run(until=60.0)
        node.cpu.settle()
        assert node.cpu.busy_cpu_seconds > 0
        assert node.disk.writes.total > 0

    def test_zero_intensity_is_noop(self, env, cluster3):
        node = cluster3["maui"]
        amb = AmbientActivity(node, intensity=0.0).start()
        assert not amb.running
        env.run(until=10.0)
        node.cpu.settle()
        assert node.cpu.busy_cpu_seconds == 0.0

    def test_deterministic(self):
        def run_once():
            from repro.sim import Environment
            env = Environment()
            cluster = build_cluster(env, 1, seed=9)
            node = cluster["alan"]
            AmbientActivity(node, intensity=1.0).start()
            env.run(until=30.0)
            node.cpu.settle()
            return (node.cpu.busy_cpu_seconds, node.disk.writes.total)

        assert run_once() == run_once()

    def test_negative_intensity_rejected(self, cluster3):
        with pytest.raises(SimulationError):
            AmbientActivity(cluster3["alan"], intensity=-1)
