"""Unit tests for the processor-sharing CPU model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import CPU, Environment


class TestSingleJob:
    def test_job_duration_matches_capacity(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        done = cpu.execute(50.0)  # 50 Mflop at 10 Mflop/s -> 5 s
        env.run(done)
        assert env.now == pytest.approx(5.0)

    def test_zero_work_completes_immediately(self, env):
        cpu = CPU(env, n_cpus=1)
        done = cpu.execute(0.0)
        assert done.triggered

    def test_negative_work_rejected(self, env):
        cpu = CPU(env, n_cpus=1)
        with pytest.raises(SimulationError):
            cpu.execute(-1.0)

    def test_invalid_construction(self, env):
        with pytest.raises(SimulationError):
            CPU(env, n_cpus=0)
        with pytest.raises(SimulationError):
            CPU(env, mflops_per_cpu=0.0)


class TestProcessorSharing:
    def test_two_jobs_share_one_cpu(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        a = cpu.execute(50.0)
        b = cpu.execute(50.0)
        env.run(env.all_of([a, b]))
        # Both share: each runs at 5 Mflop/s -> both finish at 10 s.
        assert env.now == pytest.approx(10.0)

    def test_unequal_jobs_finish_in_order(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        finish = {}
        short = cpu.execute(10.0)
        long = cpu.execute(30.0)
        short.add_callback(lambda _e: finish.setdefault("short", env.now))
        long.add_callback(lambda _e: finish.setdefault("long", env.now))
        env.run()
        # Shared until short finishes at t=2 (10 Mflop at 5 each),
        # then long runs alone: 20 Mflop left at 10 -> t=4.
        assert finish["short"] == pytest.approx(2.0)
        assert finish["long"] == pytest.approx(4.0)

    def test_multi_cpu_no_contention_below_capacity(self, env):
        cpu = CPU(env, n_cpus=4, mflops_per_cpu=10.0)
        jobs = [cpu.execute(50.0) for _ in range(4)]
        env.run(env.all_of(jobs))
        assert env.now == pytest.approx(5.0)

    def test_multi_cpu_oversubscribed(self, env):
        cpu = CPU(env, n_cpus=2, mflops_per_cpu=10.0)
        jobs = [cpu.execute(50.0) for _ in range(4)]
        env.run(env.all_of(jobs))
        # 4 jobs on 2 CPUs: each at 5 Mflop/s -> 10 s.
        assert env.now == pytest.approx(10.0)

    def test_late_arrival_slows_running_job(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        finish = {}
        first = cpu.execute(100.0)
        first.add_callback(lambda _e: finish.setdefault("first", env.now))

        def latecomer():
            yield env.timeout(5.0)
            done = cpu.execute(25.0)
            yield done
            finish["second"] = env.now

        env.process(latecomer())
        env.run()
        # First runs alone for 5 s (50 Mflop done), then shares.
        # Second: 25 Mflop at 5 Mflop/s -> finishes at t=10.
        # First: 50 left, 25 done while sharing, 25 left alone -> t=12.5.
        assert finish["second"] == pytest.approx(10.0)
        assert finish["first"] == pytest.approx(12.5)

    def test_per_job_rate(self, env):
        cpu = CPU(env, n_cpus=2, mflops_per_cpu=10.0)
        assert cpu.per_job_rate() == 10.0
        cpu.execute(1000.0)
        assert cpu.per_job_rate() == 10.0
        cpu.execute(1000.0)
        cpu.execute(1000.0)
        cpu.execute(1000.0)
        assert cpu.per_job_rate() == pytest.approx(5.0)


class TestRunQueueAccounting:
    def test_runnable_jobs_counted(self, env):
        cpu = CPU(env, n_cpus=1)
        cpu.execute(1000.0)
        cpu.execute(1000.0)
        assert cpu.run_queue_length == 2

    def test_kernel_work_not_in_run_queue(self, env):
        cpu = CPU(env, n_cpus=1)
        cpu.kernel_work(1000.0)
        assert cpu.run_queue_length == 0
        assert cpu.active_jobs == 1

    def test_kernel_work_still_contends(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        app = cpu.execute(50.0)
        cpu.kernel_work(50.0)
        env.run(app)
        assert env.now == pytest.approx(10.0)

    def test_runqueue_trace_records_transitions(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        cpu.execute(10.0)
        env.run()
        values = cpu.runqueue_trace.values
        assert values[0] == 0 and 1 in values and values[-1] == 0

    def test_loadavg_rises_under_load(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=1e-3)

        def hammer():
            # Keep 4 long jobs runnable and sample loadavg over time.
            for _ in range(4):
                cpu.execute(1e6)
            yield env.timeout(300.0)
            cpu.loadavg.update(env.now, cpu.run_queue_length)

        env.run(env.process(hammer()))
        one_min = cpu.loadavg.as_tuple()[0]
        assert one_min > 3.0


class TestBusyAccounting:
    def test_busy_cpu_seconds(self, env):
        cpu = CPU(env, n_cpus=2, mflops_per_cpu=10.0)
        a = cpu.execute(50.0)
        b = cpu.execute(50.0)
        env.run(env.all_of([a, b]))
        assert cpu.busy_cpu_seconds == pytest.approx(10.0)  # 2 cpus x 5 s

    def test_work_conservation_under_churn(self, env):
        """Total delivered Mflop equals requested regardless of sharing."""
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=7.0)
        works = [3.0, 11.0, 5.5, 0.25, 9.0]

        def submit_later(w, delay):
            yield env.timeout(delay)
            yield cpu.execute(w)

        procs = [env.process(submit_later(w, i * 0.3))
                 for i, w in enumerate(works)]
        env.run(env.all_of(procs))
        expected = sum(works) / 7.0  # busy whole time after t=0
        assert cpu.busy_cpu_seconds == pytest.approx(expected, rel=1e-6)


class TestCancel:
    def test_cancel_fails_event(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        job = cpu.submit(100.0)
        cpu.cancel(job)
        env.run()
        assert job.cancelled
        assert not job.done.ok

    def test_cancel_releases_capacity(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        victim = cpu.submit(1000.0)
        survivor = cpu.execute(50.0)

        def killer():
            yield env.timeout(1.0)
            cpu.cancel(victim)

        env.process(killer())
        env.run(survivor)
        # 1 s shared (5 Mflop done), then alone: 45/10 = 4.5 s more.
        assert env.now == pytest.approx(5.5)

    def test_cancel_twice_is_noop(self, env):
        cpu = CPU(env, n_cpus=1)
        job = cpu.submit(10.0)
        cpu.cancel(job)
        cpu.cancel(job)
        env.run()


class TestUtilization:
    def test_windowed_utilization_honors_since(self, env):
        """Regression: `since` used to be ignored (global mean)."""
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        cpu.execute(50.0)           # busy on [0, 5]
        env.run(until=10.0)         # idle on [5, 10]
        cpu.settle()
        assert cpu.utilization(since=0.0) == pytest.approx(0.5)
        # A window entirely inside the idle span must read zero — the
        # old implementation returned the global mean here.
        assert cpu.utilization(since=5.0) == pytest.approx(0.0)
        assert cpu.utilization(since=6.0, now=9.0) == pytest.approx(0.0)

    def test_window_straddling_transition_interpolates(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        cpu.execute(50.0)           # busy on [0, 5]
        env.run(until=10.0)
        cpu.settle()
        # [2.5, 7.5]: busy for 2.5 of 5 seconds.
        assert cpu.utilization(since=2.5, now=7.5) == pytest.approx(0.5)
        # [4, 6]: busy for 1 of 2 seconds.
        assert cpu.utilization(since=4.0, now=6.0) == pytest.approx(0.5)

    def test_utilization_extrapolates_past_last_checkpoint(self, env):
        cpu = CPU(env, n_cpus=2, mflops_per_cpu=10.0)
        cpu.execute(1000.0)         # one long job -> one CPU busy
        env.run(until=4.0)
        # No settle: the window end lies beyond the last checkpoint, so
        # busy time extrapolates at the current concurrency (1 of 2).
        assert cpu.utilization(since=0.0) == pytest.approx(0.5)

    def test_multi_cpu_partial_load(self, env):
        cpu = CPU(env, n_cpus=4, mflops_per_cpu=10.0)
        cpu.execute(50.0)
        cpu.execute(50.0)           # 2 of 4 CPUs busy on [0, 5]
        env.run(until=5.0)
        cpu.settle()
        assert cpu.utilization(since=0.0) == pytest.approx(0.5)
        assert cpu.utilization(since=1.0, now=3.0) == pytest.approx(0.5)

    def test_empty_window_rejected(self, env):
        cpu = CPU(env, n_cpus=1)
        with pytest.raises(SimulationError):
            cpu.utilization(since=0.0, now=0.0)


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def scenario():
            e = Environment()
            cpu = CPU(e, n_cpus=2, mflops_per_cpu=3.3)
            times = []
            for i in range(10):
                done = cpu.execute(1.0 + i * 0.7)
                done.add_callback(lambda _e: times.append(e.now))
            e.run()
            return times

        assert scenario() == scenario()
