"""Guard: the kernel's event ordering is frozen.

The expected sequence below was recorded from the simulation kernel
before the fast-path optimisations (local heap bindings, direct
callback-list appends in ``Process._resume``, the O(1) run-queue
counter).  Any change to how same-time events are ordered — FIFO by
scheduling sequence, urgent band for interrupts/bootstrap — shows up
here as a diff, not as a silent behaviour change in every benchmark.
"""

from __future__ import annotations

from repro.errors import InterruptError
from repro.sim import Environment

#: Recorded pre-optimisation ordering of the mixed schedule below.
EXPECTED = [
    (0.0, "a:start"),
    (0.0, "b:start"),
    (0.0, "victim:start"),
    (1.0, "timeout:0"),
    (1.0, "timeout:1"),
    (1.0, "timeout:2"),
    (1.0, "a:t1"),
    (1.0, "b:t1"),
    (1.0, "interrupter:fired"),
    (1.0, "victim:interrupted:now"),
    (1.5, "victim:recovered"),
    (2.0, "a:t2"),
    (2.0, "b:t2"),
]


def _mixed_schedule() -> list[tuple[float, str]]:
    """Timeouts, processes and an interrupt all colliding at t=1.0."""
    env = Environment()
    log: list[tuple[float, str]] = []

    def runner(name):
        log.append((env.now, f"{name}:start"))
        yield env.timeout(1.0)
        log.append((env.now, f"{name}:t1"))
        yield env.timeout(1.0)
        log.append((env.now, f"{name}:t2"))

    def interruptee():
        log.append((env.now, "victim:start"))
        try:
            yield env.timeout(10.0)
        except InterruptError as exc:
            log.append((env.now, f"victim:interrupted:{exc.cause}"))
        yield env.timeout(0.5)
        log.append((env.now, "victim:recovered"))

    def interrupter(victim):
        yield env.timeout(1.0)
        log.append((env.now, "interrupter:fired"))
        victim.interrupt("now")

    env.process(runner("a"))
    env.process(runner("b"))
    victim = env.process(interruptee())
    env.process(interrupter(victim))
    for i in range(3):
        t = env.timeout(1.0, value=i)
        t.add_callback(
            lambda ev: log.append((env.now, f"timeout:{ev.value}")))
    env.run()
    return log


def test_schedule_order_matches_recorded_fixture():
    assert _mixed_schedule() == EXPECTED


def test_schedule_is_repeatable():
    assert _mixed_schedule() == _mixed_schedule()


def test_events_processed_counter_counts_steps():
    env = Environment()
    for _ in range(5):
        env.timeout(1.0)
    env.run()
    assert env.events_processed == 5
