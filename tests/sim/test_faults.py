"""Fault-injection subsystem: plane semantics, transport integration,
scheduling, and determinism."""

from __future__ import annotations

import pytest

from repro.errors import FaultInjectionError, TransportError
from repro.sim import Environment, FaultInjector, build_cluster
from repro.sim.faults import FaultPlane


@pytest.fixture
def injector(cluster3):
    return FaultInjector(cluster3)


def send(cluster, src, dst, size=1000.0, tag="t"):
    """Open a connection and send one message; returns its event."""
    conn = cluster[src].stack.connect(dst, tag=tag)
    return conn.send({"x": 1}, size)


def outcome(env, event):
    """Run to quiescence; returns 'delivered' or 'lost'."""
    event.defused = True
    env.run()
    assert event.triggered
    return "delivered" if event._ok else "lost"


class TestFaultPlane:
    def test_inactive_by_default(self):
        assert not FaultPlane().active

    def test_bad_probability_rejected(self):
        plane = FaultPlane()
        with pytest.raises(FaultInjectionError, match="probability"):
            plane.set_loss(1.5)
        with pytest.raises(FaultInjectionError):
            plane.set_loss(-0.1)
        with pytest.raises(FaultInjectionError):
            plane.set_link_loss("alan:tx", 2.0)

    def test_pair_loss_needs_both_ends(self):
        plane = FaultPlane()
        with pytest.raises(FaultInjectionError, match="both src and dst"):
            plane.set_loss(0.5, src="alan")

    def test_loss_probabilities_compose(self):
        plane = FaultPlane()
        plane.set_loss(0.5)
        plane.set_loss(0.5, src="a", dst="b")
        assert plane.loss_probability("a", "b") == pytest.approx(0.75)
        # Other pairs only see the global rule.
        assert plane.loss_probability("a", "c") == pytest.approx(0.5)

    def test_partition_blocks_cross_group_only(self):
        plane = FaultPlane()
        plane.set_partition([("a", "b"), ("c",)])
        assert plane.partitioned("a", "c")
        assert plane.partitioned("c", "b")
        assert not plane.partitioned("a", "b")
        # A host in no group keeps full connectivity.
        assert not plane.partitioned("a", "z")
        plane.heal_partition()
        assert not plane.partitioned("a", "c")

    def test_host_in_two_groups_rejected(self):
        plane = FaultPlane()
        with pytest.raises(FaultInjectionError, match="two partition"):
            plane.set_partition([("a", "b"), ("b", "c")])

    def test_down_host_blocks_both_directions(self):
        plane = FaultPlane()
        plane.mark_down("a")
        assert plane.blocked("a", "b")
        assert plane.blocked("b", "a")
        plane.mark_up("a")
        assert not plane.blocked("a", "b")

    def test_negative_stall_rejected(self):
        with pytest.raises(FaultInjectionError, match="non-negative"):
            FaultPlane().set_stall(-1.0)


class TestTransportIntegration:
    def test_partition_drops_message(self, env, cluster3, injector):
        injector.partition(["alan"], ["maui", "etna"])
        ev = send(cluster3, "alan", "maui")
        assert outcome(env, ev) == "lost"
        # Within a group traffic still flows.
        ev = send(cluster3, "maui", "etna")
        assert outcome(env, ev) == "delivered"

    def test_heal_restores_traffic(self, env, cluster3, injector):
        injector.partition(["alan"], ["maui", "etna"])
        injector.heal()
        ev = send(cluster3, "alan", "maui")
        assert outcome(env, ev) == "delivered"

    def test_certain_loss_drops_message(self, env, cluster3, injector):
        injector.set_message_loss(1.0)
        ev = send(cluster3, "alan", "maui")
        assert outcome(env, ev) == "lost"
        injector.clear_message_loss()
        ev = send(cluster3, "alan", "maui")
        assert outcome(env, ev) == "delivered"

    def test_link_loss_hits_only_that_link(self, env, cluster3, injector):
        injector.set_link_loss("alan:tx", 1.0)
        assert outcome(env, send(cluster3, "alan", "maui")) == "lost"
        assert outcome(env, send(cluster3, "maui", "etna")) == "delivered"

    def test_crash_blocks_send_and_receive(self, env, cluster3, injector):
        injector.crash("maui")
        assert outcome(env, send(cluster3, "alan", "maui")) == "lost"
        assert outcome(env, send(cluster3, "maui", "etna")) == "lost"
        injector.reboot("maui")
        assert outcome(env, send(cluster3, "alan", "maui")) == "delivered"

    def test_loss_counted_on_connection(self, env, cluster3, injector):
        injector.set_message_loss(1.0)
        conn = cluster3["alan"].stack.connect("maui", tag="t")
        ev = conn.send("x", 500.0)
        ev.defused = True
        env.run()
        assert conn.losses.total == 1.0

    def test_stall_delays_delivery(self, env, cluster3, injector):
        got = []
        cluster3["maui"].stack.bind("t", lambda m: got.append(env.now))
        injector.set_stall(2.0)
        ev = send(cluster3, "alan", "maui")
        env.run()
        (t_stalled,) = got
        # Wire time for 1000 bytes is well under 10 ms; the delivery
        # must carry the full 2 s stall on top.
        assert 2.0 < t_stalled < 2.01
        assert ev._ok

    def test_partition_landing_mid_flight_kills_message(
            self, env, cluster3, injector):
        # 1 MB at 100 Mbps takes ~0.08 s; partition lands at 0.01 s.
        ev = send(cluster3, "alan", "maui", size=1e6)
        injector.at(0.01, lambda: injector.partition(["alan"],
                                                     ["maui"]))
        assert outcome(env, ev) == "lost"

    def test_no_faults_no_interference(self, env, cluster3, injector):
        """An attached but empty plane leaves the data path untouched."""
        ev = send(cluster3, "alan", "maui")
        assert outcome(env, ev) == "delivered"


class TestInjectorScheduling:
    def test_actions_are_logged_with_sim_time(self, env, cluster3,
                                              injector):
        injector.schedule_loss(1.0, 0.25, until=2.0)
        injector.schedule_crash(1.5, "etna", reboot_at=3.0)
        env.run(until=5.0)
        assert injector.log == [
            (1.0, "loss 0.25 on all links"),
            (1.5, "crash etna"),
            (2.0, "loss 0 on all links"),
            (3.0, "reboot etna"),
        ]

    def test_past_schedule_rejected(self, env, cluster3, injector):
        env.run(until=2.0)
        with pytest.raises(FaultInjectionError, match="cannot schedule"):
            injector.at(1.0, lambda: None)

    def test_bad_windows_rejected(self, cluster3, injector):
        with pytest.raises(FaultInjectionError):
            injector.schedule_loss(2.0, 0.5, until=1.0)
        with pytest.raises(FaultInjectionError):
            injector.schedule_partition(2.0, [["alan"]], heal_at=2.0)
        with pytest.raises(FaultInjectionError):
            injector.schedule_crash(2.0, "alan", reboot_at=1.0)

    def test_unknown_host_rejected(self, cluster3, injector):
        with pytest.raises(FaultInjectionError, match="unknown host"):
            injector.crash("zeus")
        with pytest.raises(FaultInjectionError, match="unknown host"):
            injector.partition(["alan"], ["zeus"])

    def test_crash_and_reboot_handlers_fire(self, env, cluster3,
                                            injector):
        calls = []
        injector.on_crash(lambda h: calls.append(("crash", h, env.now)))
        injector.on_reboot(lambda h: calls.append(("boot", h, env.now)))
        injector.schedule_crash(1.0, "maui", reboot_at=2.0)
        env.run(until=3.0)
        assert calls == [("crash", "maui", 1.0), ("boot", "maui", 2.0)]


class TestDeterminism:
    @staticmethod
    def _lossy_run(seed: int) -> list[int]:
        """Delivered message ids of 50 sends under 30 % loss."""
        env = Environment()
        cluster = build_cluster(env, nodes=3, seed=seed)
        injector = FaultInjector(cluster)
        injector.set_message_loss(0.3)
        delivered: list[int] = []
        conn = cluster["alan"].stack.connect("maui", tag="t")

        def sender():
            for i in range(50):
                ev = conn.send(i, 200.0)
                ev.add_callback(
                    lambda e, i=i: delivered.append(i) if e._ok
                    else setattr(e, "defused", True))
                yield env.timeout(0.05)

        env.process(sender())
        env.run(until=10.0)
        return delivered

    def test_same_seed_same_drops(self):
        a = self._lossy_run(seed=11)
        b = self._lossy_run(seed=11)
        assert a == b
        assert 0 < len(a) < 50  # the loss rule actually bites

    def test_different_seed_different_drops(self):
        assert self._lossy_run(seed=11) != self._lossy_run(seed=12)

    def test_empty_plane_preserves_rng_stream(self):
        """Attaching an injector without rules must not consume RNG
        draws — pre-existing seeded runs stay bit-identical."""

        def run(with_injector: bool) -> list[float]:
            env = Environment()
            cluster = build_cluster(env, nodes=3, seed=42)
            if with_injector:
                FaultInjector(cluster)
            conn = cluster["alan"].stack.connect("maui", tag="t")
            for _ in range(5):
                conn.send("x", 300.0).defused = True
            env.run()
            return [cluster[n].rng.random() for n in cluster.names]

        assert run(with_injector=False) == run(with_injector=True)
