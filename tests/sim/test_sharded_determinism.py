"""Determinism guarantees of the sharded kernel.

Three pins:

* ``workers=1`` is the plain kernel — a scenario with
  ``with_workers(1)`` is bit-identical to one that never mentions
  workers (the 50-node chaos golden in ``tests/golden`` pins the
  absolute schedule).
* A sharded run is self-identical: same (seed, workers, partition) →
  identical events, fault log, telemetry and causal traces.
* Inline and forked-worker execution produce identical per-shard
  results — process boundaries move work, never outcomes.
"""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.dproc import DMonConfig, MetricId
from repro.dproc.toolkit import Dproc
from repro.harness.chaos import chaos_recovery
from repro.sim import Environment, build_cluster, partition_nodes, \
    run_sharded
from repro.sim.shard import ShardedBus, ShardRouter, ShardWorld
from repro.tracing import TraceCollector

N = 16
SEED = 11
DURATION = 12.0


def _telemetry_fingerprint(sc: Scenario) -> dict:
    return {node.name: node.telemetry.snapshot() for node in sc.nodes}


class TestWorkersOneIsPlainKernel:
    def test_with_workers_1_bit_identical_to_plain(self):
        plain = Scenario(nodes=N, seed=SEED).run(DURATION)
        workers1 = Scenario(nodes=N, seed=SEED) \
            .with_workers(1).run(DURATION)
        assert workers1.env.events_processed \
            == plain.env.events_processed
        assert _telemetry_fingerprint(workers1) \
            == _telemetry_fingerprint(plain)

    def test_golden_chaos_scenario_unchanged_shape(self):
        """The golden 50-node chaos pin lives in tests/golden; here a
        small fast twin guards the same property in this suite."""
        a = chaos_recovery(nodes=12, seed=5, duration=30.0)
        b = chaos_recovery(nodes=12, seed=5, duration=30.0)
        assert a.trace == b.trace


class TestShardedSelfIdentity:
    def _run(self):
        tracer = TraceCollector()
        sc = (Scenario(nodes=N, seed=SEED)
              .with_workers(4, mode="inline")
              .with_tracing(tracer)
              .with_faults(lambda s: (
                  s.faults.schedule_loss(3.0, 0.25, until=8.0),
                  s.faults.schedule_crash(4.0, s.nodes.names[-1],
                                          reboot_at=9.0)))
              .run(DURATION))
        traces = {tid: tracer.tree(tid).snapshot()
                  for tid in tracer.trace_ids()}
        return {
            "events": [(s.index, s.events_processed, s.conduit_tx,
                        s.conduit_rx, s.conduit_dropped)
                       for s in sc.shard_result.shards],
            "windows": sc.shard_result.windows,
            "fault_log": list(sc.faults.log),
            "telemetry": _telemetry_fingerprint(sc),
            "overhead": sc.overhead(),
            "traces": traces,
        }

    def test_workers_4_identical_across_runs(self):
        assert self._run() == self._run()

    def test_sharded_chaos_identical_across_runs(self):
        a = chaos_recovery(nodes=12, seed=5, duration=30.0, workers=3)
        b = chaos_recovery(nodes=12, seed=5, duration=30.0, workers=3)
        assert a.trace == b.trace
        assert a.overhead == b.overhead

    def test_processes_mode_identical_across_runs(self):
        def run():
            sc = Scenario(nodes=N, seed=SEED).with_workers(4)
            sc.run(DURATION)
            r = sc.shard_result
            return ([(s.index, s.events_processed, s.conduit_tx,
                      s.conduit_rx) for s in r.shards],
                    r.windows, sc.overhead())
        assert run() == run()


WATCHERS = 2


def _build_shard(spec):
    env = Environment()
    local = list(spec.local_names)
    cluster = build_cluster(env, nodes=len(local), seed=SEED,
                            names=local)
    bus = ShardedBus()
    router = ShardRouter(env, spec.plan, spec.index)
    router.attach(cluster)
    all_names = spec.plan.names
    watcher_set = set(sorted(all_names)[:WATCHERS])
    dprocs = {}
    for name in local:
        cfg = DMonConfig(poll_interval=1.0,
                         metric_subset=frozenset({MetricId.LOADAVG}),
                         subscribe_monitoring=name in watcher_set)
        dprocs[name] = Dproc(cluster[name], bus, cfg, ("cpu",))
        if name in watcher_set:
            for host in all_names:
                dprocs[name].add_cluster_node(host)
    for dproc in dprocs.values():
        dproc.start()
    return ShardWorld(env=env, router=router, bus=bus,
                      cluster=cluster, dprocs=dprocs,
                      harvest=lambda w: {
                          "remote": {n: sorted(d.dmon.remote)
                                     for n, d in w.dprocs.items()
                                     if n in watcher_set}})


class TestInlineEqualsProcesses:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_per_shard_results_identical(self, workers):
        plan = partition_nodes([f"n{i:02d}" for i in range(12)],
                               workers)
        runs = [run_sharded(plan, 8.0, _build_shard,
                            processes=processes)
                for processes in (False, True)]
        fingerprints = [
            [(s.index, s.n_nodes, s.events_processed, s.conduit_tx,
              s.conduit_rx, s.conduit_dropped, s.extra)
             for s in r.shards] for r in runs]
        assert fingerprints[0] == fingerprints[1]
        assert runs[0].windows == runs[1].windows
        assert runs[0].events_processed == runs[1].events_processed

    def test_watchers_see_every_remote_host(self):
        """Cross-shard monitoring actually flows: each watcher's
        d-mon cache covers the whole cluster, not just its shard."""
        names = [f"n{i:02d}" for i in range(12)]
        plan = partition_nodes(names, 3)
        result = run_sharded(plan, 8.0, _build_shard, processes=False)
        remote = {}
        for shard in result.shards:
            remote.update(shard.extra["remote"])
        assert set(remote) == set(sorted(names)[:WATCHERS])
        for watcher, seen in remote.items():
            assert set(seen) == set(names) - {watcher}
