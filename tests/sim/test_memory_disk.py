"""Unit tests for the memory and disk models."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Disk, Memory
from repro.units import MB, PAGE_SIZE, msec


class TestMemory:
    def test_initial_free_accounts_reservation(self, env):
        mem = Memory(env, capacity_bytes=MB(512), reserved_bytes=MB(32))
        assert mem.free_bytes == pytest.approx(MB(480))

    def test_allocate_and_free(self, env):
        mem = Memory(env, capacity_bytes=MB(64), reserved_bytes=0)
        a = mem.allocate(MB(10), tag="buf")
        assert mem.free_bytes == pytest.approx(MB(54))
        a.free()
        assert mem.free_bytes == pytest.approx(MB(64))

    def test_free_idempotent(self, env):
        mem = Memory(env, capacity_bytes=MB(64), reserved_bytes=0)
        a = mem.allocate(MB(1))
        a.free()
        a.free()  # must not raise or double-count
        assert mem.free_bytes == pytest.approx(MB(64))

    def test_out_of_memory_raises(self, env):
        mem = Memory(env, capacity_bytes=MB(16), reserved_bytes=0)
        with pytest.raises(SimulationError, match="out of memory"):
            mem.allocate(MB(17))

    def test_negative_allocation_rejected(self, env):
        mem = Memory(env)
        with pytest.raises(SimulationError):
            mem.allocate(-1)

    def test_nr_free_pages(self, env):
        mem = Memory(env, capacity_bytes=PAGE_SIZE * 1000,
                     reserved_bytes=0)
        mem.allocate(PAGE_SIZE * 250)
        assert mem.nr_free_pages() == 750

    def test_free_trace_records_changes(self, env):
        mem = Memory(env, capacity_bytes=MB(64), reserved_bytes=0)
        a = mem.allocate(MB(8))
        a.free()
        assert len(mem.free_trace) == 3  # initial, alloc, free

    def test_invalid_construction(self, env):
        with pytest.raises(SimulationError):
            Memory(env, capacity_bytes=0)
        with pytest.raises(SimulationError):
            Memory(env, capacity_bytes=100, reserved_bytes=200)


class TestDisk:
    def test_service_time_model(self, env):
        disk = Disk(env, transfer_rate=MB(20), per_op_latency=msec(8))
        expect = msec(8) + MB(10) / MB(20)
        assert disk.service_time(MB(10)) == pytest.approx(expect)

    def test_write_advances_clock(self, env):
        disk = Disk(env, transfer_rate=MB(20), per_op_latency=msec(8))
        done = disk.write(MB(2))
        env.run(done)
        assert env.now == pytest.approx(msec(8) + 0.1)

    def test_fifo_service(self, env):
        disk = Disk(env, transfer_rate=MB(20), per_op_latency=0.0)
        finish = {}
        a = disk.write(MB(20))  # 1 s
        b = disk.read(MB(20))   # queued behind a
        a.add_callback(lambda _e: finish.setdefault("a", env.now))
        b.add_callback(lambda _e: finish.setdefault("b", env.now))
        env.run()
        assert finish["a"] == pytest.approx(1.0)
        assert finish["b"] == pytest.approx(2.0)

    def test_counters(self, env):
        disk = Disk(env)
        env.run(disk.write(1024))
        env.run(disk.read(2048))
        assert disk.writes.total == 1
        assert disk.reads.total == 1
        assert disk.sectors_written.total == pytest.approx(2.0)
        assert disk.sectors_read.total == pytest.approx(4.0)

    def test_small_op_counts_one_sector(self, env):
        disk = Disk(env)
        env.run(disk.write(10))
        assert disk.sectors_written.total == pytest.approx(1.0)

    def test_queue_length(self, env):
        disk = Disk(env, transfer_rate=MB(1), per_op_latency=0.0)
        disk.write(MB(5))
        disk.write(MB(5))
        env.run(until=0.1)
        assert disk.queue_length() == 2

    def test_utilization_grows_with_activity(self, env):
        disk = Disk(env, transfer_rate=MB(10), per_op_latency=0.0)

        def loop():
            for _ in range(5):
                yield disk.write(MB(1))
                yield env.timeout(0.1)

        env.run(env.process(loop()))
        assert 0.3 < disk.utilization() < 0.7

    def test_negative_size_rejected(self, env):
        disk = Disk(env)
        with pytest.raises(SimulationError):
            env.run(disk.write(-5))

    def test_invalid_construction(self, env):
        with pytest.raises(SimulationError):
            Disk(env, transfer_rate=0)
        with pytest.raises(SimulationError):
            Disk(env, per_op_latency=-1)
