"""Unit tests for Store / PriorityStore / Container / Resource."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Container, PriorityItem, PriorityStore, Resource, Store


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)

        def proc():
            yield store.put("a")
            yield store.put("b")
            first = yield store.get()
            second = yield store.get()
            return (first, second)

        assert env.run(env.process(proc())) == ("a", "b")

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        log = []

        def consumer():
            item = yield store.get()
            log.append((env.now, item))

        def producer():
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [(5.0, "late")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append(("put1", env.now))
            yield store.put(2)
            log.append(("put2", env.now))

        def consumer():
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [("put1", 0.0), ("put2", 3.0)]

    def test_len_counts_buffered_items(self, env):
        store = Store(env)
        store.put("x")
        store.put("y")
        env.run()
        assert len(store) == 2

    def test_invalid_capacity(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_multiple_getters_served_in_order(self, env):
        store = Store(env)
        got = []

        def getter(tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(getter("first"))
        env.process(getter("second"))

        def producer():
            yield env.timeout(1.0)
            yield store.put("x")
            yield store.put("y")

        env.process(producer())
        env.run()
        assert got == [("first", "x"), ("second", "y")]


class TestPriorityStore:
    def test_lowest_priority_first(self, env):
        store = PriorityStore(env)
        store.put("low", priority=10)
        store.put("high", priority=1)
        store.put("mid", priority=5)

        def proc():
            a = yield store.get()
            b = yield store.get()
            c = yield store.get()
            return [a.item, b.item, c.item]

        assert env.run(env.process(proc())) == ["high", "mid", "low"]

    def test_ties_break_fifo(self, env):
        store = PriorityStore(env)
        store.put("first", priority=1)
        store.put("second", priority=1)

        def proc():
            a = yield store.get()
            b = yield store.get()
            return [a.item, b.item]

        assert env.run(env.process(proc())) == ["first", "second"]

    def test_accepts_priority_item(self, env):
        store = PriorityStore(env)
        store.put(PriorityItem(priority=2, item="wrapped"))

        def proc():
            got = yield store.get()
            return got.item

        assert env.run(env.process(proc())) == "wrapped"

    def test_missing_priority_rejected(self, env):
        store = PriorityStore(env)
        with pytest.raises(SimulationError):
            store.put("bare")


class TestContainer:
    def test_initial_level(self, env):
        c = Container(env, capacity=100, init=40)
        assert c.level == 40

    def test_get_blocks_until_enough(self, env):
        c = Container(env, capacity=100, init=0)
        log = []

        def taker():
            yield c.get(30)
            log.append(env.now)

        def filler():
            yield env.timeout(1.0)
            yield c.put(10)
            yield env.timeout(1.0)
            yield c.put(25)

        env.process(taker())
        env.process(filler())
        env.run()
        assert log == [2.0]
        assert c.level == pytest.approx(5.0)

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=10, init=10)
        log = []

        def putter():
            yield c.put(5)
            log.append(env.now)

        def drainer():
            yield env.timeout(4.0)
            yield c.get(7)

        env.process(putter())
        env.process(drainer())
        env.run()
        assert log == [4.0]

    def test_negative_amounts_rejected(self, env):
        c = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            c.put(-1)
        with pytest.raises(SimulationError):
            c.get(-1)

    def test_get_more_than_capacity_rejected(self, env):
        c = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            c.get(11)

    def test_bad_init_rejected(self, env):
        with pytest.raises(SimulationError):
            Container(env, capacity=10, init=11)


class TestResource:
    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        granted = []

        def user(tag, hold):
            req = res.request()
            yield req
            granted.append((tag, env.now))
            yield env.timeout(hold)
            req.release()

        env.process(user("a", 5))
        env.process(user("b", 5))
        env.process(user("c", 1))
        env.run()
        assert granted == [("a", 0.0), ("b", 0.0), ("c", 5.0)]

    def test_count_tracks_holders(self, env):
        res = Resource(env, capacity=1)

        def user():
            req = res.request()
            yield req
            assert res.count == 1
            yield env.timeout(1)
            req.release()

        env.run(env.process(user()))
        assert res.count == 0

    def test_release_unknown_request_raises(self, env):
        res = Resource(env)
        other = Resource(env)
        req = other.request()
        env.run()
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        held = res.request()
        queued = res.request()
        env.run()
        res.release(queued)  # cancel while still waiting
        res.release(held)
        env.run()
        assert res.count == 0

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)
