"""Edge-case and stress tests for the simulation substrate."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import CPU, Environment, Fabric, build_cluster
from repro.units import mbps


class TestSchedulerStress:
    def test_many_simultaneous_timeouts(self, env):
        fired = []
        for i in range(5000):
            env.timeout(1.0).add_callback(
                lambda _e, i=i: fired.append(i))
        env.run()
        assert fired == list(range(5000))

    def test_deeply_chained_processes(self, env):
        def chain(depth):
            if depth > 0:
                yield env.process(chain(depth - 1))
            yield env.timeout(0.001)

        env.run(env.process(chain(200)))
        assert env.now == pytest.approx(0.201)

    def test_process_forest(self, env):
        """Many processes spawning processes remains deterministic."""
        done = []

        def parent(tag):
            kids = [env.process(child(tag, k)) for k in range(5)]
            yield env.all_of(kids)
            done.append(tag)

        def child(tag, k):
            yield env.timeout(0.1 * ((tag * 5 + k) % 7 + 1))

        for t in range(20):
            env.process(parent(t))
        env.run()
        assert sorted(done) == list(range(20))

    def test_interleaved_run_until_times(self, env):
        hits = []
        for t in (1.0, 2.0, 3.0):
            env.timeout(t).add_callback(
                lambda _e, t=t: hits.append(t))
        env.run(until=1.5)
        assert hits == [1.0]
        env.run(until=10.0)
        assert hits == [1.0, 2.0, 3.0]


class TestCpuEdgeCases:
    def test_tiny_and_huge_jobs_coexist(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        tiny = [cpu.execute(1e-9) for _ in range(50)]
        big = cpu.execute(100.0)
        env.run(env.all_of(tiny + [big]))
        cpu.settle()
        assert cpu.busy_cpu_seconds == pytest.approx(10.0, rel=1e-6)

    def test_burst_of_kernel_work_during_long_job(self, env):
        cpu = CPU(env, n_cpus=1, mflops_per_cpu=10.0)
        job = cpu.execute(100.0)  # 10 s alone

        def bursts():
            for _ in range(100):
                cpu.kernel_work(0.01)
                yield env.timeout(0.05)

        env.process(bursts())
        env.run(job)
        # job time = own work + total kernel work (work conservation)
        assert env.now == pytest.approx(10.0 + 100 * 0.001, rel=1e-6)

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(SimulationError):
            CPU(env, mflops_per_cpu=-1.0)


class TestNetworkEdgeCases:
    def test_many_tiny_transfers(self, env):
        fabric = Fabric(env)
        fabric.add_host("a")
        fabric.add_host("b")
        handles = [fabric.transfer("a", "b", 100.0)
                   for _ in range(300)]
        env.run(env.all_of([h.done for h in handles]))
        fabric.settle()
        assert fabric.hosts["a"].tx.carried.total \
            == pytest.approx(300 * 100.0, rel=0.01)

    def test_fixed_flow_churn(self, env):
        """Open/close fixed flows rapidly while a transfer runs."""
        fabric = Fabric(env)
        fabric.add_host("a")
        fabric.add_host("b")
        fabric.add_host("c")
        handle = fabric.transfer("a", "b", mbps(100) * 5.0)

        def churn():
            for i in range(40):
                flow = fabric.open_fixed_flow("c", "b",
                                              mbps(30 + i % 40))
                yield env.timeout(0.2)
                flow.close()

        env.process(churn())
        env.run(handle.done)
        # With churning contention the 5 line-seconds take >5 s but
        # finish — no stall, no oversubscription blow-up.
        assert 5.0 < env.now < 12.0

    def test_transfer_between_every_pair(self, env):
        cluster = build_cluster(env, 6, seed=8)
        handles = []
        for a in cluster.names:
            for b in cluster.names:
                if a != b:
                    handles.append(
                        cluster.fabric.transfer(a, b, 50_000.0))
        env.run(env.all_of([h.done for h in handles]))
        assert all(h.done.ok for h in handles)


class TestDeterminismAcrossSubsystems:
    def test_full_stack_replay(self):
        """A dproc+workload scenario is bit-identical across runs."""

        def run_once():
            from repro.dproc import deploy_dproc
            from repro.workloads import AmbientActivity, Linpack
            env = Environment()
            cluster = build_cluster(env, 4, seed=77)
            dprocs = deploy_dproc(cluster)
            for node in cluster:
                AmbientActivity(node, intensity=0.6).start()
            lp = Linpack(cluster["alan"]).start()
            env.run(until=30.0)
            a = dprocs["alan"].dmon
            return (lp.mflops(),
                    a.events_published.total,
                    a.submit_overhead.values[-1],
                    cluster["maui"].disk.writes.total)

        assert run_once() == run_once()
