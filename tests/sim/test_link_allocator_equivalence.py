"""Equivalence: incremental allocator vs. the reference implementation.

``allocate_rates`` was rewritten for scalability (persistent per-link
flow index, touched-links-only recomputation).  The original allocator
is retained as ``allocate_rates_reference``; these tests assert the two
agree — exactly, not approximately — across hundreds of randomized
topologies and the edge cases that drove the original design (elastic
floor, multi-bottleneck water-filling, fixed-flow scaling on shared
oversubscribed links).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import NetworkError
from repro.sim.link import (ELASTIC_FLOOR_FRACTION, Flow, FlowIndex,
                            FlowKind, Link, allocate_rates,
                            allocate_rates_reference)


def _random_links(rng: random.Random) -> list[Link]:
    n_links = rng.randint(2, 7)
    return [Link(f"l{i}", capacity=rng.uniform(1e5, 1.25e7),
                 latency=rng.uniform(0.0, 1e-3))
            for i in range(n_links)]


def _random_flow(rng: random.Random, links: list[Link],
                 name: str) -> Flow:
    path = tuple(rng.sample(links, rng.randint(1, min(4, len(links)))))
    if rng.random() < 0.5:
        # Demands range from trickles to 2.5x the tightest link, so a
        # good fraction of scenarios exercise proportional scaling.
        demand = rng.uniform(0.05, 2.5) * min(l.capacity for l in path)
        return Flow(path=path, kind=FlowKind.FIXED, demand=demand,
                    name=name)
    return Flow(path=path, kind=FlowKind.ELASTIC,
                remaining=rng.uniform(1e3, 1e8), name=name)


def _check_equivalent(flows: list[Flow], context: str,
                      index: FlowIndex | None = None) -> None:
    allocate_rates(flows, index=index)
    got = [f.rate for f in flows]
    allocate_rates_reference(flows)
    expected = [f.rate for f in flows]
    assert got == expected, context
    for f, rate in zip(flows, got):
        assert rate >= 0.0, context
        if f.kind is FlowKind.FIXED:
            assert rate <= f.demand * (1 + 1e-9), context


class TestRandomizedEquivalence:
    def test_randomized_flow_sets(self):
        """250 independent scenarios, each checked for exact agreement."""
        rng = random.Random(0xD19C)
        for case in range(250):
            links = _random_links(rng)
            flows = [_random_flow(rng, links, f"flow{i}")
                     for i in range(rng.randint(1, 12))]
            _check_equivalent(flows, f"case {case}")

    def test_incremental_index_across_churn(self):
        """The Fabric's usage pattern: one long-lived index, flows
        added and removed between reallocations.

        Bit-exact agreement holds for the ordering the index itself
        enumerates (``index.flows()``) — the order a Fabric would
        present, since it drives both sides from the same bookkeeping.
        """
        rng = random.Random(0xFAB)
        for case in range(25):
            links = _random_links(rng)
            index = FlowIndex()
            for round_no in range(12):
                live = index.flows()
                for flow in rng.sample(
                        live, rng.randint(0, min(3, len(live)))):
                    index.remove(flow)
                for i in range(rng.randint(0, 4)):
                    index.add(_random_flow(rng, links,
                                           f"c{case}r{round_no}f{i}"))
                if len(index):
                    _check_equivalent(index.flows(),
                                      f"case {case} round {round_no}",
                                      index=index)


class TestEdgeCases:
    def test_elastic_floor_under_fixed_overload(self):
        """A saturating fixed flow cannot squeeze elastic below the floor."""
        link = Link("l", capacity=1e6)
        fixed = Flow(path=(link,), kind=FlowKind.FIXED, demand=2e6)
        elastic = Flow(path=(link,), kind=FlowKind.ELASTIC,
                       remaining=1e6)
        flows = [fixed, elastic]
        allocate_rates(flows)
        assert fixed.rate == pytest.approx(1e6)
        assert elastic.rate == pytest.approx(
            ELASTIC_FLOOR_FRACTION * 1e6)
        _check_equivalent(flows, "elastic floor")

    def test_multi_bottleneck_water_filling(self):
        """A flow frozen at a narrow link releases share on wide links."""
        narrow = Link("narrow", capacity=1e6)
        wide = Link("wide", capacity=10e6)
        through = Flow(path=(narrow, wide), kind=FlowKind.ELASTIC,
                       remaining=1e9, name="through")
        local = Flow(path=(wide,), kind=FlowKind.ELASTIC,
                     remaining=1e9, name="local")
        flows = [through, local]
        allocate_rates(flows)
        assert through.rate == pytest.approx(1e6)
        assert local.rate == pytest.approx(9e6)
        _check_equivalent(flows, "water filling")

    def test_fixed_scaling_on_shared_oversubscribed_link(self):
        """Flows crossing an oversubscribed link scale proportionally,
        and the scaling relieves the links they also cross."""
        a = Link("a", capacity=1e6)
        b = Link("b", capacity=1e6)
        f1 = Flow(path=(a,), kind=FlowKind.FIXED, demand=1.5e6)
        f2 = Flow(path=(a, b), kind=FlowKind.FIXED, demand=1.5e6)
        f3 = Flow(path=(b,), kind=FlowKind.FIXED, demand=0.25e6)
        flows = [f1, f2, f3]
        allocate_rates(flows)
        # Link a (3x oversubscribed) scales f1 and f2 to 0.5 MB/s each;
        # that leaves link b at 0.75 MB/s, under capacity, so f3 keeps
        # its full demand.
        assert f1.rate == pytest.approx(0.5e6)
        assert f2.rate == pytest.approx(0.5e6)
        assert f3.rate == pytest.approx(0.25e6)
        _check_equivalent(flows, "fixed scaling")

    def test_empty_flow_set_is_a_noop(self):
        allocate_rates([])
        allocate_rates_reference([])


class TestFlowIndex:
    def test_add_remove_round_trip(self):
        link = Link("l", capacity=1e6)
        flow = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=1.0)
        index = FlowIndex()
        index.add(flow)
        assert len(index) == 1
        assert index.flows_on(link) == [flow]
        index.remove(flow)
        assert len(index) == 0
        assert index.flows_on(link) == []

    def test_double_add_rejected(self):
        link = Link("l", capacity=1e6)
        flow = Flow(path=(link,), kind=FlowKind.FIXED, demand=1.0)
        index = FlowIndex([flow])
        with pytest.raises(NetworkError):
            index.add(flow)

    def test_remove_unknown_rejected(self):
        link = Link("l", capacity=1e6)
        flow = Flow(path=(link,), kind=FlowKind.FIXED, demand=1.0)
        with pytest.raises(NetworkError):
            FlowIndex().remove(flow)

    def test_aggregates_match_flow_state(self):
        a = Link("a", capacity=1e6)
        b = Link("b", capacity=2e6)
        fixed = Flow(path=(a, b), kind=FlowKind.FIXED, demand=3e5)
        elastic = Flow(path=(b,), kind=FlowKind.ELASTIC, remaining=1e6)
        index = FlowIndex([fixed, elastic])
        allocate_rates(index.flows(), index=index)
        assert index.offered_on(a) == pytest.approx(3e5)
        assert index.allocated_on(b) == pytest.approx(
            fixed.rate + elastic.rate)
