"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import InterruptError, SchedulingError, SimulationError
from repro.sim import Environment, SimEvent


class TestClockAndRun:
    def test_time_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_time_advances_clock(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(SchedulingError):
            env.run(until=1.0)

    def test_run_empty_returns_none(self, env):
        assert env.run() is None

    def test_step_on_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_reports_next_event_time(self, env):
        env.timeout(3.5)
        assert env.peek() == 3.5


class TestTimeout:
    def test_timeout_fires_at_delay(self, env):
        t = env.timeout(2.0)
        env.run()
        assert t.processed
        assert env.now == 2.0

    def test_timeout_carries_value(self, env):
        t = env.timeout(1.0, value="payload")
        env.run()
        assert t.value == "payload"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SchedulingError):
            env.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0.0)
        env.step()
        assert t.processed
        assert env.now == 0.0

    def test_same_time_fifo_order(self, env):
        order = []
        a = env.timeout(1.0)
        b = env.timeout(1.0)
        a.add_callback(lambda _e: order.append("a"))
        b.add_callback(lambda _e: order.append("b"))
        env.run()
        assert order == ["a", "b"]


class TestEventLifecycle:
    def test_untriggered_state(self, env):
        ev = env.event()
        assert not ev.triggered and not ev.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().ok

    def test_succeed_then_processed(self, env):
        ev = env.event()
        ev.succeed(7)
        env.run()
        assert ev.processed and ev.ok and ev.value == 7

    def test_double_succeed_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failure_propagates_from_run(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defused = True
        env.run()  # must not raise

    def test_late_callback_fires_immediately(self, env):
        ev = env.event()
        ev.succeed(1)
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [1]

    def test_remove_callback(self, env):
        ev = env.event()
        seen = []
        cb = lambda e: seen.append(1)  # noqa: E731
        ev.add_callback(cb)
        ev.remove_callback(cb)
        ev.succeed()
        env.run()
        assert seen == []


class TestProcess:
    def test_process_runs_and_returns(self, env):
        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            return "done"

        p = env.process(proc())
        result = env.run(p)
        assert result == "done"
        assert env.now == 3.0

    def test_process_receives_timeout_value(self, env):
        def proc():
            got = yield env.timeout(1.0, value=99)
            return got

        assert env.run(env.process(proc())) == 99

    def test_yield_non_event_fails_process(self, env):
        def proc():
            yield 42

        p = env.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            env.run(p)

    def test_process_exception_propagates(self, env):
        def proc():
            yield env.timeout(1.0)
            raise RuntimeError("inside")

        with pytest.raises(RuntimeError, match="inside"):
            env.run(env.process(proc()))

    def test_join_another_process(self, env):
        def worker():
            yield env.timeout(5.0)
            return "w"

        def boss(w):
            result = yield w
            return f"got {result}"

        w = env.process(worker())
        b = env.process(boss(w))
        assert env.run(b) == "got w"

    def test_join_already_finished_process(self, env):
        def worker():
            yield env.timeout(1.0)
            return 3

        w = env.process(worker())
        env.run(until=2.0)

        def boss():
            v = yield w
            return v

        assert env.run(env.process(boss())) == 3

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(1.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_waiting_on_failed_event_throws_in(self, env):
        ev = env.event()

        def proc():
            try:
                yield ev
            except ValueError:
                return "caught"

        p = env.process(proc())
        ev.fail(ValueError("x"))
        assert env.run(p) == "caught"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100.0)
            except InterruptError as exc:
                return exc.cause

        def attacker(v):
            yield env.timeout(1.0)
            v.interrupt("stop it")

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(v) == "stop it"
        assert env.now == 1.0

    def test_interrupt_then_rewait_same_event(self, env):
        timer_holder = {}

        def victim():
            timer = env.timeout(10.0, value="fired")
            timer_holder["t"] = timer
            try:
                yield timer
            except InterruptError:
                pass
            got = yield timer  # re-wait: timer still pending
            return got

        def attacker(v):
            yield env.timeout(1.0)
            v.interrupt()

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(v) == "fired"
        assert env.now == 10.0

    def test_interrupt_finished_process_raises(self, env):
        def quick():
            yield env.timeout(0.5)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def selfish():
            me = env.active_process
            me.interrupt()
            yield env.timeout(1)

        p = env.process(selfish())
        with pytest.raises(SimulationError, match="itself"):
            env.run(p)

    def test_uncaught_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(100.0)

        def attacker(v):
            yield env.timeout(1.0)
            v.interrupt()

        v = env.process(victim())
        env.process(attacker(v))
        with pytest.raises(InterruptError):
            env.run(v)


class TestConditions:
    def test_all_of_waits_for_everything(self, env):
        a, b = env.timeout(1.0, "a"), env.timeout(3.0, "b")
        cond = env.all_of([a, b])

        def proc():
            result = yield cond
            return result

        result = env.run(env.process(proc()))
        assert env.now == 3.0
        assert result[a] == "a" and result[b] == "b"

    def test_any_of_fires_on_first(self, env):
        a, b = env.timeout(1.0, "a"), env.timeout(3.0, "b")

        def proc():
            result = yield env.any_of([a, b])
            return result

        result = env.run(env.process(proc()))
        assert env.now == 1.0
        assert result == {a: "a"}

    def test_empty_condition_fires_immediately(self, env):
        def proc():
            result = yield env.all_of([])
            return result

        assert env.run(env.process(proc())) == {}

    def test_condition_failure_propagates(self, env):
        bad = env.event()

        def proc():
            yield env.all_of([bad, env.timeout(5.0)])

        p = env.process(proc())
        bad.fail(RuntimeError("sub failed"))
        with pytest.raises(RuntimeError, match="sub failed"):
            env.run(p)

    def test_cross_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            env.all_of([other.timeout(1.0)])


class TestRunUntilEvent:
    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(2.0)
            return 11

        assert env.run(env.process(proc())) == 11

    def test_run_until_never_triggering_event_raises(self, env):
        ev = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError, match="ran dry"):
            env.run(ev)

    def test_deterministic_replay(self):
        def scenario():
            e = Environment()
            trace = []

            def proc(tag, delay):
                yield e.timeout(delay)
                trace.append((tag, e.now))

            for i in range(20):
                e.process(proc(i, (i * 7) % 5 + 0.5))
            e.run()
            return trace

        assert scenario() == scenario()
