"""Unit tests for the switched fabric."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError, RoutingError
from repro.sim import Environment, Fabric
from repro.units import mbps, to_mbps


@pytest.fixture
def fabric(env):
    f = Fabric(env)
    f.add_host("a")
    f.add_host("b")
    f.add_host("c")
    return f


class TestTopology:
    def test_duplicate_host_rejected(self, fabric):
        with pytest.raises(NetworkError):
            fabric.add_host("a")

    def test_path_uses_tx_and_rx(self, fabric):
        path = fabric.path("a", "b")
        assert [l.name for l in path] == ["a:tx", "b:rx"]

    def test_self_path_rejected(self, fabric):
        with pytest.raises(RoutingError):
            fabric.path("a", "a")

    def test_unknown_host_rejected(self, fabric):
        with pytest.raises(RoutingError):
            fabric.path("a", "zz")

    def test_segment_on_path(self, env):
        f = Fabric(env)
        seg = f.add_segment("backbone")
        f.add_host("x", segment=seg)
        f.add_host("y", segment=seg)
        names = [l.name for l in f.path("x", "y")]
        assert names == ["x:tx", "seg:backbone", "y:rx"]

    def test_segment_crossed_once_between_different_segments(self, env):
        f = Fabric(env)
        s1 = f.add_segment("s1")
        s2 = f.add_segment("s2")
        f.add_host("x", segment=s1)
        f.add_host("y", segment=s2)
        names = [l.name for l in f.path("x", "y")]
        assert names == ["x:tx", "seg:s1", "seg:s2", "y:rx"]

    def test_segment_by_name(self, env):
        f = Fabric(env)
        f.add_segment("shared")
        port = f.add_host("x", segment="shared")
        assert port.segment.name == "shared"

    def test_unknown_segment_rejected(self, env):
        f = Fabric(env)
        with pytest.raises(RoutingError):
            f.add_host("x", segment="nope")

    def test_duplicate_segment_rejected(self, env):
        f = Fabric(env)
        f.add_segment("s")
        with pytest.raises(NetworkError):
            f.add_segment("s")


class TestTransfers:
    def test_transfer_time_at_line_rate(self, env, fabric):
        nbytes = mbps(100) * 2.0  # 2 seconds at line rate
        handle = fabric.transfer("a", "b", nbytes)
        env.run(handle.done)
        latency = 2 * fabric.access_latency + fabric.switch_latency
        assert env.now == pytest.approx(2.0 + latency)

    def test_zero_size_rejected(self, fabric):
        with pytest.raises(NetworkError):
            fabric.transfer("a", "b", 0)

    def test_concurrent_transfers_same_tx_share(self, env, fabric):
        nbytes = mbps(100) * 1.0
        h1 = fabric.transfer("a", "b", nbytes)
        h2 = fabric.transfer("a", "c", nbytes)
        env.run(env.all_of([h1.done, h2.done]))
        # Both shared a's TX at 50 Mbps -> 2 s (+latency).
        assert env.now == pytest.approx(2.0, abs=0.01)

    def test_disjoint_transfers_dont_interact(self, env, fabric):
        nbytes = mbps(100) * 1.0
        h1 = fabric.transfer("a", "b", nbytes)
        h2 = fabric.transfer("c", "b", nbytes)
        # Shared bottleneck is b's RX -> 2 s, but a TX and c TX alone.
        env.run(env.all_of([h1.done, h2.done]))
        assert env.now == pytest.approx(2.0, abs=0.01)

    def test_staggered_transfer_rates(self, env, fabric):
        done_at = {}
        h1 = fabric.transfer("a", "b", mbps(100) * 2.0)
        h1.done.add_callback(lambda _e: done_at.setdefault("h1", env.now))

        def second():
            yield env.timeout(1.0)
            h2 = fabric.transfer("a", "b", mbps(100) * 0.5)
            yield h2.done
            done_at["h2"] = env.now

        env.process(second())
        env.run()
        # h1 alone 1 s (half done), then shares 50/50: h2's 0.5 s of
        # line-rate data takes 1 s -> finishes ~2 s; h1 has 0.5 line-
        # seconds left at t=2 -> done ~2.5 s.
        assert done_at["h2"] == pytest.approx(2.0, abs=0.01)
        assert done_at["h1"] == pytest.approx(2.5, abs=0.01)


class TestFixedFlows:
    def test_fixed_flow_consumes_bandwidth(self, env, fabric):
        handle = fabric.open_fixed_flow("a", "b", mbps(70))
        env.run(until=1.0)
        assert to_mbps(handle.rate) == pytest.approx(70.0)
        avail = fabric.available_bandwidth("a", "b")
        assert to_mbps(avail) == pytest.approx(30.0)
        handle.close()

    def test_transfer_squeezed_by_fixed_flow(self, env, fabric):
        fabric.open_fixed_flow("a", "b", mbps(80))
        h = fabric.transfer("a", "b", mbps(20) * 1.0)
        env.run(h.done)
        assert env.now == pytest.approx(1.0, abs=0.02)

    def test_close_restores_capacity(self, env, fabric):
        handle = fabric.open_fixed_flow("a", "b", mbps(90))
        env.run(until=1.0)
        handle.close()
        assert to_mbps(fabric.available_bandwidth("a", "b")) \
            == pytest.approx(100.0)

    def test_close_idempotent(self, env, fabric):
        handle = fabric.open_fixed_flow("a", "b", mbps(10))
        handle.close()
        handle.close()

    def test_set_demand(self, env, fabric):
        handle = fabric.open_fixed_flow("a", "b", mbps(10))
        env.run(until=0.5)
        handle.set_demand(mbps(60))
        env.run(until=1.0)
        assert to_mbps(handle.rate) == pytest.approx(60.0)
        with pytest.raises(NetworkError):
            handle.set_demand(0)

    def test_set_demand_after_close_rejected(self, env, fabric):
        handle = fabric.open_fixed_flow("a", "b", mbps(10))
        handle.close()
        with pytest.raises(NetworkError):
            handle.set_demand(mbps(5))

    def test_loss_under_overload(self, env, fabric):
        handle = fabric.open_fixed_flow("a", "b", mbps(150))
        env.run(until=1.0)
        assert handle.loss_fraction == pytest.approx(1 / 3, rel=1e-3)
        assert handle.flow.lost_bytes > 0

    def test_link_counters_accumulate(self, env, fabric):
        fabric.open_fixed_flow("a", "b", mbps(50))
        env.run(until=2.0)
        fabric._settle()
        tx = fabric.hosts["a"].tx
        assert tx.carried.total == pytest.approx(mbps(50) * 2.0, rel=0.01)


class TestSharedSegmentContention:
    def test_cross_traffic_on_segment_slows_stream(self, env):
        """The Fig 10 topology: iperf pair shares a segment with the
        server->client stream."""
        f = Fabric(env)
        seg = f.add_segment("shared")
        for h in ("server", "client", "iperf1", "iperf2"):
            f.add_host(h, segment=seg)
        f.open_fixed_flow("iperf1", "iperf2", mbps(80))
        h = f.transfer("server", "client", mbps(20) * 1.0)
        env.run(h.done)
        assert env.now == pytest.approx(1.0, abs=0.02)
