"""Unit tests for cluster construction and node wiring."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import (Environment, NodeConfig, PAPER_NODE_NAMES, RngHub,
                       build_cluster)
from repro.units import MB


class TestBuildCluster:
    def test_default_names_match_paper(self, env):
        c = build_cluster(env, nodes=3)
        assert c.names == ["alan", "maui", "etna"]

    def test_names_extend_beyond_eight(self, env):
        c = build_cluster(env, nodes=10)
        assert c.names[8:] == ["node8", "node9"]

    def test_len_and_iter(self, cluster8):
        assert len(cluster8) == 8
        assert sorted(n.name for n in cluster8) == sorted(PAPER_NODE_NAMES)

    def test_unknown_node_lookup_raises(self, cluster3):
        with pytest.raises(SimulationError):
            cluster3["vesuvius"]

    def test_all_stacks_are_peered(self, cluster3):
        for node in cluster3:
            peers = set(node.stack.peers)
            assert peers == set(cluster3.names) - {node.name}

    def test_custom_config_applies(self, env):
        cfg = NodeConfig(n_cpus=4, memory_bytes=MB(256))
        c = build_cluster(env, nodes=2, config=cfg)
        assert c["alan"].cpu.n_cpus == 4
        assert c["alan"].memory.capacity_bytes == MB(256)

    def test_per_node_configs(self, env):
        cfgs = [NodeConfig(n_cpus=1), NodeConfig(n_cpus=4)]
        c = build_cluster(env, nodes=2, node_configs=cfgs)
        assert c["alan"].cpu.n_cpus == 1
        assert c["maui"].cpu.n_cpus == 4

    def test_mismatched_configs_rejected(self, env):
        with pytest.raises(SimulationError):
            build_cluster(env, nodes=3,
                          node_configs=[NodeConfig()])

    def test_zero_nodes_rejected(self, env):
        with pytest.raises(SimulationError):
            build_cluster(env, nodes=0)

    def test_names_mismatch_rejected(self, env):
        with pytest.raises(SimulationError):
            build_cluster(env, nodes=3, names=["a", "b"])

    def test_duplicate_node_rejected(self, cluster3):
        with pytest.raises(SimulationError):
            cluster3.add_node("alan")


class TestNode:
    def test_charge_kernel_seconds_consumes_cpu(self, env, cluster3):
        node = cluster3["alan"]
        node.charge_kernel_seconds(0.5)
        env.run()
        node.cpu.settle()
        assert node.cpu.busy_cpu_seconds == pytest.approx(0.5)

    def test_charge_negative_rejected(self, cluster3):
        with pytest.raises(SimulationError):
            cluster3["alan"].charge_kernel_seconds(-1)

    def test_spawn_names_process(self, env, cluster3):
        node = cluster3["alan"]

        def gen():
            yield env.timeout(1.0)

        proc = node.spawn(gen(), name="worker")
        assert proc.name == "alan:worker"
        env.run()

    def test_attach_service(self, cluster3):
        node = cluster3["alan"]
        node.attach_service("thing", object())
        with pytest.raises(SimulationError):
            node.attach_service("thing", object())

    def test_node_has_all_subsystems(self, cluster3):
        node = cluster3["etna"]
        assert node.cpu is not None
        assert node.memory.nr_free_pages() > 0
        assert node.disk.service_time(1024) > 0
        assert node.port.name == "etna"


class TestRngHub:
    def test_same_name_same_stream_object(self):
        hub = RngHub(1)
        assert hub.stream("a") is hub.stream("a")

    def test_streams_deterministic_across_hubs(self):
        a = RngHub(5).stream("net").random(4)
        b = RngHub(5).stream("net").random(4)
        assert (a == b).all()

    def test_different_names_differ(self):
        hub = RngHub(5)
        a = hub.stream("x").random(4)
        b = hub.stream("y").random(4)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngHub(1).stream("x").random(4)
        b = RngHub(2).stream("x").random(4)
        assert not (a == b).all()

    def test_fork_independent(self):
        hub = RngHub(3)
        f1 = hub.fork(1).stream("x").random(4)
        f2 = hub.fork(2).stream("x").random(4)
        assert not (f1 == f2).all()
