"""Unit tests for arbitrary switch-graph topologies."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import NetworkError, RoutingError
from repro.sim import Environment
from repro.sim.topology import (GraphFabric, build_graph_cluster,
                                line_topology, tree_topology)
from repro.units import mbps, to_mbps


@pytest.fixture
def line3(env):
    """Three switches in a line, one host on each end."""
    fabric = GraphFabric(env, line_topology(3))
    fabric.add_host("a", switch="s0")
    fabric.add_host("b", switch="s2")
    return fabric


class TestTopologyBuilders:
    def test_line(self):
        g = line_topology(4)
        assert sorted(g.nodes) == ["s0", "s1", "s2", "s3"]
        assert g.number_of_edges() == 3

    def test_line_validation(self):
        with pytest.raises(NetworkError):
            line_topology(0)

    def test_tree(self):
        g = tree_topology(depth=2, fanout=2)
        assert g.number_of_nodes() == 7
        assert nx.is_tree(g)

    def test_tree_validation(self):
        with pytest.raises(NetworkError):
            tree_topology(depth=-1)


class TestGraphFabric:
    def test_empty_graph_rejected(self, env):
        with pytest.raises(NetworkError, match="empty"):
            GraphFabric(env, nx.Graph())

    def test_disconnected_graph_rejected(self, env):
        g = nx.Graph()
        g.add_nodes_from(["s0", "s1"])
        with pytest.raises(NetworkError, match="connected"):
            GraphFabric(env, g)

    def test_host_needs_switch(self, env):
        fabric = GraphFabric(env, line_topology(2))
        with pytest.raises(RoutingError, match="needs a switch"):
            fabric.add_host("x")

    def test_unknown_switch_rejected(self, env):
        fabric = GraphFabric(env, line_topology(2))
        with pytest.raises(RoutingError, match="unknown switch"):
            fabric.add_host("x", switch="s9")

    def test_segment_string_means_switch(self, env):
        """Node() passes its attachment via `segment`; a string is
        interpreted as the switch name."""
        fabric = GraphFabric(env, line_topology(2))
        fabric.add_host("x", segment="s1")
        assert fabric.switch_of("x") == "s1"

    def test_path_traverses_trunks_in_order(self, line3):
        names = [l.name for l in line3.path("a", "b")]
        assert names == ["a:tx", "trunk:s0->s1", "trunk:s1->s2",
                         "b:rx"]

    def test_reverse_path_uses_reverse_trunks(self, line3):
        names = [l.name for l in line3.path("b", "a")]
        assert names == ["b:tx", "trunk:s2->s1", "trunk:s1->s0",
                         "a:rx"]

    def test_same_switch_no_trunk(self, env):
        fabric = GraphFabric(env, line_topology(2))
        fabric.add_host("x", switch="s0")
        fabric.add_host("y", switch="s0")
        names = [l.name for l in fabric.path("x", "y")]
        assert names == ["x:tx", "y:rx"]

    def test_path_cache_invalidated_by_new_host(self, line3):
        line3.path("a", "b")
        line3.add_host("c", switch="s1")
        names = [l.name for l in line3.path("a", "c")]
        assert names == ["a:tx", "trunk:s0->s1", "c:rx"]

    def test_trunk_lookup(self, line3):
        assert line3.trunk("s0", "s1").name == "trunk:s0->s1"
        with pytest.raises(RoutingError):
            line3.trunk("s0", "s2")

    def test_edge_attribute_overrides(self, env):
        g = line_topology(2)
        g.edges["s0", "s1"]["capacity"] = mbps(10)
        fabric = GraphFabric(env, g)
        assert fabric.trunk("s0", "s1").capacity == mbps(10)


class TestTrafficOverGraph:
    def test_transfer_bottlenecked_by_thin_trunk(self, env):
        g = line_topology(2)
        g.edges["s0", "s1"]["capacity"] = mbps(10)
        fabric = GraphFabric(env, g)
        fabric.add_host("a", switch="s0")
        fabric.add_host("b", switch="s1")
        handle = fabric.transfer("a", "b", mbps(10) * 1.0)
        env.run(handle.done)
        assert env.now == pytest.approx(1.0, abs=0.01)

    def test_trunk_shared_by_crossing_flows(self, env):
        g = line_topology(2)
        g.edges["s0", "s1"]["capacity"] = mbps(100)
        fabric = GraphFabric(env, g)
        for h in ("a", "c"):
            fabric.add_host(h, switch="s0")
        for h in ("b", "d"):
            fabric.add_host(h, switch="s1")
        h1 = fabric.transfer("a", "b", mbps(50) * 1.0)
        h2 = fabric.transfer("c", "d", mbps(50) * 1.0)
        env.run(env.all_of([h1.done, h2.done]))
        # Both shared the 100 Mbps trunk at 50 Mbps each -> 1 s.
        assert env.now == pytest.approx(1.0, abs=0.02)

    def test_fixed_flow_perturbs_across_trunk(self, env):
        fabric = GraphFabric(env, line_topology(3),
                             trunk_capacity=mbps(100))
        fabric.add_host("a", switch="s0")
        fabric.add_host("b", switch="s2")
        fabric.add_host("p1", switch="s0")
        fabric.add_host("p2", switch="s2")
        fabric.open_fixed_flow("p1", "p2", mbps(70))
        assert to_mbps(fabric.available_bandwidth("a", "b")) \
            == pytest.approx(30.0, rel=0.01)


class TestGraphCluster:
    def test_build_and_run_dproc(self, env):
        """dproc works unchanged on a multi-switch topology."""
        from repro.dproc import MetricId, deploy_dproc

        placement = {"a": "s0", "b": "s1", "c": "s2"}
        cluster = build_graph_cluster(env, line_topology(3), placement)
        assert sorted(cluster.names) == ["a", "b", "c"]
        dprocs = deploy_dproc(cluster)
        env.run(until=4.0)
        assert dprocs["a"].dmon.remote_value(
            "c", MetricId.FREEMEM) is not None

    def test_empty_placement_rejected(self, env):
        with pytest.raises(NetworkError):
            build_graph_cluster(env, line_topology(2), {})

    def test_placement_determines_switch(self, env):
        cluster = build_graph_cluster(env, tree_topology(1, 2),
                                      {"x": "s1", "y": "s2"})
        fabric = cluster.fabric
        assert fabric.switch_of("x") == "s1"
        names = [l.name for l in fabric.path("x", "y")]
        assert "trunk:s1->s0" in names and "trunk:s0->s2" in names
