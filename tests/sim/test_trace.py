"""Unit tests for time-series tracing and windowed statistics."""

from __future__ import annotations

import math

import pytest

from repro.sim import CounterTrace, EwmaLoad, TimeSeries, WindowAverage


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_non_monotonic_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_last(self):
        ts = TimeSeries()
        ts.record(0, 10)
        ts.record(1, 20)
        assert ts.last() == 20

    def test_last_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()

    def test_mean_with_window(self):
        ts = TimeSeries()
        for t, v in [(0, 0), (1, 10), (2, 20)]:
            ts.record(t, v)
        assert ts.mean() == pytest.approx(10.0)
        assert ts.mean(since=1.0) == pytest.approx(15.0)

    def test_mean_empty_window_raises(self):
        ts = TimeSeries()
        ts.record(0, 1)
        with pytest.raises(ValueError):
            ts.mean(since=5.0)

    def test_percentile(self):
        ts = TimeSeries()
        for i in range(101):
            ts.record(i, i)
        assert ts.percentile(50) == pytest.approx(50.0)
        assert ts.percentile(90) == pytest.approx(90.0)

    def test_time_average_piecewise_constant(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)   # 0 for [0, 10)
        ts.record(10.0, 4.0)  # 4 for [10, 20)
        assert ts.time_average(20.0) == pytest.approx(2.0)

    def test_time_average_single_sample(self):
        ts = TimeSeries()
        ts.record(0.0, 7.0)
        assert ts.time_average() == 7.0

    def test_as_arrays(self):
        ts = TimeSeries()
        ts.record(0, 1)
        t, v = ts.as_arrays()
        assert t.shape == (1,) and v[0] == 1.0


class TestCounterTrace:
    def test_total_accumulates(self):
        c = CounterTrace()
        c.add(0.0, 2)
        c.add(1.0, 3)
        assert c.total == 5

    def test_negative_amount_rejected(self):
        c = CounterTrace()
        with pytest.raises(ValueError):
            c.add(0.0, -1)

    def test_non_monotonic_time_rejected(self):
        c = CounterTrace()
        c.add(2.0)
        with pytest.raises(ValueError):
            c.add(1.0)

    def test_count_between(self):
        c = CounterTrace()
        for t in range(10):
            c.add(float(t), 1.0)
        assert c.count_between(2.0, 5.0) == pytest.approx(3.0)

    def test_rate(self):
        c = CounterTrace()
        for t in range(10):
            c.add(float(t), 2.0)
        assert c.rate(now=9.0, window=3.0) == pytest.approx(2.0)

    def test_rate_requires_positive_window(self):
        with pytest.raises(ValueError):
            CounterTrace().rate(1.0, 0.0)

    def test_empty_counter_rate_is_zero(self):
        assert CounterTrace().rate(10.0, 5.0) == 0.0


class TestWindowAverage:
    def test_simple_mean(self):
        w = WindowAverage(window=10.0)
        w.record(0.0, 2.0)
        w.record(1.0, 4.0)
        assert w.value == pytest.approx(3.0)

    def test_old_samples_expire(self):
        w = WindowAverage(window=5.0)
        w.record(0.0, 100.0)
        w.record(10.0, 2.0)  # first sample is now out of window
        assert w.value == pytest.approx(2.0)
        assert len(w) == 1

    def test_empty_is_zero(self):
        assert WindowAverage(1.0).value == 0.0

    def test_window_change(self):
        w = WindowAverage(window=100.0)
        w.record(0.0, 10.0)
        w.set_window(1.0)
        w.record(50.0, 2.0)
        assert w.value == pytest.approx(2.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowAverage(0.0)
        w = WindowAverage(1.0)
        with pytest.raises(ValueError):
            w.set_window(-1.0)


class TestEwmaLoad:
    def test_first_sample_anchors_at_boot_value(self):
        load = EwmaLoad()
        load.update(0.0, 3.0)
        assert load.as_tuple() == (0.0, 0.0, 0.0)
        load.update(60.0, 3.0)
        assert load.as_tuple()[0] > 0.0

    def test_decay_towards_new_value(self):
        load = EwmaLoad()
        load.update(0.0, 0.0)
        load.update(60.0, 4.0)
        one, five, fifteen = load.as_tuple()
        # After one 1-min period, the 1-min average moved most.
        assert one > five > fifteen > 0.0
        expect = 4.0 * (1 - math.exp(-1.0))
        assert one == pytest.approx(expect)

    def test_converges_to_constant_load(self):
        load = EwmaLoad()
        for i in range(4000):
            load.update(i * 5.0, 2.0)
        for value in load.as_tuple():
            assert value == pytest.approx(2.0, rel=1e-3)

    def test_time_backwards_rejected(self):
        load = EwmaLoad()
        load.update(10.0, 1.0)
        with pytest.raises(ValueError):
            load.update(5.0, 1.0)
