"""Unit tests for the message transport layer."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.sim import Protocol, build_cluster
from repro.units import KB, mbps


@pytest.fixture
def pair(env):
    cluster = build_cluster(env, nodes=2, seed=7)
    return cluster["alan"], cluster["maui"]


class TestConnectionBasics:
    def test_send_delivers_payload(self, env, pair):
        src, dst = pair
        received = []
        dst.stack.bind("test", lambda m: received.append(m.payload))
        conn = src.stack.connect("maui", tag="test")

        def proc():
            yield conn.send({"hello": 1}, size=KB(1))

        env.run(env.process(proc()))
        assert received == [{"hello": 1}]

    def test_delivery_event_carries_message(self, env, pair):
        src, _dst = pair
        conn = src.stack.connect("maui", tag="t")

        def proc():
            msg = yield conn.send("x", size=100)
            return msg

        msg = env.run(env.process(proc()))
        assert msg.src == "alan" and msg.dst == "maui"
        assert msg.delivered_at is not None
        assert msg.delivered_at > msg.sent_at

    def test_unknown_destination_rejected(self, pair):
        src, _ = pair
        with pytest.raises(TransportError):
            src.stack.connect("nowhere", tag="t")

    def test_closed_connection_rejects_send(self, pair):
        src, _ = pair
        conn = src.stack.connect("maui", tag="t")
        conn.close()
        with pytest.raises(TransportError):
            conn.send("x", 10)

    def test_bad_size_rejected(self, env, pair):
        src, _ = pair
        conn = src.stack.connect("maui", tag="t")
        with pytest.raises(TransportError):
            conn.send("x", 0)

    def test_double_bind_rejected(self, pair):
        _, dst = pair
        dst.stack.bind("t", lambda m: None)
        with pytest.raises(TransportError):
            dst.stack.bind("t", lambda m: None)

    def test_unbind_then_rebind(self, pair):
        _, dst = pair
        dst.stack.bind("t", lambda m: None)
        dst.stack.unbind("t")
        dst.stack.bind("t", lambda m: None)

    def test_unknown_protocol_rejected(self, pair):
        src, _ = pair
        with pytest.raises(TransportError):
            src.stack.connect("maui", tag="t", proto="sctp")


class TestDeliveryTiming:
    def test_large_message_serialisation_delay(self, env, pair):
        src, _ = pair
        conn = src.stack.connect("maui", tag="t")
        nbytes = mbps(100) * 0.5  # half a second at line rate

        def proc():
            yield conn.send("big", size=nbytes)

        env.run(env.process(proc()))
        assert env.now == pytest.approx(0.5, abs=0.01)

    def test_delay_recorded(self, env, pair):
        src, _ = pair
        conn = src.stack.connect("maui", tag="t")

        def proc():
            yield conn.send("x", size=KB(10))

        env.run(env.process(proc()))
        assert len(conn.delays) == 1
        assert conn.delays.last() > 0


class TestStatistics:
    def test_bandwidth_counters(self, env, pair):
        src, dst = pair
        conn = src.stack.connect("maui", tag="t")

        def proc():
            for _ in range(5):
                yield conn.send("x", size=KB(100))

        env.run(env.process(proc()))
        assert conn.bytes_sent.total == pytest.approx(KB(500))
        assert conn.bytes_delivered.total == pytest.approx(KB(500))
        assert dst.stack.bytes_in.total == pytest.approx(KB(500))
        assert src.stack.bytes_out.total == pytest.approx(KB(500))

    def test_rtt_samples_recorded(self, env, pair):
        src, _ = pair
        conn = src.stack.connect("maui", tag="t")

        def proc():
            yield conn.send("x", size=100)

        env.run(env.process(proc()))
        assert conn.mean_rtt() > 0

    def test_receive_charges_kernel_cpu(self, env, pair):
        """Delivery must consume CPU at the receiver — the perturbation
        mechanism behind Figures 4 and 8."""
        src, dst = pair

        def proc():
            conn = src.stack.connect("maui", tag="t")
            yield conn.send("x", size=KB(1))
            yield env.timeout(1.0)

        env.run(env.process(proc()))
        dst.cpu.settle()
        assert dst.cpu.busy_cpu_seconds > 0

    def test_used_bandwidth_window(self, env, pair):
        src, _ = pair
        conn = src.stack.connect("maui", tag="t")

        def proc():
            yield conn.send("x", size=mbps(10))  # 10 Mbit in ~0.1 s
            yield env.timeout(1.0)

        env.run(env.process(proc()))
        # A window spanning the whole run (the send was recorded at
        # t=0, and rate windows are half-open on the left) sees the
        # full 10 Mbit.
        window = env.now + 0.1
        assert conn.used_bandwidth(window=window) \
            == pytest.approx(mbps(10) / window, rel=0.05)


class TestUdp:
    def test_udp_no_loss_on_idle_network(self, env, pair):
        src, dst = pair
        received = []
        dst.stack.bind("u", lambda m: received.append(m.mid))
        conn = src.stack.connect("maui", tag="u", proto=Protocol.UDP)

        def proc():
            for _ in range(20):
                yield conn.send("x", size=KB(1))

        env.run(env.process(proc()))
        assert len(received) == 20
        assert conn.losses.total == 0

    def test_udp_loss_under_saturation(self, env):
        cluster = build_cluster(env, nodes=3, seed=11)
        alan, maui = cluster["alan"], cluster["maui"]
        # Saturate maui's RX with a fixed flow from etna.
        cluster.fabric.open_fixed_flow("etna", "maui", mbps(100))
        conn = alan.stack.connect("maui", tag="u", proto=Protocol.UDP)

        def proc():
            ok = 0
            for _ in range(200):
                try:
                    yield conn.send("x", size=KB(1))
                    ok += 1
                except TransportError:
                    pass
                yield env.timeout(0.01)
            return ok

        delivered = env.run(env.process(proc()))
        assert conn.losses.total > 0
        assert delivered < 200

    def test_tcp_retransmissions_under_congestion(self, env):
        cluster = build_cluster(env, nodes=3, seed=13)
        alan = cluster["alan"]
        cluster.fabric.open_fixed_flow("etna", "maui", mbps(95))
        conn = alan.stack.connect("maui", tag="t", proto=Protocol.TCP)

        def proc():
            for _ in range(100):
                yield conn.send("x", size=KB(2))
                yield env.timeout(0.02)

        env.run(env.process(proc()))
        assert conn.retransmissions.total > 0
