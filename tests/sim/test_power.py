"""Unit tests for the battery/power model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Battery
from repro.units import KB


@pytest.fixture
def node(cluster3):
    return cluster3["maui"]


class TestBattery:
    def test_starts_full(self, node):
        battery = Battery(node, capacity_joules=1000.0)
        assert battery.level_percent() == 100.0
        assert not battery.empty

    def test_base_draw_over_time(self, env, node):
        battery = Battery(node, capacity_joules=1000.0, base_power=2.0,
                          cpu_joules_per_second=0.0,
                          radio_joules_per_byte=0.0)
        env.run(until=100.0)
        assert battery.drained_joules() == pytest.approx(200.0)
        assert battery.level_percent() == pytest.approx(80.0)

    def test_cpu_activity_drains(self, env, node):
        battery = Battery(node, capacity_joules=1e6, base_power=0.0,
                          cpu_joules_per_second=10.0,
                          radio_joules_per_byte=0.0)
        done = node.cpu.execute(node.cpu.mflops_per_cpu * 5)  # 5 s
        env.run(done)
        assert battery.drained_joules() == pytest.approx(50.0, rel=0.01)

    def test_radio_traffic_drains(self, env, cluster3):
        node = cluster3["maui"]
        battery = Battery(node, capacity_joules=1e6, base_power=0.0,
                          cpu_joules_per_second=0.0,
                          radio_joules_per_byte=1e-3)
        conn = cluster3["alan"].stack.connect("maui", tag="t")

        def send():
            yield conn.send("x", size=KB(10))

        env.run(env.process(send()))
        assert battery.drained_joules() \
            == pytest.approx(KB(10) * 1e-3, rel=0.01)

    def test_clamps_at_empty(self, env, node):
        battery = Battery(node, capacity_joules=10.0, base_power=1.0)
        env.run(until=100.0)
        assert battery.level_joules() == 0.0
        assert battery.empty

    def test_recharge(self, env, node):
        battery = Battery(node, capacity_joules=100.0, base_power=1.0)
        env.run(until=50.0)
        assert battery.level_percent() == pytest.approx(50.0)
        battery.recharge()
        assert battery.level_percent() == 100.0
        env.run(until=60.0)
        assert battery.level_percent() == pytest.approx(90.0)

    def test_validation(self, node):
        with pytest.raises(SimulationError):
            Battery(node, capacity_joules=0)

    def test_registers_as_service(self, node):
        battery = Battery(node)
        assert node.services["battery"] is battery


class TestBatteryMon:
    def test_requires_battery(self, cluster3):
        from repro.dproc import BatteryMon
        from repro.errors import DprocError
        with pytest.raises(DprocError, match="no battery"):
            BatteryMon(cluster3["alan"])

    def test_finds_attached_battery(self, env, node):
        from repro.dproc import BatteryMon, MetricId
        Battery(node, capacity_joules=100.0, base_power=1.0)
        mon = BatteryMon(node)
        env.run(until=25.0)
        (sample,) = mon.collect(env.now)
        assert sample.metric is MetricId.BATTERY
        assert sample.value == pytest.approx(75.0)

    def test_runtime_deploy_and_remote_visibility(self, env, cluster3):
        """The paper's §1 scenario: battery monitoring added to a live
        d-mon and visible cluster-wide."""
        from repro.dproc import BatteryMon, MetricId, deploy_dproc
        node = cluster3["maui"]
        battery = Battery(node, capacity_joules=1000.0, base_power=1.0)
        dprocs = deploy_dproc(cluster3)
        env.run(until=3.0)
        assert dprocs["alan"].dmon.remote_value(
            "maui", MetricId.BATTERY) is None
        dprocs["maui"].dmon.register_service(BatteryMon(node, battery))
        env.run(until=6.0)
        seen = dprocs["alan"].dmon.remote_value("maui",
                                                MetricId.BATTERY)
        assert seen is not None
        assert 0 < seen.value <= 100.0
        # And through procfs:
        text = dprocs["alan"].read("/proc/cluster/maui/battery")
        assert 0 < float(text) <= 100.0
