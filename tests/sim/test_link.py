"""Unit tests for the fluid link model and the max-min allocator."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.sim.link import (ELASTIC_FLOOR_FRACTION, Flow, FlowKind, Link,
                            allocate_rates, settle_flows)
from repro.units import mbps


def make_link(cap_mbps=100.0, name="l"):
    return Link(name, mbps(cap_mbps))


class TestLink:
    def test_capacity_validation(self):
        with pytest.raises(NetworkError):
            Link("bad", 0.0)
        with pytest.raises(NetworkError):
            Link("bad", 10.0, latency=-1)

    def test_utilization_from_counter(self):
        link = make_link(100)
        link.carried.add(1.0, mbps(50) * 1.0)
        assert link.utilization(now=1.0, window=1.0) == pytest.approx(0.5)


class TestFlowValidation:
    def test_empty_path_rejected(self):
        with pytest.raises(NetworkError):
            Flow(path=(), kind=FlowKind.FIXED, demand=1.0)

    def test_fixed_needs_demand(self):
        with pytest.raises(NetworkError):
            Flow(path=(make_link(),), kind=FlowKind.FIXED, demand=0.0)

    def test_elastic_needs_bytes(self):
        with pytest.raises(NetworkError):
            Flow(path=(make_link(),), kind=FlowKind.ELASTIC, remaining=0.0)


class TestFixedAllocation:
    def test_underloaded_fixed_gets_demand(self):
        link = make_link(100)
        f = Flow(path=(link,), kind=FlowKind.FIXED, demand=mbps(30))
        allocate_rates([f])
        assert f.rate == pytest.approx(mbps(30))
        assert f.loss_fraction == 0.0

    def test_overloaded_fixed_scaled_proportionally(self):
        link = make_link(100)
        a = Flow(path=(link,), kind=FlowKind.FIXED, demand=mbps(80))
        b = Flow(path=(link,), kind=FlowKind.FIXED, demand=mbps(40))
        allocate_rates([a, b])
        total = a.rate + b.rate
        assert total == pytest.approx(mbps(100), rel=1e-6)
        assert a.rate / b.rate == pytest.approx(2.0, rel=1e-6)
        assert a.loss_fraction == pytest.approx(1 / 6, rel=1e-3)

    def test_multi_link_bottleneck(self):
        wide, narrow = make_link(100, "wide"), make_link(10, "narrow")
        f = Flow(path=(wide, narrow), kind=FlowKind.FIXED, demand=mbps(50))
        allocate_rates([f])
        assert f.rate == pytest.approx(mbps(10))


class TestElasticAllocation:
    def test_single_elastic_gets_full_capacity(self):
        link = make_link(100)
        f = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=1e6)
        allocate_rates([f])
        assert f.rate == pytest.approx(mbps(100))

    def test_two_elastic_share_equally(self):
        link = make_link(100)
        a = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=1e6)
        b = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=1e6)
        allocate_rates([a, b])
        assert a.rate == pytest.approx(mbps(50))
        assert b.rate == pytest.approx(mbps(50))

    def test_elastic_yields_to_fixed(self):
        link = make_link(100)
        udp = Flow(path=(link,), kind=FlowKind.FIXED, demand=mbps(70))
        tcp = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=1e6)
        allocate_rates([udp, tcp])
        assert udp.rate == pytest.approx(mbps(70))
        assert tcp.rate == pytest.approx(mbps(30))

    def test_elastic_floor_under_total_overload(self):
        link = make_link(100)
        udp = Flow(path=(link,), kind=FlowKind.FIXED, demand=mbps(200))
        tcp = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=1e6)
        allocate_rates([udp, tcp])
        assert tcp.rate == pytest.approx(
            ELASTIC_FLOOR_FRACTION * mbps(100))

    def test_max_min_fairness_across_bottlenecks(self):
        """Classic water-filling: flow through the narrow link is capped
        at its share there; the other flow picks up the slack."""
        l1, l2 = make_link(100, "l1"), make_link(30, "l2")
        # f1 uses both links; f2 only the wide one.
        f1 = Flow(path=(l1, l2), kind=FlowKind.ELASTIC, remaining=1e9)
        f2 = Flow(path=(l1,), kind=FlowKind.ELASTIC, remaining=1e9)
        allocate_rates([f1, f2])
        assert f1.rate == pytest.approx(mbps(30))
        assert f2.rate == pytest.approx(mbps(70))

    def test_shared_bottleneck_three_flows(self):
        link = make_link(90)
        flows = [Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=1e6)
                 for _ in range(3)]
        allocate_rates(flows)
        for f in flows:
            assert f.rate == pytest.approx(mbps(30))

    def test_no_link_oversubscription(self):
        """Property: allocated rates never exceed any link capacity."""
        l1, l2, l3 = (make_link(c, f"l{c}") for c in (100, 40, 10))
        flows = [
            Flow(path=(l1, l2), kind=FlowKind.FIXED, demand=mbps(35)),
            Flow(path=(l2, l3), kind=FlowKind.FIXED, demand=mbps(20)),
            Flow(path=(l1,), kind=FlowKind.ELASTIC, remaining=1e6),
            Flow(path=(l1, l2, l3), kind=FlowKind.ELASTIC, remaining=1e6),
            Flow(path=(l3,), kind=FlowKind.ELASTIC, remaining=1e6),
        ]
        allocate_rates(flows)
        for link in (l1, l2, l3):
            used = sum(f.rate for f in flows if link in f.path
                       and f.kind is FlowKind.FIXED)
            used += sum(min(f.rate, link.capacity) for f in flows
                        if link in f.path and f.kind is FlowKind.ELASTIC)
            # Floor rates may push epsilon over; allow the floor margin.
            assert used <= link.capacity * (1 + 2 * ELASTIC_FLOOR_FRACTION)


class TestSettle:
    def test_elastic_progress(self):
        link = make_link(100)
        f = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=mbps(100))
        allocate_rates([f])
        settle_flows([f], 0.5)
        assert f.remaining == pytest.approx(mbps(100) * 0.5)
        assert f.carried_bytes == pytest.approx(mbps(100) * 0.5)

    def test_fixed_loss_accounting(self):
        link = make_link(100)
        f = Flow(path=(link,), kind=FlowKind.FIXED, demand=mbps(200))
        allocate_rates([f])
        settle_flows([f], 1.0)
        assert f.carried_bytes == pytest.approx(mbps(100))
        assert f.lost_bytes == pytest.approx(mbps(100))

    def test_negative_dt_rejected(self):
        with pytest.raises(NetworkError):
            settle_flows([], -1.0)

    def test_settle_does_not_overdraw(self):
        link = make_link(100)
        f = Flow(path=(link,), kind=FlowKind.ELASTIC, remaining=100.0)
        allocate_rates([f])
        settle_flows([f], 1e6)
        assert f.remaining == 0.0
        assert f.carried_bytes == pytest.approx(100.0)
