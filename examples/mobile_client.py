#!/usr/bin/env python
"""Run-time extensibility: battery monitoring on a mobile client.

Straight from the paper's §1: filters "can dynamically deploy
monitoring functionality available in the remote kernel but not
directly supported in dproc (such as the monitoring of the current
battery power in mobile devices)" — and the future work makes power a
first-class resource for wireless clients.

This example registers a BATTERY_MON module on a *running* d-mon (no
restart, no recompile — the paper's loadable-kernel-module claim),
then sets a threshold so the server only hears about the battery once
it drops below 30 %, and finally lets the server throttle the stream
to stretch the client's remaining charge.

Run:  python examples/mobile_client.py
"""

from __future__ import annotations

from repro.dproc import BatteryMon, MetricId, deploy_dproc
from repro.sim import Battery, Environment, NodeConfig, build_cluster
from repro.smartpointer import (ClientCapabilities, DynamicAdaptation,
                                SmartPointerClient, SmartPointerServer,
                                StreamProfile, Transform)
from repro.units import KB


def main() -> None:
    env = Environment()
    cluster = build_cluster(
        env, 2, seed=99, names=["server", "ipaq"],
        node_configs=[NodeConfig(n_cpus=4),
                      NodeConfig(n_cpus=1, mflops_per_cpu=4.0)])
    ipaq = cluster["ipaq"]
    battery = Battery(ipaq, capacity_joules=4000.0)  # small handheld

    dprocs = deploy_dproc(cluster)
    env.run(until=3.0)

    # --- run-time module deployment -----------------------------------
    print("modules before:", sorted(dprocs["ipaq"].dmon.modules))
    dprocs["ipaq"].dmon.register_service(BatteryMon(ipaq, battery))
    print("modules after: ", sorted(dprocs["ipaq"].dmon.modules))

    # Only report the battery when it matters (below 30%).
    dprocs["server"].write("/proc/cluster/ipaq/control",
                           "threshold battery below 30")

    # --- stream to the handheld ---------------------------------------
    profile = StreamProfile(base_size=KB(100), base_client_cost=0.8)
    client = SmartPointerClient(ipaq).start()
    server = SmartPointerServer(cluster["server"],
                                dproc=dprocs["server"])
    stream = server.add_client(
        "ipaq", profile, rate=2.0,
        policy=DynamicAdaptation(resources=("cpu",)),
        caps=ClientCapabilities(mflops=4.0, n_cpus=1))

    # A supervisor on the server watches the remote battery entry and
    # downgrades the stream once low-battery reports arrive.
    throttled = {}

    def battery_guard():
        while not throttled:
            yield env.timeout(5.0)
            reading = dprocs["server"].metric("ipaq", MetricId.BATTERY)
            if reading == reading and reading < 30.0:  # not NaN, low
                stream.policy = _low_power_policy()
                throttled["at"] = env.now
                throttled["level"] = reading

    def _low_power_policy():
        from repro.smartpointer import StaticAdaptation
        return StaticAdaptation(Transform(downsample=0.25,
                                          content=0.55))

    env.process(battery_guard())

    print(f"\n{'t (s)':>7} {'battery %':>9} {'draw (W)':>8} "
          f"{'reported?':>9} {'events rx':>9}")
    last_drain, last_t = battery.drained_joules(), env.now
    for checkpoint in range(200, 2001, 300):
        env.run(until=checkpoint)
        drained = battery.drained_joules()
        watts = (drained - last_drain) / (env.now - last_t)
        last_drain, last_t = drained, env.now
        remote = dprocs["server"].metric("ipaq", MetricId.BATTERY)
        reported = "yes" if remote == remote else "no (>30%)"
        print(f"{env.now:7.0f} {battery.level_percent():9.1f} "
              f"{watts:8.2f} {reported:>9} "
              f"{client.processed.total:9.0f}")

    if throttled:
        print(f"\nlow battery reported at t={throttled['at']:.0f}s "
              f"({throttled['level']:.1f}%); stream throttled to "
              f"quarter resolution, positions only.")
    print(f"battery at end: {battery.level_percent():.1f}% "
          f"(drained {battery.drained_joules():.0f} J)")


if __name__ == "__main__":
    main()
