#!/usr/bin/env python
"""The paper's batch-queue scheduler scenario.

From §3: "imagine that the batch-queue scheduler is not interested in
loadavg, but instead in the amount of free memory.  However, it still
wants the memory information to be updated only if there is a free CPU
to run its process on.  So it will tie the update period of the memory
information to the load average dropping below the number of CPUs."

A toy scheduler on one node watches every other node through
/proc/cluster and dispatches queued jobs to nodes whose FREEMEM entry
is *fresh* — which, thanks to the deployed filter, is exactly the set
of nodes with a free CPU and enough memory.

Run:  python examples/batch_scheduler.py
"""

from __future__ import annotations

import math

from repro.dproc import MetricId, deploy_dproc
from repro.sim import Environment, build_cluster
from repro.units import MB
from repro.workloads import Linpack

FRESHNESS = 3.0      # seconds a FREEMEM reading stays trustworthy
JOB_MEMORY = MB(64)  # what one batch job needs
JOB_WORK = 200.0     # Mflop per job


def scheduler_filter(n_cpus: int) -> str:
    """FREEMEM flows only while a CPU is free (loadavg < #CPUs)."""
    return f"""filter * id=batch
{{
    int i = 0;
    if (input[LOADAVG].value < {n_cpus}) {{
        output[i] = input[FREEMEM];
        i = i + 1;
    }}
}}"""


def main() -> None:
    env = Environment()
    cluster = build_cluster(env, nodes=4, seed=23)
    dprocs = deploy_dproc(cluster)
    head = dprocs["alan"]
    workers = [n for n in cluster.names if n != "alan"]

    # Make the CPU averaging responsive, then deploy the filter on
    # every worker from the head node.
    for name in workers:
        dprocs[name].dmon.modules["cpu"].configure("period", 4.0)
        head.write(f"/proc/cluster/{name}/control",
                   scheduler_filter(cluster[name].cpu.n_cpus))
    env.run(until=5.0)

    # Pre-load etna so it has no free CPU: the scheduler should skip it.
    for _ in range(2):
        Linpack(cluster["etna"]).start()

    queued = 12
    dispatched: dict[str, int] = {name: 0 for name in workers}

    def scheduler():
        nonlocal queued
        while queued > 0:
            yield env.timeout(2.0)
            for name in workers:
                if queued == 0:
                    break
                entry = head.dmon.remote_value(name, MetricId.FREEMEM)
                fresh = (entry is not None
                         and env.now - entry.received_at < FRESHNESS)
                if not fresh:
                    continue  # no free CPU there (or no data yet)
                if entry.value < JOB_MEMORY:
                    continue  # not enough memory
                queued -= 1
                dispatched[name] += 1
                node = cluster[name]
                mem = node.memory.allocate(JOB_MEMORY, tag="batch")
                done = node.cpu.execute(JOB_WORK, name="batch-job")
                done.add_callback(lambda _ev, m=mem: m.free())

    env.process(scheduler())
    env.run(until=120.0)

    print("batch scheduler results after 120 s:")
    for name in workers:
        note = "  (was CPU-saturated)" if name == "etna" else ""
        print(f"  {name}: {dispatched[name]} jobs{note}")
    print(f"  jobs left in queue: {queued}")
    total_loaded = dispatched["etna"]
    total_free = sum(dispatched[n] for n in workers if n != "etna")
    print(f"\nnodes with a free CPU received {total_free} jobs; the "
          f"saturated node received {total_loaded}.")
    print("The filter meant the head node never even received memory "
          "updates from busy nodes -- zero polling, zero stale data.")


if __name__ == "__main__":
    main()
