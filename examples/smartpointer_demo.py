#!/usr/bin/env python
"""SmartPointer: resource-aware stream management end to end.

Reproduces the paper's §4.2 story in one run: a visualization server
streams molecular-dynamics frames to a client; linpack threads start on
the client; without dproc the stream drowns the client, with dproc the
server customizes the stream and the client keeps up.

Run:  python examples/smartpointer_demo.py
"""

from __future__ import annotations

from repro.dproc import DMonConfig, deploy_dproc
from repro.sim import Environment, NodeConfig, build_cluster
from repro.smartpointer import (ClientCapabilities, DynamicAdaptation,
                                NoAdaptation, SmartPointerClient,
                                SmartPointerServer, StreamProfile)
from repro.units import KB
from repro.workloads import Linpack

PROFILE = StreamProfile(base_size=KB(200), base_client_cost=2.4,
                        server_preprocess_cost=2.0)
RATE = 5.0  # events per second


def run_scenario(policy, label: str) -> None:
    env = Environment()
    cluster = build_cluster(
        env, 2, seed=11, names=["server", "client"],
        node_configs=[NodeConfig(n_cpus=4), NodeConfig(n_cpus=1)])
    dprocs = deploy_dproc(cluster, config=DMonConfig(poll_interval=1.0))
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 5.0)

    client = SmartPointerClient(cluster["client"]).start()
    server = SmartPointerServer(cluster["server"],
                                dproc=dprocs["server"])
    stream = server.add_client(
        "client", PROFILE, rate=RATE, policy=policy,
        caps=ClientCapabilities(mflops=17.4, n_cpus=1))

    print(f"\n--- {label} ---")
    print(f"{'t (s)':>6} {'threads':>7} {'rate/s':>7} "
          f"{'latency (s)':>11} {'quality':>8}")
    threads = 0
    for phase_end in (60, 120, 180, 240):
        env.run(until=phase_end)
        window = 30.0
        rate = client.event_rate(window)
        try:
            latency = client.latencies.mean(since=phase_end - window)
        except ValueError:
            latency = float("nan")
        quality = stream.quality.last()
        print(f"{env.now:6.0f} {threads:7d} {rate:7.2f} "
              f"{latency:11.3f} {quality:8.2f}")
        # two more linpack threads per phase
        for _ in range(2):
            Linpack(cluster["client"]).start()
        threads += 2


def main() -> None:
    print("SmartPointer under rising client CPU load "
          f"({PROFILE.base_size / 1024:.0f} KB frames at {RATE}/s)")
    run_scenario(NoAdaptation(), "no filter (original SmartPointer)")
    run_scenario(DynamicAdaptation(resources=("cpu",)),
                 "dynamic filter using dproc CPU monitoring")
    print("\nWith dproc, the server learns the client's load average "
          "and pre-renders\nframes so the client keeps processing at "
          "the full rate.")


if __name__ == "__main__":
    main()
