#!/usr/bin/env python
"""Wide-area grids: federating dproc sites over WAN links.

The paper's future work ("using dproc in wide-area grids") realised:
three clusters — two compute sites and a visualization site — exchange
condensed site summaries over slow WAN links, so a grid scheduler at
one site can pick the best remote site without any raw monitoring
traffic ever crossing the wide area.

Run:  python examples/wide_area_grid.py
"""

from __future__ import annotations

from repro.dproc import deploy_dproc
from repro.dproc.federation import GridFederation
from repro.sim import Environment, build_cluster
from repro.units import mbps, msec
from repro.workloads import AmbientActivity, Linpack


def make_site(env, federation, site, prefix, n_nodes):
    names = [f"{prefix}{i}" for i in range(n_nodes)]
    cluster = build_cluster(env, nodes=n_nodes, seed=17, names=names)
    dprocs = deploy_dproc(cluster)
    for node in cluster:
        AmbientActivity(node, intensity=0.4).start()
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 5.0)
    return federation.add_site(site, cluster, dprocs, gateway=names[0])


def main() -> None:
    env = Environment()
    federation = GridFederation(env, summary_period=5.0)

    atlanta = make_site(env, federation, "atlanta", "atl", 4)
    oakridge = make_site(env, federation, "oakridge", "orn", 6)
    chicago = make_site(env, federation, "chicago", "chi", 2)

    # A little grid: Atlanta <-> Oak Ridge (fast regional link),
    # Atlanta <-> Chicago (slower national link).
    federation.connect("atlanta", "oakridge",
                       bandwidth=mbps(45), latency=msec(12))
    federation.connect("atlanta", "chicago",
                       bandwidth=mbps(10), latency=msec(40))
    federation.start()

    # Saturate Oak Ridge with a parallel job.
    for node in oakridge.cluster:
        for _ in range(2):
            Linpack(node).start()

    env.run(until=60.0)

    gw = atlanta.gateway_dproc
    print("grid view from Atlanta's gateway (/proc/grid):")
    print(f"{'site':>10} {'nodes':>5} {'mean load':>9} "
          f"{'free mem (GiB)':>14}")
    for site in sorted(federation.sites):
        nodes = gw.read(f"/proc/grid/{site}/n_nodes").strip()
        load = float(gw.read(f"/proc/grid/{site}/mean_loadavg"))
        free = float(gw.read(f"/proc/grid/{site}/total_free_bytes"))
        print(f"{site:>10} {nodes:>5} {load:9.2f} {free / 2**30:14.2f}")

    target = federation.least_loaded_site("atlanta")
    print(f"\na grid scheduler at Atlanta would place new work on: "
          f"{target}")

    link = federation._links["atlanta"][0]
    print(f"WAN bytes Atlanta<->OakRidge in 60 s: "
          f"{link.bytes_carried.total:.0f} B "
          f"(summaries only; raw monitoring stays on-site)")


if __name__ == "__main__":
    main()
