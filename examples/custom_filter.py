#!/usr/bin/env python
"""Dynamic E-code filters: deploy the paper's Figure 3 filter remotely.

Shows the full filter path: an application on one node writes an E-code
source string to another node's control file; dproc ships it over the
KECho control channel; the receiving d-mon compiles it to native code
and runs it before every publication.  The filter implements complex
cross-resource subscription criteria and cuts monitoring traffic.

Run:  python examples/custom_filter.py
"""

from __future__ import annotations

from repro.api import Scenario
from repro.dproc import DMonConfig
from repro.units import MB
from repro.workloads import Linpack

# The filter from the paper's Figure 3, verbatim (modulo whitespace):
# publish the load average only when it exceeds 2; publish disk usage
# and free memory together only when the disk is busy AND memory is
# short; publish cache misses only when they increased.
FIGURE3_FILTER = """filter * id=fig3
{
    int i = 0;
    if(input[LOADAVG].value > 2){
        output[i] = input[LOADAVG];
        i = i + 1;
    }
    if(input[DISKUSAGE].value > 10000 &&
       input[FREEMEM].value < 50e6){
        output[i] = input[DISKUSAGE];
        i = i + 1;
        output[i] = input[FREEMEM];
        i = i + 1;
    }
    if(input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent){
        output[i] = input[CACHE_MISS];
        i = i + 1;
    }
}"""


def published_per_second(dmon, since: float, now: float) -> float:
    return dmon.records_published.count_between(since, now) / (
        now - since)


def main() -> None:
    scenario = Scenario(nodes=2, seed=7,
                        dmon=DMonConfig(poll_interval=1.0)).build()
    env = scenario.env
    cluster = scenario.nodes
    dprocs = scenario.dprocs
    alan, maui = dprocs["alan"], dprocs["maui"]

    # Unfiltered baseline: maui publishes all metrics every second.
    scenario.run_until(30.0)
    base_rate = published_per_second(maui.dmon, 0.0, env.now)
    print(f"unfiltered: maui publishes {base_rate:.1f} records/s")

    # Deploy the Figure 3 filter on maui *from alan*.
    alan.write("/proc/cluster/maui/control", FIGURE3_FILTER)
    scenario.run_until(32.0)  # let the control message propagate
    deployed = maui.dmon.filters.global_filter
    print(f"deployed filter {deployed.filter_id!r} on maui "
          f"(compiled at the target host, "
          f"{len(deployed.source)} bytes of E-code)")

    # Quiet system: all three conditions are false -> nothing flows.
    mark = env.now
    scenario.run_until(mark + 60.0)
    quiet = published_per_second(maui.dmon, mark, env.now)
    print(f"filtered, idle:   {quiet:.2f} records/s "
          f"(traffic cut by {100 * (1 - quiet / base_rate):.0f}%)")

    # Now trip the first condition: load maui beyond 2 runnable tasks.
    maui.dmon.modules["cpu"].configure("period", 5.0)
    for _ in range(4):
        Linpack(cluster["maui"]).start()
    # ...and the second: disk traffic plus a memory squeeze.
    hog = cluster["maui"].memory.allocate(
        cluster["maui"].memory.free_bytes - MB(40), tag="hog")

    def disk_load():
        while True:
            yield cluster["maui"].disk.write(MB(8))
            yield env.timeout(0.2)

    env.process(disk_load())
    mark = env.now
    scenario.run_until(mark + 60.0)
    busy = published_per_second(maui.dmon, mark, env.now)
    print(f"filtered, loaded: {busy:.2f} records/s "
          f"(conditions tripped -> data flows again)")
    hog.free()

    stats = maui.dmon.filters.global_filter
    print(f"filter ran {stats.invocations} times, "
          f"emitted {stats.total_outputs} records, "
          f"{stats.errors} errors")


if __name__ == "__main__":
    main()
