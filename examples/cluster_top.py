#!/usr/bin/env python
"""`dtop`: a cluster-wide top(1) built on dproc.

The classic consumer of a monitoring system: a live, whole-cluster
resource table.  Everything it shows is read through one node's
/proc/cluster view plus the ClusterView aggregates — no SSH, no
per-node agents beyond dproc itself, and alarms fire on threshold
crossings while it runs.

Run:  python examples/cluster_top.py
"""

from __future__ import annotations

from repro.api import Scenario
from repro.dproc import MetricId
from repro.dproc.aggregate import ClusterView
from repro.dproc.alarms import AlarmManager
from repro.units import MB
from repro.workloads import AmbientActivity, Linpack


def draw(view: ClusterView, env, alarms) -> None:
    print(f"\n--- dtop @ t={env.now:.0f}s "
          f"(from {view.dproc.node.name}) ---")
    print(f"{'node':>8} {'load':>6} {'free MiB':>8} {'disk sec/s':>10} "
          f"{'avail Mbps':>10}")
    load = view.snapshot(MetricId.LOADAVG)
    free = view.snapshot(MetricId.FREEMEM)
    disk = view.snapshot(MetricId.DISKUSAGE)
    net = view.snapshot(MetricId.NET_BANDWIDTH)
    for host in sorted(set(load) | set(free)):
        print(f"{host:>8} {load.get(host, float('nan')):6.2f} "
              f"{free.get(host, 0) / 2**20:8.0f} "
              f"{disk.get(host, float('nan')):10.1f} "
              f"{net.get(host, 0) * 8 / 1e6:10.1f}")
    print(f"{'MEAN':>8} {view.mean(MetricId.LOADAVG):6.2f} "
          f"{view.total(MetricId.FREEMEM) / 2**20:8.0f}")
    if alarms:
        for line in alarms:
            print(f"  ! {line}")
        alarms.clear()


def main() -> None:
    scenario = Scenario(nodes=4, seed=31).build()
    env = scenario.env
    cluster = scenario.nodes
    dprocs = scenario.dprocs
    for node in cluster:
        AmbientActivity(node, intensity=0.5).start()
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 5.0)

    view = ClusterView(dprocs["alan"], staleness=5.0)
    alarm_lines: list[str] = []
    manager = AlarmManager(dprocs["alan"].dmon)
    manager.watch_above(
        MetricId.LOADAVG, 2.0,
        lambda a, h, v, t: alarm_lines.append(
            f"ALARM {h}: loadavg {v:.2f} > 2.0 at t={t:.0f}s"))
    manager.watch_below(
        MetricId.FREEMEM, MB(150),
        lambda a, h, v, t: alarm_lines.append(
            f"ALARM {h}: free memory down to {v / 2**20:.0f} MiB"))

    # Phase 1: quiet cluster.
    scenario.run_until(10.0)
    draw(view, env, alarm_lines)

    # Phase 2: someone starts a parallel job on maui + kilauea.
    for name in ("maui", "kilauea"):
        for _ in range(3):
            Linpack(cluster[name]).start()
    scenario.run_until(60.0)
    draw(view, env, alarm_lines)

    # Phase 3: etna leaks memory.
    cluster["etna"].memory.allocate(MB(350), tag="leak")
    scenario.run_until(90.0)
    draw(view, env, alarm_lines)

    print(f"\nleast loaded node right now: {view.least_loaded()}")
    print(f"most free memory:            {view.most_free_memory()}")
    print(f"placement candidates (free>200MiB, load<1): "
          f"{view.placement_candidates(MB(200), 1.0)}")


if __name__ == "__main__":
    main()
