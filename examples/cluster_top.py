#!/usr/bin/env python
"""`dtop`: a cluster-wide top(1) fed by the durable event stream.

The classic consumer of a monitoring system: a live, whole-cluster
resource table.  This version tails the broker's ``dproc.monitor``
stream through a consumer group (read → apply → ack, the
hsm-action-top pattern) instead of polling one node's /proc/cluster
snapshot — so its rows are exactly what the channel delivered, it
keeps working across crashes by replay, and every host that ever
published appears, whatever subset of metrics it reported.  Alarms
still fire on threshold crossings while it runs.

Run:  python examples/cluster_top.py
"""

from __future__ import annotations

from repro.api import Scenario
from repro.dproc import MetricId
from repro.dproc.alarms import AlarmManager
from repro.stream import StreamTop
from repro.units import MB
from repro.workloads import AmbientActivity, Linpack


def draw(top: StreamTop, env, alarms) -> None:
    applied = top.feed(now=env.now)
    print(f"\n--- dtop @ t={env.now:.0f}s "
          f"(+{applied} events from the stream) ---")
    print(top.render(now=env.now))
    if alarms:
        for line in alarms:
            print(f"  ! {line}")
        alarms.clear()


def main() -> None:
    scenario = Scenario(nodes=4, seed=31).with_stream().build()
    env = scenario.env
    cluster = scenario.nodes
    dprocs = scenario.dprocs
    for node in cluster:
        AmbientActivity(node, intensity=0.5).start()
    for dp in dprocs.values():
        dp.dmon.modules["cpu"].configure("period", 5.0)

    top = StreamTop(scenario.stream)
    alarm_lines: list[str] = []
    manager = AlarmManager(dprocs["alan"].dmon)
    manager.watch_above(
        MetricId.LOADAVG, 2.0,
        lambda a, h, v, t: alarm_lines.append(
            f"ALARM {h}: loadavg {v:.2f} > 2.0 at t={t:.0f}s"))
    manager.watch_below(
        MetricId.FREEMEM, MB(150),
        lambda a, h, v, t: alarm_lines.append(
            f"ALARM {h}: free memory down to {v / 2**20:.0f} MiB"))

    # Phase 1: quiet cluster.
    scenario.run_until(10.0)
    draw(top, env, alarm_lines)

    # Phase 2: someone starts a parallel job on maui + kilauea.
    for name in ("maui", "kilauea"):
        for _ in range(3):
            Linpack(cluster[name]).start()
    scenario.run_until(60.0)
    draw(top, env, alarm_lines)

    # Phase 3: etna leaks memory.
    cluster["etna"].memory.allocate(MB(350), tag="leak")
    scenario.run_until(90.0)
    draw(top, env, alarm_lines)

    print(f"\nleast loaded node right now: {top.least_loaded()}")
    print(f"most free memory:            {top.most_free_memory()}")
    print(f"stream: {scenario.stream.total_entries()} entries, "
          f"{top.events_consumed} consumed by dtop")


if __name__ == "__main__":
    main()
