#!/usr/bin/env python
"""Quickstart: deploy dproc on a cluster and read remote resources.

Builds the paper's Figure 1 scenario — three nodes named alan, maui and
etna — deploys the dproc toolkit on all of them, and then uses the
/proc/cluster interface from alan to watch the other nodes, tune
monitoring parameters, and observe the effect.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Scenario
from repro.dproc import MetricId
from repro.workloads import AmbientActivity, Linpack


def start_ambient(sc: Scenario) -> None:
    # Some background life on every node so the metrics move.
    for node in sc.nodes:
        AmbientActivity(node, intensity=0.5).start()


def main() -> None:
    # 1. A 3-node cluster on a switched 100 Mbps fabric with dproc
    #    deployed everywhere (shared KECho bus, monitoring + control
    #    channels, all five monitoring modules).  One Scenario object
    #    owns all of the wiring.
    scenario = Scenario(nodes=3, seed=42) \
        .with_cluster_setup(start_ambient).build()
    cluster = scenario.nodes
    dprocs = scenario.dprocs
    print(f"cluster nodes: {', '.join(cluster.names)}")
    alan = dprocs["alan"]

    # 2. Let the cluster run for a few seconds of virtual time; each
    #    d-mon polls its modules once per second and publishes.
    scenario.run_until(5.0)

    # 3. The paper's Figure 1: every node's resources under
    #    /proc/cluster, readable from any node.
    print("\n/proc/cluster hierarchy seen from alan:")
    for host in alan.listdir("/proc/cluster"):
        files = alan.listdir(f"/proc/cluster/{host}")
        print(f"  {host}/: {', '.join(files)}")

    print("\nremote readings from alan:")
    for host in ("maui", "etna"):
        load = alan.read(f"/proc/cluster/{host}/loadavg").strip()
        free = float(alan.read(f"/proc/cluster/{host}/freemem"))
        bw = float(alan.read(f"/proc/cluster/{host}/net_bandwidth"))
        print(f"  {host}: loadavg={load}  free={free / 2**20:.0f} MiB  "
              f"available bw={bw * 8 / 1e6:.1f} Mbps")

    # 4. Customize monitoring with parameters: maui's CPU data only
    #    every 2 seconds and only while busy.
    alan.write("/proc/cluster/maui/control",
               "period cpu 2\nthreshold loadavg above 0.5")
    print("\nwrote parameters to /proc/cluster/maui/control:")
    print("  " + alan.read("/proc/cluster/maui/control").strip()
          .replace("\n", "\n  "))

    # 5. Load maui and watch the remote loadavg rise.
    dprocs["maui"].dmon.modules["cpu"].configure("period", 5.0)
    for _ in range(3):
        Linpack(cluster["maui"]).start()
    scenario.run_until(30.0)
    seen = alan.metric("maui", MetricId.LOADAVG)
    print(f"\nafter starting 3 linpack threads on maui: "
          f"alan sees loadavg={seen:.2f}")

    # 6. The standard local /proc entries still work too.
    print(f"local /proc/loadavg on maui: "
          f"{dprocs['maui'].read('/proc/loadavg').strip()}")


if __name__ == "__main__":
    main()
