#!/usr/bin/env python
"""Tour of the metrics plane: TSDB queries, SLOs, fault attribution.

Runs a monitored cluster through an injected loss window with the
observability plane attached, then walks what the plane captured:
windowed TSDB queries over sampled telemetry, the health engine's
hysteretic verdicts, the durable ``obs.health`` audit channel, and
the attribution of each degraded window to the recorded fault that
caused it.  Finishes with the OpenMetrics exposition the live
``/metrics`` endpoint would serve for the same cluster.

Run:  PYTHONPATH=src python examples/obs_dashboard.py
"""

from __future__ import annotations

from repro.api import Scenario
from repro.harness.obscli import render_dashboard
from repro.obs import (HealthRule, attribute_transitions,
                       render_openmetrics)

DURATION = 40.0


def inject(sc: Scenario) -> None:
    # A loss window mid-run: enough drops to trip drop-burn, healed
    # early enough for the hysteresis to recover before the end.
    sc.faults.schedule_loss(10.0, 0.5, until=20.0)


def main() -> None:
    # 1. A monitored cluster with the stream tee and the obs plane.
    #    Add one custom SLO next to the stock rules: publishers must
    #    sustain at least half an event per second.
    from repro.obs import default_rules
    rules = list(default_rules(poll_interval=1.0)) + [
        HealthRule(name="publish-rate",
                   metric="dmon.events_published", agg="rate",
                   window=10.0, op=">=", threshold=0.5,
                   for_bad=3, for_ok=2),
    ]
    scenario = (Scenario(nodes=8, seed=11)
                .with_stream()
                .with_faults(inject)
                .with_observability(sample_interval=1.0,
                                    rules=rules))
    scenario.run(DURATION)
    plane = scenario.obs

    # 2. Windowed queries over the sampled series.
    name = scenario.nodes.names[0]
    labels = (("node", name),)
    print("== TSDB queries ==")
    print(f"  series stored: {len(plane.tsdb.keys())}")
    print(f"  {name} publish rate (last 10s): "
          f"{plane.tsdb.rate('dmon.events_published', labels, window=10.0, now=DURATION):.2f}/s")
    print(f"  cluster drop-rate p99 across run: "
          f"{plane.tsdb.quantile_over_time(0.99, 'net.drops_fault', labels, window=DURATION, now=DURATION):.1f}")

    # 3. The health verdict and its audit trail.
    verdict = plane.verdict()
    print("\n== health ==")
    print(f"  healthy: {verdict['healthy']}  "
          f"transitions: {len(plane.transitions)}")
    for entry in scenario.obs_log.entries("obs.health")[:5]:
        print(f"  obs.health seq={entry.seq} t={entry.time:g} "
              f"{entry.summary} ({entry.fault})")

    # 4. Fault attribution: each degraded window names the injected
    #    fault whose recorded drops fall inside it.
    print("\n== degraded windows ==")
    for window in attribute_transitions(plane.transitions,
                                        scenario.stream):
        cause = ", ".join(window["faults"]) or "unattributed"
        end = window["end"]
        print(f"  {window['rule']} on {window['subject']}: "
              f"{window['start']:g}s..{end:g}s  [{cause}]")

    # 5. The same dashboard `python -m repro.harness obs` draws.
    print("\n== dashboard ==")
    print(render_dashboard(plane, scenario.stream,
                           grep="net.drops_fault"))

    # 6. And the exposition a live /metrics scrape would serve.
    text = render_openmetrics(
        {node.name: node.telemetry for node in scenario.nodes},
        health=verdict)
    print("== openmetrics (first 12 lines) ==")
    print("\n".join(text.splitlines()[:12]))


if __name__ == "__main__":
    main()
