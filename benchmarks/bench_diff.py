"""Compare two ``BENCH_*.json`` reports and flag regressions.

Every benchmark writer in this directory emits a versioned JSON
report (``schema_version``, a ``results``/``variants`` record list,
and per-record ``overhead`` + ``health`` sections).  This tool diffs
two of them — typically the committed baseline against a fresh run::

    PYTHONPATH=src python benchmarks/bench_diff.py \
        BENCH_sim_throughput.json /tmp/fresh.json
    PYTHONPATH=src python benchmarks/bench_diff.py old.json new.json \
        --tolerance 0.10 --json

Records are matched by identity (``n_nodes`` + ``workers`` for the
throughput bench, ``variant`` for ablations, position otherwise) and
every shared numeric metric is reported.  A metric with a known
direction (events/s up is good, wall seconds down is good) that moves
the wrong way by more than ``--tolerance`` is a regression; so is a
record whose ``health`` verdict decays from healthy.  Exit status: 0
clean, 1 regressions, 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Metrics where bigger is better; anything here that shrinks more
#: than the tolerance is a regression.
HIGHER_IS_BETTER = (
    "events_per_second", "sim_speedup", "speedup",
    "critical_path_events_per_second", "record_volume_factor",
    "monitor_cpu_factor",
)
#: Metrics where smaller is better.
LOWER_IS_BETTER = (
    "wall_seconds", "setup_seconds", "monitor_cpu_seconds",
    "recovery_time", "rejoin_time",
)
#: Informational metrics: reported, never gating (absolute totals
#: move with configuration, not performance).
NEUTRAL_HINTS = ("events_processed", "events_published",
                 "records_published", "n_events")


def _records(payload: dict) -> list:
    for key in ("results", "variants"):
        rows = payload.get(key)
        if isinstance(rows, list):
            return rows
    return []


def _identity(record: dict, index: int) -> str:
    if "variant" in record:
        return str(record["variant"])
    if "n_nodes" in record:
        ident = f"n={record['n_nodes']}"
        if record.get("workers"):
            ident += f",workers={record['workers']}"
        return ident
    return f"#{index}"


def _numeric_fields(record: dict) -> dict:
    out = {}
    for key, value in record.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def _health_verdict(record: dict) -> str:
    health = record.get("health")
    if isinstance(health, dict):
        return str(health.get("verdict", "unknown"))
    return "unknown"


def diff_reports(old: dict, new: dict, tolerance: float) -> dict:
    """Structured comparison; ``regressions`` is the gate."""
    rows = []
    regressions = []
    old_records = {_identity(r, i): r
                   for i, r in enumerate(_records(old))}
    new_records = {_identity(r, i): r
                   for i, r in enumerate(_records(new))}
    for ident in old_records:
        if ident not in new_records:
            regressions.append(f"{ident}: missing from new report")
            continue
        before, after = old_records[ident], new_records[ident]
        old_nums, new_nums = (_numeric_fields(before),
                              _numeric_fields(after))
        for metric in sorted(set(old_nums) & set(new_nums)):
            a, b = old_nums[metric], new_nums[metric]
            delta = (b - a) / abs(a) if a else None
            if metric in HIGHER_IS_BETTER:
                direction = "higher"
                bad = a and (a - b) / abs(a) > tolerance
            elif metric in LOWER_IS_BETTER:
                direction = "lower"
                bad = a and (b - a) / abs(a) > tolerance
            else:
                direction = "neutral"
                bad = False
            rows.append({"record": ident, "metric": metric,
                         "old": a, "new": b, "delta": delta,
                         "direction": direction,
                         "regression": bool(bad)})
            if bad:
                regressions.append(
                    f"{ident}: {metric} {a:g} -> {b:g} "
                    f"({delta:+.1%}, tolerance {tolerance:.0%})")
        old_h, new_h = _health_verdict(before), _health_verdict(after)
        if old_h != new_h:
            rows.append({"record": ident, "metric": "health.verdict",
                         "old": old_h, "new": new_h, "delta": None,
                         "direction": "health",
                         "regression": new_h == "degraded"})
            if new_h == "degraded":
                regressions.append(
                    f"{ident}: health verdict {old_h} -> degraded")
    for ident in new_records:
        if ident not in old_records:
            rows.append({"record": ident, "metric": "(new record)",
                         "old": None, "new": None, "delta": None,
                         "direction": "neutral", "regression": False})
    return {
        "benchmark": new.get("benchmark", old.get("benchmark")),
        "schema_version": {"old": old.get("schema_version", 1),
                           "new": new.get("schema_version", 1)},
        "tolerance": tolerance,
        "comparisons": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def _load(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bench_diff: cannot read {path}: {exc}")
    if not isinstance(payload, dict) or not _records(payload):
        raise SystemExit(f"bench_diff: {path} has no benchmark "
                         f"records (expected 'results'/'variants')")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json reports; non-zero exit on "
                    "regression.")
    parser.add_argument("old", type=Path, help="baseline report")
    parser.add_argument("new", type=Path, help="fresh report")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional decay on directional "
                             "metrics (default: %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full comparison as JSON")
    args = parser.parse_args(argv)

    old, new = _load(args.old), _load(args.new)
    if old.get("benchmark") != new.get("benchmark"):
        print(f"bench_diff: comparing different benchmarks "
              f"({old.get('benchmark')!r} vs {new.get('benchmark')!r})",
              file=sys.stderr)
        return 2
    result = diff_reports(old, new, args.tolerance)
    if args.json:
        print(json.dumps(result, indent=1, sort_keys=True))
        return 0 if result["ok"] else 1

    print(f"== bench diff: {result['benchmark']} "
          f"(schema {result['schema_version']['old']} -> "
          f"{result['schema_version']['new']}, tolerance "
          f"{args.tolerance:.0%}) ==")
    for row in result["comparisons"]:
        if row["metric"] == "(new record)":
            print(f"  {row['record']:<24} new record (no baseline)")
            continue
        delta = ("" if row["delta"] is None
                 else f" ({row['delta']:+.1%})")
        flag = "  REGRESSION" if row["regression"] else ""
        if row["direction"] == "neutral" and not flag:
            continue  # keep the table to what can gate
        print(f"  {row['record']:<24} {row['metric']:<34} "
              f"{row['old']} -> {row['new']}{delta}{flag}")
    if result["regressions"]:
        print(f"\n{len(result['regressions'])} regression(s):",
              file=sys.stderr)
        for line in result["regressions"]:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
