"""Figure 8 — overhead in receiving incoming events.

Paper: kernel CPU time d-mon spends handling incoming monitoring
events per polling iteration, vs cluster size.  Expected shape:
"even when the number of nodes in the cluster is increased to 8, the
overhead remains less than 1 ms in the case of an update period of 2 s
and the differential filter, and less than 2.2 ms when the update
period is 1 s".
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import fig8_receive_overhead

NODES = (1, 2, 4, 8)


def test_fig8_receive_overhead(benchmark):
    result = run_once(
        benchmark,
        lambda: fig8_receive_overhead(nodes=NODES, duration=100.0))
    period1 = result.get("update period=1s")
    period2 = result.get("update period=2s")
    differential = result.get("differential filter")

    # A 1-node cluster receives nothing.
    assert period1.y_at(1) == 0.0

    # Growth with the number of publishers.
    assert list(period1.y) == sorted(period1.y)

    # Paper's bounds at 8 nodes.
    assert period1.y_at(8) < 2200
    assert period1.y_at(8) > 1200
    assert period2.y_at(8) < 1200
    assert differential.y_at(8) < 1000

    # Ordering: 1 s costs most, the differential filter least.
    assert period1.y_at(8) > period2.y_at(8) > differential.y_at(8)
