"""Figure 7 — event submission overhead with 5 KB events.

Paper: "repeats the previous experiment, however, this time with
monitoring events of average size 5 KB.  Although the overheads have
increased, the results show a similar behavior as in Figure 6"
(~5 ms at 8 nodes for the 1 s period).
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import (fig6_submission_overhead,
                           fig7_submission_overhead_large)

NODES = (1, 2, 4, 8)


def test_fig7_submission_overhead_large(benchmark):
    result = run_once(
        benchmark,
        lambda: fig7_submission_overhead_large(nodes=NODES,
                                               duration=100.0))
    period1 = result.get("update period=1s")
    period2 = result.get("update period=2s")
    differential = result.get("differential filter")

    # Same shape as Figure 6...
    assert list(period1.y) == sorted(period1.y)
    assert period2.y_at(8) < period1.y_at(8) * 0.65
    assert differential.y_at(8) < period1.y_at(8) * 0.15

    # ...with larger magnitudes (~5 ms at 8 nodes).
    assert 3500 < period1.y_at(8) < 6500

    # Cross-check against the small-event run: 5 KB events cost
    # strictly more per iteration.
    small = fig6_submission_overhead(nodes=(8,), duration=50.0)
    assert period1.y_at(8) > small.get("update period=1s").y_at(8) * 2
