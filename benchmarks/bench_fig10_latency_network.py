"""Figure 10 — latency vs network perturbation (3 MB events).

Paper: the server streams 3 MB events (~30 Mbps) to a client over a
100 Mbps link shared with an Iperf UDP flood.  Expected shape: "the
plot remains horizontal until 70 Mbps of perturbation.  But as the
perturbation increases beyond 70 Mbps, latency drastically increases
for the first two types of filters ... The dynamic filter scenario,
however, performs better than the others because the server reduces
the data size."
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import fig10_latency_vs_network

PERTURBATIONS = (0, 30, 50, 60, 70, 80, 90)


def test_fig10_latency_vs_network(benchmark):
    result = run_once(
        benchmark,
        lambda: fig10_latency_vs_network(perturbations=PERTURBATIONS,
                                         settle=20.0, measure=50.0))
    none = result.get("no filter")
    static = result.get("static filter")
    dynamic = result.get("dynamic filter")

    # Horizontal until the stream's ~30 Mbps no longer fits: all three
    # stay sub-second through 60 Mbps of perturbation.
    for series in (none, static, dynamic):
        for x in (0, 30, 50, 60):
            assert series.y_at(x) < 1.0

    # Crossover at ~70 Mbps: no filter explodes...
    assert none.y_at(70) > 5.0
    assert none.y_at(90) > 10.0

    # ...the static filter explodes a little later/lower...
    assert static.y_at(90) > 5.0
    assert static.y_at(80) < none.y_at(80)

    # ...and the dynamic filter stays low throughout.
    assert max(dynamic.y) < 2.0
