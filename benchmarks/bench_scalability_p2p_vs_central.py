"""Scalability ablation — peer-to-peer dproc vs. a central collector.

The paper's architectural claim (§1, related work): dproc's
"full peer-to-peer communications at kernel-level … improv[es]
communication performance through avoiding central master collection
points (scalability of communications, fault tolerance)", in contrast
to Supermon's "centralized data concentrator".

Both architectures are run with identical cost models and metric sets
so that every node ends up knowing every node's state.  The measure is
the *hottest node's* monitoring CPU: p2p load is uniform, while the
central collector pays for n pushes in and an O(n)-sized digest out to
n-1 nodes — a per-node cost that grows with a steeper slope and
concentrates on one machine.
"""

from __future__ import annotations

from repro.dproc import DMonConfig, MetricId, deploy_dproc
from repro.dproc.central import CentralCollector, CentralConfig
from repro.sim import Environment, build_cluster

SIZES = (8, 16, 32, 48)
DURATION = 40.0
METRICS = frozenset({MetricId.LOADAVG, MetricId.FREEMEM,
                     MetricId.DISKUSAGE, MetricId.NET_BANDWIDTH})


def run_p2p(n: int) -> float:
    """Max per-node monitoring CPU fraction under dproc."""
    env = Environment()
    cluster = build_cluster(env, nodes=n, seed=1)
    dprocs = deploy_dproc(cluster,
                          config=DMonConfig(metric_subset=METRICS),
                          modules=("cpu", "mem", "disk", "net"))
    env.run(until=DURATION)
    worst = 0.0
    for dproc in dprocs.values():
        dmon = dproc.dmon
        per_poll = (dmon.mean_submit_overhead(since=DURATION * 0.2)
                    + dmon.mean_receive_overhead(since=DURATION * 0.2))
        worst = max(worst, per_poll / dmon.config.poll_interval)
    return worst


def run_central(n: int) -> float:
    """Max per-node monitoring CPU fraction under a central collector."""
    env = Environment()
    cluster = build_cluster(env, nodes=n, seed=1)
    central = CentralCollector(
        cluster, collector=cluster.names[0],
        config=CentralConfig(metric_subset=METRICS)).start()
    env.run(until=DURATION)
    _host, cpu_seconds = central.hottest_node()
    return cpu_seconds / DURATION


def test_p2p_load_stays_flatter_than_central(benchmark):
    results = benchmark.pedantic(
        lambda: {n: (run_p2p(n), run_central(n)) for n in SIZES},
        rounds=1, iterations=1)
    print()
    print("== scalability: hottest node's monitoring CPU fraction ==")
    print(f"  {'nodes':>5} {'p2p (dproc)':>12} {'central':>12} "
          f"{'central/p2p':>11}")
    for n in SIZES:
        p2p, central = results[n]
        ratio = central / p2p if p2p else float("inf")
        print(f"  {n:5d} {p2p:12.5f} {central:12.5f} {ratio:11.2f}")

    # Both grow with cluster size...
    p2p_curve = [results[n][0] for n in SIZES]
    central_curve = [results[n][1] for n in SIZES]
    assert p2p_curve == sorted(p2p_curve)
    assert central_curve == sorted(central_curve)

    # ...but the central collector's hotspot grows strictly faster and
    # dominates at scale (the Supermon scalability problem).
    assert central_curve[-1] > p2p_curve[-1] * 1.5
    central_slope = central_curve[-1] / central_curve[0]
    p2p_slope = p2p_curve[-1] / p2p_curve[0]
    assert central_slope > p2p_slope


def test_central_baseline_is_functionally_complete():
    """Sanity: the baseline actually disseminates everyone's data."""
    env = Environment()
    cluster = build_cluster(env, nodes=4, seed=2)
    central = CentralCollector(
        cluster, collector=cluster.names[0],
        config=CentralConfig(metric_subset=METRICS)).start()
    env.run(until=10.0)
    last = cluster.names[-1]
    # The last node has learned the first node's free memory via the
    # collector's digest.
    value = central.view(last, cluster.names[0], MetricId.FREEMEM)
    assert value is not None and value > 0
