"""Chaos-recovery benchmark: dproc through loss, partition, and reboot.

Drives a monitored cluster through the fault-injection scenario in
:mod:`repro.harness.chaos` — 30 % message loss, a half/half partition,
and the crash + reboot of one node — and reports how long monitoring
takes to recover::

    PYTHONPATH=src python benchmarks/bench_chaos_recovery.py
    PYTHONPATH=src python benchmarks/bench_chaos_recovery.py \
        --nodes 12 --duration 40            # CI smoke
    PYTHONPATH=src python benchmarks/bench_chaos_recovery.py \
        --repeats 3                         # determinism check

With ``--repeats`` the scenario is re-run with the same seed and the
event traces are compared — any divergence (a nondeterministic RNG
draw, an unstable iteration order) fails the benchmark.

Results land in ``BENCH_chaos_recovery.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.chaos import chaos_recovery

#: Report format version: 2 added ``schema_version`` and the
#: per-record ``health`` SLO section.
SCHEMA_VERSION = 2
OUTPUT = Path(__file__).resolve().parent.parent / \
    "BENCH_chaos_recovery.json"


def run_once(n: int, duration: float, seed: int,
             trace_sample: float = 0.0) -> tuple[dict, tuple]:
    tracer = None
    if trace_sample > 0:
        from repro.tracing import TraceCollector
        tracer = TraceCollector(seed=seed, sample_rate=trace_sample,
                                max_traces=16384)
    t0 = time.perf_counter()
    report = chaos_recovery(nodes=n, duration=duration, seed=seed,
                            tracer=tracer)
    wall = time.perf_counter() - t0
    record = {
        "n_nodes": report.n_nodes,
        "seed": report.seed,
        "sim_seconds": report.duration,
        "wall_seconds": round(wall, 3),
        "victim": report.victim,
        "recovery_time": report.recovery_time,
        "rejoin_time": report.rejoin_time,
        "victim_reported_dead": report.victim_reported_dead,
        "victim_never_silently_fresh":
            report.victim_never_silently_fresh,
        "n_events": len(report.events),
        "fault_events": [
            [t, text] for t, text in report.events
            if not text.startswith(("survivors", "victim seen"))],
        # Self-telemetry: what the monitoring cost, measured by the
        # monitored system itself (repro.telemetry registries).
        "overhead": report.overhead,
    }
    if tracer is not None:
        from repro.tracing import latency_breakdown
        record["tracing"] = {
            "sample_rate": trace_sample,
            "traces": len(tracer),
            "spans": tracer.spans_recorded,
            "dropped_spans": tracer.spans_dropped,
            "breakdown": latency_breakdown(tracer),
        }
    return record, report.trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="dproc chaos-recovery benchmark")
    parser.add_argument("--nodes", type=int, default=100,
                        help="cluster size (default: %(default)s)")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="re-run and compare traces for determinism")
    parser.add_argument("--trace", action="store_true",
                        help="record causal traces and embed the "
                             "critical-path latency breakdown in the "
                             "report (recovery numbers are unchanged)")
    parser.add_argument("--trace-sample", type=float, default=0.1,
                        help="head-sampling rate with --trace "
                             "(default: %(default)s)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help="JSON report path (default: %(default)s)")
    args = parser.parse_args(argv)

    sample = args.trace_sample if args.trace else 0.0
    print(f"== chaos recovery: {args.nodes} nodes, "
          f"{args.duration:g} simulated seconds ==")
    record, trace = run_once(args.nodes, args.duration, args.seed,
                             trace_sample=sample)
    if args.trace:
        e2e = record["tracing"]["breakdown"]["end_to_end"]
        print(f"  traced {record['tracing']['traces']} traces  "
              f"end-to-end p50 {e2e['p50']:.6f}s p99 {e2e['p99']:.6f}s")
    print(f"  wall {record['wall_seconds']:.2f}s  "
          f"recovery {record['recovery_time']}s after heal  "
          f"rejoin {record['rejoin_time']}s after reboot")
    print(f"  victim flagged while down: "
          f"{record['victim_reported_dead']}  "
          f"never silently fresh: "
          f"{record['victim_never_silently_fresh']}")

    deterministic = True
    for i in range(1, args.repeats):
        repeat_record, repeat_trace = run_once(
            args.nodes, args.duration, args.seed)
        same = repeat_trace == trace
        deterministic = deterministic and same
        print(f"  repeat {i}: wall "
              f"{repeat_record['wall_seconds']:.2f}s  "
              f"trace {'identical' if same else 'DIVERGED'}")
    record["repeats"] = args.repeats
    record["deterministic"] = deterministic

    from repro.harness.benchreport import BenchReport
    report = BenchReport("chaos_recovery",
                         schema_version=SCHEMA_VERSION)
    report.add(record)
    report.write(args.output)
    print(f"wrote {args.output}")
    return 0 if deterministic else 1


if __name__ == "__main__":
    raise SystemExit(main())
