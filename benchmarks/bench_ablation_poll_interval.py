"""Ablation — d-mon polling interval: freshness vs. overhead.

The paper fixes d-mon's polling at one second ("Every second, d-mon
polls each of the registered monitoring modules") and exposes update
periods *per metric* on top.  This bench quantifies the underlying
knob: faster polling keeps remote caches fresher but charges
proportionally more kernel CPU — the overhead curve that motivates
putting applications (not the toolkit) in charge of rates.
"""

from __future__ import annotations

from repro.dproc import DMonConfig, MetricId, deploy_dproc
from repro.sim import Environment, build_cluster

INTERVALS = (0.25, 0.5, 1.0, 2.0, 4.0)
DURATION = 60.0
METRICS = frozenset({MetricId.LOADAVG, MetricId.FREEMEM,
                     MetricId.DISKUSAGE, MetricId.NET_BANDWIDTH})


def run_interval(interval: float):
    env = Environment()
    cluster = build_cluster(env, nodes=4, seed=3)
    dprocs = deploy_dproc(
        cluster,
        config=DMonConfig(poll_interval=interval,
                          metric_subset=METRICS),
        modules=("cpu", "mem", "disk", "net"))
    env.run(until=DURATION)
    dmon = dprocs[cluster.names[0]].dmon
    # Mean staleness of what this node knows about its peers.
    ages = []
    for host in cluster.names[1:]:
        entry = dmon.remote_value(host, MetricId.FREEMEM)
        if entry is not None:
            ages.append(env.now - entry.received_at)
    cpu_per_sec = (dmon.mean_submit_overhead(since=DURATION * 0.2)
                   + dmon.mean_receive_overhead(
                       since=DURATION * 0.2)) / interval
    return {
        "staleness": sum(ages) / len(ages) if ages else float("inf"),
        "cpu_fraction": cpu_per_sec,
    }


def test_poll_interval_tradeoff(benchmark):
    results = benchmark.pedantic(
        lambda: {i: run_interval(i) for i in INTERVALS},
        rounds=1, iterations=1)
    print()
    print("== ablation: d-mon polling interval (4 nodes) ==")
    print(f"  {'interval (s)':>12} {'staleness (s)':>13} "
          f"{'monitor CPU':>11}")
    for i in INTERVALS:
        r = results[i]
        print(f"  {i:12g} {r['staleness']:13.2f} "
              f"{r['cpu_fraction'] * 100:10.4f}%")

    staleness = [results[i]["staleness"] for i in INTERVALS]
    cpu = [results[i]["cpu_fraction"] for i in INTERVALS]

    # Faster polling => fresher data but more CPU.
    assert staleness == sorted(staleness)
    assert cpu == sorted(cpu, reverse=True)

    # The cost scales ~linearly with the polling rate: 4x faster
    # polling costs ~4x the CPU.
    ratio = cpu[0] / cpu[2]  # 0.25 s vs 1.0 s
    assert 2.5 < ratio < 6.0

    # At the paper's default (1 s) the total overhead stays small.
    assert cpu[2] < 0.01
