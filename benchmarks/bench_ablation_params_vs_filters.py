"""Ablation — parameters vs an equivalent dynamic filter.

The paper (§3): "although dynamic filters can provide the functionality
of parameters, it is typically 'cheaper' to use parameters to specify
simple rules because parameters require less book-keeping, and there is
no dynamic code generation overhead."

This bench deploys the 15 % differential rule both ways — as a
ChangeThreshold parameter and as a behaviourally equivalent E-code
filter — and compares (a) what gets published and (b) the kernel CPU
consumed by the publishing node.
"""

from __future__ import annotations

import pytest

from repro.dproc import DMonConfig, MetricId, deploy_dproc
from repro.dproc.params import ChangeThreshold
from repro.sim import Environment, build_cluster

METRICS = frozenset({MetricId.LOADAVG, MetricId.FREEMEM,
                     MetricId.DISKUSAGE, MetricId.NET_BANDWIDTH})

DIFFERENTIAL_FILTER = """
{
    int i = 0;
    if (input[LOADAVG].value > input[LOADAVG].last_value_sent * 1.15 ||
        input[LOADAVG].value < input[LOADAVG].last_value_sent * 0.85) {
        output[i] = input[LOADAVG];
        i = i + 1;
    }
    if (input[FREEMEM].value > input[FREEMEM].last_value_sent * 1.15 ||
        input[FREEMEM].value < input[FREEMEM].last_value_sent * 0.85) {
        output[i] = input[FREEMEM];
        i = i + 1;
    }
    if (input[DISKUSAGE].value >
            input[DISKUSAGE].last_value_sent * 1.15 ||
        input[DISKUSAGE].value <
            input[DISKUSAGE].last_value_sent * 0.85) {
        output[i] = input[DISKUSAGE];
        i = i + 1;
    }
    if (input[NET_BANDWIDTH].value >
            input[NET_BANDWIDTH].last_value_sent * 1.15 ||
        input[NET_BANDWIDTH].value <
            input[NET_BANDWIDTH].last_value_sent * 0.85) {
        output[i] = input[NET_BANDWIDTH];
        i = i + 1;
    }
}
"""


def run_configuration(use_filter: bool, duration: float = 100.0):
    """Run a 2-node cluster with the differential rule one way."""
    env = Environment()
    cluster = build_cluster(env, 2, seed=5)
    dprocs = deploy_dproc(cluster,
                          config=DMonConfig(metric_subset=METRICS),
                          modules=("cpu", "mem", "disk", "net"))
    publisher = dprocs["alan"].dmon
    if use_filter:
        publisher.filters.deploy(DIFFERENTIAL_FILTER, scope="*")
    else:
        for policy in publisher.policies.values():
            policy.add_threshold(ChangeThreshold(15.0))
    env.run(until=duration)
    node = cluster["alan"]
    node.cpu.settle()
    return {
        "records": publisher.records_published.total,
        "events": publisher.events_published.total,
        "cpu_seconds": node.cpu.busy_cpu_seconds,
    }


def test_params_cheaper_than_equivalent_filter(benchmark):
    results = benchmark.pedantic(
        lambda: (run_configuration(False), run_configuration(True)),
        rounds=1, iterations=1)
    params, filt = results
    print()
    print("== ablation: parameters vs equivalent dynamic filter ==")
    print(f"  {'':14s} {'records':>8s} {'events':>7s} "
          f"{'cpu (ms)':>9s}")
    for label, r in (("parameters", params), ("filter", filt)):
        print(f"  {label:14s} {r['records']:8.0f} {r['events']:7.0f} "
              f"{r['cpu_seconds'] * 1e3:9.2f}")

    # Behavioural equivalence: both publish the same records.
    assert filt["records"] == pytest.approx(params["records"], abs=4)

    # The parameter path costs strictly less CPU: no compilation and a
    # cheaper per-poll check.
    assert params["cpu_seconds"] < filt["cpu_seconds"]

    # The gap is at least the one-off compile cost.
    assert filt["cpu_seconds"] - params["cpu_seconds"] > 1e-3
