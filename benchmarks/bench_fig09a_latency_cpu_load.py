"""Figure 9(a) — SmartPointer latency under increasing CPU load.

Paper: latency over a 2000 s run during which a new linpack thread
starts on the client every ~200 s.  Expected shape: latency climbs with
every thread for the no-filter case (tens of seconds by the end), less
for the static filter, and stays nearly constant for the dynamic filter
driven by dproc's CPU information.
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import fig9a_latency_timeline


def test_fig9a_latency_timeline(benchmark):
    result = run_once(
        benchmark,
        lambda: fig9a_latency_timeline(duration=800.0,
                                       thread_interval=100.0,
                                       sample_every=40.0))
    none = result.get("no filter")
    static = result.get("static filter")
    dynamic = result.get("dynamic filter")

    # No filter: latency explodes as threads accumulate.
    assert none.y[-1] > 10.0
    assert none.y[-1] > none.y[0] * 20

    # Static filter helps but still diverges eventually.
    assert static.y[-1] < none.y[-1]
    assert static.y[-1] > 1.0

    # Dynamic filter keeps latency flat and small throughout.
    assert max(dynamic.y) < 1.0
    assert dynamic.y[-1] < none.y[-1] / 20
