"""Figure 9(a) — SmartPointer latency under increasing CPU load.

Paper: latency over a 2000 s run during which a new linpack thread
starts on the client every ~200 s.  Expected shape: latency climbs with
every thread for the no-filter case (tens of seconds by the end), less
for the static filter, and stays nearly constant for the dynamic filter
driven by dproc's CPU information.

Script mode adds causal tracing (pytest reserves ``--trace``, so the
flag lives here rather than in a benchmark fixture)::

    PYTHONPATH=src python benchmarks/bench_fig09a_latency_cpu_load.py \
        --trace     # embeds per-policy critical-path breakdowns in
                    # BENCH_fig09a_latency_cpu_load.json

Tracing is passive: the latency series are identical with and without
it.
"""

from __future__ import annotations

try:
    from conftest import run_once
except ImportError:      # script mode, outside pytest
    run_once = None

from repro.harness import fig9a_latency_timeline


def test_fig9a_latency_timeline(benchmark):
    result = run_once(
        benchmark,
        lambda: fig9a_latency_timeline(duration=800.0,
                                       thread_interval=100.0,
                                       sample_every=40.0))
    none = result.get("no filter")
    static = result.get("static filter")
    dynamic = result.get("dynamic filter")

    # No filter: latency explodes as threads accumulate.
    assert none.y[-1] > 10.0
    assert none.y[-1] > none.y[0] * 20

    # Static filter helps but still diverges eventually.
    assert static.y[-1] < none.y[-1]
    assert static.y[-1] > 1.0

    # Dynamic filter keeps latency flat and small throughout.
    assert max(dynamic.y) < 1.0
    assert dynamic.y[-1] < none.y[-1] / 20


def main(argv: list[str] | None = None) -> int:
    """Script mode: run the figure once, optionally with tracing."""
    import argparse
    import json
    import sys
    import time
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                           / "src"))
    from repro.harness import fig9a_latency_timeline as fig9a
    from repro.harness.appbench import cpu_experiment_policies

    parser = argparse.ArgumentParser(
        description="Figure 9(a) benchmark (script mode)")
    parser.add_argument("--duration", type=float, default=800.0)
    parser.add_argument("--thread-interval", type=float, default=100.0)
    parser.add_argument("--sample-every", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", action="store_true",
                        help="record causal traces and embed per-"
                             "policy critical-path breakdowns in the "
                             "report (series are unchanged)")
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_fig09a_latency_cpu_load.json")
    args = parser.parse_args(argv)

    tracers = None
    if args.trace:
        from repro.tracing import TraceCollector
        # One collector per rig: the rigs reuse node names, and trace
        # ids embed them.
        tracers = {label: TraceCollector(seed=args.seed)
                   for label in cpu_experiment_policies()}

    t0 = time.perf_counter()
    result = fig9a(duration=args.duration,
                   thread_interval=args.thread_interval,
                   sample_every=args.sample_every, seed=args.seed,
                   tracers=tracers)
    wall = time.perf_counter() - t0

    payload = {
        "benchmark": "fig9a_latency_cpu_load",
        "wall_seconds": round(wall, 3),
        "results": [{"label": s.label, "x": list(s.x), "y": list(s.y)}
                    for s in result.series],
    }
    if tracers is not None:
        from repro.tracing import latency_breakdown
        payload["tracing"] = {
            label: {"traces": len(c), "spans": c.spans_recorded,
                    "breakdown": latency_breakdown(c)}
            for label, c in tracers.items()}
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} ({wall:.1f}s wall)")
    for s in result.series:
        print(f"  {s.label}: final latency {s.y[-1]:.3f}s")
    if tracers is not None:
        for label, c in tracers.items():
            e2e = latency_breakdown(c)["end_to_end"]
            print(f"  {label}: {len(c)} traces, "
                  f"p50 {e2e['p50']:.6f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
