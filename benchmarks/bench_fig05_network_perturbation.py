"""Figure 5 — network perturbation analysis.

Paper: Iperf UDP available bandwidth between two cluster nodes while
dproc runs on 0-8 nodes.  Expected shape: "the bandwidth drops by less
than 0.5 % for an update period of 1 s and remains constant for update
periods of 2 s and the differential filter" (~96 Mbps baseline).
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import fig5_network_perturbation

NODES = (0, 2, 4, 8)


def test_fig5_network_perturbation(benchmark):
    result = run_once(
        benchmark,
        lambda: fig5_network_perturbation(nodes=NODES, duration=30.0))
    period1 = result.get("update period=1s")
    period2 = result.get("update period=2s")
    differential = result.get("differential filter")

    # Baseline ~96 Mbps (iperf is CPU-limited below the 100 Mbps wire).
    assert 95.0 < period1.y_at(0) < 97.5

    # The 1 s period costs the most bandwidth but less than 0.5%.
    drop1 = period1.y_at(0) - period1.y_at(8)
    assert 0.0 < drop1 < period1.y_at(0) * 0.005

    # 2 s and differential stay (nearly) constant and above 1 s.
    assert period2.y_at(8) >= period1.y_at(8)
    assert differential.y_at(8) >= period1.y_at(8)
    drop_diff = differential.y_at(0) - differential.y_at(8)
    assert drop_diff < period1.y_at(0) * 0.002
