"""Figure 11 — single- vs multi-resource monitoring.

Paper: combined CPU and network perturbation (k linpack threads plus
10·k Mbps of Iperf) against dynamic filters that monitor cpu-only,
network-only, or cpu+network+disk.  Expected shape: "the performance is
better when the filter uses more resource information ... adaptation
based on only one resource can have a negative effect on the
requirements of another resource".
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import fig11_hybrid_monitors

STEPS = (1, 2, 4, 6, 8)


def test_fig11_hybrid_monitors(benchmark):
    result = run_once(
        benchmark,
        lambda: fig11_hybrid_monitors(steps=STEPS, settle=20.0,
                                      measure=50.0))
    cpu = result.get("cpu monitor")
    net = result.get("network monitor")
    hybrid = result.get("hybrid monitor")

    # At light perturbation everyone is fine.
    for series in (cpu, net, hybrid):
        assert series.y_at(1) < 1.5

    # The hybrid monitor is never (materially) worse than either
    # single-resource monitor, and strictly better under pressure.
    for step in STEPS:
        assert hybrid.y_at(step) <= cpu.y_at(step) * 1.1
        assert hybrid.y_at(step) <= net.y_at(step) * 1.1
    assert hybrid.y_at(6) < cpu.y_at(6) / 2
    assert hybrid.y_at(6) < net.y_at(6) / 2

    # Single-resource adaptation aggravates the other bottleneck:
    # both single-resource monitors blow past the hybrid at high load.
    assert cpu.y_at(8) > hybrid.y_at(8) * 2
    assert net.y_at(8) > hybrid.y_at(8) * 2
