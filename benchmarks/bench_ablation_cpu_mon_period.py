"""Ablation — CPU_MON averaging period: responsiveness vs overhead.

The paper motivates CPU_MON by noting that /proc/loadavg's fixed
1/5/15-minute averages "may not be useful in a fast system with
constantly varying CPU load", so dproc lets applications choose the
run-queue averaging period.  This bench quantifies the trade-off the
design exposes: short periods detect load changes quickly but wake the
sampling kernel thread more often.
"""

from __future__ import annotations

from repro.dproc import CpuMon
from repro.sim import Environment, build_cluster


def run_period(avg_period: float, duration: float = 120.0):
    """Measure detection delay of a load step and sampler CPU cost."""
    env = Environment()
    cluster = build_cluster(env, 1, seed=3)
    node = cluster["alan"]
    mon = CpuMon(node, avg_period=avg_period)
    mon.start()
    step_at = duration / 2

    detection = {}

    def load_step():
        yield env.timeout(step_at)
        for _ in range(4):
            node.cpu.execute(1e9)

    def probe():
        while "detected" not in detection:
            yield env.timeout(0.5)
            if env.now > step_at:
                (sample,) = mon.collect(env.now)
                if sample.value >= 3.0:  # within 25% of the true 4
                    detection["detected"] = env.now - step_at

    env.process(load_step())
    env.process(probe())
    env.run(until=duration)
    node.cpu.settle()
    # Sampler cost: tasklist walks at the configured wake-up rate.
    walks_per_sec = 1.0 / mon.sample_interval
    cost_per_sec = walks_per_sec * node.costs.tasklist_walk
    return {
        "detect_seconds": detection.get("detected", float("inf")),
        "sampler_cpu_fraction": cost_per_sec,
    }


def test_cpu_mon_period_tradeoff(benchmark):
    periods = (1.0, 5.0, 30.0)
    results = benchmark.pedantic(
        lambda: {p: run_period(p) for p in periods},
        rounds=1, iterations=1)
    print()
    print("== ablation: CPU_MON averaging period ==")
    print(f"  {'period (s)':>10s} {'detect (s)':>11s} "
          f"{'sampler CPU':>12s}")
    for p in periods:
        r = results[p]
        print(f"  {p:10g} {r['detect_seconds']:11.2f} "
              f"{r['sampler_cpu_fraction'] * 100:11.4f}%")

    detects = [results[p]["detect_seconds"] for p in periods]
    costs = [results[p]["sampler_cpu_fraction"] for p in periods]

    # Shorter periods detect the load step faster...
    assert detects == sorted(detects)
    assert detects[0] < 2.0
    assert detects[-1] > 10.0

    # ...but wake the sampler more often.
    assert costs == sorted(costs, reverse=True)
