"""Figure 6 — event submission overhead (50-100 B events).

Paper: kernel CPU time d-mon spends submitting monitoring events in one
polling iteration, averaged over 100 iterations, vs cluster size.
Expected shape: grows roughly linearly with the subscriber count;
~1.8 ms at 8 nodes for the 1 s period, about half for the 2 s period,
and "within 100 microseconds" for the differential filter.
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import fig6_submission_overhead

NODES = (1, 2, 4, 8)


def test_fig6_submission_overhead(benchmark):
    result = run_once(
        benchmark,
        lambda: fig6_submission_overhead(nodes=NODES, duration=100.0))
    period1 = result.get("update period=1s")
    period2 = result.get("update period=2s")
    differential = result.get("differential filter")

    # Monotone growth with cluster size for the periodic configs.
    assert list(period1.y) == sorted(period1.y)

    # Magnitude: ~1.8 ms at 8 nodes for the 1 s period.
    assert 1200 < period1.y_at(8) < 2500

    # The 2 s period averages about half the 1 s period's overhead.
    assert period2.y_at(8) < period1.y_at(8) * 0.65

    # The differential filter is an order of magnitude cheaper.
    assert differential.y_at(8) < period1.y_at(8) * 0.15
    assert differential.y_at(8) < 300  # paper: within ~100 usec
