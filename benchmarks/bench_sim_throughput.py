"""Simulation-kernel throughput benchmark: events/sec vs. cluster size.

Runs a dproc-monitored cluster for a fixed span of *simulated* time at
several cluster sizes and reports how fast the kernel chews through its
event queue::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        --sizes 8 --duration 10          # CI smoke
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        --sizes 256 --profile            # where does the time go?

Results land in ``BENCH_sim_throughput.json`` (one record per size) so
successive PRs can track the perf trajectory.

The monitoring configuration is scaled with cluster size, mirroring how
a real deployment would be tuned: small clusters run the full
all-to-all exchange the paper benchmarks, while the 1000-node
configuration polls less often, publishes a single metric and routes it
to a small set of front-end subscriber nodes (dproc publishers push
only to nodes that registered interest, so an idle audience costs
nothing).  Each result records the exact configuration used.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dproc import DMonConfig, MetricId
from repro.dproc.toolkit import Dproc
from repro.kecho import KechoBus
from repro.sim import (Environment, PAPER_NODE_NAMES, build_cluster,
                       partition_nodes, run_sharded)
from repro.sim.shard import ShardedBus, ShardRouter, ShardWorld
from repro.telemetry import merge_overhead_summaries, overhead_summary

DEFAULT_SIZES = (8, 64, 256, 1000)
DEFAULT_DURATION = 60.0
#: Above this size a single-worker run is skipped (quadratic peer
#: registration makes it build-bound); those sizes are sharded-only.
SINGLE_WORKER_MAX = 1000
#: ``--check`` fails when events/s drops more than this fraction below
#: the recorded baseline.
CHECK_TOLERANCE = 0.15
#: Ring bound for ``--stream`` runs: the durable log tee is passive
#: (no RNG, no events), so the only throughput cost is appending, and
#: the hard MAXLEN bound keeps memory flat at any duration.
STREAM_MAX_LEN = 65536
#: Report format version: 2 added ``schema_version`` and the
#: per-record ``health`` SLO section.
SCHEMA_VERSION = 2
OUTPUT = Path(__file__).resolve().parent.parent / \
    "BENCH_sim_throughput.json"


@dataclass(frozen=True)
class ScaleConfig:
    """Monitoring load profile for one cluster size."""

    poll_interval: float
    #: Nodes that subscribe to the monitoring channel (fan-in points).
    #: ``None`` means every node subscribes (full all-to-all exchange).
    n_watchers: int | None
    metrics: tuple[str, ...]
    modules: tuple[str, ...]
    #: ``--obs`` sampling scope: None samples every instrument; at
    #: large n the plane samples only the series the stock SLO rules
    #: and the throughput report actually read, which is what keeps
    #: obs overhead within its <=5% budget at n=1000.
    obs_prefixes: tuple[str, ...] | None = None
    #: ``--obs`` health cadence: evaluate rules every k-th sample.
    obs_health_every: int = 1


#: The SLO allowlist for large ``--obs`` runs: the three stock rules
#: (delivery latency p99, drop burn, monitor CPU burn), the publish
#: counters the report reads, and the full fault panel.
OBS_SLO_PREFIXES = ("dmon.collect_seconds", "dmon.events_published",
                    "dmon.polls", "net.",
                    "kecho.dproc.monitor.delivery_seconds")


FULL_METRICS = ("LOADAVG", "FREEMEM", "DISKUSAGE", "NET_BANDWIDTH")
FULL_MODULES = ("cpu", "mem", "disk", "net")


def scale_config(n: int) -> ScaleConfig:
    """Pick a monitoring profile that is realistic at size ``n``."""
    if n <= 64:
        return ScaleConfig(poll_interval=1.0, n_watchers=None,
                           metrics=FULL_METRICS, modules=FULL_MODULES)
    if n <= 256:
        return ScaleConfig(poll_interval=5.0, n_watchers=16,
                           metrics=("LOADAVG", "FREEMEM"),
                           modules=("cpu", "mem"))
    return ScaleConfig(poll_interval=15.0, n_watchers=8,
                       metrics=("LOADAVG",), modules=("cpu",),
                       obs_prefixes=OBS_SLO_PREFIXES,
                       obs_health_every=2)


def build_monitored_cluster(n: int, profile: ScaleConfig,
                            duration: float, stream: bool = False,
                            obs: bool = False):
    """An n-node cluster with dproc deployed per ``profile``.

    Returns ``(env, cluster, broker, plane)`` so callers can harvest
    per-node telemetry (and the stream tee / observability plane,
    when enabled) after the run.
    """
    env = Environment()
    cluster = build_cluster(env, nodes=n, seed=1)
    bus = KechoBus()
    broker = None
    plane = None
    if stream:
        from repro.stream import StreamBroker, attach_stream
        broker = StreamBroker(max_len=STREAM_MAX_LEN)
        attach_stream(broker, bus, cluster)
    if obs:
        from repro.obs import ObservabilityPlane
        plane = ObservabilityPlane(
            sample_interval=max(1.0, profile.poll_interval),
            name_prefixes=profile.obs_prefixes,
            health_every=profile.obs_health_every)
        plane.bind(cluster.names)
        first = cluster[cluster.names[0]]
        first.spawn(plane.sampler(cluster, env), name="obs-sampler")
    metric_subset = frozenset(MetricId[name] for name in profile.metrics)
    names = cluster.names
    watcher_set = set(names if profile.n_watchers is None
                      else names[:profile.n_watchers])
    dprocs = {}
    for name in names:
        cfg = DMonConfig(poll_interval=profile.poll_interval,
                         metric_subset=metric_subset,
                         subscribe_monitoring=name in watcher_set,
                         trace_max_samples=4096)
        dprocs[name] = Dproc(cluster[name], bus, cfg, profile.modules)
    # Only the watchers need the full /proc/cluster view.
    for name in watcher_set:
        for host in names:
            dprocs[name].add_cluster_node(host)
    for dproc in dprocs.values():
        dproc.start()
    if plane is not None:
        # The dprocs just registered their instruments: resolve the
        # sampling plans (and allocate the backing series) here in
        # setup, so the measured run only pays for the observes.
        plane.prepare(cluster)
    return env, cluster, broker, plane


def run_once(n: int, duration: float, stream: bool = False,
             obs: bool = False) -> dict:
    """Run one size; returns the result record for the JSON report."""
    profile = scale_config(n)
    t0 = time.perf_counter()
    env, cluster, broker, plane = build_monitored_cluster(
        n, profile, duration, stream, obs)
    setup_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    env.run(until=duration)
    wall = time.perf_counter() - t0

    events = env.events_processed
    record = {
        "n_nodes": n,
        "workers": 1,
        "sim_seconds": duration,
        "setup_seconds": round(setup_seconds, 3),
        "wall_seconds": round(wall, 3),
        "events_processed": events,
        "events_per_second": round(events / wall, 1) if wall else None,
        "sim_speedup": round(duration / wall, 2) if wall else None,
        "config": {
            "poll_interval": profile.poll_interval,
            "n_watchers": profile.n_watchers,
            "metrics": list(profile.metrics),
            "modules": list(profile.modules),
        },
        # Self-telemetry: the monitoring system's own account of what
        # it cost (CPU seconds, publishes, drops) during this run.
        "overhead": overhead_summary(
            {name: cluster[name].telemetry for name in cluster.names},
            sim_seconds=duration),
    }
    if broker is not None:
        # Key only present on --stream runs: the default record — and
        # the committed baseline — is unchanged with the tee off.
        record["stream"] = {
            "max_len": STREAM_MAX_LEN,
            "entries_retained": broker.total_entries(),
            "entries_trimmed": sum(s.trimmed for s in
                                   broker.streams.values()),
        }
    if plane is not None:
        # Same optional-key pattern for --obs runs.  The plane's
        # self-accounted sampling cost is the robust form of the
        # "obs overhead <= 5%" budget: wall-to-wall run pairing on a
        # noisy box swings more than the budget itself.
        record["obs"] = {
            "sample_interval": plane.sample_interval,
            "samples_taken": plane.samples_taken,
            "series": len(plane.tsdb.keys()),
            "healthy": plane.verdict()["healthy"],
            "sampler_cost_seconds": round(plane.sample_cost_seconds, 4),
            "sampler_cost_fraction": round(
                plane.sample_cost_seconds / wall, 4) if wall else None,
        }
    return record


def _bench_names(n: int) -> list[str]:
    """The default cluster naming, reproduced for the sharded path."""
    return [PAPER_NODE_NAMES[i] if i < len(PAPER_NODE_NAMES)
            else f"node{i}" for i in range(n)]


def _build_bench_shard(spec):
    """Build one shard of the monitored cluster (runs in the worker)."""
    payload = spec.payload
    profile: ScaleConfig = payload["profile"]
    local = list(spec.local_names)
    env = Environment()
    cluster = build_cluster(env, nodes=len(local), seed=1, names=local)
    bus = ShardedBus()
    router = ShardRouter(env, spec.plan, spec.index)
    router.attach(cluster)
    metric_subset = frozenset(MetricId[name]
                              for name in profile.metrics)
    watcher_set = set(payload["watchers"])
    dprocs = {}
    for name in local:
        cfg = DMonConfig(poll_interval=profile.poll_interval,
                         metric_subset=metric_subset,
                         subscribe_monitoring=name in watcher_set,
                         trace_max_samples=4096)
        dprocs[name] = Dproc(cluster[name], bus, cfg, profile.modules)
    for name in local:
        if name in watcher_set:
            for host in payload["all_names"]:
                dprocs[name].add_cluster_node(host)
    for dproc in dprocs.values():
        dproc.start()
    duration = spec.duration

    def harvest(world):
        return {"overhead": overhead_summary(
            {node.name: node.telemetry for node in world.cluster},
            sim_seconds=duration)}

    return ShardWorld(env=env, router=router, bus=bus,
                      cluster=cluster, dprocs=dprocs, harvest=harvest)


def run_sharded_once(n: int, duration: float, workers: int) -> dict:
    """Run one size on the sharded kernel; returns the JSON record.

    Two throughput figures are reported: ``events_per_second`` is
    wall-clock (what this machine delivered — on a box with fewer
    CPUs than workers the forked shards time-slice one core), and
    ``critical_path_events_per_second`` is total events over the
    longest per-shard CPU time plus coordination — the rate the same
    partition sustains once each worker has a core of its own.
    """
    profile = scale_config(n)
    names = _bench_names(n)
    watchers = tuple(names if profile.n_watchers is None
                     else names[:profile.n_watchers])
    plan = partition_nodes(names, workers)
    payload = {"profile": profile, "watchers": watchers,
               "all_names": tuple(names)}
    result = run_sharded(plan, duration, _build_bench_shard,
                         payloads=[payload] * plan.n_shards,
                         processes=True)
    events = result.events_processed
    wall = result.run_wall_seconds
    shard_cpu = [s.cpu_seconds for s in result.shards]
    critical = max(shard_cpu) + result.coordinator_cpu_seconds
    return {
        "n_nodes": n,
        "workers": plan.n_shards,
        "sim_seconds": duration,
        "setup_seconds": round(result.build_wall_seconds, 3),
        "wall_seconds": round(wall, 3),
        "events_processed": events,
        "events_per_second": round(events / wall, 1) if wall else None,
        "sim_speedup": round(duration / wall, 2) if wall else None,
        "critical_path_events_per_second":
            round(events / critical, 1) if critical else None,
        "windows": result.windows,
        "conduit_messages": result.conduit_messages,
        "lookahead": plan.lookahead,
        "shard_cpu_seconds": [round(c, 3) for c in shard_cpu],
        "coordinator_cpu_seconds":
            round(result.coordinator_cpu_seconds, 3),
        "host_cpus": os.cpu_count(),
        "forked_workers": result.processes,
        "config": {
            "poll_interval": profile.poll_interval,
            "n_watchers": profile.n_watchers,
            "metrics": list(profile.metrics),
            "modules": list(profile.modules),
        },
        "overhead": merge_overhead_summaries(
            [s.extra["overhead"] for s in result.shards
             if s.extra and "overhead" in s.extra]),
    }


def _annotate_speedups(results: list[dict]) -> None:
    """Fill speedup-vs-single-worker fields on sharded records.

    ``speedup_basis`` says which figure ``speedup`` quotes: wall
    clock when the host has a core per worker, otherwise the
    critical-path capacity (wall clock on an undersized host measures
    time-slicing, not the partition).
    """
    singles = {r["n_nodes"]: r for r in results
               if r.get("workers", 1) == 1}
    for record in results:
        workers = record.get("workers", 1)
        single = singles.get(record["n_nodes"])
        if workers <= 1 or single is None \
                or not single.get("events_per_second"):
            continue
        base = single["events_per_second"]
        wall_ratio = record["events_per_second"] / base \
            if record.get("events_per_second") else None
        cp_ratio = (record["critical_path_events_per_second"] / base
                    if record.get("critical_path_events_per_second")
                    else None)
        basis = "wall" if (os.cpu_count() or 1) >= workers \
            else "critical_path_cpu"
        record["speedup_vs_single_wall"] = \
            round(wall_ratio, 2) if wall_ratio else None
        record["speedup_vs_single_critical_path"] = \
            round(cp_ratio, 2) if cp_ratio else None
        record["speedup_basis"] = basis
        chosen = wall_ratio if basis == "wall" else cp_ratio
        record["speedup"] = round(chosen, 2) if chosen else None


def run_check(baseline_path: Path, sizes: list[int] | None,
              duration: float, tolerance: float) -> int:
    """Re-run the baseline's pinned sizes and fail on regression.

    Every single-worker baseline record (restricted to ``sizes`` when
    given) is re-run for ``duration`` simulated seconds; a recorded
    events/s that drops more than ``tolerance`` fails the check.
    Rates, not totals, are compared, so a short ``--duration`` keeps
    the gate fast.
    """
    try:
        baseline = json.loads(baseline_path.read_text())
    except FileNotFoundError:
        print(f"check: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    records = [r for r in baseline.get("results", [])
               if r.get("workers", 1) == 1
               and r.get("events_per_second")
               and (sizes is None or r["n_nodes"] in sizes)]
    if not records:
        print("check: baseline has no matching single-worker records",
              file=sys.stderr)
        return 1
    failures = 0
    print(f"== sim throughput check: tolerance {tolerance:.0%}, "
          f"baseline {baseline_path.name} ==")
    for pinned in records:
        n = pinned["n_nodes"]
        fresh = run_once(n, duration)
        base = pinned["events_per_second"]
        got = fresh["events_per_second"]
        floor = base * (1.0 - tolerance)
        ok = got >= floor
        failures += 0 if ok else 1
        print(f"  n={n:<6d} baseline {base:>10.0f} ev/s  "
              f"now {got:>10.0f} ev/s  floor {floor:>10.0f}  "
              f"{'ok' if ok else 'REGRESSION'}")
    if failures:
        print(f"check FAILED: {failures} size(s) regressed more than "
              f"{tolerance:.0%}", file=sys.stderr)
        return 1
    print("check passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulation kernel throughput benchmark")
    parser.add_argument("--sizes", type=int, nargs="+", default=None,
                        help="cluster sizes to run (default: "
                             f"{list(DEFAULT_SIZES)}; with --check, "
                             "every baseline size)")
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION,
                        help="simulated seconds per run "
                             "(default: %(default)s)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("--profile", action="store_true",
                        help="run each size under cProfile and print the "
                             "top hotspots")
    parser.add_argument("--top", type=int, default=15,
                        help="rows per hotspot table with --profile")
    parser.add_argument("--workers", type=int, nargs="+", default=[1],
                        help="worker counts to run each size at; 1 is "
                             "the plain kernel, >1 the sharded kernel "
                             "(default: %(default)s)")
    parser.add_argument("--stream", action="store_true",
                        help="attach the durable event-stream tee "
                             f"(ring-bounded at {STREAM_MAX_LEN} "
                             "entries) to single-worker runs; the "
                             "acceptance bound is within 10%% of the "
                             "tee-off rate")
    parser.add_argument("--obs", action="store_true",
                        help="attach the observability plane (TSDB "
                             "sampler + health engine) to "
                             "single-worker runs; acceptance bound "
                             "is within 5%% of the plane-off rate")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: re-run the baseline's "
                             "single-worker sizes and fail if events/s "
                             "drops more than the tolerance")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline JSON for --check "
                             "(default: the --output path)")
    parser.add_argument("--tolerance", type=float,
                        default=CHECK_TOLERANCE,
                        help="allowed fractional events/s drop for "
                             "--check (default: %(default)s)")
    args = parser.parse_args(argv)

    if args.check:
        return run_check(args.baseline or args.output, args.sizes,
                         args.duration, args.tolerance)

    sizes = args.sizes if args.sizes is not None \
        else list(DEFAULT_SIZES)
    results = []
    print(f"== sim throughput: {args.duration:g} simulated seconds ==")
    print(f"  {'nodes':>6} {'workers':>7} {'wall (s)':>9} "
          f"{'events':>10} {'events/s':>10} {'sim x':>7}")
    for n in sizes:
        for workers in args.workers:
            if workers == 1 and n > SINGLE_WORKER_MAX:
                print(f"  {n:6d} {1:7d}   skipped (sharded-only "
                      f"above n={SINGLE_WORKER_MAX})")
                continue
            if args.profile and workers == 1:
                from repro.harness.profile import profile_call
                record, report = profile_call(run_once, n,
                                              args.duration,
                                              top=args.top)
            elif workers == 1:
                record = run_once(n, args.duration,
                                  stream=args.stream, obs=args.obs)
                report = None
            else:
                record = run_sharded_once(n, args.duration, workers)
                report = None
            results.append(record)
            print(f"  {n:6d} {record.get('workers', 1):7d} "
                  f"{record['wall_seconds']:9.2f} "
                  f"{record['events_processed']:10d} "
                  f"{record['events_per_second']:10.0f} "
                  f"{record['sim_speedup']:7.1f}")
            if report is not None:
                print(report.render())
    _annotate_speedups(results)
    for record in results:
        if record.get("speedup") is not None:
            print(f"  n={record['n_nodes']} x{record['workers']}: "
                  f"{record['speedup']}x vs single worker "
                  f"({record['speedup_basis']}; wall "
                  f"{record['speedup_vs_single_wall']}x, "
                  f"critical-path "
                  f"{record['speedup_vs_single_critical_path']}x)")

    from repro.harness.benchreport import BenchReport
    report = BenchReport("sim_throughput",
                         schema_version=SCHEMA_VERSION,
                         sim_seconds=args.duration,
                         host_cpus=os.cpu_count())
    report.extend(results)
    report.write(args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
