"""Simulation-kernel throughput benchmark: events/sec vs. cluster size.

Runs a dproc-monitored cluster for a fixed span of *simulated* time at
several cluster sizes and reports how fast the kernel chews through its
event queue::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        --sizes 8 --duration 10          # CI smoke
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        --sizes 256 --profile            # where does the time go?

Results land in ``BENCH_sim_throughput.json`` (one record per size) so
successive PRs can track the perf trajectory.

The monitoring configuration is scaled with cluster size, mirroring how
a real deployment would be tuned: small clusters run the full
all-to-all exchange the paper benchmarks, while the 1000-node
configuration polls less often, publishes a single metric and routes it
to a small set of front-end subscriber nodes (dproc publishers push
only to nodes that registered interest, so an idle audience costs
nothing).  Each result records the exact configuration used.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dproc import DMonConfig, MetricId
from repro.dproc.toolkit import Dproc
from repro.kecho import KechoBus
from repro.sim import Environment, build_cluster
from repro.telemetry import overhead_summary

DEFAULT_SIZES = (8, 64, 256, 1000)
DEFAULT_DURATION = 60.0
OUTPUT = Path(__file__).resolve().parent.parent / \
    "BENCH_sim_throughput.json"


@dataclass(frozen=True)
class ScaleConfig:
    """Monitoring load profile for one cluster size."""

    poll_interval: float
    #: Nodes that subscribe to the monitoring channel (fan-in points).
    #: ``None`` means every node subscribes (full all-to-all exchange).
    n_watchers: int | None
    metrics: tuple[str, ...]
    modules: tuple[str, ...]


FULL_METRICS = ("LOADAVG", "FREEMEM", "DISKUSAGE", "NET_BANDWIDTH")
FULL_MODULES = ("cpu", "mem", "disk", "net")


def scale_config(n: int) -> ScaleConfig:
    """Pick a monitoring profile that is realistic at size ``n``."""
    if n <= 64:
        return ScaleConfig(poll_interval=1.0, n_watchers=None,
                           metrics=FULL_METRICS, modules=FULL_MODULES)
    if n <= 256:
        return ScaleConfig(poll_interval=5.0, n_watchers=16,
                           metrics=("LOADAVG", "FREEMEM"),
                           modules=("cpu", "mem"))
    return ScaleConfig(poll_interval=15.0, n_watchers=8,
                       metrics=("LOADAVG",), modules=("cpu",))


def build_monitored_cluster(n: int, profile: ScaleConfig,
                            duration: float):
    """An n-node cluster with dproc deployed per ``profile``.

    Returns ``(env, cluster)`` so callers can harvest per-node
    telemetry after the run.
    """
    env = Environment()
    cluster = build_cluster(env, nodes=n, seed=1)
    bus = KechoBus()
    metric_subset = frozenset(MetricId[name] for name in profile.metrics)
    names = cluster.names
    watcher_set = set(names if profile.n_watchers is None
                      else names[:profile.n_watchers])
    dprocs = {}
    for name in names:
        cfg = DMonConfig(poll_interval=profile.poll_interval,
                         metric_subset=metric_subset,
                         subscribe_monitoring=name in watcher_set,
                         trace_max_samples=4096)
        dprocs[name] = Dproc(cluster[name], bus, cfg, profile.modules)
    # Only the watchers need the full /proc/cluster view.
    for name in watcher_set:
        for host in names:
            dprocs[name].add_cluster_node(host)
    for dproc in dprocs.values():
        dproc.start()
    return env, cluster


def run_once(n: int, duration: float) -> dict:
    """Run one size; returns the result record for the JSON report."""
    profile = scale_config(n)
    t0 = time.perf_counter()
    env, cluster = build_monitored_cluster(n, profile, duration)
    setup_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    env.run(until=duration)
    wall = time.perf_counter() - t0

    events = env.events_processed
    return {
        "n_nodes": n,
        "sim_seconds": duration,
        "setup_seconds": round(setup_seconds, 3),
        "wall_seconds": round(wall, 3),
        "events_processed": events,
        "events_per_second": round(events / wall, 1) if wall else None,
        "sim_speedup": round(duration / wall, 2) if wall else None,
        "config": {
            "poll_interval": profile.poll_interval,
            "n_watchers": profile.n_watchers,
            "metrics": list(profile.metrics),
            "modules": list(profile.modules),
        },
        # Self-telemetry: the monitoring system's own account of what
        # it cost (CPU seconds, publishes, drops) during this run.
        "overhead": overhead_summary(
            {name: cluster[name].telemetry for name in cluster.names},
            sim_seconds=duration),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Simulation kernel throughput benchmark")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES),
                        help="cluster sizes to run (default: %(default)s)")
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION,
                        help="simulated seconds per run "
                             "(default: %(default)s)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help="JSON report path (default: %(default)s)")
    parser.add_argument("--profile", action="store_true",
                        help="run each size under cProfile and print the "
                             "top hotspots")
    parser.add_argument("--top", type=int, default=15,
                        help="rows per hotspot table with --profile")
    args = parser.parse_args(argv)

    results = []
    print(f"== sim throughput: {args.duration:g} simulated seconds ==")
    print(f"  {'nodes':>6} {'wall (s)':>9} {'events':>10} "
          f"{'events/s':>10} {'sim x':>7}")
    for n in args.sizes:
        if args.profile:
            from repro.harness.profile import profile_call
            record, report = profile_call(run_once, n, args.duration,
                                          top=args.top)
        else:
            record = run_once(n, args.duration)
        results.append(record)
        print(f"  {n:6d} {record['wall_seconds']:9.2f} "
              f"{record['events_processed']:10d} "
              f"{record['events_per_second']:10.0f} "
              f"{record['sim_speedup']:7.1f}")
        if args.profile:
            print(report.render())

    payload = {
        "benchmark": "sim_throughput",
        "sim_seconds": args.duration,
        "results": results,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
