"""Figure 4 — CPU perturbation analysis.

Paper: linpack Mflops on one node while dproc runs on 0-8 nodes, for
update periods of 1 s and 2 s and the 15 % differential filter.
Expected shape: Mflops decrease only slightly with cluster size, and
"the decrease in the measured Mflops is less accentuated in the case of
the differential filter".
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import fig4_cpu_perturbation

NODES = (0, 2, 4, 8)


def test_fig4_cpu_perturbation(benchmark):
    result = run_once(
        benchmark,
        lambda: fig4_cpu_perturbation(nodes=NODES, duration=40.0))
    period1 = result.get("update period=1s")
    period2 = result.get("update period=2s")
    differential = result.get("differential filter")

    # Baseline: the unmonitored node delivers its rated 17.4 Mflops.
    assert period1.y_at(0) > 17.3

    # Monitoring costs cycles: the 1 s period at 8 nodes is the most
    # perturbed configuration.
    assert period1.y_at(8) < period1.y_at(0)
    assert period1.y_at(8) <= period2.y_at(8) + 0.01

    # The differential filter perturbs least (the paper's headline).
    assert differential.y_at(8) >= period1.y_at(8)
    assert differential.y_at(8) >= period2.y_at(8) - 0.01

    # "decreases only slightly": even the worst case stays within a
    # few percent of the rated speed.
    assert period1.y_at(8) > 17.4 * 0.90
