"""Figure 9(b) — SmartPointer event rate vs linpack threads.

Paper: events/s processed by the client as 0-9 linpack threads run.
Expected shape: "in the dynamic filter case, the client is able to
receive and process events at the same rate at which the server sent
them" (~5/s); the static filter degrades under load; the no-filter
case performs worst.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.harness import fig9b_event_rate

THREADS = (0, 2, 4, 6, 8)


def test_fig9b_event_rate(benchmark):
    result = run_once(
        benchmark,
        lambda: fig9b_event_rate(threads=THREADS, settle=30.0,
                                 measure=50.0))
    none = result.get("no filter")
    static = result.get("static filter")
    dynamic = result.get("dynamic filter")

    # Unloaded, everyone delivers the full 5 events/s.
    for series in (none, static, dynamic):
        assert series.y_at(0) == pytest.approx(5.0, rel=0.1)

    # The dynamic filter holds the full rate at every load level.
    for y in dynamic.y:
        assert y == pytest.approx(5.0, rel=0.15)

    # No filter collapses; static sits in between.
    assert none.y_at(8) < 2.0
    assert none.y_at(8) < static.y_at(8) < dynamic.y_at(8) * 1.05

    # Rates degrade monotonically with load for the non-adaptive runs.
    assert list(none.y) == sorted(none.y, reverse=True)
