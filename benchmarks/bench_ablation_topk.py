"""Ablation — sketch-backed top-K source filtering vs the paper's knobs.

The per-process table is d-mon's highest-volume stream: every poll
ships ``n_procs`` rows of (pid, cpu, mem, io).  The paper's resource-
aware tools — update periods and thresholds — govern *scalar* metrics,
so they cannot compress the keyed firehose at all; a sketch-backed
top-K filter (count-min + bounded heap, compiled from E-code at the
publisher) replaces the table with K (pid, cumulative-weight) pairs.

Four variants of the same cluster:

* ``full``      — no customization: the whole table rides every event;
* ``period``    — update periods stretched 4x on every scalar metric
                  (the classic volume knob; keyed rows unaffected);
* ``threshold`` — 15% change-thresholds on every scalar metric
                  (the classic relevance knob; keyed rows unaffected);
* ``topk``      — a ``topk_filter(5, "cpu")`` E-code filter scoped to
                  the proc module on every publisher.

The report records per-variant event/record volume and the monitoring
system's own CPU account; the script exits non-zero unless top-K cuts
record volume by >= 5x and monitor CPU measurably below the baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_ablation_topk.py \
        --nodes 1000 --duration 30 --output BENCH_ablation_topk.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dproc import DMonConfig, topk_source  # noqa: E402
from repro.dproc.params import ChangeThreshold  # noqa: E402
from repro.dproc.toolkit import Dproc  # noqa: E402
from repro.kecho import KechoBus  # noqa: E402
from repro.sim import Environment, build_cluster  # noqa: E402
from repro.telemetry import overhead_summary  # noqa: E402

MODULES = ("cpu", "mem", "proc")
#: Report format version: 2 added ``schema_version`` and the
#: per-variant ``health`` SLO section.
SCHEMA_VERSION = 2
K = 5
PERIOD_STRETCH = 4.0
THRESHOLD_PCT = 15.0

#: The acceptance gate: top-K must cut record volume at least this much.
MIN_VOLUME_REDUCTION = 5.0


def build(n: int, poll: float, n_procs: int, watchers: int):
    env = Environment()
    cluster = build_cluster(env, nodes=n, seed=7)
    bus = KechoBus()
    names = cluster.names
    watcher_set = set(names[:watchers])
    dprocs = {}
    for name in names:
        cfg = DMonConfig(poll_interval=poll,
                         subscribe_monitoring=name in watcher_set,
                         trace_max_samples=1024)
        dprocs[name] = Dproc(cluster[name], bus, cfg, MODULES)
        dprocs[name].dmon.modules["proc"].configure("nprocs", n_procs)
    for name in watcher_set:
        for host in names:
            dprocs[name].add_cluster_node(host)
    return env, cluster, dprocs


def run_variant(variant: str, n: int, duration: float, poll: float,
                n_procs: int, watchers: int) -> dict:
    env, cluster, dprocs = build(n, poll, n_procs, watchers)
    for dproc in dprocs.values():
        dmon = dproc.dmon
        if variant == "period":
            for policy in dmon.policies.values():
                policy.set_period(poll * PERIOD_STRETCH)
        elif variant == "threshold":
            for policy in dmon.policies.values():
                policy.add_threshold(ChangeThreshold(THRESHOLD_PCT))
        elif variant == "topk":
            dmon.filters.deploy(topk_source(K, "cpu"), scope="proc",
                                filter_id="topk")
        dproc.start()

    t0 = time.perf_counter()
    env.run(until=duration)
    wall = time.perf_counter() - t0
    for node in (cluster[name] for name in cluster.names):
        node.cpu.settle()

    overhead = overhead_summary(
        {name: cluster[name].telemetry for name in cluster.names},
        sim_seconds=duration)
    from repro.obs import health_section_from_overhead
    return {
        "variant": variant,
        "wall_seconds": round(wall, 3),
        "events_published": overhead["events_published"],
        "records_published": overhead["records_published"],
        "monitor_cpu_seconds": overhead["monitor_cpu_seconds"]["total"],
        "health": health_section_from_overhead(overhead),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1000)
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--poll", type=float, default=1.0)
    parser.add_argument("--n-procs", type=int, default=24)
    parser.add_argument("--watchers", type=int, default=4)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    variants = []
    for variant in ("full", "period", "threshold", "topk"):
        record = run_variant(variant, args.nodes, args.duration,
                             args.poll, args.n_procs, args.watchers)
        variants.append(record)
        print(f"  {variant:10s} events={record['events_published']:>9.0f}"
              f" records={record['records_published']:>10.0f}"
              f" monitor_cpu={record['monitor_cpu_seconds']:.3f}s"
              f" (wall {record['wall_seconds']:.1f}s)")

    by_name = {r["variant"]: r for r in variants}
    full, topk = by_name["full"], by_name["topk"]
    volume_reduction = (full["records_published"]
                        / max(topk["records_published"], 1.0))
    cpu_reduction = (full["monitor_cpu_seconds"]
                     - topk["monitor_cpu_seconds"])
    from repro.harness.benchreport import BenchReport
    report = BenchReport(
        "ablation_topk", schema_version=SCHEMA_VERSION,
        results_key="variants",
        config={
            "n_nodes": args.nodes,
            "sim_seconds": args.duration,
            "poll_interval": args.poll,
            "n_procs": args.n_procs,
            "n_watchers": args.watchers,
            "modules": list(MODULES),
            "k": K,
            "period_stretch": PERIOD_STRETCH,
            "threshold_pct": THRESHOLD_PCT,
        })
    report.extend(variants)
    report.tail(reduction={
        "record_volume_factor": round(volume_reduction, 2),
        "monitor_cpu_seconds_saved": round(cpu_reduction, 4),
        "monitor_cpu_factor": round(
            full["monitor_cpu_seconds"]
            / max(topk["monitor_cpu_seconds"], 1e-12), 3),
    })
    print(f"  top-K vs full: {volume_reduction:.1f}x fewer records, "
          f"{cpu_reduction:.3f}s monitor CPU saved")
    if args.output:
        report.write(args.output, indent=1)
        print(f"  wrote {args.output}")

    # Acceptance gates: the point of the subsystem.
    if volume_reduction < MIN_VOLUME_REDUCTION:
        print(f"FAIL: record-volume reduction {volume_reduction:.2f}x "
              f"< {MIN_VOLUME_REDUCTION}x", file=sys.stderr)
        return 1
    if cpu_reduction <= 0:
        print("FAIL: top-K did not reduce monitor CPU",
              file=sys.stderr)
        return 1
    # The scalar-only knobs must leave the keyed stream untouched —
    # the asymmetry that motivates sketch filtering at the source.
    for scalar_knob in ("period", "threshold"):
        if by_name[scalar_knob]["records_published"] \
                <= topk["records_published"]:
            print(f"FAIL: {scalar_knob} unexpectedly beat top-K",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
