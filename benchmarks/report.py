"""Thin shim: the BENCH report builder lives in the package.

Benchmark scripts run from a checkout (``python benchmarks/bench_*``)
import ``report`` from their own directory; the implementation is
:mod:`repro.harness.benchreport` so installed users and the harness
CLI share the same builder.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.benchreport import (  # noqa: E402,F401
    SCHEMA_VERSION, BenchReport)

__all__ = ["SCHEMA_VERSION", "BenchReport"]
