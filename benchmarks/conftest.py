"""Shared plumbing for the figure-reproduction benchmarks.

Every benchmark runs one figure experiment exactly once under
pytest-benchmark (``pedantic(rounds=1)``) — the interesting output is
the regenerated series table (printed; visible with ``pytest -s`` or in
the captured output), and each bench asserts the paper's qualitative
*shape*: orderings, crossovers, rough factors.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult


def run_once(benchmark, fn) -> ExperimentResult:
    """Run ``fn`` once under the benchmark fixture and print its table."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    print()
    print(result.table())
    return result
