"""The per-node telemetry registry.

One :class:`TelemetryRegistry` lives on every simulated node
(``node.telemetry``).  Subsystems get-or-create named instruments from
it — a new module needs no pipeline changes to gain metrics, just::

    polls = node.telemetry.counter("mymod.polls")
    cost = node.telemetry.histogram("mymod.cost_seconds")

Names are dotted paths; reports group on the first component.  The
same name always returns the same instrument (asking for a different
kind under an existing name is a :class:`~repro.errors.TelemetryError`),
so instrumentation sites can bind eagerly at construction or lazily at
first use and still share state.

A registry created with ``enabled=False`` hands out shared null
instruments: every record call is a no-op, nothing is retained, and
``snapshot()`` is empty — the near-zero-cost off switch.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import TelemetryError
from repro.telemetry.instruments import (NULL_COUNTER, NULL_GAUGE,
                                         NULL_HISTOGRAM, NULL_SPANLOG,
                                         Counter, Gauge, Histogram,
                                         SpanLog)

__all__ = ["TelemetryRegistry"]

Instrument = Union[Counter, Gauge, Histogram, SpanLog]


class TelemetryRegistry:
    """Named instruments for one scope (usually one node)."""

    __slots__ = ("scope", "enabled", "max_spans", "_instruments")

    def __init__(self, scope: str = "", enabled: bool = True,
                 max_spans: int = 256) -> None:
        self.scope = scope
        self.enabled = bool(enabled)
        self.max_spans = max_spans
        self._instruments: dict[str, Instrument] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if not self.enabled:
            return NULL_COUNTER
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if not self.enabled:
            return NULL_GAUGE
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the histogram called ``name``.

        ``bounds`` applies only on first creation; later callers share
        the existing bucket layout.
        """
        if not self.enabled:
            return NULL_HISTOGRAM
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TelemetryError(
                    f"{self._label(name)} is a "
                    f"{type(existing).__name__}, not a Histogram")
            return existing
        instrument = Histogram(name, bounds=bounds)
        self._instruments[name] = instrument
        return instrument

    def spans(self, name: str) -> SpanLog:
        """Get or create the span log called ``name``."""
        if not self.enabled:
            return NULL_SPANLOG
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, SpanLog):
                raise TelemetryError(
                    f"{self._label(name)} is a "
                    f"{type(existing).__name__}, not a SpanLog")
            return existing
        instrument = SpanLog(name, max_spans=self.max_spans)
        self._instruments[name] = instrument
        return instrument

    # -- queries ---------------------------------------------------------------

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument called ``name``, or None."""
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter/gauge (``default`` if absent)."""
        instrument = self._instruments.get(name)
        if isinstance(instrument, (Counter, Gauge)):
            return instrument.value
        return default

    def names(self, prefix: str = "") -> list[str]:
        """Sorted instrument names, optionally filtered by prefix."""
        return sorted(n for n in self._instruments
                      if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """Name → instrument snapshot, sorted, optionally filtered.

        The result is plain JSON-serialisable data — this is what the
        golden-trace test pins and what the report renderers consume.
        """
        return {name: self._instruments[name].snapshot()
                for name in self.names(prefix)}

    def __len__(self) -> int:
        return len(self._instruments)

    def __bool__(self) -> bool:
        """Always truthy: an *empty* registry is still a registry
        (``__len__`` alone would make ``reg or fallback`` drop it)."""
        return True

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- internals ------------------------------------------------------------

    def _get(self, name: str, cls) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TelemetryError(
                    f"{self._label(name)} is a "
                    f"{type(existing).__name__}, not a {cls.__name__}")
            return existing
        instrument = cls(name)
        self._instruments[name] = instrument
        return instrument

    def _label(self, name: str) -> str:
        return f"instrument {self.scope + ':' if self.scope else ''}" \
               f"{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (f"<TelemetryRegistry {self.scope or '?'} {state} "
                f"{len(self._instruments)} instruments>")
