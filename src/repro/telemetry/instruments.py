"""Telemetry instruments: counters, gauges, histograms, span logs.

Design constraints (they matter more here than in an ordinary metrics
library, because the *monitoring system being measured is the product*):

* **Deterministic.**  No wall-clock reads, no RNG, no id generation —
  every timestamp is the caller-supplied simulation time.  Two seeded
  runs produce bit-identical snapshots.
* **Passive.**  Recording never schedules simulator events, charges
  CPU cost, or touches the network.  Instrumented hot paths behave
  byte-for-byte the same with telemetry on or off; the telemetry layer
  only *observes* costs other layers already compute.
* **Bounded.**  Histograms are fixed-size bucket arrays and span logs
  are bounded deques, so day-long large-cluster runs cannot grow
  telemetry state without bound.

Disabled mode: the ``Null*`` singletons share each instrument's
interface but drop every record, so a registry created with
``enabled=False`` costs one attribute lookup and a no-op call per
instrumentation site.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.telemetry.ordering import check_interval, freeze_attrs

__all__ = ["Counter", "Gauge", "Histogram", "Span", "SpanLog",
           "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM",
           "NULL_SPANLOG", "DEFAULT_LATENCY_BOUNDS"]

#: Default histogram bucket upper bounds (seconds): spans microseconds
#: (kernel costs) through tens of seconds (WAN backoff), log-spaced.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Counter:
    """A monotonically increasing total (events, seconds, bytes)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        #: Number of ``inc`` calls (lets reports derive per-event means).
        self.updates = 0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} can only increase "
                f"(got {amount!r})")
        self.value += amount
        self.updates += 1

    @property
    def mean(self) -> float:
        """Mean increment per update (NaN before the first update)."""
        if self.updates == 0:
            return math.nan
        return self.value / self.updates

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value,
                "updates": self.updates}


class Gauge:
    """A value that can move both ways (queue depth, in-flight count).

    Tracks the running extremes so a report can show the high-water
    mark without retaining a sample series.
    """

    __slots__ = ("name", "value", "high", "low", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high = -math.inf
        self.low = math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value > self.high:
            self.high = value
        if value < self.low:
            self.low = value

    def adjust(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value,
                "high": (None if self.updates == 0 else self.high),
                "low": (None if self.updates == 0 else self.low),
                "updates": self.updates}


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above the last edge.  NaN
    observations are counted separately (never silently dropped, never
    corrupting the sums — the same policy :func:`repro.analysis.stats.
    histogram` applies to offline series).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max", "nan_count")

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        edges = tuple(float(b) for b in
                      (DEFAULT_LATENCY_BOUNDS if bounds is None
                       else bounds))
        if not edges:
            raise ValueError(
                f"histogram {name!r} needs at least one bound")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} bounds must strictly increase")
        self.name = name
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)   # + overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.nan_count = 0

    def observe(self, value: float) -> None:
        if value != value:  # NaN
            self.nan_count += 1
            return
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of non-NaN observations (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0..1) from the bucket upper edges.

        Returns NaN when empty; values in the overflow bucket report
        the last finite edge (the histogram cannot see past it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": self.count,
                "total": self.total, "mean": self.mean,
                "min": (None if self.count == 0 else self.min),
                "max": (None if self.count == 0 else self.max),
                "nan_count": self.nan_count,
                "bounds": list(self.bounds),
                "counts": list(self.counts)}


@dataclass(frozen=True)
class Span:
    """One traced interval of simulated time."""

    name: str
    start: float
    end: float
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def snapshot(self) -> dict:
        return {"name": self.name, "start": self.start,
                "end": self.end, "attrs": dict(self.attrs)}


class SpanLog:
    """Bounded log of :class:`Span` records (most recent kept)."""

    __slots__ = ("name", "spans", "recorded")

    def __init__(self, name: str, max_spans: int = 256) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.name = name
        self.spans: deque[Span] = deque(maxlen=max_spans)
        #: Total spans ever recorded (including evicted ones).
        self.recorded = 0

    def record(self, name: str, start: float, end: float,
               **attrs: object) -> Span:
        # Interval validation and attribute normalisation are shared
        # with the causal-trace collector (repro.telemetry.ordering),
        # so SpanLog and TraceCollector agree on span semantics.
        check_interval(name, start, end)
        span = Span(name=name, start=start, end=end,
                    attrs=freeze_attrs(attrs))
        self.spans.append(span)
        self.recorded += 1
        return span

    def __len__(self) -> int:
        return len(self.spans)

    def snapshot(self) -> dict:
        return {"type": "spans", "recorded": self.recorded,
                "retained": len(self.spans),
                "spans": [s.snapshot() for s in self.spans]}


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()
    name = "<disabled>"
    value = 0.0
    updates = 0
    mean = math.nan

    def inc(self, amount: float = 1.0) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - never registered
        return {"type": "counter", "value": 0.0, "updates": 0}


class _NullGauge:
    __slots__ = ()
    name = "<disabled>"
    value = 0.0
    high = -math.inf
    low = math.inf
    updates = 0

    def set(self, value: float) -> None:
        pass

    def adjust(self, delta: float) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - never registered
        return {"type": "gauge", "value": 0.0, "high": None,
                "low": None, "updates": 0}


class _NullHistogram:
    __slots__ = ()
    name = "<disabled>"
    bounds = DEFAULT_LATENCY_BOUNDS
    count = 0
    total = 0.0
    mean = math.nan
    nan_count = 0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan

    def snapshot(self) -> dict:  # pragma: no cover - never registered
        return {"type": "histogram", "count": 0, "total": 0.0,
                "mean": math.nan, "min": None, "max": None,
                "nan_count": 0, "bounds": list(self.bounds),
                "counts": [0] * (len(self.bounds) + 1)}


class _NullSpanLog:
    __slots__ = ()
    name = "<disabled>"
    recorded = 0

    def record(self, name: str, start: float, end: float,
               **attrs: object) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:  # pragma: no cover - never registered
        return {"type": "spans", "recorded": 0, "retained": 0,
                "spans": []}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_SPANLOG = _NullSpanLog()
