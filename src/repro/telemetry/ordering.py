"""Shared span bookkeeping: interval validation, attrs, ordering.

Two subsystems record spans of simulated time: the per-node telemetry
:class:`~repro.telemetry.instruments.SpanLog` (aggregate
instrumentation) and the cluster-wide
:class:`~repro.tracing.TraceCollector` (causal traces).  They must
agree on what a valid interval is, how attributes are normalised, and
how spans that share a timestamp are ordered — otherwise the same
instant can render in two different orders depending on which log you
read.  This module is that single source of truth; both layers import
it instead of keeping private copies.

The ordering contract: spans sort by *(start, end, arrival sequence)*.
Open spans (``end is None``) sort after every completed span that
started at the same time — a span still in flight is, by definition,
the later story.  Ties fall back to arrival order, which both layers
track as a plain per-log monotonic counter (``SpanLog.recorded``, the
collector's span-id counter) — deterministic because the simulation
itself is.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

__all__ = ["check_interval", "freeze_attrs", "span_sort_key"]


def check_interval(name: str, start: float, end: float) -> None:
    """Validate one recorded interval; raises ``ValueError`` on misuse.

    A span may be instantaneous (``end == start``) but never reversed,
    and its endpoints must be real timestamps, not NaN.
    """
    if math.isnan(start) or math.isnan(end):
        raise ValueError(
            f"span {name!r} has a NaN endpoint "
            f"(start={start!r}, end={end!r})")
    if end < start:
        raise ValueError(
            f"span {name!r} ends ({end}) before it starts "
            f"({start})")


def freeze_attrs(attrs: Mapping[str, object]) -> tuple:
    """Normalise span attributes to a sorted, hashable tuple.

    Sorting by key makes two spans with the same attributes compare
    (and serialise) identically no matter the call-site keyword order.
    """
    return tuple(sorted(attrs.items()))


def span_sort_key(start: float, end: Optional[float],
                  seq: int) -> tuple[float, float, int]:
    """Stable sort key for spans: (start, end, arrival sequence).

    ``end=None`` (a still-open span) sorts after any finished span with
    the same start.
    """
    return (start, math.inf if end is None else end, seq)
