"""Self-telemetry for the dproc reproduction.

The paper's core argument is that monitoring must be *resource-aware*:
dproc quantifies its own perturbation (CPU and network overhead of
d-mon polling, KECho submission, E-code filtering) before trusting its
adaptation decisions.  This package is that introspection layer:

* :mod:`repro.telemetry.instruments` — deterministic, sim-clock-based
  counters, gauges, fixed-bucket histograms and span logs;
* :mod:`repro.telemetry.registry` — the per-node
  :class:`TelemetryRegistry` (``node.telemetry``) from which any module
  get-or-creates named instruments without pipeline changes;
* :mod:`repro.telemetry.report` — text rendering for the dogfooded
  ``/proc/cluster/<node>/dproc/...`` files and the ``overhead``
  section of the benchmark JSON reports.

Instrumentation is passive (never schedules events, charges CPU, or
draws randomness) so seeded traces are bit-identical with telemetry on
or off; a registry created with ``enabled=False`` degenerates to
shared no-op instruments.
"""

from repro.telemetry.instruments import (Counter, Gauge, Histogram,
                                         Span, SpanLog,
                                         DEFAULT_LATENCY_BOUNDS)
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.report import (MONITOR_CPU_COUNTERS,
                                    merge_overhead_summaries,
                                    overhead_summary, render_json,
                                    render_text,
                                    zero_overhead_summary)

__all__ = [
    "Counter", "Gauge", "Histogram", "Span", "SpanLog",
    "DEFAULT_LATENCY_BOUNDS", "TelemetryRegistry",
    "MONITOR_CPU_COUNTERS", "merge_overhead_summaries",
    "overhead_summary", "render_json",
    "render_text", "zero_overhead_summary",
]
