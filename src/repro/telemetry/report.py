"""Telemetry rendering: text for procfs, JSON for benchmark reports.

Two consumers share this module:

* the dproc procfs files (``/proc/cluster/<node>/dproc/...``) render a
  registry (or a prefix of it) as stable ``key: value`` text;
* the benchmarks render a whole cluster's registries into the
  ``overhead`` section of their ``BENCH_*.json`` — the paper's
  monitoring-perturbation measurement, produced by the monitoring
  system about itself.

Everything here is read-only over registry snapshots; rendering a
report never mutates telemetry state.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.telemetry.instruments import Counter, Gauge, Histogram, SpanLog
from repro.telemetry.registry import TelemetryRegistry

__all__ = ["render_text", "render_json", "overhead_summary",
           "zero_overhead_summary", "merge_overhead_summaries",
           "MONITOR_CPU_COUNTERS"]

#: Registry counters (seconds) that together make up a node's
#: monitoring CPU overhead — the quantity the paper's Figures 4-8
#: measure from outside and this subsystem measures from inside.
MONITOR_CPU_COUNTERS: tuple[str, ...] = (
    "dmon.collect_seconds",
    "dmon.filter_seconds",
    "dmon.param_seconds",
    "dmon.submit_seconds",
    "dmon.receive_seconds",
)


def _fmt(value: float) -> str:
    if value != value:
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_text(registry: TelemetryRegistry, prefix: str = "") -> str:
    """Render a registry (or a name-prefix slice) as ``key: value`` text.

    Counters show total (and mean per update where meaningful), gauges
    show current/high, histograms show count/mean/p50/p99/max.  Span
    logs are summarised, not dumped — procfs files stay small.
    """
    lines: list[str] = []
    for name in registry.names(prefix):
        instrument = registry.get(name)
        if isinstance(instrument, Counter):
            lines.append(f"{name}: {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            high = instrument.high if instrument.updates else math.nan
            lines.append(f"{name}: {_fmt(instrument.value)} "
                         f"(high {_fmt(high)})")
        elif isinstance(instrument, Histogram):
            lines.append(
                f"{name}: count={instrument.count} "
                f"mean={_fmt(instrument.mean)} "
                f"p50={_fmt(instrument.quantile(0.5))} "
                f"p99={_fmt(instrument.quantile(0.99))} "
                f"max={_fmt(instrument.max if instrument.count else math.nan)}")
        elif isinstance(instrument, SpanLog):
            lines.append(f"{name}: recorded={instrument.recorded} "
                         f"retained={len(instrument)}")
    return "".join(f"{line}\n" for line in lines)


def render_json(registry: TelemetryRegistry,
                prefix: str = "") -> dict[str, dict]:
    """JSON-serialisable snapshot of a registry slice."""
    return registry.snapshot(prefix)


def _total(registries: Mapping[str, TelemetryRegistry],
           name: str) -> float:
    return sum(r.value(name) for r in registries.values())


def overhead_summary(registries: Mapping[str, TelemetryRegistry],
                     sim_seconds: float) -> dict:
    """Cluster-wide monitoring-overhead section for ``BENCH_*.json``.

    ``registries`` maps node name → that node's telemetry registry;
    ``sim_seconds`` is the monitored span, used to express the CPU
    overhead as a fraction of total node time (the paper's
    perturbation framing).
    """
    if sim_seconds <= 0:
        raise ValueError("sim_seconds must be positive")
    n = len(registries)
    components = {name.split(".", 1)[1]: _total(registries, name)
                  for name in MONITOR_CPU_COUNTERS}
    per_node = {node: sum(reg.value(name)
                          for name in MONITOR_CPU_COUNTERS)
                for node, reg in registries.items()}
    total_cpu = sum(per_node.values())
    busiest = max(per_node, key=per_node.get) if per_node else None
    return {
        "source": "repro.telemetry",
        "n_nodes": n,
        "sim_seconds": sim_seconds,
        "polls": _total(registries, "dmon.polls"),
        "events_published": _total(registries, "dmon.events_published"),
        "records_published": _total(registries,
                                    "dmon.records_published"),
        "monitor_cpu_seconds": {
            "total": total_cpu,
            "per_node_mean": (total_cpu / n) if n else 0.0,
            "busiest_node": busiest,
            "busiest_node_seconds": per_node.get(busiest, 0.0)
            if busiest is not None else 0.0,
            "components": components,
        },
        "cpu_fraction_of_node_time":
            (total_cpu / (n * sim_seconds)) if n else 0.0,
        "network": {
            "drops_fault": _total(registries, "net.drops_fault"),
            "drops_congestion": _total(registries,
                                       "net.drops_congestion"),
            "retransmissions": _total(registries,
                                      "net.retransmissions"),
            "wan_retries": _total(registries, "wan.retries"),
            "wan_backoff_seconds": _total(registries,
                                          "wan.backoff_seconds"),
        },
    }


def zero_overhead_summary(sim_seconds: float = 0.0) -> dict:
    """A well-formed all-zero summary (no nodes, nothing measured).

    The shape every consumer of :func:`overhead_summary` expects, so
    empty merges and not-yet-run benchmarks degrade to zeros instead
    of KeyErrors downstream.
    """
    return {
        "source": "repro.telemetry",
        "n_nodes": 0,
        "sim_seconds": sim_seconds,
        "polls": 0.0,
        "events_published": 0.0,
        "records_published": 0.0,
        "monitor_cpu_seconds": {
            "total": 0.0,
            "per_node_mean": 0.0,
            "busiest_node": None,
            "busiest_node_seconds": 0.0,
            "components": {name.split(".", 1)[1]: 0.0
                           for name in MONITOR_CPU_COUNTERS},
        },
        "cpu_fraction_of_node_time": 0.0,
        "network": {
            "drops_fault": 0.0,
            "drops_congestion": 0.0,
            "retransmissions": 0.0,
            "wan_retries": 0.0,
            "wan_backoff_seconds": 0.0,
        },
    }


def merge_overhead_summaries(summaries) -> dict:
    """Combine per-shard :func:`overhead_summary` dicts into one.

    The sharded runtime harvests one summary per worker (each covering
    that shard's nodes over the same simulated span); merging sums the
    extensive quantities, recomputes the means, and picks the busiest
    node across all shards.  An empty input merges to
    :func:`zero_overhead_summary`; mismatched ``sim_seconds`` raise
    :class:`ValueError`.
    """
    summaries = [s for s in summaries if s]
    if not summaries:
        return zero_overhead_summary()
    sim_seconds = summaries[0]["sim_seconds"]
    for s in summaries[1:]:
        if s["sim_seconds"] != sim_seconds:
            raise ValueError(
                "cannot merge overhead summaries over different "
                f"spans: {s['sim_seconds']} != {sim_seconds}")
    n = sum(s["n_nodes"] for s in summaries)
    components = {
        key: sum(s["monitor_cpu_seconds"]["components"][key]
                 for s in summaries)
        for key in summaries[0]["monitor_cpu_seconds"]["components"]}
    total_cpu = sum(s["monitor_cpu_seconds"]["total"]
                    for s in summaries)
    busiest = max(
        (s["monitor_cpu_seconds"] for s in summaries
         if s["monitor_cpu_seconds"]["busiest_node"] is not None),
        key=lambda m: m["busiest_node_seconds"], default=None)
    return {
        "source": "repro.telemetry",
        "n_nodes": n,
        "sim_seconds": sim_seconds,
        "polls": sum(s["polls"] for s in summaries),
        "events_published": sum(s["events_published"]
                                for s in summaries),
        "records_published": sum(s["records_published"]
                                 for s in summaries),
        "monitor_cpu_seconds": {
            "total": total_cpu,
            "per_node_mean": (total_cpu / n) if n else 0.0,
            "busiest_node": busiest["busiest_node"]
            if busiest is not None else None,
            "busiest_node_seconds": busiest["busiest_node_seconds"]
            if busiest is not None else 0.0,
            "components": components,
        },
        "cpu_fraction_of_node_time":
            (total_cpu / (n * sim_seconds)) if n else 0.0,
        "network": {
            key: sum(s["network"][key] for s in summaries)
            for key in summaries[0]["network"]},
    }
