"""Iperf-like bandwidth measurement and perturbation tool.

Two modes, matching the paper's two uses:

* **measure** (:class:`IperfMeasure`, Figure 5) — a greedy UDP sender
  whose pacing is CPU-bound, like real iperf pushing ~96 Mbps on a
  Pentium Pro: every chunk costs kernel+user CPU to produce, then is
  fired into the network without waiting.  Achieved bandwidth therefore
  drops when monitoring steals cycles on either endpoint.
* **perturb** (:class:`IperfPerturb`, Figures 10-11) — a paced
  open-loop UDP flood at a configured rate, used purely to take
  bandwidth away from a link ("generating continuous streams of UDP
  packets").
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.network import FixedFlowHandle
from repro.sim.node import Node
from repro.sim.trace import CounterTrace
from repro.sim.transport import Protocol
from repro.units import KB, mbps, to_mbps

__all__ = ["IperfMeasure", "IperfPerturb"]

#: Chunk size for the CPU-paced sender.
CHUNK_BYTES = KB(64)

#: CPU-limited peak send rate (bytes/s): real iperf on the paper's
#: hardware tops out just under the 100 Mbps wire rate.
CPU_LIMITED_RATE = mbps(96.5)


class IperfMeasure:
    """Greedy, CPU-paced UDP throughput measurement between two nodes."""

    def __init__(self, sender: Node, receiver: Node) -> None:
        if sender is receiver:
            raise SimulationError("iperf needs two distinct nodes")
        self.sender = sender
        self.receiver = receiver
        self.running = False
        self.received = CounterTrace(
            f"iperf:{sender.name}->{receiver.name}")
        self.started_at: float | None = None
        self._conn = sender.stack.connect(receiver.name,
                                          tag="iperf-data",
                                          proto=Protocol.UDP)
        receiver.stack.bind("iperf-data", self._on_chunk)
        # Mflop of user CPU per chunk such that an otherwise idle
        # single-CPU node paces at CPU_LIMITED_RATE.
        seconds_per_chunk = CHUNK_BYTES / CPU_LIMITED_RATE
        self._work_per_chunk = seconds_per_chunk \
            * sender.config.mflops_per_cpu

    def start(self) -> "IperfMeasure":
        if self.running:
            raise SimulationError("iperf already running")
        self.running = True
        self.started_at = self.sender.env.now
        self.sender.spawn(self._send_loop(), name="iperf-send")
        return self

    def stop(self) -> None:
        self.running = False

    def _send_loop(self):
        while self.running:
            # Produce the chunk (CPU-bound), then fire and forget.
            yield self.sender.cpu.execute(self._work_per_chunk,
                                          name="iperf")
            try:
                self._conn.send(None, size=CHUNK_BYTES)
            except Exception:
                pass  # UDP: losses already counted by the connection

    def _on_chunk(self, msg) -> None:
        self.received.add(self.receiver.env.now, msg.size)

    # -- results ---------------------------------------------------------------

    def bandwidth_mbps(self, since: float | None = None,
                       until: float | None = None) -> float:
        """Measured received throughput in Mbps over a window."""
        if self.started_at is None:
            raise SimulationError("iperf never started")
        t0 = self.started_at if since is None else since
        t1 = self.sender.env.now if until is None else until
        if t1 <= t0:
            raise SimulationError("empty measurement window")
        return to_mbps(self.received.count_between(t0, t1) / (t1 - t0))


class IperfPerturb:
    """Open-loop UDP flood at a fixed offered rate (perturbation)."""

    def __init__(self, sender: Node, receiver: Node,
                 rate_mbps: float) -> None:
        if rate_mbps <= 0:
            raise SimulationError("perturbation rate must be positive")
        self.sender = sender
        self.receiver = receiver
        self.rate_mbps = float(rate_mbps)
        self._handle: FixedFlowHandle | None = None

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.closed

    def start(self) -> "IperfPerturb":
        if self.running:
            raise SimulationError("perturbation already running")
        fabric = self.sender.stack.fabric
        self._handle = fabric.open_fixed_flow(
            self.sender.name, self.receiver.name, mbps(self.rate_mbps),
            name=f"iperf-perturb:{self.rate_mbps:g}Mbps")
        return self

    def set_rate(self, rate_mbps: float) -> None:
        """Adjust the offered rate in place."""
        if not self.running:
            raise SimulationError("perturbation not running")
        if rate_mbps <= 0:
            raise SimulationError("perturbation rate must be positive")
        self.rate_mbps = float(rate_mbps)
        assert self._handle is not None
        self._handle.set_demand(mbps(rate_mbps))

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.close()

    @property
    def achieved_mbps(self) -> float:
        """Rate the network is actually carrying."""
        if self._handle is None:
            return 0.0
        return to_mbps(self._handle.rate)
