"""Workload generators used by the paper's evaluation."""

from repro.workloads.ambient import AmbientActivity
from repro.workloads.iperf import IperfMeasure, IperfPerturb
from repro.workloads.linpack import Linpack

__all__ = ["AmbientActivity", "IperfMeasure", "IperfPerturb", "Linpack"]
