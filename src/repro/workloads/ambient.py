"""Ambient background activity for realistic, fluctuating metrics.

The differential filter and threshold experiments need metrics that
actually move.  :class:`AmbientActivity` runs a gentle mix of CPU
bursts, disk flushes and memory churn with deterministic (seeded)
randomness; intensity 0 disables it.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.node import Node
from repro.units import KB, MB

__all__ = ["AmbientActivity"]


class AmbientActivity:
    """Seeded low-level background load on one node."""

    def __init__(self, node: Node, intensity: float = 1.0) -> None:
        """``intensity`` scales both event rates and sizes (0 disables,
        1 is a lightly loaded workstation)."""
        if intensity < 0:
            raise SimulationError("intensity cannot be negative")
        self.node = node
        self.intensity = float(intensity)
        self.running = False
        self._rng = node.rng

    def start(self) -> "AmbientActivity":
        if self.running:
            raise SimulationError("ambient activity already running")
        if self.intensity == 0:
            return self
        self.running = True
        self.node.spawn(self._cpu_loop(), name="ambient-cpu")
        self.node.spawn(self._disk_loop(), name="ambient-disk")
        self.node.spawn(self._memory_loop(), name="ambient-mem")
        return self

    def stop(self) -> None:
        self.running = False

    def _cpu_loop(self):
        env = self.node.env
        while self.running:
            gap = float(self._rng.exponential(4.0 / self.intensity))
            yield env.timeout(max(0.05, gap))
            burst = float(self._rng.uniform(0.05, 0.4)) * self.intensity
            yield self.node.cpu.execute(burst, name="ambient")

    def _disk_loop(self):
        env = self.node.env
        while self.running:
            gap = float(self._rng.exponential(6.0 / self.intensity))
            yield env.timeout(max(0.1, gap))
            size = float(self._rng.uniform(KB(4), KB(64)))
            yield self.node.disk.write(size * self.intensity)

    def _memory_loop(self):
        env = self.node.env
        live = []
        while self.running:
            gap = float(self._rng.exponential(8.0 / self.intensity))
            yield env.timeout(max(0.1, gap))
            if live and self._rng.random() < 0.5:
                live.pop(int(self._rng.integers(len(live)))).free()
            else:
                size = float(self._rng.uniform(MB(0.5), MB(4)))
                size *= self.intensity
                if size < self.node.memory.free_bytes * 0.5:
                    live.append(self.node.memory.allocate(
                        size, tag="ambient"))
