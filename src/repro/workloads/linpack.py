"""Linpack-like CPU benchmark.

"Linpack is a CPU-intensive benchmark commonly used to measure the
floating point computation power of CPUs in Mflops.  We measure the
change in linpack performance by running dproc on 0-8 nodes in the
cluster and running linpack on one of them." (paper §4.1)

The simulated linpack is a single-threaded job that repeatedly solves
fixed-size "panels" (blocks of Mflop) on the node's CPU and reports the
achieved Mflop/s — any kernel monitoring work on the same node steals
cycles and lowers the score, exactly the Figure 4 mechanism.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.node import Node
from repro.sim.trace import CounterTrace

__all__ = ["Linpack"]


class Linpack:
    """A single linpack thread on one node."""

    def __init__(self, node: Node, block_mflop: float = 1.74) -> None:
        """``block_mflop`` is the work per solved panel (~0.1 s each
        on the paper's 17.4 Mflops machines)."""
        if block_mflop <= 0:
            raise SimulationError("block size must be positive")
        self.node = node
        self.block_mflop = float(block_mflop)
        self.running = False
        self.completed = CounterTrace(f"{node.name}:linpack-mflop")
        self.started_at: float | None = None
        self.stopped_at: float | None = None
        self._proc = None

    def start(self) -> "Linpack":
        """Begin crunching; returns self for chaining."""
        if self.running:
            raise SimulationError("linpack already running")
        self.running = True
        self.started_at = self.node.env.now
        self._proc = self.node.spawn(self._loop(), name="linpack")
        return self

    def stop(self) -> None:
        self.running = False
        self.stopped_at = self.node.env.now

    def _loop(self):
        env = self.node.env
        while self.running:
            yield self.node.cpu.execute(self.block_mflop, name="linpack")
            self.completed.add(env.now, self.block_mflop)

    # -- results ---------------------------------------------------------------

    def mflops(self, since: float | None = None,
               until: float | None = None) -> float:
        """Achieved Mflop/s over a window (default: whole run)."""
        if self.started_at is None:
            raise SimulationError("linpack never started")
        t0 = self.started_at if since is None else since
        t1 = self.node.env.now if until is None else until
        if self.stopped_at is not None:
            t1 = min(t1, self.stopped_at)
        if t1 <= t0:
            raise SimulationError("empty measurement window")
        return self.completed.count_between(t0, t1) / (t1 - t0)
