"""Control-channel message types.

dproc uses *two* channels (paper, §2): a monitoring channel for data
and a control channel for customization.  Control messages carry
parameter changes and dynamic filter strings to remote d-mon modules.

Messages are addressed to one host or broadcast (`target=None`); every
d-mon subscribes to the control channel and ignores messages not
addressed to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ControlMessage", "SetParameter", "ClearParameter",
           "DeployFilter", "RemoveFilter", "control_message_size"]

#: Fixed framing overhead of a control message in bytes.
_HEADER_BYTES = 48


@dataclass(frozen=True)
class ControlMessage:
    """Base class: ``target`` is a host name or None for broadcast."""

    sender: str
    target: Optional[str] = None

    def addressed_to(self, host: str) -> bool:
        return self.target is None or self.target == host


@dataclass(frozen=True)
class SetParameter(ControlMessage):
    """Set a monitoring parameter at the target d-mon.

    ``metric`` may name one resource ("cpu", "net", ...) or "*" for all
    resources together, as the paper's control files allow.
    """

    metric: str = "*"
    parameter: str = "period"   # 'period' | 'threshold'
    spec: str = ""              # textual parameter spec

    def body_text(self) -> str:
        return f"{self.metric} {self.parameter} {self.spec}"


@dataclass(frozen=True)
class ClearParameter(ControlMessage):
    """Remove a previously set parameter."""

    metric: str = "*"
    parameter: str = "period"

    def body_text(self) -> str:
        return f"{self.metric} {self.parameter}"


@dataclass(frozen=True)
class DeployFilter(ControlMessage):
    """Ship an E-code filter source string for dynamic compilation."""

    metric: str = "*"
    source: str = ""
    filter_id: str = ""

    def body_text(self) -> str:
        return self.source


@dataclass(frozen=True)
class RemoveFilter(ControlMessage):
    """Tear down a previously deployed filter."""

    filter_id: str = ""

    def body_text(self) -> str:
        return self.filter_id


def control_message_size(msg: ControlMessage) -> float:
    """Encoded size of a control message in bytes."""
    return float(_HEADER_BYTES + len(msg.body_text().encode("utf-8")))
