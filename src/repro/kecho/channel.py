"""KECho channels: kernel-level publish/subscribe over the fabric.

The paper's KECho provides direct kernel-kernel communication: every
node's kernel connects to a channel; ``submit`` pushes an event from
the publisher's kernel straight to every subscriber's kernel with no
central collection point.  Here a :class:`KechoBus` wires per-node
:class:`ChannelEndpoint` objects over the simulated transport.

Cost accounting mirrors the paper's ``rdtsc`` measurements: every
``submit`` returns a :class:`SubmitReceipt` with the kernel CPU seconds
spent encoding and pushing the event (the quantity plotted in Figures
6-7), and endpoints accumulate the receive-path cost (Figure 8).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ChannelError
from repro.kecho.event import ChannelEvent
from repro.kecho.registry import ChannelInfo, ChannelRegistry
from repro.runtime.protocol import Completion, RuntimeNode
from repro.runtime.series import CounterTrace

__all__ = ["KechoBus", "ChannelEndpoint", "Subscription", "SubmitReceipt"]

Handler = Callable[[ChannelEvent], None]

_sub_ids = itertools.count(1)


@dataclass
class Subscription:
    """Handle for one registered handler on one endpoint."""

    sid: int
    endpoint: "ChannelEndpoint"
    handler: Handler
    active: bool = True

    def cancel(self) -> None:
        if self.active:
            self.endpoint._drop_subscription(self)
            self.active = False


@dataclass
class SubmitReceipt:
    """Accounting for one submit call (the paper's cycle counts)."""

    event: ChannelEvent
    #: Kernel CPU seconds spent on this submission (encode + sends).
    cpu_seconds: float
    #: Remote subscriber hosts the event was pushed to.
    remote_targets: list[str]
    #: Per-target delivery completions (for tests / synchronisation).
    deliveries: list[Completion] = field(default_factory=list)
    #: Targets whose delivery failed (filled in as the simulation runs:
    #: a crashed/partitioned subscriber lands here instead of raising
    #: into the publisher — the submit itself always completes).
    failed_targets: list[str] = field(default_factory=list)

    @property
    def delivered_targets(self) -> list[str]:
        """Remote targets not (yet) known to have failed.

        ``failed_targets`` may legitimately list a host more than once
        (retried submits share a receipt in some harnesses), so
        membership is checked against a set: O(n + m) instead of an
        O(n·m) list scan per call on the submit hot path, and a
        twice-failed target is excluded exactly once.
        """
        failed = set(self.failed_targets)
        return [t for t in self.remote_targets if t not in failed]


class ChannelEndpoint:
    """One node's kernel-level attachment to a channel."""

    def __init__(self, bus: "KechoBus", node: RuntimeNode,
                 info: ChannelInfo) -> None:
        self.bus = bus
        self.node = node
        self.info = info
        self.subscriptions: list[Subscription] = []
        self.closed = False
        self._tag = f"kecho:{info.name}"
        self._conns: dict[str, Any] = {}
        # observability ---------------------------------------------------
        self.submitted = CounterTrace(f"{node.name}:{info.name}:submits")
        self.received = CounterTrace(f"{node.name}:{info.name}:receives")
        self.bytes_out = CounterTrace(f"{node.name}:{info.name}:tx")
        self.bytes_in = CounterTrace(f"{node.name}:{info.name}:rx")
        #: Cumulative receive-path kernel CPU seconds (Figure 8 metric).
        self.receive_cpu_seconds = 0.0
        # self-telemetry (bound once; no-ops when the node disables it)
        telemetry = node.telemetry
        base = f"kecho.{info.name}"
        self._t_submits = telemetry.counter(f"{base}.submits")
        self._t_submit_seconds = telemetry.counter(
            f"{base}.submit_seconds")
        self._t_fanout = telemetry.histogram(
            f"{base}.fanout", bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256))
        self._t_delivery_seconds = telemetry.histogram(
            f"{base}.delivery_seconds")
        self._t_receives = telemetry.counter(f"{base}.receives")
        self._t_failed = telemetry.counter(f"{base}.failed_deliveries")
        self._t_tx_bytes = telemetry.counter(f"{base}.tx_bytes")
        self._t_rx_bytes = telemetry.counter(f"{base}.rx_bytes")
        node.stack.bind(self._tag, self._on_message)

    # -- subscription ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def is_subscriber(self) -> bool:
        return bool(self.subscriptions)

    def subscribe(self, handler: Handler) -> Subscription:
        """Register a handler; the node becomes a sink for this channel.

        Per the paper, "the exchange of data is triggered only when an
        application registers interest" — publishers push only to nodes
        with at least one live subscription.
        """
        self._ensure_open()
        sub = Subscription(sid=next(_sub_ids), endpoint=self,
                           handler=handler)
        self.subscriptions.append(sub)
        if len(self.subscriptions) == 1:
            self.bus._subscriptions_changed()
        return sub

    def _drop_subscription(self, sub: Subscription) -> None:
        try:
            self.subscriptions.remove(sub)
        except ValueError:
            raise ChannelError("subscription is not active") from None
        if not self.subscriptions:
            self.bus._subscriptions_changed()

    # -- publication ---------------------------------------------------------------

    def submit(self, payload: Any, size: float,
               attributes: Optional[dict[str, Any]] = None,
               trace: Optional[Any] = None) -> SubmitReceipt:
        """Publish an event to every subscriber on the channel.

        Local subscribers are dispatched synchronously (kernel upcall);
        remote subscribers receive the event over the network.  Kernel
        CPU for encoding and per-subscriber pushes is charged to this
        node and reported in the receipt.

        ``trace`` (a :class:`repro.tracing.TraceContext`) threads a
        causal trace through the channel: the submit records a span,
        the event carries its context, and every transport hop and
        delivery parents under it.
        """
        self._ensure_open()
        if size <= 0:
            raise ChannelError("event size must be positive")
        now = self.node.env.now
        event = ChannelEvent(channel=self.name, source=self.node.name,
                             payload=payload, size=float(size),
                             attributes=dict(attributes or {}),
                             submitted_at=now)
        costs = self.node.costs
        cpu = costs.encode_cost(size)
        targets = self.bus.remote_subscribers(self.name, self.node.name)
        cpu += costs.send_cost(size, len(targets))
        tspan = None
        if trace is not None:
            tspan = self.node.tracer.start_span(
                trace, name=f"submit:{self.name}", stage="kecho",
                node=self.node.name, start=now, channel=self.name,
                size=float(size), fanout=len(targets))
            if tspan is not None:
                event.trace = tspan.context
        self.node.charge_kernel_seconds(cpu)
        self.submitted.add(now, 1.0)
        self.bytes_out.add(now, size * len(targets))
        self._t_submits.inc()
        self._t_submit_seconds.inc(cpu)
        self._t_fanout.observe(len(targets))
        self._t_tx_bytes.inc(size * len(targets))
        # Durable-stream tee (passive: no RNG, no CPU charge, no
        # scheduled events — the event schedule is bit-identical with
        # the broker on or off).
        broker = self.bus.stream
        if broker is not None:
            local_ep = self.bus.endpoint(self.name, self.node.name)
            broker.record_submit(
                event, targets,
                local=(local_ep is self and self.is_subscriber))

        deliveries: list[Completion] = []
        failed: list[str] = []
        if targets:
            stack = self.node.stack
            conns = [self._connection_to(host) for host in targets]
            send_many = getattr(stack, "send_many", None)
            # One reallocation for the whole fan-out instead of one per
            # target flow: everything happens at the same instant.
            with stack.batch():
                if send_many is not None:
                    # Simulated stacks fuse the fan-out into one pass
                    # (operation-for-operation identical to per-target
                    # sends, minus the per-call dispatch overhead).
                    deliveries = send_many(conns, event, size)
                else:
                    deliveries = [conn.send(event, size)
                                  for conn in conns]
            for host, delivery in zip(targets, deliveries):
                # A delivery killed by an injected fault (partition,
                # loss, crashed subscriber) is recorded on the
                # receipt; the publisher's endpoint state is
                # untouched and later submits proceed normally.
                delivery.add_callback(
                    lambda ev, h=host: (
                        failed.append(h),
                        self._t_failed.inc(),
                        setattr(ev, "defused", True),
                    ) if not ev._ok else None)
        # Local subscribers see the event immediately.
        local = self.bus.endpoint(self.name, self.node.name)
        if local is self and self.is_subscriber:
            delivered = ChannelEvent(
                channel=event.channel, source=event.source,
                payload=event.payload, size=event.size,
                attributes=dict(event.attributes),
                submitted_at=event.submitted_at,
                trace=event.trace)
            delivered.delivered_at = now
            self._dispatch(delivered, charge=False)
        # Derived channels: run each derivation at this publisher and
        # re-submit its output on the derived channel (recursively
        # handles chains; the bus rejects cycles at registration).
        for derivation in tuple(self.bus.derivations_of(self.name)):
            if not self.bus.has_audience(derivation.derived,
                                         self.node.name):
                continue
            self.node.charge_kernel_seconds(costs.filter_exec)
            result = derivation.apply(event, now)
            if result is None:
                continue
            derived_payload, derived_size = result
            derived_ep = self.bus.connect(self.node,
                                          derivation.derived)
            derived_ep.submit(derived_payload, derived_size,
                              attributes={"derived_from": self.name},
                              trace=(tspan.context
                                     if tspan is not None else None))
        if tspan is not None:
            tspan.finish(now, cpu_seconds=cpu)
        return SubmitReceipt(event=event, cpu_seconds=cpu,
                             remote_targets=targets,
                             deliveries=deliveries,
                             failed_targets=failed)

    # -- teardown ---------------------------------------------------------------

    def close(self) -> None:
        """Detach from the channel (idempotent).

        Outstanding subscriptions are deactivated, not orphaned: a
        later ``Subscription.cancel()`` is a no-op rather than a
        :class:`ChannelError`.
        """
        if self.closed:
            return
        self.closed = True
        for sub in self.subscriptions:
            sub.active = False
        self.subscriptions.clear()
        self.node.stack.unbind(self._tag)
        self.bus._detach(self)

    # -- internals ------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self.closed:
            raise ChannelError(
                f"endpoint {self.node.name}:{self.name} is closed")

    def _connection_to(self, host: str):
        conn = self._conns.get(host)
        if conn is None:
            conn = self.node.stack.connect(host, tag=self._tag)
            self._conns[host] = conn
        return conn

    def _on_message(self, msg) -> None:
        event: ChannelEvent = msg.payload
        span = getattr(msg, "span", None)
        delivered = ChannelEvent(
            channel=event.channel, source=event.source,
            payload=event.payload, size=event.size,
            attributes=dict(event.attributes),
            submitted_at=event.submitted_at,
            trace=(span.context if span is not None else event.trace))
        delivered.delivered_at = self.node.env.now
        self._dispatch(delivered, charge=True)

    def _dispatch(self, event: ChannelEvent, charge: bool) -> None:
        now = self.node.env.now
        broker = self.bus.stream
        if broker is not None:
            broker.record_delivery(event, self.node.name)
        self.received.add(now, 1.0)
        self.bytes_in.add(now, event.size)
        self._t_receives.inc()
        self._t_rx_bytes.inc(event.size)
        self._t_delivery_seconds.observe(now - event.submitted_at)
        if event.trace is not None:
            dspan = self.node.tracer.record_span(
                event.trace, name=f"deliver:{self.node.name}",
                stage="delivery", node=self.node.name, start=now, end=now,
                channel=self.name, latency=now - event.submitted_at)
            # Handlers (procfs update, SmartPointer streams, ...) parent
            # their own spans under this delivery, not the transport hop.
            event.trace = dspan.context if dspan is not None else None
        if charge:
            # The NetStack already charged the kernel; record it here
            # for the Figure 8 per-channel measurement.
            self.receive_cpu_seconds += \
                self.node.costs.receive_cost(event.size)
        for sub in list(self.subscriptions):
            if sub.active:
                sub.handler(event)


class KechoBus:
    """Cluster-wide channel wiring: registry + endpoint map.

    Subscriber lookups are on every publisher's per-poll hot path, so
    the bus caches the ordered subscriber list per channel and
    invalidates it with a version counter bumped on any subscribe,
    unsubscribe, connect or close — instead of re-walking every
    member's endpoint on every submit.
    """

    def __init__(self, registry: Optional[ChannelRegistry] = None) -> None:
        self.registry = registry or ChannelRegistry()
        self._endpoints: dict[tuple[str, str], ChannelEndpoint] = {}
        self._derivations: dict[str, list] = {}
        #: Durable-stream broker tee (a
        #: :class:`repro.stream.broker.StreamBroker`); None disables
        #: recording.  Set by ``repro.stream.attach_stream``.
        self.stream = None
        #: Bumped whenever any channel's subscriber set may have changed.
        self.subscription_version = 0
        #: name -> (version, ordered subscriber hosts).
        self._subscriber_cache: dict[str, tuple[int, list[str]]] = {}

    def _subscriptions_changed(self) -> None:
        self.subscription_version += 1

    def connect(self, node: RuntimeNode, name: str) -> ChannelEndpoint:
        """Open (or find) channel ``name`` and attach ``node`` to it.

        Mirrors the paper's flow: contact the registry; the first
        caller creates the channel, later callers retrieve it.
        """
        key = (name, node.name)
        existing = self._endpoints.get(key)
        if existing is not None and not existing.closed:
            return existing
        info, _created = self.registry.open(name, node.name)
        endpoint = ChannelEndpoint(self, node, info)
        self._endpoints[key] = endpoint
        self._subscriptions_changed()
        return endpoint

    def endpoint(self, name: str, host: str) -> Optional[ChannelEndpoint]:
        ep = self._endpoints.get((name, host))
        if ep is not None and ep.closed:
            return None
        return ep

    def _subscribers(self, name: str) -> list[str]:
        """Ordered hosts with live subscriptions on ``name`` (cached)."""
        version = self.subscription_version
        cached = self._subscriber_cache.get(name)
        if cached is not None and cached[0] == version:
            return cached[1]
        info = self.registry.lookup(name)
        endpoints = self._endpoints
        out = []
        for host in info.members:
            ep = endpoints.get((name, host))
            if ep is not None and not ep.closed and ep.subscriptions:
                out.append(host)
        self._subscriber_cache[name] = (version, out)
        return out

    def remote_subscribers(self, name: str, source: str) -> list[str]:
        """Hosts (other than ``source``) with live subscriptions."""
        subscribers = self._subscribers(name)
        return [host for host in subscribers if host != source]

    def has_audience(self, name: str, source: str) -> bool:
        """True when anyone (remote or local) subscribes to ``name``."""
        try:
            self.registry.lookup(name)
        except Exception:
            return False
        return bool(self._subscribers(name))

    # -- derived channels ---------------------------------------------------------

    def derive(self, source: str, derived: str, transform):
        """Register ``derived`` as a derivation of ``source``.

        The transform runs at each publisher of ``source``; its output
        is submitted on ``derived``.  Chains are allowed; cycles are
        rejected.
        """
        from repro.kecho.derived import Derivation
        if source == derived:
            raise ChannelError("a channel cannot derive from itself")
        # Walk the ancestry of `source`: if `derived` appears, the new
        # edge would close a cycle.
        parents = {d.derived: d.source
                   for specs in self._derivations.values()
                   for d in specs}
        ancestor = source
        seen = {source}
        while ancestor in parents:
            ancestor = parents[ancestor]
            if ancestor == derived:
                raise ChannelError(
                    f"derivation {derived!r} <- {source!r} would "
                    f"create a cycle")
            if ancestor in seen:  # pragma: no cover - defensive
                break
            seen.add(ancestor)
        spec = Derivation(source=source, derived=derived,
                          transform=transform)
        self._derivations.setdefault(source, []).append(spec)
        return spec

    def derivations_of(self, source: str):
        """Live derivations registered on ``source`` (do not mutate)."""
        return self._derivations.get(source, ())

    def remove_derivation(self, spec) -> None:
        specs = self._derivations.get(spec.source, [])
        try:
            specs.remove(spec)
        except ValueError:
            raise ChannelError("derivation is not registered") from None

    def _detach(self, endpoint: ChannelEndpoint) -> None:
        self.registry.leave(endpoint.name, endpoint.node.name)
        self._endpoints.pop((endpoint.name, endpoint.node.name), None)
        self._subscriptions_changed()
