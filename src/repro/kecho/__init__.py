"""KECho: kernel-level event channels (publish/subscribe substrate).

Reproduction of the KECho event-channel infrastructure the paper builds
dproc on: channels found/created via a user-level registry, direct
peer-to-peer kernel messaging, and per-submit cost accounting.
"""

from repro.kecho.channel import (ChannelEndpoint, KechoBus, SubmitReceipt,
                                 Subscription)
from repro.kecho.control import (ClearParameter, ControlMessage,
                                 DeployFilter, RemoveFilter, SetParameter,
                                 control_message_size)
from repro.kecho.derived import Derivation, ecode_transform
from repro.kecho.event import ChannelEvent
from repro.kecho.registry import ChannelInfo, ChannelRegistry

__all__ = [
    "ChannelEndpoint", "KechoBus", "SubmitReceipt", "Subscription",
    "Derivation", "ecode_transform",
    "ChannelEvent", "ChannelInfo", "ChannelRegistry",
    "ControlMessage", "SetParameter", "ClearParameter", "DeployFilter",
    "RemoveFilter", "control_message_size",
]
