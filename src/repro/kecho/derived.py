"""Derived event channels (the ECho derivation concept).

ECho — and the paper's SmartPointer on top of it — lets clients
"subscribe to any of a number of different derivations of that data,
ranging from a straight data feed, to down-sampled data … to a stream
of images".  A *derived channel* is a channel whose events are computed
from a source channel's events by a transform that runs **at the
publisher**, so non-subscribed derivations cost nothing downstream.

Transforms are Python callables ``(ChannelEvent) -> (payload, size) |
None`` (None drops the event for that derivation).  dproc's E-code
filters plug in directly for record-array payloads via
:func:`ecode_transform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.ecode import CompiledFilter, MetricRecord
from repro.errors import ChannelError, EcodeError
from repro.kecho.event import ChannelEvent
from repro.runtime.series import CounterTrace

__all__ = ["Derivation", "ecode_transform"]

Transform = Callable[[ChannelEvent], Optional[tuple[object, float]]]


@dataclass
class Derivation:
    """One registered derivation: source channel → derived channel."""

    source: str
    derived: str
    transform: Transform
    #: Events offered / passed through (observability).
    offered: CounterTrace = field(default_factory=lambda:
                                  CounterTrace("offered"))
    passed: CounterTrace = field(default_factory=lambda:
                                 CounterTrace("passed"))
    errors: int = 0

    def apply(self, event: ChannelEvent,
              now: float) -> Optional[tuple[object, float]]:
        """Run the transform, tolerating transform failures."""
        self.offered.add(now, 1.0)
        try:
            result = self.transform(event)
        except EcodeError:
            self.errors += 1
            return None
        if result is None:
            return None
        payload, size = result
        if size <= 0:
            raise ChannelError(
                f"derivation {self.derived!r} produced a non-positive "
                f"event size")
        self.passed.add(now, 1.0)
        return payload, float(size)


def ecode_transform(compiled: CompiledFilter,
                    bytes_per_record: float = 12.0,
                    header_bytes: float = 40.0) -> Transform:
    """Adapt a compiled E-code filter into a channel transform.

    The source event's payload must be a sequence of
    :class:`~repro.ecode.MetricRecord`; the derived payload is the
    filter's output records, sized by the standard record encoding.
    An empty output drops the event (the paper's "customize (or
    block)").
    """

    def transform(event: ChannelEvent
                  ) -> Optional[tuple[object, float]]:
        payload = event.payload
        if not isinstance(payload, Sequence) or not all(
                isinstance(r, MetricRecord) for r in payload):
            raise ChannelError(
                "ecode_transform needs MetricRecord sequences")
        result = compiled.run(list(payload))
        if not result.outputs:
            return None
        size = header_bytes + bytes_per_record * len(result.outputs)
        return result.outputs, size

    return transform
