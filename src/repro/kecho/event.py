"""KECho events.

An event is an opaque payload plus attributes, submitted to a channel
and delivered to every subscriber's handler.  Sizes are explicit
(bytes): the publisher declares how large the encoded event is, and the
cost model charges encode/send/receive CPU accordingly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["ChannelEvent"]

_event_ids = itertools.count(1)


@dataclass
class ChannelEvent:
    """One event flowing through a KECho channel."""

    channel: str                 #: channel name
    source: str                  #: publishing host name
    payload: Any                 #: application data (opaque)
    size: float                  #: encoded size in bytes
    attributes: dict[str, Any] = field(default_factory=dict)
    submitted_at: float = 0.0    #: simulation time of submission
    delivered_at: Optional[float] = None
    eid: int = field(default_factory=lambda: next(_event_ids))
    #: Causal-trace context (a :class:`repro.tracing.TraceContext`).
    #: Set at submit to the submit span; on each delivered copy it is
    #: replaced by that delivery's span, so subscriber handlers parent
    #: their own spans at the right place.  None when untraced.
    trace: Optional[Any] = None

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-delivery latency, once delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.submitted_at
