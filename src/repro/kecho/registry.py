"""The channel registry — KECho's user-level directory server.

Per the paper: "D-mon modules use a channel registry, which is a
user-level channel directory server, to register new channels and to
find existing channels.  The first d-mon module to contact the registry
will create the two channels.  All other d-mon modules in the cluster
will retrieve the channel identifiers from the registry and subscribe."

The registry is control-plane only: it never touches event data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import RegistryError

__all__ = ["ChannelInfo", "ChannelRegistry"]


@dataclass
class ChannelInfo:
    """Directory entry for one channel."""

    name: str
    channel_id: int
    creator: str
    members: list[str] = field(default_factory=list)
    #: Mirror of ``members`` for O(1) membership tests at scale.
    member_set: set[str] = field(default_factory=set, repr=False)


class ChannelRegistry:
    """Cluster-wide channel directory."""

    def __init__(self) -> None:
        self._channels: dict[str, ChannelInfo] = {}
        self._ids = itertools.count(1)

    def open(self, name: str, host: str) -> tuple[ChannelInfo, bool]:
        """Find or create the channel ``name``.

        Returns ``(info, created)`` where ``created`` says whether this
        call created the channel (i.e. ``host`` was first).
        """
        if not name:
            raise RegistryError("channel name cannot be empty")
        info = self._channels.get(name)
        created = False
        if info is None:
            info = ChannelInfo(name=name, channel_id=next(self._ids),
                               creator=host)
            self._channels[name] = info
            created = True
        if host not in info.member_set:
            info.members.append(host)
            info.member_set.add(host)
        return info, created

    def lookup(self, name: str) -> ChannelInfo:
        """Return the entry for ``name`` (raises if absent)."""
        try:
            return self._channels[name]
        except KeyError:
            raise RegistryError(f"no channel named {name!r}") from None

    def leave(self, name: str, host: str) -> None:
        """Remove ``host`` from the channel's membership."""
        info = self.lookup(name)
        try:
            info.members.remove(host)
        except ValueError:
            raise RegistryError(
                f"{host!r} is not a member of channel {name!r}") from None
        info.member_set.discard(host)

    def channels(self) -> list[str]:
        """All registered channel names."""
        return sorted(self._channels)
