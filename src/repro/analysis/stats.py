"""Statistics for experiment replication.

The paper reports single-run measurements; for a simulation study we
can do better.  This module provides the classic small-sample tooling:
mean with Student-t confidence intervals, cross-seed replication of a
whole experiment, and warm-up truncation for steady-state series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

from repro.harness.experiment import ExperimentResult, SeriesResult

__all__ = ["Summary", "summarize", "replicate", "truncate_warmup",
           "HistogramResult", "histogram"]


@dataclass(frozen=True)
class Summary:
    """Mean and confidence half-width of one sample set."""

    n: int
    mean: float
    std: float
    #: Half-width of the two-sided confidence interval.
    half_width: float
    confidence: float

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return (f"{self.mean:.4g} ± {self.half_width:.2g} "
                f"({self.confidence:.0%}, n={self.n})")


def summarize(samples: Sequence[float],
              confidence: float = 0.95,
              nan_policy: str = "propagate") -> Summary:
    """Mean with a Student-t confidence interval.

    A single sample yields an infinite interval honestly rather than
    pretending to certainty.  ``nan_policy`` controls NaN samples:
    ``"propagate"`` (default) lets them poison the mean/std — visible,
    never silently wrong; ``"omit"`` drops them; ``"raise"`` rejects
    them with :class:`ValueError`.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if nan_policy not in ("propagate", "omit", "raise"):
        raise ValueError(f"unknown nan_policy {nan_policy!r}")
    data = np.asarray(list(samples), dtype=float)
    n_nan = int(np.count_nonzero(np.isnan(data)))
    if n_nan:
        if nan_policy == "raise":
            raise ValueError(f"{n_nan} NaN sample(s) in input")
        if nan_policy == "omit":
            data = data[~np.isnan(data)]
    if data.size == 0:
        raise ValueError("no samples to summarize")
    mean = float(np.mean(data))
    if data.size == 1:
        return Summary(n=1, mean=mean, std=0.0,
                       half_width=math.inf, confidence=confidence)
    std = float(np.std(data, ddof=1))
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    half = t * std / math.sqrt(data.size)
    return Summary(n=int(data.size), mean=mean, std=std,
                   half_width=half, confidence=confidence)


@dataclass(frozen=True)
class HistogramResult:
    """A binned distribution with honest edge-case accounting."""

    #: Per-bin counts (length ``len(edges) - 1``).
    counts: tuple[int, ...]
    #: Bin edges (ascending; ``edges[i] <= bin i < edges[i+1]``).
    edges: tuple[float, ...]
    #: Number of binned (finite) samples.
    n: int
    #: NaN samples seen (never binned, never silently dropped).
    nan_count: int
    mean: float
    min: float
    max: float

    @property
    def total(self) -> int:
        """All samples offered, including NaNs."""
        return self.n + self.nan_count


def histogram(samples: Sequence[float], bins: int = 10,
              value_range: tuple[float, float] | None = None,
              nan_policy: str = "omit") -> HistogramResult:
    """Bin a sample sequence, handling the awkward cases explicitly.

    * **empty input** — zero counts over ``value_range`` (or the unit
      interval), NaN summary stats; never an exception;
    * **single sample** (or all-equal samples) — a degenerate range is
      widened by ±0.5 around the value, as ``np.histogram`` does;
    * **NaN samples** — cannot be binned: ``"omit"`` (default) counts
      them in ``nan_count``; ``"propagate"`` additionally poisons the
      summary stats (mean/min/max become NaN); ``"raise"`` rejects
      them.  They are *never* silently included or discarded.
    """
    if nan_policy not in ("propagate", "omit", "raise"):
        raise ValueError(f"unknown nan_policy {nan_policy!r}")
    if bins < 1:
        raise ValueError("bins must be positive")
    if value_range is not None and not value_range[0] <= value_range[1]:
        raise ValueError("value_range must be (lo, hi) with lo <= hi")
    data = np.asarray(list(samples), dtype=float)
    nan_mask = np.isnan(data)
    nan_count = int(np.count_nonzero(nan_mask))
    if nan_count and nan_policy == "raise":
        raise ValueError(f"{nan_count} NaN sample(s) in input")
    finite = data[~nan_mask]

    if finite.size == 0:
        lo, hi = value_range if value_range is not None else (0.0, 1.0)
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
        edges = np.linspace(lo, hi, bins + 1)
        counts = np.zeros(bins, dtype=int)
        mean = low = high = math.nan
    else:
        counts, edges = np.histogram(finite, bins=bins,
                                     range=value_range)
        mean = float(finite.mean())
        low = float(finite.min())
        high = float(finite.max())
    if nan_count and nan_policy == "propagate":
        mean = low = high = math.nan
    return HistogramResult(
        counts=tuple(int(c) for c in counts),
        edges=tuple(float(e) for e in edges),
        n=int(finite.size), nan_count=nan_count,
        mean=mean, min=low, max=high)


def replicate(experiment: Callable[[int], ExperimentResult],
              seeds: Sequence[int],
              confidence: float = 0.95) -> ExperimentResult:
    """Run ``experiment(seed)`` for every seed and aggregate.

    Returns a new :class:`ExperimentResult` whose series carry the
    cross-seed *means*; per-point summaries (with confidence intervals)
    are attached as ``result.summaries[label][x]``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    runs = [experiment(seed) for seed in seeds]
    first = runs[0]
    for run in runs[1:]:
        if [s.label for s in run.series] != \
                [s.label for s in first.series]:
            raise ValueError("replications produced different series")

    aggregated = ExperimentResult(
        experiment_id=first.experiment_id,
        title=f"{first.title} (mean of {len(runs)} seeds)",
        xlabel=first.xlabel, ylabel=first.ylabel,
        expectation=first.expectation,
        notes=f"seeds={list(seeds)}")
    summaries: dict[str, dict[float, Summary]] = {}
    for series in first.series:
        label = series.label
        xs = series.x
        per_point: dict[float, Summary] = {}
        means = []
        for x in xs:
            samples = [run.get(label).y_at(x) for run in runs]
            summary = summarize(samples, confidence=confidence)
            per_point[x] = summary
            means.append(summary.mean)
        aggregated.add_series(label, xs, means)
        summaries[label] = per_point
    aggregated.summaries = summaries  # type: ignore[attr-defined]
    return aggregated


def truncate_warmup(series: SeriesResult,
                    fraction: float = 0.2) -> SeriesResult:
    """Drop the leading ``fraction`` of a time series (warm-up period)."""
    if not 0 <= fraction < 1:
        raise ValueError("fraction must be in [0, 1)")
    if not series.x:
        raise ValueError("empty series")
    cut = series.x[0] + (series.x[-1] - series.x[0]) * fraction
    keep = [(x, y) for x, y in zip(series.x, series.y) if x >= cut]
    if not keep:  # pragma: no cover - fraction < 1 guarantees content
        keep = [(series.x[-1], series.y[-1])]
    xs, ys = zip(*keep)
    return SeriesResult(series.label, tuple(xs), tuple(ys))
