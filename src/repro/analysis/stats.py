"""Statistics for experiment replication.

The paper reports single-run measurements; for a simulation study we
can do better.  This module provides the classic small-sample tooling:
mean with Student-t confidence intervals, cross-seed replication of a
whole experiment, and warm-up truncation for steady-state series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

from repro.harness.experiment import ExperimentResult, SeriesResult

__all__ = ["Summary", "summarize", "replicate", "truncate_warmup"]


@dataclass(frozen=True)
class Summary:
    """Mean and confidence half-width of one sample set."""

    n: int
    mean: float
    std: float
    #: Half-width of the two-sided confidence interval.
    half_width: float
    confidence: float

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return (f"{self.mean:.4g} ± {self.half_width:.2g} "
                f"({self.confidence:.0%}, n={self.n})")


def summarize(samples: Sequence[float],
              confidence: float = 0.95) -> Summary:
    """Mean with a Student-t confidence interval.

    A single sample yields an infinite interval honestly rather than
    pretending to certainty.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("no samples to summarize")
    mean = float(np.mean(data))
    if data.size == 1:
        return Summary(n=1, mean=mean, std=0.0,
                       half_width=math.inf, confidence=confidence)
    std = float(np.std(data, ddof=1))
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    half = t * std / math.sqrt(data.size)
    return Summary(n=int(data.size), mean=mean, std=std,
                   half_width=half, confidence=confidence)


def replicate(experiment: Callable[[int], ExperimentResult],
              seeds: Sequence[int],
              confidence: float = 0.95) -> ExperimentResult:
    """Run ``experiment(seed)`` for every seed and aggregate.

    Returns a new :class:`ExperimentResult` whose series carry the
    cross-seed *means*; per-point summaries (with confidence intervals)
    are attached as ``result.summaries[label][x]``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    runs = [experiment(seed) for seed in seeds]
    first = runs[0]
    for run in runs[1:]:
        if [s.label for s in run.series] != \
                [s.label for s in first.series]:
            raise ValueError("replications produced different series")

    aggregated = ExperimentResult(
        experiment_id=first.experiment_id,
        title=f"{first.title} (mean of {len(runs)} seeds)",
        xlabel=first.xlabel, ylabel=first.ylabel,
        expectation=first.expectation,
        notes=f"seeds={list(seeds)}")
    summaries: dict[str, dict[float, Summary]] = {}
    for series in first.series:
        label = series.label
        xs = series.x
        per_point: dict[float, Summary] = {}
        means = []
        for x in xs:
            samples = [run.get(label).y_at(x) for run in runs]
            summary = summarize(samples, confidence=confidence)
            per_point[x] = summary
            means.append(summary.mean)
        aggregated.add_series(label, xs, means)
        summaries[label] = per_point
    aggregated.summaries = summaries  # type: ignore[attr-defined]
    return aggregated


def truncate_warmup(series: SeriesResult,
                    fraction: float = 0.2) -> SeriesResult:
    """Drop the leading ``fraction`` of a time series (warm-up period)."""
    if not 0 <= fraction < 1:
        raise ValueError("fraction must be in [0, 1)")
    if not series.x:
        raise ValueError("empty series")
    cut = series.x[0] + (series.x[-1] - series.x[0]) * fraction
    keep = [(x, y) for x, y in zip(series.x, series.y) if x >= cut]
    if not keep:  # pragma: no cover - fraction < 1 guarantees content
        keep = [(series.x[-1], series.y[-1])]
    xs, ys = zip(*keep)
    return SeriesResult(series.label, tuple(xs), tuple(ys))
