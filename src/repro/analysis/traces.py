"""Durable experiment records: export/import of results and traces.

Experiment results and raw simulator time series can be written to
portable files (JSON for results, CSV for series) and loaded back,
so a full-scale run's numbers can be archived with EXPERIMENTS.md and
re-analysed without re-simulating.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from repro.harness.experiment import ExperimentResult, SeriesResult
from repro.sim.trace import TimeSeries

__all__ = ["dump_result", "load_result", "result_to_json",
           "result_from_json", "series_to_csv", "series_from_csv",
           "timeseries_to_csv"]

_FORMAT_VERSION = 1


# --- experiment results (JSON) ---------------------------------------------------

def result_to_json(result: ExperimentResult) -> str:
    """Serialise an experiment result to a JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "xlabel": result.xlabel,
        "ylabel": result.ylabel,
        "expectation": result.expectation,
        "notes": result.notes,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)}
            for s in result.series
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def result_from_json(text: str) -> ExperimentResult:
    """Load an experiment result from its JSON form."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r}")
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        xlabel=payload["xlabel"],
        ylabel=payload["ylabel"],
        expectation=payload.get("expectation", ""),
        notes=payload.get("notes", ""))
    for series in payload["series"]:
        result.add_series(series["label"], series["x"], series["y"])
    return result


def dump_result(result: ExperimentResult,
                path: Union[str, Path]) -> Path:
    """Write a result to ``path`` (created/overwritten); returns it."""
    path = Path(path)
    path.write_text(result_to_json(result), encoding="utf-8")
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read a result previously written by :func:`dump_result`."""
    return result_from_json(Path(path).read_text(encoding="utf-8"))


# --- series and raw traces (CSV) ---------------------------------------------------

def series_to_csv(series: SeriesResult) -> str:
    """One labelled series as a two-column CSV with a header."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["x", series.label])
    for x, y in zip(series.x, series.y):
        writer.writerow([repr(x), repr(y)])
    return out.getvalue()


def series_from_csv(text: str) -> SeriesResult:
    """Parse a CSV produced by :func:`series_to_csv`."""
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or len(rows[0]) != 2 or rows[0][0] != "x":
        raise ValueError("not a series CSV (expected 'x,<label>')")
    label = rows[0][1]
    xs, ys = [], []
    for row in rows[1:]:
        if not row:
            continue
        xs.append(float(row[0]))
        ys.append(float(row[1]))
    return SeriesResult(label, tuple(xs), tuple(ys))


def timeseries_to_csv(ts: TimeSeries) -> str:
    """Export a raw simulator :class:`TimeSeries` (time,value)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time", ts.name or "value"])
    for t, v in ts:
        writer.writerow([repr(t), repr(v)])
    return out.getvalue()
