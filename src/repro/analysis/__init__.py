"""Statistical analysis helpers and durable experiment records."""

from repro.analysis.stats import (HistogramResult, Summary, histogram,
                                  replicate, summarize, truncate_warmup)
from repro.analysis.traces import (dump_result, load_result,
                                   result_from_json, result_to_json,
                                   series_from_csv, series_to_csv,
                                   timeseries_to_csv)

__all__ = ["HistogramResult", "Summary", "histogram",
           "replicate", "summarize", "truncate_warmup",
           "dump_result", "load_result", "result_from_json",
           "result_to_json", "series_from_csv", "series_to_csv",
           "timeseries_to_csv"]
