"""Exception hierarchy for the dproc reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "InterruptError",
    "NetworkError",
    "RoutingError",
    "TransportError",
    "EcodeError",
    "EcodeSyntaxError",
    "EcodeTypeError",
    "EcodeRuntimeError",
    "EcodeLimitError",
    "ChannelError",
    "RegistryError",
    "DprocError",
    "ProcfsError",
    "ControlSyntaxError",
    "UnknownMetricError",
    "FilterDeploymentError",
    "TelemetryError",
    "TracingError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --- simulator -----------------------------------------------------------

class SimulationError(ReproError):
    """Generic failure inside the discrete-event simulator."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a finished simulator."""


class InterruptError(SimulationError):
    """Raised *inside* a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


# --- network -------------------------------------------------------------

class NetworkError(SimulationError):
    """Failure in the simulated network fabric."""


class RoutingError(NetworkError):
    """No route exists between two simulated hosts."""


class TransportError(NetworkError):
    """Transport-level failure (e.g. sending on a closed connection)."""


class FaultInjectionError(SimulationError):
    """Invalid fault-injection request (bad probability, unknown host)."""


class ShardError(SimulationError):
    """Sharded-execution failure (worker died, plan/cluster mismatch)."""


# --- E-code --------------------------------------------------------------

class EcodeError(ReproError):
    """Base class for E-code language errors."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.message = message
        self.line = line
        self.column = column


class EcodeSyntaxError(EcodeError):
    """Lexical or syntactic error in E-code source."""


class EcodeTypeError(EcodeError):
    """Semantic/type error in E-code source."""


class EcodeRuntimeError(EcodeError):
    """Error raised while executing a compiled E-code filter."""


class EcodeLimitError(EcodeRuntimeError):
    """A compiled filter exceeded its execution budget (loop bound)."""


# --- KECho ---------------------------------------------------------------

class ChannelError(ReproError):
    """Failure in the KECho event channel layer."""


class RegistryError(ChannelError):
    """Failure in the channel registry (directory server)."""


# --- dproc ---------------------------------------------------------------

class DprocError(ReproError):
    """Failure in the dproc monitoring toolkit."""


class ProcfsError(DprocError):
    """Bad path or operation on the pseudo /proc filesystem."""


class ControlSyntaxError(DprocError):
    """Malformed command written to a dproc control file."""


class UnknownMetricError(DprocError):
    """A metric name was not recognised by the metric registry."""


class FilterDeploymentError(DprocError):
    """A dynamic filter failed to compile or deploy at the target host."""


# --- telemetry ---------------------------------------------------------------

class TelemetryError(ReproError):
    """Misuse of the self-telemetry registry (e.g. kind mismatch)."""


class TracingError(ReproError):
    """Misuse of the causal-tracing collector (duplicate trace id,
    double-finished span, invalid sampling configuration)."""
