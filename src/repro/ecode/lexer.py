"""Hand-written lexer for the E-code language."""

from __future__ import annotations

from repro.ecode.tokens import KEYWORDS, Token, TokenType
from repro.errors import EcodeSyntaxError

__all__ = ["tokenize"]

_TWO_CHAR_OPS: dict[str, TokenType] = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND,
    "||": TokenType.OR,
    "+=": TokenType.PLUS_ASSIGN,
    "-=": TokenType.MINUS_ASSIGN,
    "*=": TokenType.STAR_ASSIGN,
    "/=": TokenType.SLASH_ASSIGN,
    "%=": TokenType.PERCENT_ASSIGN,
    "++": TokenType.INCREMENT,
    "--": TokenType.DECREMENT,
}

_ONE_CHAR_OPS: dict[str, TokenType] = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ";": TokenType.SEMICOLON,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
}


class _Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> EcodeSyntaxError:
        return EcodeSyntaxError(message, self.line, self.column)

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def advance(self, n: int = 1) -> str:
        text = self.source[self.pos:self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n
        return text

    def skip_trivia(self) -> None:
        """Skip whitespace and //-style and /* */-style comments."""
        while self.pos < len(self.source):
            ch = self.peek()
            if ch in " \t\r\n":
                self.advance()
            elif ch == "/" and self.peek(1) == "/":
                while self.pos < len(self.source) and self.peek() != "\n":
                    self.advance()
            elif ch == "/" and self.peek(1) == "*":
                self.advance(2)
                while self.pos < len(self.source):
                    if self.peek() == "*" and self.peek(1) == "/":
                        self.advance(2)
                        break
                    self.advance()
                else:
                    raise self.error("unterminated block comment")
            else:
                return

    def lex_number(self) -> Token:
        line, col = self.line, self.column
        start = self.pos
        saw_dot = saw_exp = False
        while self.pos < len(self.source):
            ch = self.peek()
            if ch.isdigit():
                self.advance()
            elif ch == "." and not saw_dot and not saw_exp:
                saw_dot = True
                self.advance()
            elif ch in "eE" and not saw_exp:
                nxt = self.peek(1)
                if nxt.isdigit() or (nxt in "+-" and self.peek(2).isdigit()):
                    saw_exp = True
                    self.advance()
                    if self.peek() in "+-":
                        self.advance()
                else:
                    break
            else:
                break
        text = self.source[start:self.pos]
        if text.endswith("."):
            raise EcodeSyntaxError(
                f"malformed number {text!r}", line, col)
        ttype = (TokenType.FLOAT_LITERAL if (saw_dot or saw_exp)
                 else TokenType.INT_LITERAL)
        return Token(ttype, text, line, col)

    def lex_word(self) -> Token:
        line, col = self.line, self.column
        start = self.pos
        while self.pos < len(self.source) and \
                (self.peek().isalnum() or self.peek() == "_"):
            self.advance()
        text = self.source[start:self.pos]
        ttype = KEYWORDS.get(text, TokenType.IDENTIFIER)
        return Token(ttype, text, line, col)

    def next_token(self) -> Token:
        self.skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, "", self.line, self.column)
        ch = self.peek()
        if ch.isdigit():
            return self.lex_number()
        if ch == "." and self.peek(1).isdigit():
            return self.lex_number()
        if ch.isalpha() or ch == "_":
            return self.lex_word()
        two = self.source[self.pos:self.pos + 2]
        if two in _TWO_CHAR_OPS:
            line, col = self.line, self.column
            self.advance(2)
            return Token(_TWO_CHAR_OPS[two], two, line, col)
        if ch in _ONE_CHAR_OPS:
            line, col = self.line, self.column
            self.advance()
            return Token(_ONE_CHAR_OPS[ch], ch, line, col)
        raise self.error(f"unexpected character {ch!r}")


def tokenize(source: str) -> list[Token]:
    """Tokenize E-code ``source`` into a list ending with an EOF token."""
    lexer = _Lexer(source)
    tokens: list[Token] = []
    while True:
        tok = lexer.next_token()
        tokens.append(tok)
        if tok.type is TokenType.EOF:
            return tokens
