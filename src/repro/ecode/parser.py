"""Recursive-descent parser for the E-code language.

Grammar (statements)::

    program     := block | stmt*
    block       := '{' stmt* '}'
    stmt        := decl ';' | simple ';' | if | for | while
                 | return ';' | block
    decl        := type IDENT ('=' expr)?
    simple      := assign | incdec | expr
    assign      := target ('='|'+='|'-='|'*='|'/='|'%=') expr
    target      := IDENT postfix*           (postfix := '[' expr ']'
                                                      | '.' IDENT)
    if          := 'if' '(' expr ')' body ('else' (if | body))?
    for         := 'for' '(' (decl|simple)? ';' expr? ';' simple? ')' body
    while       := 'while' '(' expr ')' body
    body        := block | stmt

Expressions use standard C precedence:
``|| < && < ==,!= < <,<=,>,>= < +,- < *,/,% < unary < postfix``.
"""

from __future__ import annotations

from typing import Optional

from repro.ecode import ast_nodes as A
from repro.ecode.lexer import tokenize
from repro.ecode.tokens import Token, TokenType as T
from repro.errors import EcodeSyntaxError

__all__ = ["parse"]

_ASSIGN_OPS = {
    T.ASSIGN: "=", T.PLUS_ASSIGN: "+=", T.MINUS_ASSIGN: "-=",
    T.STAR_ASSIGN: "*=", T.SLASH_ASSIGN: "/=", T.PERCENT_ASSIGN: "%=",
}

_TYPE_KEYWORDS = {
    T.KW_INT: "int", T.KW_LONG: "long",
    T.KW_DOUBLE: "double", T.KW_FLOAT: "float",
}

# (token types, operator text) by descending binding level
_BINARY_LEVELS: list[dict[T, str]] = [
    {T.OR: "||"},
    {T.AND: "&&"},
    {T.EQ: "==", T.NE: "!="},
    {T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">="},
    {T.PLUS: "+", T.MINUS: "-"},
    {T.STAR: "*", T.SLASH: "/", T.PERCENT: "%"},
]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def check(self, ttype: T) -> bool:
        return self.current.type is ttype

    def accept(self, ttype: T) -> Optional[Token]:
        if self.check(ttype):
            tok = self.current
            self.pos += 1
            return tok
        return None

    def expect(self, ttype: T, what: str) -> Token:
        tok = self.accept(ttype)
        if tok is None:
            cur = self.current
            raise EcodeSyntaxError(
                f"expected {what}, found {cur.text or 'end of input'!r}",
                cur.line, cur.column)
        return tok

    def error(self, message: str) -> EcodeSyntaxError:
        cur = self.current
        return EcodeSyntaxError(message, cur.line, cur.column)

    # -- program ---------------------------------------------------------------

    def parse_program(self) -> A.Program:
        first = self.current
        stmts = []
        while not self.check(T.EOF):
            stmts.append(self.parse_statement())
        if len(stmts) == 1 and isinstance(stmts[0], A.Block):
            # The common filter shape `{ ... }`: unwrap so the braced
            # block *is* the program body.
            body = stmts[0]
        else:
            body = A.Block(statements=stmts,
                           line=first.line, column=first.column)
        self.expect(T.EOF, "end of input")
        return A.Program(body=body, line=first.line, column=first.column)

    def parse_block(self) -> A.Block:
        lbrace = self.expect(T.LBRACE, "'{'")
        stmts = []
        while not self.check(T.RBRACE):
            if self.check(T.EOF):
                raise self.error("unterminated block: missing '}'")
            stmts.append(self.parse_statement())
        self.expect(T.RBRACE, "'}'")
        return A.Block(statements=stmts,
                       line=lbrace.line, column=lbrace.column)

    def parse_body(self) -> A.Block:
        """An if/for/while body: a block, or a single statement."""
        if self.check(T.LBRACE):
            return self.parse_block()
        stmt = self.parse_statement()
        return A.Block(statements=[stmt],
                       line=stmt.line, column=stmt.column)

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> A.Stmt:
        tok = self.current
        if tok.type in _TYPE_KEYWORDS:
            decl = self.parse_declaration()
            self.expect(T.SEMICOLON, "';'")
            return decl
        if tok.type is T.KW_IF:
            return self.parse_if()
        if tok.type is T.KW_FOR:
            return self.parse_for()
        if tok.type is T.KW_WHILE:
            return self.parse_while()
        if tok.type is T.KW_RETURN:
            self.pos += 1
            value = None
            if not self.check(T.SEMICOLON):
                value = self.parse_expr()
            self.expect(T.SEMICOLON, "';'")
            return A.Return(value=value, line=tok.line, column=tok.column)
        if tok.type is T.KW_BREAK:
            self.pos += 1
            self.expect(T.SEMICOLON, "';'")
            return A.Break(line=tok.line, column=tok.column)
        if tok.type is T.KW_CONTINUE:
            self.pos += 1
            self.expect(T.SEMICOLON, "';'")
            return A.Continue(line=tok.line, column=tok.column)
        if tok.type is T.LBRACE:
            return self.parse_block()
        if tok.type is T.SEMICOLON:  # empty statement
            self.pos += 1
            return A.Block(statements=[], line=tok.line, column=tok.column)
        stmt = self.parse_simple()
        self.expect(T.SEMICOLON, "';'")
        return stmt

    def parse_declaration(self) -> A.VarDecl:
        tok = self.current
        ctype = _TYPE_KEYWORDS[tok.type]
        self.pos += 1
        name = self.expect(T.IDENTIFIER, "variable name")
        init = None
        if self.accept(T.ASSIGN):
            init = self.parse_expr()
        return A.VarDecl(ctype=ctype, name=name.text, init=init,
                         line=tok.line, column=tok.column)

    def parse_simple(self) -> A.Stmt:
        """Assignment, increment/decrement or bare expression."""
        tok = self.current
        expr = self.parse_expr()
        if self.current.type in _ASSIGN_OPS:
            op = _ASSIGN_OPS[self.current.type]
            self.pos += 1
            if not isinstance(expr, (A.Name, A.Index, A.Attribute)):
                raise EcodeSyntaxError("invalid assignment target",
                                       tok.line, tok.column)
            value = self.parse_expr()
            return A.Assign(target=expr, op=op, value=value,
                            line=tok.line, column=tok.column)
        if self.check(T.INCREMENT) or self.check(T.DECREMENT):
            op = "++" if self.current.type is T.INCREMENT else "--"
            self.pos += 1
            if not isinstance(expr, A.Name):
                raise EcodeSyntaxError(
                    f"{op} only applies to simple variables",
                    tok.line, tok.column)
            return A.IncDec(target=expr, op=op,
                            line=tok.line, column=tok.column)
        return A.ExprStmt(expr=expr, line=tok.line, column=tok.column)

    def parse_if(self) -> A.If:
        tok = self.expect(T.KW_IF, "'if'")
        self.expect(T.LPAREN, "'('")
        cond = self.parse_expr()
        self.expect(T.RPAREN, "')'")
        then_body = self.parse_body()
        else_body = None
        if self.accept(T.KW_ELSE):
            if self.check(T.KW_IF):
                chained = self.parse_if()
                else_body = A.Block(statements=[chained],
                                    line=chained.line,
                                    column=chained.column)
            else:
                else_body = self.parse_body()
        return A.If(cond=cond, then_body=then_body, else_body=else_body,
                    line=tok.line, column=tok.column)

    def parse_for(self) -> A.For:
        tok = self.expect(T.KW_FOR, "'for'")
        self.expect(T.LPAREN, "'('")
        init: Optional[A.Stmt] = None
        if not self.check(T.SEMICOLON):
            if self.current.type in _TYPE_KEYWORDS:
                init = self.parse_declaration()
            else:
                init = self.parse_simple()
        self.expect(T.SEMICOLON, "';'")
        cond = None
        if not self.check(T.SEMICOLON):
            cond = self.parse_expr()
        self.expect(T.SEMICOLON, "';'")
        step = None
        if not self.check(T.RPAREN):
            step = self.parse_simple()
        self.expect(T.RPAREN, "')'")
        body = self.parse_body()
        return A.For(init=init, cond=cond, step=step, body=body,
                     line=tok.line, column=tok.column)

    def parse_while(self) -> A.While:
        tok = self.expect(T.KW_WHILE, "'while'")
        self.expect(T.LPAREN, "'('")
        cond = self.parse_expr()
        self.expect(T.RPAREN, "')'")
        body = self.parse_body()
        return A.While(cond=cond, body=body,
                       line=tok.line, column=tok.column)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self, level: int = 0) -> A.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self.parse_expr(level + 1)
        while self.current.type in ops:
            tok = self.current
            self.pos += 1
            right = self.parse_expr(level + 1)
            left = A.Binary(op=ops[tok.type], left=left, right=right,
                            line=tok.line, column=tok.column)
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.current
        if tok.type is T.MINUS:
            self.pos += 1
            return A.Unary(op="-", operand=self.parse_unary(),
                           line=tok.line, column=tok.column)
        if tok.type is T.PLUS:
            self.pos += 1
            return A.Unary(op="+", operand=self.parse_unary(),
                           line=tok.line, column=tok.column)
        if tok.type is T.NOT:
            self.pos += 1
            return A.Unary(op="!", operand=self.parse_unary(),
                           line=tok.line, column=tok.column)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.current
            if tok.type is T.LBRACKET:
                self.pos += 1
                index = self.parse_expr()
                self.expect(T.RBRACKET, "']'")
                expr = A.Index(base=expr, index=index,
                               line=tok.line, column=tok.column)
            elif tok.type is T.DOT:
                self.pos += 1
                name = self.expect(T.IDENTIFIER, "field name")
                expr = A.Attribute(base=expr, name=name.text,
                                   line=tok.line, column=tok.column)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.current
        if tok.type is T.INT_LITERAL:
            self.pos += 1
            return A.IntLiteral(value=int(tok.text),
                                line=tok.line, column=tok.column)
        if tok.type is T.FLOAT_LITERAL:
            self.pos += 1
            return A.FloatLiteral(value=float(tok.text),
                                  line=tok.line, column=tok.column)
        if tok.type is T.IDENTIFIER:
            self.pos += 1
            if self.check(T.LPAREN):  # builtin call
                self.pos += 1
                args = []
                if not self.check(T.RPAREN):
                    args.append(self.parse_expr())
                    while self.accept(T.COMMA):
                        args.append(self.parse_expr())
                self.expect(T.RPAREN, "')'")
                return A.Call(func=tok.text, args=args,
                              line=tok.line, column=tok.column)
            return A.Name(ident=tok.text, line=tok.line, column=tok.column)
        if tok.type is T.LPAREN:
            self.pos += 1
            expr = self.parse_expr()
            self.expect(T.RPAREN, "')'")
            return expr
        raise self.error(
            f"unexpected token {tok.text or 'end of input'!r} "
            f"in expression")


def parse(source: str) -> A.Program:
    """Parse E-code ``source`` into an AST."""
    return _Parser(tokenize(source)).parse_program()
