"""Token definitions for the E-code language.

E-code (Eisenhauer, GIT-CC-02-42) is a small subset of C used by the
paper for dynamically generated monitoring filters: C operators, ``for``
loops, ``if`` statements and ``return`` statements.  This module defines
the token vocabulary shared by the lexer and parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(Enum):
    """Lexical token categories."""

    # literals and names
    INT_LITERAL = auto()
    FLOAT_LITERAL = auto()
    IDENTIFIER = auto()

    # keywords
    KW_INT = auto()
    KW_LONG = auto()
    KW_DOUBLE = auto()
    KW_FLOAT = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_FOR = auto()
    KW_WHILE = auto()
    KW_RETURN = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()

    # punctuation
    LPAREN = auto()      # (
    RPAREN = auto()      # )
    LBRACE = auto()      # {
    RBRACE = auto()      # }
    LBRACKET = auto()    # [
    RBRACKET = auto()    # ]
    SEMICOLON = auto()   # ;
    COMMA = auto()       # ,
    DOT = auto()         # .

    # operators
    ASSIGN = auto()          # =
    PLUS_ASSIGN = auto()     # +=
    MINUS_ASSIGN = auto()    # -=
    STAR_ASSIGN = auto()     # *=
    SLASH_ASSIGN = auto()    # /=
    PERCENT_ASSIGN = auto()  # %=
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    EQ = auto()          # ==
    NE = auto()          # !=
    AND = auto()         # &&
    OR = auto()          # ||
    NOT = auto()         # !
    INCREMENT = auto()   # ++
    DECREMENT = auto()   # --

    EOF = auto()


#: Reserved words mapped to their token types.
KEYWORDS: dict[str, TokenType] = {
    "int": TokenType.KW_INT,
    "long": TokenType.KW_LONG,
    "double": TokenType.KW_DOUBLE,
    "float": TokenType.KW_FLOAT,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "for": TokenType.KW_FOR,
    "while": TokenType.KW_WHILE,
    "return": TokenType.KW_RETURN,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}, " \
               f"{self.line}:{self.column})"
