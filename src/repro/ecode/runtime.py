"""Runtime support for compiled E-code filters.

A filter runs against the *monitoring record array* the paper's example
shows: ``input[LOADAVG].value``, ``input[X].last_value_sent``, writes to
``output[i]``.  This module provides those objects plus the execution
environment (guarded arithmetic, step limits, builtins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.ecode.sketches import (SKETCH_BUILTINS, SketchSpace)  # noqa: F401
from repro.errors import EcodeLimitError, EcodeRuntimeError

__all__ = ["MetricRecord", "InputView", "OutputArray", "ExecEnv",
           "FilterResult", "RECORD_FIELDS", "BUILTINS",
           "SKETCH_BUILTINS", "KEYED_BUILTINS", "SketchSpace",
           "KeyedSample"]

#: Numeric fields available on a record inside a filter.
RECORD_FIELDS = ("value", "last_value_sent", "timestamp")

#: Builtin functions: name -> (arity, implementation).
BUILTINS = {
    "abs": (1, abs),
    "fabs": (1, lambda x: abs(float(x))),
    "min": (2, min),
    "max": (2, max),
    "floor": (1, math.floor),
    "ceil": (1, math.ceil),
    "sqrt": (1, math.sqrt),
}

#: Keyed-stream builtins, dispatched on :class:`ExecEnv`:
#: name -> (argument kinds, result kind).  They read the optional
#: per-key record table (e.g. the per-PID process table a proc module
#: collected this poll) and emit ``(key, value)`` summary pairs —
#: the top-K path out of a filter.
KEYED_BUILTINS: dict[str, tuple[tuple[str, ...], str]] = {
    "nproc": ((), "int"),
    "proc_pid": (("int",), "int"),
    "proc_cpu": (("int",), "double"),
    "proc_mem": (("int",), "double"),
    "proc_io": (("int",), "double"),
    "emit": (("int", "num"), "int"),
}

#: One keyed record: ``(key, cpu, mem, io)`` — for the proc module the
#: key is a PID, cpu a core share in [0, n_cores], mem bytes resident,
#: io bytes/s.
KeyedSample = tuple[int, float, float, float]


@dataclass
class MetricRecord:
    """One monitored sample as seen by a filter.

    ``last_value_sent`` is the value most recently *published* for this
    metric — the paper's differential filter compares against it.
    """

    name: str
    value: float
    last_value_sent: float = 0.0
    timestamp: float = 0.0

    def copy(self) -> "MetricRecord":
        return replace(self)


class InputView:
    """Read-only indexed view of the input records."""

    def __init__(self, records: Sequence[MetricRecord]) -> None:
        self._records = list(records)

    def __len__(self) -> int:
        return len(self._records)

    def fetch(self, index: object) -> MetricRecord:
        if not isinstance(index, int) or isinstance(index, bool):
            raise EcodeRuntimeError(
                f"input index must be an integer, got {index!r}")
        if not 0 <= index < len(self._records):
            raise EcodeRuntimeError(
                f"input index {index} out of range "
                f"(have {len(self._records)} records)")
        return self._records[index]


class OutputArray:
    """Write-only sparse output buffer.

    Slots are filled by ``output[i] = record``; the final event payload
    is the filled slots in index order.  Records are stored as copies so
    subsequent field writes (``output[i].value = ...``) never alias the
    inputs.
    """

    MAX_SLOTS = 4096

    def __init__(self) -> None:
        self._slots: dict[int, MetricRecord] = {}

    def store(self, index: object, record: object) -> None:
        if not isinstance(index, int) or isinstance(index, bool):
            raise EcodeRuntimeError(
                f"output index must be an integer, got {index!r}")
        if index < 0 or index >= self.MAX_SLOTS:
            raise EcodeRuntimeError(
                f"output index {index} outside [0, {self.MAX_SLOTS})")
        if not isinstance(record, MetricRecord):
            raise EcodeRuntimeError(
                "only monitoring records can be stored in output[]")
        self._slots[index] = record.copy()

    def set_field(self, index: object, field: str, value: object) -> None:
        if not isinstance(index, int) or isinstance(index, bool):
            raise EcodeRuntimeError("output index must be an integer")
        if index not in self._slots:
            raise EcodeRuntimeError(
                f"output[{index}] written by field before being assigned "
                f"a record")
        if field not in RECORD_FIELDS:
            raise EcodeRuntimeError(f"unknown record field {field!r}")
        if not isinstance(value, (int, float)):
            raise EcodeRuntimeError("record fields are numeric")
        setattr(self._slots[index], field, float(value))

    def collect(self) -> list[MetricRecord]:
        """Filled slots, in ascending index order."""
        return [self._slots[i] for i in sorted(self._slots)]

    def __len__(self) -> int:
        return len(self._slots)


class ExecEnv:
    """Per-invocation execution services (arithmetic guards, limits,
    keyed-stream access and ``emit`` collection)."""

    #: Cap on ``emit()`` calls per invocation, mirroring
    #: :attr:`OutputArray.MAX_SLOTS`.
    MAX_EMITS = 4096

    def __init__(self, max_steps: int,
                 keyed: Optional[Sequence[KeyedSample]] = None) -> None:
        self.max_steps = max_steps
        self.steps = 0
        self._keyed: list[KeyedSample] = list(keyed or ())
        #: ``(key, value)`` pairs produced by ``emit()``, in call order.
        self.emitted: list[tuple[int, float]] = []

    def tick(self) -> None:
        """Loop-iteration guard injected into every loop body."""
        self.steps += 1
        if self.steps > self.max_steps:
            raise EcodeLimitError(
                f"filter exceeded its execution budget of "
                f"{self.max_steps} loop iterations")

    @staticmethod
    def idiv(a: int, b: int) -> int:
        """C-style integer division (truncation toward zero)."""
        if b == 0:
            raise EcodeRuntimeError("integer division by zero")
        return int(math.trunc(a / b))

    @staticmethod
    def imod(a: int, b: int) -> int:
        """C-style remainder (sign follows the dividend)."""
        if b == 0:
            raise EcodeRuntimeError("integer modulo by zero")
        return int(math.fmod(a, b))

    @staticmethod
    def fdiv(a: float, b: float) -> float:
        if b == 0:
            raise EcodeRuntimeError("division by zero")
        return a / b

    # -- keyed-stream builtins --------------------------------------------------

    def _row(self, name: str, index: object) -> KeyedSample:
        if not isinstance(index, int) or isinstance(index, bool):
            raise EcodeRuntimeError(
                f"{name}: index must be an integer, got {index!r}")
        if not 0 <= index < len(self._keyed):
            raise EcodeRuntimeError(
                f"{name}: index {index} out of range "
                f"(have {len(self._keyed)} keyed records)")
        return self._keyed[index]

    def nproc(self) -> int:
        return len(self._keyed)

    def proc_pid(self, index: object) -> int:
        return int(self._row("proc_pid", index)[0])

    def proc_cpu(self, index: object) -> float:
        return float(self._row("proc_cpu", index)[1])

    def proc_mem(self, index: object) -> float:
        return float(self._row("proc_mem", index)[2])

    def proc_io(self, index: object) -> float:
        return float(self._row("proc_io", index)[3])

    def emit(self, key: object, value: object) -> int:
        """Append a ``(key, value)`` summary pair; returns the count
        of pairs emitted so far."""
        if not isinstance(key, (int, float)):
            raise EcodeRuntimeError("emit: key must be numeric")
        if not isinstance(value, (int, float)):
            raise EcodeRuntimeError("emit: value must be numeric")
        if len(self.emitted) >= self.MAX_EMITS:
            raise EcodeRuntimeError(
                f"filter emitted more than {self.MAX_EMITS} pairs")
        self.emitted.append((int(key), float(value)))
        return len(self.emitted)


@dataclass
class FilterResult:
    """Outcome of running a compiled filter over a record set."""

    #: Records the filter placed in ``output[]``, in slot order.
    outputs: list[MetricRecord]
    #: Value of an explicit ``return`` statement (None if absent).
    returned: Optional[float]
    #: Loop iterations executed (observability/ablation hook).
    steps: int
    #: ``(key, value)`` pairs the filter produced via ``emit()`` — the
    #: top-K summary d-mon publishes instead of the keyed firehose.
    emitted: list[tuple[int, float]] = field(default_factory=list)
