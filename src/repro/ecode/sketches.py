"""Deterministic streaming-sketch primitives for E-code filters.

The eHashPipe idea recast for dproc: a publisher-side filter compresses
a per-key metric firehose (e.g. per-PID CPU counters) into a bounded
summary *before* submission.  Three primitives, all O(1) bounded
memory and reproducible — same seed, same stream ⇒ byte-identical
state (:meth:`SketchSpace.snapshot`):

* :class:`CountMinSketch` — seeded count-min: never under-counts, and
  over-counts by at most ε·N with probability 1-δ for width ``e/ε``
  and depth ``ln 1/δ`` (verified by ``tests/properties/
  test_sketch_bounds.py`` against exact reference counts);
* :class:`TopK` — a bounded heap of the K heaviest keys with
  increase-key semantics: offered the running count-min estimates, its
  membership equals the exact top-K whenever the k-th and (k+1)-th
  cumulative weights differ;
* :class:`KeyCounter` — exact per-key monotone counters with a bounded
  key universe, for small cardinalities where approximation is
  unnecessary.

Hashing is integer-only (splitmix64 finalisers), so placement is
identical across platforms and Python builds — no reliance on
``hash()`` randomisation.

Filters allocate these through :class:`SketchSpace`, the per-filter
object store that the code generator passes to every invocation as
``__sketch__``.  Allocation is memoised on the constructor arguments:
``cms_new(512, 4, 7)`` executed every poll returns the *same* handle,
so sketch state persists across invocations of one deployed filter —
and is dropped by :meth:`SketchSpace.reset` on DMon restart epochs so
counters never leak across a crash/reboot.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.errors import EcodeRuntimeError

__all__ = ["CountMinSketch", "TopK", "KeyCounter", "SketchSpace",
           "SKETCH_BUILTINS", "MAX_WIDTH", "MAX_DEPTH", "MAX_K",
           "mix64"]

#: Hard caps keeping every sketch O(1) bounded memory.
MAX_WIDTH = 65536
MAX_DEPTH = 16
MAX_K = 4096

_MASK64 = (1 << 64) - 1
_PHI = 0x9E3779B97F4A7C15  # 2^64 / golden ratio


def mix64(x: int) -> int:
    """splitmix64 finaliser: a fast, well-distributed 64-bit mixer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _as_key(value: object) -> int:
    """Coerce a filter-supplied key to a signed 64-bit integer."""
    key = int(value)  # type: ignore[call-overload]
    return ((key + (1 << 63)) & _MASK64) - (1 << 63)


def _as_weight(name: str, value: object) -> float:
    weight = float(value)  # type: ignore[arg-type]
    if not weight >= 0.0:  # rejects negatives and NaN alike
        raise EcodeRuntimeError(
            f"{name}: weight must be non-negative, got {weight!r}")
    return weight


class CountMinSketch:
    """Seeded count-min sketch over 64-bit keys with float weights."""

    __slots__ = ("width", "depth", "seed", "total", "_rows", "_salts")

    def __init__(self, width: int, depth: int, seed: int) -> None:
        if not 1 <= width <= MAX_WIDTH:
            raise EcodeRuntimeError(
                f"cms width must be in [1, {MAX_WIDTH}], got {width}")
        if not 1 <= depth <= MAX_DEPTH:
            raise EcodeRuntimeError(
                f"cms depth must be in [1, {MAX_DEPTH}], got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = _as_key(seed) & _MASK64
        self.total = 0.0
        self._rows = [[0.0] * self.width for _ in range(self.depth)]
        #: One pre-mixed salt per row: bucket(row, key) needs a single
        #: mix on the hot path.
        self._salts = [mix64(self.seed ^ (row * _PHI))
                       for row in range(self.depth)]

    def bucket(self, row: int, key: int) -> int:
        return mix64(self._salts[row] ^ (key & _MASK64)) % self.width

    def add(self, key: int, weight: float) -> float:
        """Add ``weight`` to ``key``; returns the post-add estimate."""
        est = float("inf")
        for row in range(self.depth):
            cells = self._rows[row]
            bucket = self.bucket(row, key)
            cells[bucket] += weight
            if cells[bucket] < est:
                est = cells[bucket]
        self.total += weight
        return est

    def estimate(self, key: int) -> float:
        return min(self._rows[row][self.bucket(row, key)]
                   for row in range(self.depth))

    def snapshot(self) -> bytes:
        head = struct.pack(">IIQd", self.width, self.depth, self.seed,
                           self.total)
        body = b"".join(struct.pack(f">{self.width}d", *row)
                        for row in self._rows)
        return head + body


class TopK:
    """Bounded top-K table with increase-key and evict-min semantics.

    Offers carry *cumulative* weights (typically count-min estimates).
    A key's stored weight only ever increases; once full, the lightest
    entry is evicted for a strictly heavier newcomer, so the minimum
    retained weight is non-decreasing — with exact cumulative offers
    the final membership equals ``sorted(totals)[:k]`` whenever the
    k-th and (k+1)-th totals differ.
    """

    __slots__ = ("k", "_weights", "_order")

    def __init__(self, k: int) -> None:
        if not 1 <= k <= MAX_K:
            raise EcodeRuntimeError(
                f"top-K size must be in [1, {MAX_K}], got {k}")
        self.k = int(k)
        self._weights: dict[int, float] = {}
        self._order: list[tuple[int, float]] | None = None

    def offer(self, key: int, weight: float) -> int:
        """Offer ``key`` at ``weight``; 1 if retained, else 0."""
        current = self._weights.get(key)
        if current is not None:
            if weight > current:
                self._weights[key] = weight
                self._order = None
            return 1
        if len(self._weights) < self.k:
            self._weights[key] = weight
            self._order = None
            return 1
        lightest = min(self._weights,
                       key=lambda k_: (self._weights[k_], -k_))
        if weight > self._weights[lightest]:
            del self._weights[lightest]
            self._weights[key] = weight
            self._order = None
            return 1
        return 0

    def __len__(self) -> int:
        return len(self._weights)

    def items(self) -> list[tuple[int, float]]:
        """Retained ``(key, weight)`` pairs, heaviest first (ties by
        ascending key) — the deterministic ranking order."""
        if self._order is None:
            self._order = sorted(self._weights.items(),
                                 key=lambda p: (-p[1], p[0]))
        return self._order

    def snapshot(self) -> bytes:
        head = struct.pack(">II", self.k, len(self._weights))
        body = b"".join(struct.pack(">qd", key, weight)
                        for key, weight in self.items())
        return head + body


class KeyCounter:
    """Exact monotone per-key counters with a bounded key universe."""

    __slots__ = ("tag", "_counts")

    MAX_KEYS = 65536

    def __init__(self, tag: int) -> None:
        self.tag = _as_key(tag)
        self._counts: dict[int, float] = {}

    def add(self, key: int, delta: float) -> float:
        if key not in self._counts:
            if len(self._counts) >= self.MAX_KEYS:
                raise EcodeRuntimeError(
                    f"counter {self.tag} exceeded {self.MAX_KEYS} "
                    f"distinct keys")
            self._counts[key] = 0.0
        self._counts[key] += delta
        return self._counts[key]

    def get(self, key: int) -> float:
        return self._counts.get(key, 0.0)

    def __len__(self) -> int:
        return len(self._counts)

    def snapshot(self) -> bytes:
        head = struct.pack(">qI", self.tag, len(self._counts))
        body = b"".join(struct.pack(">qd", key, count)
                        for key, count in sorted(self._counts.items()))
        return head + body


#: E-code sketch builtins: name -> (argument kinds, result kind).
#: ``int`` arguments must be integer expressions (handles, keys,
#: ranks, shape parameters); ``num`` accepts int or double (weights).
SKETCH_BUILTINS: dict[str, tuple[tuple[str, ...], str]] = {
    "cms_new": (("int", "int", "int"), "int"),
    "cms_add": (("int", "int", "num"), "double"),
    "cms_estimate": (("int", "int"), "double"),
    "cms_total": (("int",), "double"),
    "topk_new": (("int",), "int"),
    "topk_offer": (("int", "int", "num"), "int"),
    "topk_size": (("int",), "int"),
    "topk_key": (("int", "int"), "int"),
    "topk_weight": (("int", "int"), "double"),
    "ctr_new": (("int",), "int"),
    "ctr_add": (("int", "int", "num"), "double"),
    "ctr_get": (("int", "int"), "double"),
}

_TAG_CMS = 1
_TAG_TOPK = 2
_TAG_CTR = 3


class SketchSpace:
    """Per-filter store of sketch objects, persistent across polls.

    The code generator passes one instance to every invocation of a
    compiled filter as ``__sketch__``; the ``cms_*``/``topk_*``/
    ``ctr_*`` builtins dispatch to the methods below.  ``*_new`` is
    memoised on its arguments so re-executing the allocation every
    poll yields a stable handle instead of a fresh sketch.
    """

    MAX_OBJECTS = 64

    def __init__(self) -> None:
        self._objects: dict[int, object] = {}
        self._memo: dict[tuple, int] = {}
        self._next_handle = 1

    def reset(self) -> None:
        """Drop all sketch state (DMon restart epochs call this)."""
        self._objects.clear()
        self._memo.clear()
        self._next_handle = 1

    def __len__(self) -> int:
        return len(self._objects)

    def snapshot(self) -> bytes:
        """Deterministic serialisation of every live object, in handle
        order — equal streams through equal programs ⇒ equal bytes."""
        parts = []
        for handle in sorted(self._objects):
            obj = self._objects[handle]
            tag = (_TAG_CMS if isinstance(obj, CountMinSketch)
                   else _TAG_TOPK if isinstance(obj, TopK) else _TAG_CTR)
            payload = obj.snapshot()  # type: ignore[attr-defined]
            parts.append(struct.pack(">IBI", handle, tag, len(payload)))
            parts.append(payload)
        return b"".join(parts)

    # -- allocation -------------------------------------------------------------

    def _alloc(self, memo_key: tuple,
               build: Callable[[], object]) -> int:
        handle = self._memo.get(memo_key)
        if handle is not None:
            return handle
        if len(self._objects) >= self.MAX_OBJECTS:
            raise EcodeRuntimeError(
                f"filter exceeded {self.MAX_OBJECTS} sketch objects")
        obj = build()  # validates parameters before the handle exists
        handle = self._next_handle
        self._next_handle += 1
        self._objects[handle] = obj
        self._memo[memo_key] = handle
        return handle

    def _get(self, name: str, handle: object, cls: type) -> object:
        obj = self._objects.get(int(handle))  # type: ignore[call-overload]
        if not isinstance(obj, cls):
            raise EcodeRuntimeError(
                f"{name}: {handle!r} is not a live "
                f"{cls.__name__} handle")
        return obj

    # -- count-min --------------------------------------------------------------

    def cms_new(self, width: int, depth: int, seed: int) -> int:
        return self._alloc(
            ("cms", int(width), int(depth), _as_key(seed)),
            lambda: CountMinSketch(int(width), int(depth), seed))

    def cms_add(self, handle: int, key: int, weight: object) -> float:
        cms = self._get("cms_add", handle, CountMinSketch)
        return cms.add(_as_key(key),  # type: ignore[attr-defined]
                       _as_weight("cms_add", weight))

    def cms_estimate(self, handle: int, key: int) -> float:
        cms = self._get("cms_estimate", handle, CountMinSketch)
        return cms.estimate(_as_key(key))  # type: ignore[attr-defined]

    def cms_total(self, handle: int) -> float:
        cms = self._get("cms_total", handle, CountMinSketch)
        return cms.total  # type: ignore[attr-defined]

    # -- top-K ------------------------------------------------------------------

    def topk_new(self, k: int) -> int:
        return self._alloc(("topk", int(k)), lambda: TopK(int(k)))

    def topk_offer(self, handle: int, key: int, weight: object) -> int:
        topk = self._get("topk_offer", handle, TopK)
        return topk.offer(_as_key(key),  # type: ignore[attr-defined]
                          _as_weight("topk_offer", weight))

    def topk_size(self, handle: int) -> int:
        return len(self._get("topk_size", handle, TopK))  # type: ignore[arg-type]

    def _rank(self, name: str, handle: object,
              rank: object) -> tuple[int, float]:
        topk = self._get(name, handle, TopK)
        items = topk.items()  # type: ignore[attr-defined]
        index = int(rank)  # type: ignore[call-overload]
        if not 0 <= index < len(items):
            raise EcodeRuntimeError(
                f"{name}: rank {index} out of range "
                f"(table holds {len(items)})")
        return items[index]

    def topk_key(self, handle: int, rank: int) -> int:
        return self._rank("topk_key", handle, rank)[0]

    def topk_weight(self, handle: int, rank: int) -> float:
        return self._rank("topk_weight", handle, rank)[1]

    def topk_items(self, handle: int) -> list[tuple[int, float]]:
        """Python-side accessor (not an E-code builtin): the ranked
        ``(key, weight)`` list d-mon publishes as a summary."""
        topk = self._get("topk_items", handle, TopK)
        return list(topk.items())  # type: ignore[attr-defined]

    # -- per-key counters -------------------------------------------------------

    def ctr_new(self, tag: int) -> int:
        return self._alloc(("ctr", _as_key(tag)),
                           lambda: KeyCounter(int(tag)))

    def ctr_add(self, handle: int, key: int, delta: object) -> float:
        ctr = self._get("ctr_add", handle, KeyCounter)
        return ctr.add(_as_key(key),  # type: ignore[attr-defined]
                       _as_weight("ctr_add", delta))

    def ctr_get(self, handle: int, key: int) -> float:
        ctr = self._get("ctr_get", handle, KeyCounter)
        return ctr.get(_as_key(key))  # type: ignore[attr-defined]
