"""Code generation: E-code AST → native Python function.

This is the reproduction of E-code's *dynamic binary code generation*:
a filter arrives as a source string, is parsed and type-checked, and is
then translated into a Python :mod:`ast` module function which
``compile()`` turns into CPython bytecode — compiled **at the host that
will execute it**, exactly as the paper describes (only the target ISA
differs; see DESIGN.md §2).

Safety properties of the generated code:

* no access to anything but the filter's ``input``/``output`` arrays,
  declared variables, whitelisted builtins, and the guarded
  :class:`~repro.ecode.runtime.ExecEnv`;
* every loop body is instrumented with an execution-budget check, so a
  runaway filter raises :class:`~repro.errors.EcodeLimitError` instead
  of hanging the (simulated) kernel.
"""

from __future__ import annotations

import ast as py
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.ecode import ast_nodes as A
from repro.ecode.analyzer import AnalysisResult, EType, analyze
from repro.ecode.parser import parse
from repro.ecode.runtime import (BUILTINS, ExecEnv, FilterResult,
                                 InputView, KEYED_BUILTINS, KeyedSample,
                                 MetricRecord, OutputArray,
                                 SKETCH_BUILTINS, SketchSpace)
from repro.errors import EcodeError, EcodeRuntimeError

__all__ = ["CompiledFilter", "compile_filter", "DEFAULT_MAX_STEPS"]

#: Default loop-iteration budget for one filter invocation.
DEFAULT_MAX_STEPS = 100_000

_FUNC_NAME = "__ecode_filter__"


def _name(ident: str, store: bool = False) -> py.Name:
    return py.Name(id=ident, ctx=py.Store() if store else py.Load())


def _const(value: object) -> py.Constant:
    return py.Constant(value=value)


def _call(func: py.expr, args: list[py.expr]) -> py.Call:
    return py.Call(func=func, args=args, keywords=[])


def _method(obj: str, method: str, args: list[py.expr]) -> py.Call:
    return _call(py.Attribute(value=_name(obj), attr=method,
                              ctx=py.Load()), args)


def _truthy(expr: py.expr) -> py.expr:
    """C truthiness: expression != 0."""
    return py.Compare(left=expr, ops=[py.NotEq()],
                      comparators=[_const(0)])


def _bool_to_int(test: py.expr) -> py.expr:
    """Wrap a Python boolean expression as a C int (1/0)."""
    return py.IfExp(test=test, body=_const(1), orelse=_const(0))


_ARITH_OPS: dict[str, py.operator] = {
    "+": py.Add(), "-": py.Sub(), "*": py.Mult(),
}

_CMP_OPS: dict[str, py.cmpop] = {
    "==": py.Eq(), "!=": py.NotEq(), "<": py.Lt(),
    "<=": py.LtE(), ">": py.Gt(), ">=": py.GtE(),
}


def _block_has_loop_control(block: A.Block) -> bool:
    """True when ``break``/``continue`` binds to *this* loop level
    (nested loops capture their own control statements)."""
    def scan(stmts: list[A.Stmt]) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (A.Break, A.Continue)):
                return True
            if isinstance(stmt, A.If):
                if scan(stmt.then_body.statements):
                    return True
                if stmt.else_body is not None \
                        and scan(stmt.else_body.statements):
                    return True
            elif isinstance(stmt, A.Block):
                if scan(stmt.statements):
                    return True
            # For/While swallow their own break/continue: don't descend.
        return False

    return scan(block.statements)


class _Generator:
    def __init__(self, analysis: AnalysisResult) -> None:
        self.analysis = analysis
        #: Innermost-first loop contexts: "while" (native Python
        #: break/continue) or a break-flag name for wrapped for-loops.
        self._loop_stack: list[str] = []
        self._flag_ids = 0

    # -- expressions -----------------------------------------------------------

    def expr(self, node: A.Expr) -> py.expr:
        if isinstance(node, A.IntLiteral):
            return _const(node.value)
        if isinstance(node, A.FloatLiteral):
            return _const(node.value)
        if isinstance(node, A.Name):
            const = getattr(node, "_const", None)
            if const is not None:
                value = float(const)
                return _const(int(value) if value.is_integer() else value)
            return _name(node._symbol.mangled)  # type: ignore[attr-defined]
        if isinstance(node, A.Binary):
            return self.binary(node)
        if isinstance(node, A.Unary):
            inner = self.expr(node.operand)
            if node.op == "-":
                return py.UnaryOp(op=py.USub(), operand=inner)
            if node.op == "+":
                return inner
            # '!'
            return _bool_to_int(py.Compare(
                left=inner, ops=[py.Eq()], comparators=[_const(0)]))
        if isinstance(node, A.Index):
            # Only input[] reads reach codegen as expressions.
            return _method("__input__", "fetch", [self.expr(node.index)])
        if isinstance(node, A.Attribute):
            return py.Attribute(value=self.expr(node.base),
                                attr=node.name, ctx=py.Load())
        if isinstance(node, A.Call):
            args = [self.expr(a) for a in node.args]
            if node.func in SKETCH_BUILTINS:
                return _method("__sketch__", node.func, args)
            if node.func in KEYED_BUILTINS:
                return _method("__env__", node.func, args)
            return _call(_name(f"__bi_{node.func}__"), args)
        raise EcodeError(  # pragma: no cover - analyzer is exhaustive
            f"cannot generate code for {type(node).__name__}")

    def binary(self, node: A.Binary) -> py.expr:
        op = node.op
        if op in ("&&", "||"):
            left = _truthy(self.expr(node.left))
            right = _truthy(self.expr(node.right))
            boolop = py.And() if op == "&&" else py.Or()
            return _bool_to_int(py.BoolOp(op=boolop,
                                          values=[left, right]))
        if op in _CMP_OPS:
            return _bool_to_int(py.Compare(
                left=self.expr(node.left), ops=[_CMP_OPS[op]],
                comparators=[self.expr(node.right)]))
        left = self.expr(node.left)
        right = self.expr(node.right)
        both_int = (self._etype(node.left) is EType.INT
                    and self._etype(node.right) is EType.INT)
        if op == "/":
            method = "idiv" if both_int else "fdiv"
            return _method("__env__", method, [left, right])
        if op == "%":
            return _method("__env__", "imod", [left, right])
        return py.BinOp(left=left, op=_ARITH_OPS[op], right=right)

    @staticmethod
    def _etype(node: A.Expr) -> EType:
        return node._etype  # type: ignore[attr-defined]

    def _coerce(self, expr: py.expr, target: EType,
                source: EType) -> py.expr:
        """Apply C conversion on assignment (double → int truncates)."""
        if target is EType.INT and source is EType.DOUBLE:
            return _call(_name("__trunc__"), [expr])
        if target is EType.DOUBLE and source is EType.INT:
            return _call(_name("float"), [expr])
        return expr

    # -- statements -----------------------------------------------------------

    def block(self, block: A.Block) -> list[py.stmt]:
        out: list[py.stmt] = []
        for stmt in block.statements:
            out.extend(self.statement(stmt))
        return out

    def statement(self, stmt: A.Stmt) -> list[py.stmt]:
        if isinstance(stmt, A.VarDecl):
            sym = stmt._symbol  # type: ignore[attr-defined]
            if stmt.init is not None:
                value = self._coerce(self.expr(stmt.init), sym.etype,
                                     self._etype(stmt.init))
            else:
                value = _const(0 if sym.etype is EType.INT else 0.0)
            return [py.Assign(targets=[_name(sym.mangled, store=True)],
                              value=value)]
        if isinstance(stmt, A.Assign):
            return [self.assign(stmt)]
        if isinstance(stmt, A.IncDec):
            sym = stmt.target._symbol  # type: ignore[attr-defined]
            one: py.expr = _const(1 if sym.etype is EType.INT else 1.0)
            op = py.Add() if stmt.op == "++" else py.Sub()
            return [py.AugAssign(target=_name(sym.mangled, store=True),
                                 op=op, value=one)]
        if isinstance(stmt, A.ExprStmt):
            return [py.Expr(value=self.expr(stmt.expr))]
        if isinstance(stmt, A.If):
            orelse = (self.block(stmt.else_body)
                      if stmt.else_body is not None else [])
            return [py.If(test=_truthy(self.expr(stmt.cond)),
                          body=self.block(stmt.then_body) or [py.Pass()],
                          orelse=orelse)]
        if isinstance(stmt, A.For):
            return self._for_loop(stmt)
        if isinstance(stmt, A.While):
            self._loop_stack.append("while")
            try:
                body = [py.Expr(value=_method("__env__", "tick", []))]
                body.extend(self.block(stmt.body))
            finally:
                self._loop_stack.pop()
            return [py.While(test=_truthy(self.expr(stmt.cond)),
                             body=body, orelse=[])]
        if isinstance(stmt, A.Break):
            ctx = self._loop_stack[-1]
            if ctx == "while":
                return [py.Break()]
            # Wrapped for-loop: set the flag, leave the once-wrapper.
            return [py.Assign(targets=[_name(ctx, store=True)],
                              value=_const(True)),
                    py.Break()]
        if isinstance(stmt, A.Continue):
            ctx = self._loop_stack[-1]
            if ctx == "while":
                return [py.Continue()]
            # Wrapped for-loop: leaving the once-wrapper runs the step.
            return [py.Break()]
        if isinstance(stmt, A.Return):
            value = (self.expr(stmt.value)
                     if stmt.value is not None else _const(None))
            return [py.Return(value=value)]
        if isinstance(stmt, A.Block):
            return self.block(stmt)
        raise EcodeError(  # pragma: no cover - exhaustive
            f"cannot generate code for {type(stmt).__name__}")

    def _for_loop(self, stmt: A.For) -> list[py.stmt]:
        """Compile a C for-loop.

        Without loop-control statements the body and step inline into a
        Python ``while``.  With ``break``/``continue`` the body runs
        inside a single-pass ``for`` wrapper so that ``continue`` (a
        Python ``break`` of the wrapper) still executes the step, and
        ``break`` sets a flag checked after the wrapper.
        """
        out: list[py.stmt] = []
        if stmt.init is not None:
            out.extend(self.statement(stmt.init))
        test = (_truthy(self.expr(stmt.cond))
                if stmt.cond is not None else _const(True))
        tick = py.Expr(value=_method("__env__", "tick", []))
        needs_wrapper = _block_has_loop_control(stmt.body)
        if not needs_wrapper:
            self._loop_stack.append("while")  # unused but balanced
            try:
                body: list[py.stmt] = [tick]
                body.extend(self.block(stmt.body))
            finally:
                self._loop_stack.pop()
            if stmt.step is not None:
                body.extend(self.statement(stmt.step))
            out.append(py.While(test=test, body=body, orelse=[]))
            return out

        self._flag_ids += 1
        flag = f"__brk{self._flag_ids}__"
        self._loop_stack.append(flag)
        try:
            inner = self.block(stmt.body) or [py.Pass()]
        finally:
            self._loop_stack.pop()
        once = py.For(
            target=_name(f"__once{self._flag_ids}__", store=True),
            iter=py.Tuple(elts=[_const(0)], ctx=py.Load()),
            body=inner, orelse=[])
        body = [tick,
                py.Assign(targets=[_name(flag, store=True)],
                          value=_const(False)),
                once,
                py.If(test=_name(flag), body=[py.Break()], orelse=[])]
        if stmt.step is not None:
            body.extend(self.statement(stmt.step))
        out.append(py.While(test=test, body=body, orelse=[]))
        return out

    def assign(self, stmt: A.Assign) -> py.stmt:
        target = stmt.target
        if isinstance(target, A.Name):
            sym = target._symbol  # type: ignore[attr-defined]
            if stmt.op == "=":
                value = self._coerce(self.expr(stmt.value), sym.etype,
                                     self._etype(stmt.value))
                return py.Assign(
                    targets=[_name(sym.mangled, store=True)], value=value)
            # Desugar augmented assignment: x op= v  →  x = x op v,
            # applying the same operator typing rules as Binary.
            op = stmt.op[0]
            synthetic = A.Binary(op=op, left=target, right=stmt.value,
                                 line=stmt.line, column=stmt.column)
            vt = self._etype(stmt.value)
            result_type = (EType.DOUBLE
                           if EType.DOUBLE in (sym.etype, vt)
                           else EType.INT)
            synthetic._etype = result_type  # type: ignore[attr-defined]
            value = self._coerce(self.binary(synthetic), sym.etype,
                                 result_type)
            return py.Assign(
                targets=[_name(sym.mangled, store=True)], value=value)
        if isinstance(target, A.Index):
            return py.Expr(value=_method(
                "__output__", "store",
                [self.expr(target.index), self.expr(stmt.value)]))
        # Attribute on an output slot: output[i].field = value
        assert isinstance(target, A.Attribute)
        base = target.base
        assert isinstance(base, A.Index)
        return py.Expr(value=_method(
            "__output__", "set_field",
            [self.expr(base.index), _const(target.name),
             self.expr(stmt.value)]))

    # -- function assembly ------------------------------------------------------

    def build_module(self) -> py.Module:
        args = py.arguments(
            posonlyargs=[],
            args=[py.arg(arg="__input__"), py.arg(arg="__output__"),
                  py.arg(arg="__env__"), py.arg(arg="__sketch__")],
            kwonlyargs=[], kw_defaults=[], defaults=[])
        body = self.block(self.analysis.program.body) or [py.Pass()]
        func = py.FunctionDef(name=_FUNC_NAME, args=args, body=body,
                              decorator_list=[], returns=None)
        module = py.Module(body=[func], type_ignores=[])
        py.fix_missing_locations(module)
        return module


@dataclass
class CompiledFilter:
    """A dynamically generated, executable monitoring filter."""

    source: str
    constants: dict[str, float]
    max_steps: int
    _pyfunc: object
    has_loops: bool
    #: Sketch calls make a filter *stateful*: the same sketch space is
    #: handed to every invocation, so count-min/top-K contents persist
    #: across polls until :meth:`reset_state`.
    uses_sketch: bool = False
    #: Filter reads the keyed record stream (per-PID table) or emits.
    uses_keyed: bool = False
    _sketch: SketchSpace = field(default_factory=SketchSpace)

    def run(self, records: Sequence[MetricRecord],
            keyed: Optional[Sequence[KeyedSample]] = None) -> FilterResult:
        """Execute the filter over ``records``.

        Returns the records the filter placed in ``output[]`` (what
        d-mon will publish) plus any explicit return value, and — for
        keyed filters — the ``(key, value)`` pairs it emitted over the
        optional per-key record table ``keyed``.
        """
        view = InputView(records)
        output = OutputArray()
        env = ExecEnv(self.max_steps, keyed=keyed)
        try:
            returned = self._pyfunc(  # type: ignore[operator]
                view, output, env, self._sketch)
        except EcodeError:
            raise
        except ZeroDivisionError as exc:  # pragma: no cover - guarded
            raise EcodeRuntimeError(str(exc)) from exc
        except (TypeError, ValueError, OverflowError) as exc:
            raise EcodeRuntimeError(
                f"filter execution failed: {exc}") from exc
        return FilterResult(outputs=output.collect(),
                            returned=returned, steps=env.steps,
                            emitted=env.emitted)

    __call__ = run

    def reset_state(self) -> None:
        """Drop persistent sketch state (restart-epoch hygiene)."""
        self._sketch.reset()

    def sketch_state(self) -> bytes:
        """Deterministic serialisation of the filter's sketch state."""
        return self._sketch.snapshot()


def compile_filter(source: str,
                   constants: Optional[Mapping[str, float]] = None,
                   max_steps: int = DEFAULT_MAX_STEPS) -> CompiledFilter:
    """Compile E-code ``source`` into an executable filter.

    Parameters
    ----------
    constants:
        Named integer/float constants visible to the filter — in dproc
        these are the metric indices (``LOADAVG``, ``FREEMEM``, ...).
    max_steps:
        Loop-iteration budget per invocation.
    """
    constants = dict(constants or {})
    program = parse(source)
    analysis = analyze(program, constants)
    module = _Generator(analysis).build_module()
    code = compile(module, filename="<ecode>", mode="exec")
    namespace: dict[str, object] = {
        "__builtins__": {"float": float, "int": int},
        "__trunc__": lambda x: int(x) if x >= 0 else -int(-x),
    }
    for name, (_arity, impl) in BUILTINS.items():
        namespace[f"__bi_{name}__"] = impl
    exec(code, namespace)  # noqa: S102 - deliberate dynamic codegen
    return CompiledFilter(source=source, constants=constants,
                          max_steps=max_steps,
                          _pyfunc=namespace[_FUNC_NAME],
                          has_loops=analysis.has_loops,
                          uses_sketch=analysis.uses_sketch,
                          uses_keyed=analysis.uses_keyed)
