"""AST node definitions for the E-code language.

Nodes are plain dataclasses carrying source positions so that the
analyzer and code generator can report precise errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Node", "Expr", "Stmt",
    "IntLiteral", "FloatLiteral", "Name", "Binary", "Unary",
    "Index", "Attribute", "Call",
    "VarDecl", "Assign", "IncDec", "ExprStmt", "If", "For", "While",
    "Return", "Break", "Continue", "Block", "Program",
]


@dataclass
class Node:
    """Base class: every node knows its source position."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# --- expressions -----------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Binary(Expr):
    """Binary operation; ``op`` is the C operator text ('+', '&&', ...)."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    """Unary operation; ``op`` is '-', '+' or '!'."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Index(Expr):
    """Subscript, e.g. ``input[LOADAVG]`` or ``output[i]``."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Attribute(Expr):
    """Field access, e.g. ``input[LOADAVG].value``."""

    base: Expr = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class Call(Expr):
    """Builtin function call, e.g. ``fabs(x)``."""

    func: str = ""
    args: list[Expr] = field(default_factory=list)


# --- statements --------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    """Declaration such as ``int i = 0;`` (``init`` may be None)."""

    ctype: str = "int"            # 'int' | 'long' | 'double' | 'float'
    name: str = ""
    init: Optional[Expr] = None


AssignTarget = Union[Name, Index, Attribute]


@dataclass
class Assign(Stmt):
    """Assignment statement; ``op`` is '=', '+=', '-=', '*=', '/=', '%='."""

    target: AssignTarget = None  # type: ignore[assignment]
    op: str = "="
    value: Expr = None  # type: ignore[assignment]


@dataclass
class IncDec(Stmt):
    """``i++`` / ``i--`` used as a statement (common in for-steps)."""

    target: Name = None  # type: ignore[assignment]
    op: str = "++"


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: "Block" = None  # type: ignore[assignment]
    else_body: Optional["Block"] = None


@dataclass
class For(Stmt):
    """C-style for; init/step are optional simple statements."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: "Block" = None  # type: ignore[assignment]


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: "Block" = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """``break;`` — exit the innermost loop."""


@dataclass
class Continue(Stmt):
    """``continue;`` — next iteration of the innermost loop."""


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class Program(Node):
    """A whole filter: the top-level statement list."""

    body: Block = None  # type: ignore[assignment]
