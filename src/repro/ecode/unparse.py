"""AST → E-code source rendering (unparser).

Used for control-plane observability (showing a deployed filter's
normalised form) and by the test suite's parse→render→parse round-trip
properties.  Output is always fully parenthesised in expressions, so it
re-parses to a structurally identical AST regardless of precedence.
"""

from __future__ import annotations

from repro.ecode import ast_nodes as A
from repro.errors import EcodeError

__all__ = ["unparse"]

_INDENT = "    "


def _expr(node: A.Expr) -> str:
    if isinstance(node, A.IntLiteral):
        return str(node.value)
    if isinstance(node, A.FloatLiteral):
        return repr(node.value)
    if isinstance(node, A.Name):
        return node.ident
    if isinstance(node, A.Binary):
        return f"({_expr(node.left)} {node.op} {_expr(node.right)})"
    if isinstance(node, A.Unary):
        return f"({node.op}{_expr(node.operand)})"
    if isinstance(node, A.Index):
        return f"{_expr(node.base)}[{_expr(node.index)}]"
    if isinstance(node, A.Attribute):
        return f"{_expr(node.base)}.{node.name}"
    if isinstance(node, A.Call):
        args = ", ".join(_expr(a) for a in node.args)
        return f"{node.func}({args})"
    raise EcodeError(  # pragma: no cover - exhaustive
        f"cannot unparse expression {type(node).__name__}")


def _simple(stmt: A.Stmt) -> str:
    """Render a statement without trailing semicolon/newline (for
    for-loop headers)."""
    if isinstance(stmt, A.VarDecl):
        init = f" = {_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{stmt.ctype} {stmt.name}{init}"
    if isinstance(stmt, A.Assign):
        return f"{_expr(stmt.target)} {stmt.op} {_expr(stmt.value)}"
    if isinstance(stmt, A.IncDec):
        return f"{stmt.target.ident}{stmt.op}"
    if isinstance(stmt, A.ExprStmt):
        return _expr(stmt.expr)
    raise EcodeError(  # pragma: no cover - parser-restricted
        f"{type(stmt).__name__} is not a simple statement")


def _stmt(stmt: A.Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, (A.VarDecl, A.Assign, A.IncDec, A.ExprStmt)):
        return [f"{pad}{_simple(stmt)};"]
    if isinstance(stmt, A.Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {_expr(stmt.value)};"]
    if isinstance(stmt, A.Break):
        return [f"{pad}break;"]
    if isinstance(stmt, A.Continue):
        return [f"{pad}continue;"]
    if isinstance(stmt, A.If):
        lines = [f"{pad}if ({_expr(stmt.cond)}) {{"]
        lines.extend(_block_lines(stmt.then_body, depth + 1))
        if stmt.else_body is not None:
            lines.append(f"{pad}}} else {{")
            lines.extend(_block_lines(stmt.else_body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, A.For):
        init = _simple(stmt.init) if stmt.init is not None else ""
        cond = _expr(stmt.cond) if stmt.cond is not None else ""
        step = _simple(stmt.step) if stmt.step is not None else ""
        lines = [f"{pad}for ({init}; {cond}; {step}) {{"]
        lines.extend(_block_lines(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, A.While):
        lines = [f"{pad}while ({_expr(stmt.cond)}) {{"]
        lines.extend(_block_lines(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, A.Block):
        lines = [f"{pad}{{"]
        lines.extend(_block_lines(stmt, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise EcodeError(  # pragma: no cover - exhaustive
        f"cannot unparse statement {type(stmt).__name__}")


def _block_lines(block: A.Block, depth: int) -> list[str]:
    lines: list[str] = []
    for stmt in block.statements:
        lines.extend(_stmt(stmt, depth))
    return lines


def unparse(program: A.Program) -> str:
    """Render a parsed program back to E-code source."""
    return "\n".join(_block_lines(program.body, 0)) + "\n"
