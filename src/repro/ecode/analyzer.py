"""Semantic analysis for E-code: symbol tables and type checking.

The analyzer walks the AST once, attaching an inferred :class:`EType`
to every expression node (``node._etype``) which the code generator
then consumes.  All errors are :class:`EcodeTypeError` with positions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum, auto
from typing import Mapping

from repro.ecode import ast_nodes as A
from repro.ecode.runtime import (BUILTINS, KEYED_BUILTINS, RECORD_FIELDS,
                                 SKETCH_BUILTINS)
from repro.errors import EcodeTypeError

__all__ = ["EType", "Symbol", "analyze", "AnalysisResult"]


class EType(Enum):
    """E-code static types."""

    INT = auto()
    DOUBLE = auto()
    RECORD = auto()
    INPUT_ARRAY = auto()
    OUTPUT_ARRAY = auto()

    @property
    def is_numeric(self) -> bool:
        return self in (EType.INT, EType.DOUBLE)


_CTYPE_MAP = {
    "int": EType.INT,
    "long": EType.INT,
    "double": EType.DOUBLE,
    "float": EType.DOUBLE,
}


@dataclass(frozen=True)
class Symbol:
    """A declared variable: its type plus a unique mangled Python name.

    Mangling per-declaration (not per-name) preserves C block scoping —
    two sibling blocks may each declare their own ``i`` — when the code
    generator flattens blocks into one Python function body.
    """

    name: str
    etype: EType
    mangled: str


_sym_ids = itertools.count(1)


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.symbols: dict[str, Symbol] = {}

    def declare(self, name: str, etype: EType, node: A.Node) -> Symbol:
        if name in self.symbols:
            raise EcodeTypeError(f"redeclaration of {name!r}",
                                 node.line, node.column)
        sym = Symbol(name, etype, f"_v{next(_sym_ids)}_{name}")
        self.symbols[name] = sym
        return sym

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class AnalysisResult:
    """What the analyzer hands to the code generator."""

    def __init__(self, program: A.Program,
                 constants: Mapping[str, float]) -> None:
        self.program = program
        self.constants = dict(constants)
        #: Names of all user variables declared anywhere in the filter.
        self.variables: set[str] = set()
        #: True when the filter contains loops (ablation statistic).
        self.has_loops: bool = False
        #: True when the filter calls sketch builtins (``cms_*``/
        #: ``topk_*``/``ctr_*``) — such filters carry state across
        #: invocations.
        self.uses_sketch: bool = False
        #: True when the filter reads the keyed record stream or emits
        #: summary pairs (``nproc``/``proc_*``/``emit``).
        self.uses_keyed: bool = False


class _Analyzer:
    def __init__(self, constants: Mapping[str, float]) -> None:
        self.constants = dict(constants)
        self.result: AnalysisResult | None = None
        self._loop_depth = 0

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def err(message: str, node: A.Node) -> EcodeTypeError:
        return EcodeTypeError(message, node.line, node.column)

    def analyze(self, program: A.Program) -> AnalysisResult:
        self.result = AnalysisResult(program, self.constants)
        root = _Scope()
        root.symbols["input"] = Symbol(
            "input", EType.INPUT_ARRAY, "__input__")
        root.symbols["output"] = Symbol(
            "output", EType.OUTPUT_ARRAY, "__output__")
        self.block(program.body, _Scope(root))
        return self.result

    # -- statements -----------------------------------------------------------

    def block(self, block: A.Block, scope: _Scope) -> None:
        for stmt in block.statements:
            self.statement(stmt, scope)

    def statement(self, stmt: A.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, A.VarDecl):
            self.var_decl(stmt, scope)
        elif isinstance(stmt, A.Assign):
            self.assign(stmt, scope)
        elif isinstance(stmt, A.IncDec):
            if stmt.target.ident in self.constants:
                raise self.err(
                    f"cannot modify constant {stmt.target.ident!r}", stmt)
            t = self.expr(stmt.target, scope)
            if not t.is_numeric:
                raise self.err(f"'{stmt.op}' needs a numeric variable",
                               stmt)
        elif isinstance(stmt, A.ExprStmt):
            self.expr(stmt.expr, scope)
        elif isinstance(stmt, A.If):
            self.condition(stmt.cond, scope)
            self.block(stmt.then_body, _Scope(scope))
            if stmt.else_body is not None:
                self.block(stmt.else_body, _Scope(scope))
        elif isinstance(stmt, A.For):
            assert self.result is not None
            self.result.has_loops = True
            inner = _Scope(scope)
            if stmt.init is not None:
                self.statement(stmt.init, inner)
            if stmt.cond is not None:
                self.condition(stmt.cond, inner)
            if stmt.step is not None:
                self.statement(stmt.step, inner)
            self._loop_depth += 1
            try:
                self.block(stmt.body, _Scope(inner))
            finally:
                self._loop_depth -= 1
        elif isinstance(stmt, A.While):
            assert self.result is not None
            self.result.has_loops = True
            self.condition(stmt.cond, scope)
            self._loop_depth += 1
            try:
                self.block(stmt.body, _Scope(scope))
            finally:
                self._loop_depth -= 1
        elif isinstance(stmt, (A.Break, A.Continue)):
            if self._loop_depth == 0:
                word = "break" if isinstance(stmt, A.Break) \
                    else "continue"
                raise self.err(f"'{word}' outside of a loop", stmt)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                t = self.expr(stmt.value, scope)
                if not t.is_numeric:
                    raise self.err("return value must be numeric", stmt)
        elif isinstance(stmt, A.Block):
            self.block(stmt, _Scope(scope))
        else:  # pragma: no cover - parser produces no other nodes
            raise self.err(f"unsupported statement {type(stmt).__name__}",
                           stmt)

    def var_decl(self, decl: A.VarDecl, scope: _Scope) -> None:
        if decl.name in ("input", "output"):
            raise self.err(f"cannot shadow builtin {decl.name!r}", decl)
        if decl.name in self.constants:
            raise self.err(
                f"{decl.name!r} is a predefined constant", decl)
        etype = _CTYPE_MAP[decl.ctype]
        if decl.init is not None:
            it = self.expr(decl.init, scope)
            if not it.is_numeric:
                raise self.err(
                    f"cannot initialise {decl.ctype} {decl.name!r} from "
                    f"a non-numeric expression", decl)
        sym = scope.declare(decl.name, etype, decl)
        decl._symbol = sym  # type: ignore[attr-defined]
        assert self.result is not None
        self.result.variables.add(decl.name)

    def assign(self, stmt: A.Assign, scope: _Scope) -> None:
        target = stmt.target
        vt = self.expr(stmt.value, scope)
        if isinstance(target, A.Name):
            if target.ident in self.constants:
                raise self.err(
                    f"cannot assign to constant {target.ident!r}", stmt)
            tt = self.expr(target, scope)
            if not tt.is_numeric:
                raise self.err(
                    f"cannot assign to {target.ident!r}", stmt)
            if not vt.is_numeric:
                raise self.err("assigned value must be numeric", stmt)
            if stmt.op == "%=" and not (
                    tt is EType.INT and vt is EType.INT):
                raise self.err("'%=' needs integer operands", stmt)
        elif isinstance(target, A.Index):
            bt = self.expr(target.base, scope)
            self._index_expr(target, scope)
            if bt is not EType.OUTPUT_ARRAY:
                raise self.err("only output[] slots can be assigned",
                               stmt)
            if stmt.op != "=":
                raise self.err(
                    f"'{stmt.op}' not supported on output[] slots", stmt)
            if vt is not EType.RECORD:
                raise self.err(
                    "output[] slots hold monitoring records "
                    "(e.g. output[i] = input[LOADAVG])", stmt)
        elif isinstance(target, A.Attribute):
            base = target.base
            if not (isinstance(base, A.Index)
                    and self.expr(base.base, scope)
                    is EType.OUTPUT_ARRAY):
                raise self.err(
                    "record fields are writable only on output[] slots",
                    stmt)
            self._index_expr(base, scope)
            if target.name not in RECORD_FIELDS:
                raise self.err(
                    f"unknown record field {target.name!r}", stmt)
            if stmt.op != "=":
                raise self.err(
                    f"'{stmt.op}' not supported on record fields", stmt)
            if not vt.is_numeric:
                raise self.err("record fields are numeric", stmt)
        else:  # pragma: no cover - parser enforces target kinds
            raise self.err("invalid assignment target", stmt)

    def condition(self, expr: A.Expr, scope: _Scope) -> None:
        t = self.expr(expr, scope)
        if not t.is_numeric:
            raise self.err("condition must be numeric", expr)

    # -- expressions ------------------------------------------------------------

    def expr(self, node: A.Expr, scope: _Scope) -> EType:
        etype = self._expr(node, scope)
        node._etype = etype  # type: ignore[attr-defined]
        return etype

    def _expr(self, node: A.Expr, scope: _Scope) -> EType:
        if isinstance(node, A.IntLiteral):
            return EType.INT
        if isinstance(node, A.FloatLiteral):
            return EType.DOUBLE
        if isinstance(node, A.Name):
            if node.ident in self.constants:
                value = self.constants[node.ident]
                node._const = value  # type: ignore[attr-defined]
                return (EType.INT if float(value).is_integer()
                        else EType.DOUBLE)
            found = scope.lookup(node.ident)
            if found is None:
                raise self.err(f"undeclared identifier {node.ident!r}",
                               node)
            node._symbol = found  # type: ignore[attr-defined]
            return found.etype
        if isinstance(node, A.Binary):
            return self.binary(node, scope)
        if isinstance(node, A.Unary):
            t = self.expr(node.operand, scope)
            if not t.is_numeric:
                raise self.err(
                    f"unary '{node.op}' needs a numeric operand", node)
            return EType.INT if node.op == "!" else t
        if isinstance(node, A.Index):
            etype = self._index_expr(node, scope)
            base_t = node.base._etype  # type: ignore[attr-defined]
            if base_t is EType.OUTPUT_ARRAY:
                # Reads reach here; assignment targets are checked in
                # assign() which calls _index_expr directly.
                raise self.err("output[] is write-only", node)
            return etype
        if isinstance(node, A.Attribute):
            bt = self.expr(node.base, scope)
            if bt is not EType.RECORD:
                raise self.err(
                    "field access requires a monitoring record "
                    "(e.g. input[LOADAVG].value)", node)
            if node.name not in RECORD_FIELDS:
                raise self.err(
                    f"unknown record field {node.name!r} "
                    f"(have {', '.join(RECORD_FIELDS)})", node)
            return EType.DOUBLE
        if isinstance(node, A.Call):
            return self.call(node, scope)
        raise self.err(  # pragma: no cover - exhaustive
            f"unsupported expression {type(node).__name__}", node)

    def _index_expr(self, node: A.Index, scope: _Scope) -> EType:
        bt = self.expr(node.base, scope)
        it = self.expr(node.index, scope)
        if bt not in (EType.INPUT_ARRAY, EType.OUTPUT_ARRAY):
            raise self.err("only input[] and output[] can be indexed",
                           node)
        if it is not EType.INT:
            raise self.err("array index must be an integer expression",
                           node)
        if bt is EType.OUTPUT_ARRAY:
            return EType.RECORD  # meaningful only as assignment target
        return EType.RECORD

    def binary(self, node: A.Binary, scope: _Scope) -> EType:
        lt = self.expr(node.left, scope)
        rt = self.expr(node.right, scope)
        op = node.op
        if op in ("&&", "||"):
            if not (lt.is_numeric and rt.is_numeric):
                raise self.err(f"'{op}' needs numeric operands", node)
            return EType.INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if not (lt.is_numeric and rt.is_numeric):
                raise self.err(
                    f"comparison '{op}' needs numeric operands", node)
            return EType.INT
        if op in ("+", "-", "*", "/"):
            if not (lt.is_numeric and rt.is_numeric):
                raise self.err(
                    f"arithmetic '{op}' needs numeric operands", node)
            if lt is EType.DOUBLE or rt is EType.DOUBLE:
                return EType.DOUBLE
            return EType.INT
        if op == "%":
            if lt is not EType.INT or rt is not EType.INT:
                raise self.err("'%' needs integer operands", node)
            return EType.INT
        raise self.err(f"unknown operator {op!r}", node)  # pragma: no cover

    def call(self, node: A.Call, scope: _Scope) -> EType:
        if node.func in BUILTINS:
            arity, _impl = BUILTINS[node.func]
            if len(node.args) != arity:
                raise self.err(
                    f"{node.func}() takes {arity} argument(s), "
                    f"got {len(node.args)}", node)
            arg_types = [self.expr(a, scope) for a in node.args]
            for t in arg_types:
                if not t.is_numeric:
                    raise self.err(
                        f"{node.func}() arguments must be numeric", node)
            if node.func in ("abs", "min", "max") and \
                    all(t is EType.INT for t in arg_types):
                return EType.INT
            return EType.DOUBLE
        signature = SKETCH_BUILTINS.get(node.func) \
            or KEYED_BUILTINS.get(node.func)
        if signature is None:
            raise self.err(f"unknown function {node.func!r}", node)
        arg_kinds, result = signature
        if len(node.args) != len(arg_kinds):
            raise self.err(
                f"{node.func}() takes {len(arg_kinds)} argument(s), "
                f"got {len(node.args)}", node)
        for position, (arg, kind) in enumerate(zip(node.args,
                                                   arg_kinds), 1):
            t = self.expr(arg, scope)
            if kind == "int":
                if t is not EType.INT:
                    raise self.err(
                        f"{node.func}() argument {position} must be an "
                        f"integer expression (handles, keys and ranks "
                        f"are ints)", node)
            elif not t.is_numeric:
                raise self.err(
                    f"{node.func}() argument {position} must be "
                    f"numeric", node)
        assert self.result is not None
        if node.func in SKETCH_BUILTINS:
            self.result.uses_sketch = True
        else:
            self.result.uses_keyed = True
        return EType.INT if result == "int" else EType.DOUBLE


def analyze(program: A.Program,
            constants: Mapping[str, float] | None = None) -> AnalysisResult:
    """Type-check ``program`` against the given named constants."""
    return _Analyzer(constants or {}).analyze(program)
