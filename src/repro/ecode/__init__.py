"""E-code: the dynamic filter language substrate.

A from-scratch implementation of the C subset the paper uses for
dynamically generated monitoring filters (operators, ``for`` loops,
``if`` statements, ``return`` statements), with dynamic compilation at
the executing host.  Public entry point: :func:`compile_filter`.

Example (the paper's Figure 3 filter)::

    from repro.ecode import compile_filter, MetricRecord

    src = '''
    {
        int i = 0;
        if (input[LOADAVG].value > 2) {
            output[i] = input[LOADAVG];
            i = i + 1;
        }
    }
    '''
    filt = compile_filter(src, constants={"LOADAVG": 0})
    result = filt([MetricRecord("loadavg", value=3.0)])
    assert len(result.outputs) == 1
"""

from repro.ecode.analyzer import AnalysisResult, EType, Symbol, analyze
from repro.ecode.codegen import (CompiledFilter, DEFAULT_MAX_STEPS,
                                 compile_filter)
from repro.ecode.lexer import tokenize
from repro.ecode.parser import parse
from repro.ecode.runtime import (BUILTINS, FilterResult, InputView,
                                 KEYED_BUILTINS, KeyedSample,
                                 MetricRecord, OutputArray, RECORD_FIELDS)
from repro.ecode.sketches import (CountMinSketch, KeyCounter,
                                  SKETCH_BUILTINS, SketchSpace, TopK)
from repro.ecode.unparse import unparse

__all__ = [
    "AnalysisResult", "EType", "Symbol", "analyze",
    "CompiledFilter", "DEFAULT_MAX_STEPS", "compile_filter",
    "tokenize", "parse", "unparse",
    "BUILTINS", "FilterResult", "InputView", "MetricRecord",
    "OutputArray", "RECORD_FIELDS",
    "KEYED_BUILTINS", "KeyedSample", "SKETCH_BUILTINS", "SketchSpace",
    "CountMinSketch", "TopK", "KeyCounter",
]
