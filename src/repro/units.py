"""Unit helpers and physical constants used throughout the simulator.

The simulator's base units are:

* time — **seconds** (floats; microsecond-scale costs are fractions)
* data size — **bytes**
* bandwidth — **bytes per second**
* compute — **Mflop** (millions of floating-point operations)

These helpers exist so that call sites read like the paper
(``mbps(100)``, ``usec(250)``) instead of raw magic numbers.
"""

from __future__ import annotations

__all__ = [
    "usec", "msec", "sec", "minutes",
    "to_usec", "to_msec",
    "KB", "MB", "kb", "mb",
    "mbps", "kbps", "to_mbps",
    "PAGE_SIZE", "SECTOR_SIZE", "ETHERNET_MTU",
]

#: Bytes per memory page (i386 Linux 2.4).
PAGE_SIZE = 4096

#: Bytes per disk sector.
SECTOR_SIZE = 512

#: Ethernet maximum transmission unit in bytes.
ETHERNET_MTU = 1500


# --- time ---------------------------------------------------------------

def usec(x: float) -> float:
    """Microseconds → seconds."""
    return x * 1e-6


def msec(x: float) -> float:
    """Milliseconds → seconds."""
    return x * 1e-3


def sec(x: float) -> float:
    """Seconds → seconds (identity, for symmetry at call sites)."""
    return float(x)


def minutes(x: float) -> float:
    """Minutes → seconds."""
    return x * 60.0


def to_usec(t: float) -> float:
    """Seconds → microseconds."""
    return t * 1e6


def to_msec(t: float) -> float:
    """Seconds → milliseconds."""
    return t * 1e3


# --- sizes ---------------------------------------------------------------

def KB(x: float) -> float:
    """Kilobytes (2**10) → bytes."""
    return x * 1024.0


def MB(x: float) -> float:
    """Megabytes (2**20) → bytes."""
    return x * 1024.0 * 1024.0


# lowercase aliases matching the paper's "KB"/"MB" usage in prose
kb = KB
mb = MB


# --- bandwidth ------------------------------------------------------------

def mbps(x: float) -> float:
    """Megabits per second → bytes per second (network convention: 10**6)."""
    return x * 1e6 / 8.0


def kbps(x: float) -> float:
    """Kilobits per second → bytes per second."""
    return x * 1e3 / 8.0


def to_mbps(bytes_per_sec: float) -> float:
    """Bytes per second → megabits per second."""
    return bytes_per_sec * 8.0 / 1e6
