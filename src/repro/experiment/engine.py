"""The experiment engine: a backend-neutral decide/apply ticker.

One :class:`ExperimentEngine` per attached experiment.  The engine is
a process generator in the same style as the observability sampler
(``yield clock.timeout(interval)``), so it runs natively on every
backend: the simulator schedules it in virtual time (deterministic —
same seed ⇒ identical decision schedule ⇒ identical report) and the
live backend drives it as an asyncio task on the wall clock.

Each tick the engine builds a :class:`~repro.experiment.policy
.MetricView` over the observer's d-proc, asks the policy to decide,
and applies every returned action as a ``/proc/cluster/<target>/
control`` write — the real control plane on both backends (KECho
control channel; TCP frames on live).  Every applied action lands in
the adaptation audit trail with its tick time, trigger and rendered
request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InterruptError
from repro.experiment.policy import Action, MetricView, Policy

__all__ = ["ExperimentEngine", "AdaptationEvent"]


@dataclass(frozen=True)
class AdaptationEvent:
    """One applied adaptation, as recorded in the audit trail."""

    time: float
    policy: str
    target: str
    commands: str
    reason: str
    observed: float

    def to_record(self) -> dict:
        return {"time": self.time, "policy": self.policy,
                "target": self.target, "commands": self.commands,
                "reason": self.reason,
                "observed": (None if math.isnan(self.observed)
                             else self.observed)}


@dataclass
class _Quality:
    """Last observed delivered-metric quality (updated every tick)."""

    hosts_reporting: int = 0
    mean_staleness: float = math.nan
    ticks: int = 0


class ExperimentEngine:
    """Drives one experiment's policy against one running scenario."""

    def __init__(self, experiment, dproc, clock) -> None:
        self.experiment = experiment
        self.policy: Policy = experiment.policy
        self.dproc = dproc
        self.clock = clock
        self.targets = (list(experiment.targets)
                        if experiment.targets is not None
                        else dproc.hosts())
        self.audit: list[AdaptationEvent] = []
        self.decisions = 0
        self.quality = _Quality()
        self._state: dict = {}
        self._started = False

    # -- the ticker --------------------------------------------------------

    def ticker(self):
        """The decide/apply loop, as a process generator."""
        exp = self.experiment
        try:
            if exp.warmup > 0:
                yield self.clock.timeout(exp.warmup)
            view = self._view()
            self._apply(view, self.policy.initial(view))
            self._started = True
            while True:
                view = self._view()
                self._observe(view)
                self.decisions += 1
                self._apply(view, self.policy.decide(view,
                                                     self._state))
                yield self.clock.timeout(exp.decide_interval)
        except InterruptError:  # teardown cancels the ticker
            return

    # -- internals ---------------------------------------------------------

    def _view(self) -> MetricView:
        return MetricView(self.dproc, self.targets, self.clock.now)

    def _observe(self, view: MetricView) -> None:
        metric = self.experiment.quality_metric
        fresh = view.fresh_hosts(metric)
        self.quality.hosts_reporting = len(fresh)
        self.quality.ticks += 1
        if fresh:
            self.quality.mean_staleness = (
                sum(view.staleness(h, metric) for h in fresh)
                / len(fresh))

    def _apply(self, view: MetricView, actions: list[Action]) -> None:
        for action in actions:
            self.dproc.write(
                f"/proc/cluster/{action.target}/control",
                action.request)
            self.audit.append(AdaptationEvent(
                time=view.now, policy=self.policy.name,
                target=action.target,
                commands=action.request.render(),
                reason=action.reason, observed=action.observed))
