"""Declarative experiments: policies that adapt a running cluster.

The paper evaluates dproc by *running policies against it* — static
allocations, dynamic threshold adaptation, multi-resource rules (§5,
Figs. 12-14).  This package makes that sweep a first-class, portable
object: an :class:`Experiment` (a :class:`Policy` + observer +
targets) attaches to any :class:`repro.api.Scenario` and runs
unmodified on the simulator, the sharded simulator and the live
backend, emitting comparable :class:`ExperimentReport`\\ s.

See ``docs/api.md`` for the guide and ``python -m repro.harness
experiment`` for the packaged sweep.
"""

from repro.experiment.engine import AdaptationEvent, ExperimentEngine
from repro.experiment.policy import (Action, MetricView,
                                     MultiResourcePolicy, Policy,
                                     ResourceRule, StaticPolicy,
                                     ThresholdPolicy)
from repro.experiment.runner import (Experiment, ExperimentReport,
                                     build_report, run_experiments,
                                     standard_experiments)

__all__ = [
    "Action", "AdaptationEvent", "Experiment", "ExperimentEngine",
    "ExperimentReport", "MetricView", "MultiResourcePolicy", "Policy",
    "ResourceRule", "StaticPolicy", "ThresholdPolicy", "build_report",
    "run_experiments", "standard_experiments",
]
