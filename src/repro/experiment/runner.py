"""Experiments: one declarative sweep, every backend.

An :class:`Experiment` binds a policy to an observer and a target set;
``Scenario.with_experiment(exp)`` attaches it to any scenario, and
:func:`run_experiments` runs a whole list — one fresh scenario per
experiment so adaptations never bleed across runs — on the simulator,
the sharded simulator or the live backend, producing field-comparable
:class:`ExperimentReport`\\ s.  :func:`standard_experiments` is the
paper's Figs. 12-14 sweep: baseline, static allocation, dynamic
threshold adaptation, and multi-resource rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dproc.control_api import (ClearCommand, ControlRequest,
                                     PeriodCommand, ThresholdCommand)
from repro.dproc.metrics import MetricId
from repro.experiment.policy import (MultiResourcePolicy, Policy,
                                     ResourceRule, StaticPolicy,
                                     ThresholdPolicy)

__all__ = ["Experiment", "ExperimentReport", "run_experiments",
           "standard_experiments"]


@dataclass(frozen=True)
class Experiment:
    """One named policy run: who observes, whom it may adapt, how often."""

    name: str
    policy: Policy = field(default_factory=Policy)
    #: Index of the observing node (its d-proc feeds the MetricView).
    observer: int = 0
    #: Hosts the policy may adapt (None = every monitored host).
    targets: Optional[tuple] = None
    decide_interval: float = 1.0
    #: Seconds before the first decision (lets deliveries arrive).
    warmup: float = 1.0
    #: The metric whose delivery defines "quality" in the report.
    quality_metric: MetricId = MetricId.LOADAVG


@dataclass(frozen=True)
class ExperimentReport:
    """What one experiment delivered, on any backend."""

    experiment: str
    policy: str
    backend: str
    workers: int
    nodes: int
    seed: int
    duration: float
    decisions: int
    adaptations: int
    audit: tuple
    #: Hosts whose quality metric was delivered at the last tick.
    hosts_reporting: int
    mean_staleness: float
    events_published: float
    records_published: float
    #: Monitoring-channel deliveries visible in this process.
    monitor_receives: float
    monitor_cpu_seconds: float
    cpu_fraction: float

    #: Fields expected to agree across backends at equal scale.
    COMPARABLE = ("experiment", "policy", "nodes", "duration",
                  "decisions", "adaptations", "hosts_reporting")

    def to_record(self) -> dict:
        """Flat BENCH-style record; ``variant`` is the identity key."""
        return {
            "variant": self.experiment,
            "policy": self.policy,
            "backend": self.backend,
            "workers": self.workers,
            "n_nodes": self.nodes,
            "seed": self.seed,
            "duration": self.duration,
            "decisions": self.decisions,
            "adaptations": self.adaptations,
            "hosts_reporting": self.hosts_reporting,
            "mean_staleness": (None if math.isnan(self.mean_staleness)
                               else self.mean_staleness),
            "events_published": self.events_published,
            "records_published": self.records_published,
            "monitor_receives": self.monitor_receives,
            "monitor_cpu_seconds": self.monitor_cpu_seconds,
            "cpu_fraction_of_node_time": self.cpu_fraction,
            "audit": [event for event in self.audit],
        }

    def comparable(self) -> dict:
        """The backend-invariant subset (sim vs sharded vs live)."""
        return {name: getattr(self, name) for name in self.COMPARABLE}


def build_report(scenario, engine, *, workers: int = 1,
                 duration: Optional[float] = None) -> ExperimentReport:
    """Assemble the report for one attached engine after a run."""
    overhead = scenario.overhead()
    receives = sum(
        node.telemetry.value("kecho.dproc.monitor.receives")
        for node in scenario.nodes)
    exp = engine.experiment
    return ExperimentReport(
        experiment=exp.name,
        policy=engine.policy.name,
        backend=scenario.backend,
        workers=workers,
        nodes=overhead["n_nodes"],
        seed=scenario.seed,
        duration=(duration if duration is not None
                  else overhead["sim_seconds"]),
        decisions=engine.decisions,
        adaptations=len(engine.audit),
        audit=tuple(event.to_record() for event in engine.audit),
        hosts_reporting=engine.quality.hosts_reporting,
        mean_staleness=engine.quality.mean_staleness,
        events_published=overhead["events_published"],
        records_published=overhead["records_published"],
        monitor_receives=receives,
        monitor_cpu_seconds=overhead["monitor_cpu_seconds"]["total"],
        cpu_fraction=overhead["cpu_fraction_of_node_time"])


def standard_experiments(*, stretch_period: float = 4.0,
                         event_budget: float = 0.5,
                         load_high: float = 2.0,
                         change_threshold: float = 0.05
                         ) -> list[Experiment]:
    """The paper's static/dynamic/multi-resource sweep (Figs. 12-14).

    The dynamic trigger is ``DMON_EVENT_RATE`` — the monitor's *own*
    published-event rate (SELF_MON), the paper's "monitoring must know
    its cost" signal.  A d-mon publishes about one bundled event per
    poll (1/s at the default period), so the default ``event_budget``
    of 0.5 events/s is exceeded deterministically on every backend
    once polling is under way — the adaptive policies fire on sim
    exactly as they do live.
    """
    slow = ControlRequest([PeriodCommand(stretch_period)])
    restore = ControlRequest([ClearCommand("period")])
    suppress = ControlRequest([
        ThresholdCommand("change", (change_threshold,))])
    return [
        Experiment(name="baseline", policy=Policy()),
        Experiment(name="static",
                   policy=StaticPolicy(request=slow, name="static")),
        Experiment(name="dynamic",
                   policy=ThresholdPolicy(
                       metric=MetricId.DMON_EVENT_RATE,
                       high=event_budget, relief=slow,
                       low=event_budget / 2, restore=restore,
                       resource="monitoring", name="dynamic")),
        Experiment(name="multi",
                   policy=MultiResourcePolicy(rules=(
                       ResourceRule(resource="cpu",
                                    metric=MetricId.LOADAVG,
                                    high=load_high, relief=slow),
                       ResourceRule(resource="monitoring",
                                    metric=MetricId.DMON_EVENT_RATE,
                                    high=event_budget,
                                    relief=suppress),
                   ), name="multi-resource")),
    ]


def run_experiments(experiments: Sequence[Experiment], *,
                    nodes: int = 8, seed: int = 7,
                    duration: float = 10.0, backend: str = "sim",
                    workers: int = 1, dmon=None,
                    batch=None, flow=None, watchers=None,
                    uvloop: bool = False) -> list[ExperimentReport]:
    """Run each experiment on a fresh scenario; return its reports.

    The same ``experiments`` list runs unmodified everywhere:
    ``backend="sim"`` with ``workers=1`` is the plain kernel, with
    ``workers>1`` the sharded kernel (inline mode), and
    ``backend="live"`` real sockets — with ``workers>1`` a
    multi-process node pool (``batch``/``flow``/``watchers``/
    ``uvloop`` pass through to it).
    """
    from repro.api import Scenario
    from repro.dproc.toolkit import DEFAULT_MODULES
    reports: list[ExperimentReport] = []
    # SELF_MON rides along so policies can observe monitoring's own
    # cost (the standard sweep's dynamic trigger).
    modules = tuple(DEFAULT_MODULES) + ("dproc",)
    for exp in experiments:
        scenario = Scenario(nodes=nodes, seed=seed, backend=backend,
                            dmon=dmon, modules=modules)
        if backend == "sim" and workers > 1:
            scenario.with_workers(workers, mode="inline")
        if backend == "live" and (workers > 1 or batch is not None
                                  or flow is not None):
            scenario.with_node_pool(workers, watchers=watchers,
                                    batch=batch, flow=flow,
                                    uvloop=uvloop)
        scenario.with_experiment(exp)
        scenario.run(duration)
        reports.extend(scenario.experiment_reports(duration=duration))
    return reports
