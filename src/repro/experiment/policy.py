"""Declarative policies: observed metrics in, typed adaptations out.

A :class:`Policy` is the paper's resource-aware decision logic as a
frozen, backend-neutral value object: every decision tick the
experiment engine hands it a :class:`MetricView` (what the observer's
d-proc currently knows about the monitored hosts) and the policy
returns :class:`Action`\\ s — typed
:class:`~repro.dproc.control_api.ControlRequest`\\ s aimed at target
hosts.  Policies are pure with respect to themselves: per-run mutable
state (hysteresis latches) lives in the engine-owned ``state`` dict,
so the *same* policy instances run unmodified on sim, sharded sim and
live.

The three shapes mirror the paper's Figs. 12-14 sweep:

* :class:`StaticPolicy` — fixed requests applied once at start
  (static resource allocation);
* :class:`ThresholdPolicy` — single-resource dynamic adaptation with
  high/low hysteresis (relief when the metric crosses ``high``,
  restore when it falls back under ``low``);
* :class:`MultiResourcePolicy` — one :class:`ResourceRule` per
  resource, each with its own hysteresis latch and its own relief,
  so a CPU-constrained host gets a different adaptation than a
  network-constrained one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dproc.control_api import ControlRequest
from repro.dproc.metrics import MetricId

__all__ = ["Action", "MetricView", "Policy", "StaticPolicy",
           "ThresholdPolicy", "MultiResourcePolicy", "ResourceRule"]


@dataclass(frozen=True)
class Action:
    """One adaptation: a typed control request for one target host."""

    target: str
    request: ControlRequest
    #: Why the policy decided this (lands in the audit trail).
    reason: str = ""
    #: The observation that triggered it (NaN when not metric-driven).
    observed: float = math.nan


class MetricView:
    """What a policy sees at one decision tick.

    A read-only window over the observer d-proc's remote-metric cache:
    per-host values, their staleness, and the tick time.  Identical
    surface on every backend — on sim the values are simulated, on
    live they come off the real wire.
    """

    def __init__(self, dproc, hosts: Sequence[str], now: float) -> None:
        self._dproc = dproc
        self.hosts = list(hosts)
        self.now = float(now)

    def value(self, host: str, metric: MetricId) -> float:
        """Latest known value (NaN until first delivery)."""
        return self._dproc.metric(host, metric)

    def staleness(self, host: str, metric: MetricId) -> float:
        """Seconds since the observer learned this value (inf if never)."""
        if host == self._dproc.node.name:
            return 0.0
        remote = self._dproc.dmon.remote_value(host, metric)
        if remote is None:
            return math.inf
        return max(0.0, self.now - remote.received_at)

    def fresh_hosts(self, metric: MetricId) -> list[str]:
        """Hosts whose ``metric`` has been delivered at least once."""
        return [h for h in self.hosts
                if not math.isnan(self.value(h, metric))]


class Policy:
    """Base policy: observe a :class:`MetricView`, emit no actions."""

    name = "none"

    def initial(self, view: MetricView) -> list[Action]:
        """Actions applied once, on the first tick."""
        return []

    def decide(self, view: MetricView, state: dict) -> list[Action]:
        """Actions for this tick; ``state`` is engine-owned per-run."""
        return []


@dataclass(frozen=True)
class StaticPolicy(Policy):
    """Fixed requests applied to every target once, at start."""

    request: ControlRequest = None
    name: str = "static"

    def initial(self, view: MetricView) -> list[Action]:
        if self.request is None:
            return []
        return [Action(target=host, request=self.request,
                       reason="static allocation")
                for host in view.hosts]

    def decide(self, view: MetricView, state: dict) -> list[Action]:
        return []


@dataclass(frozen=True)
class ResourceRule:
    """One resource's hysteresis band and its relief/restore requests."""

    resource: str
    metric: MetricId
    high: float
    relief: ControlRequest
    low: Optional[float] = None
    restore: Optional[ControlRequest] = None

    def engaged_key(self, host: str) -> tuple:
        return (self.resource, host)


def _decide_rules(rules: Sequence[ResourceRule], policy_name: str,
                  view: MetricView, state: dict) -> list[Action]:
    """Shared hysteresis walk: one latch per (rule, host)."""
    actions: list[Action] = []
    for rule in rules:
        low = rule.low if rule.low is not None else rule.high
        for host in view.hosts:
            value = view.value(host, rule.metric)
            if math.isnan(value):
                continue
            key = rule.engaged_key(host)
            engaged = state.get(key, False)
            if not engaged and value > rule.high:
                state[key] = True
                actions.append(Action(
                    target=host, request=rule.relief, observed=value,
                    reason=(f"{rule.resource} constrained: "
                            f"{rule.metric.name}={value:g} > "
                            f"{rule.high:g}")))
            elif engaged and value < low \
                    and rule.restore is not None:
                state[key] = False
                actions.append(Action(
                    target=host, request=rule.restore, observed=value,
                    reason=(f"{rule.resource} recovered: "
                            f"{rule.metric.name}={value:g} < "
                            f"{low:g}")))
    return actions


@dataclass(frozen=True)
class ThresholdPolicy(Policy):
    """Single-resource dynamic adaptation with hysteresis."""

    metric: MetricId = MetricId.LOADAVG
    high: float = 1.0
    relief: ControlRequest = None
    low: Optional[float] = None
    restore: Optional[ControlRequest] = None
    resource: str = "cpu"
    name: str = "dynamic"

    def decide(self, view: MetricView, state: dict) -> list[Action]:
        rule = ResourceRule(resource=self.resource, metric=self.metric,
                            high=self.high, relief=self.relief,
                            low=self.low, restore=self.restore)
        return _decide_rules((rule,), self.name, view, state)


@dataclass(frozen=True)
class MultiResourcePolicy(Policy):
    """Per-resource rules, each with its own latch and adaptation."""

    rules: tuple = field(default_factory=tuple)
    name: str = "multi-resource"

    def decide(self, view: MetricView, state: dict) -> list[Action]:
        return _decide_rules(self.rules, self.name, view, state)
