"""The discrete-event simulator packaged as a :class:`Runtime`.

:class:`SimRuntime` is a thin adapter: it owns an
:class:`~repro.sim.core.Environment` and a
:class:`~repro.sim.cluster.Cluster` and presents them through the
backend-neutral :class:`repro.runtime.protocol.Runtime` surface, so
harnesses written against the protocol (the :class:`repro.api.Scenario`
facade, the cross-backend conformance suite) run on the simulator and
the live asyncio backend interchangeably.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.runtime.protocol import Bus, Clock, NodeGroup

__all__ = ["SimRuntime"]


class SimRuntime:
    """Deterministic simulated backend (virtual time, seeded RNG)."""

    backend = "sim"

    #: The simulator uses the standard module set (no factory needed).
    module_factory = None

    def __init__(self, nodes: int = 8, seed: int = 0,
                 config=None, names: Optional[Sequence[str]] = None,
                 node_configs: Optional[Sequence] = None,
                 env=None, cluster=None) -> None:
        """Build a fresh environment + cluster (or adopt existing ones).

        ``env``/``cluster`` let callers that already hand-wired a
        simulation wrap it as a runtime; everyone else passes the
        cluster-shape kwargs straight through to
        :func:`repro.sim.cluster.build_cluster`.
        """
        from repro.sim.cluster import build_cluster
        from repro.sim.core import Environment
        self.env = env if env is not None else Environment()
        if cluster is not None:
            self.cluster = cluster
        else:
            self.cluster = build_cluster(
                self.env, nodes, config=config, seed=seed, names=names,
                node_configs=node_configs)
        self._bus = None

    @property
    def clock(self) -> Clock:
        return self.env

    @property
    def nodes(self) -> NodeGroup:
        return self.cluster

    def make_bus(self) -> Bus:
        """The runtime-wide KECho bus (one per runtime; idempotent)."""
        from repro.kecho import KechoBus
        if self._bus is None:
            self._bus = KechoBus()
        return self._bus

    def run(self, until: float) -> None:
        """Advance virtual time to ``until`` seconds."""
        self.env.run(until=until)

    def shutdown(self) -> None:
        """Nothing to release: the simulator holds no real resources."""
