"""The backend-neutral runtime protocol.

Everything dproc and KECho need from their execution environment is
captured by a handful of structural :class:`~typing.Protocol` classes:
a :class:`Clock` that owns time and timers, a :class:`Transport` that
moves tagged messages between named hosts, and a :class:`RuntimeNode`
bundling the per-host services (clock, RNG, cost model, telemetry,
tracer, transport).  ``dproc.dmon``, ``kecho.channel``,
``dproc.toolkit``, ``dproc.procfs`` and the monitoring modules depend
only on these protocols — never on the simulator — so the same d-mon,
parameter, and E-code filter logic runs unmodified on either backend:

* :class:`repro.runtime.sim.SimRuntime` — the deterministic
  discrete-event simulator (``repro.sim``), where time is virtual and
  every run is bit-reproducible;
* :class:`repro.live.runtime.LiveRuntime` — real asyncio tasks over
  real localhost TCP sockets, where time is the wall clock.

The protocols are structural (PEP 544): the simulator's concrete
classes (``Environment``, ``Node``, ``NetStack``) satisfy them without
inheriting from them, and so do the live backend's.
"""

from __future__ import annotations

from typing import (Any, Callable, Iterator, Optional, Protocol,
                    runtime_checkable)

__all__ = [
    "Completion", "Timer", "Clock", "TaskHandle", "Connection",
    "Transport", "RuntimeNode", "Endpoint", "Bus", "NodeGroup",
    "Runtime", "EventStream",
]


@runtime_checkable
class Completion(Protocol):
    """Handle for an asynchronous operation (a delivery in flight).

    ``add_callback`` fires when the operation settles; implementations
    expose ``_ok`` (did it succeed?) the way the simulator's
    :class:`~repro.sim.core.SimEvent` does.
    """

    def add_callback(self, fn: Callable[[Any], None]) -> None: ...


@runtime_checkable
class Timer(Protocol):
    """What :meth:`Clock.timeout` returns: a yieldable/awaitable delay.

    Process generators ``yield`` these; each backend's driver knows how
    to wait on its own timer type (the simulator schedules a
    :class:`~repro.sim.core.Timeout`, the live backend awaits
    ``asyncio.sleep``).
    """

    @property
    def delay(self) -> float: ...


@runtime_checkable
class Clock(Protocol):
    """Time and timers, simulated or wall."""

    @property
    def now(self) -> float:
        """Seconds since the run began."""
        ...

    def timeout(self, delay: float, value: Any = None) -> Timer:
        """A timer that fires ``delay`` seconds from now."""
        ...

    @property
    def active_process(self) -> Optional[Any]:
        """The task currently executing (None outside any task)."""
        ...


@runtime_checkable
class TaskHandle(Protocol):
    """A spawned process/task that can be interrupted."""

    @property
    def is_alive(self) -> bool: ...

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`repro.errors.InterruptError` inside the task."""
        ...


@runtime_checkable
class Connection(Protocol):
    """A unidirectional message path to one remote host."""

    def send(self, payload: Any, size: float) -> Completion:
        """Transmit ``payload`` (``size`` bytes on the wire)."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Per-node tagged messaging (the simulator's ``NetStack`` shape).

    ``bind`` registers a receive handler for a tag (KECho uses
    ``kecho:<channel>``); ``connect`` opens a :class:`Connection` whose
    sends invoke the remote host's handler for the same tag.
    """

    def bind(self, tag: str, handler: Callable[[Any], None]) -> None: ...

    def unbind(self, tag: str) -> None: ...

    def connect(self, host: str, tag: str) -> Connection: ...

    def batch(self) -> Any:
        """Context manager grouping a burst of sends (may be a no-op)."""
        ...


@runtime_checkable
class RuntimeNode(Protocol):
    """The per-host service bundle dproc code runs against.

    Concrete implementations: :class:`repro.sim.node.Node` and
    :class:`repro.live.node.LiveNode`.  Attribute surface (structural,
    so listed informally):

    * ``name`` — unique host name;
    * ``env`` — the node's :class:`Clock`;
    * ``rng`` — a ``numpy.random.Generator``;
    * ``costs`` — a :class:`repro.sim.node.KernelCostModel`;
    * ``telemetry`` — a :class:`repro.telemetry.TelemetryRegistry`;
    * ``tracer`` — a :class:`repro.tracing.TraceCollector` (or the
      null tracer);
    * ``stack`` — the node's :class:`Transport`.
    """

    name: str

    @property
    def env(self) -> Clock: ...

    @property
    def stack(self) -> Transport: ...

    def spawn(self, gen: Any, name: str = "") -> TaskHandle:
        """Run a process generator (yielding :class:`Timer` objects)."""
        ...

    def charge_kernel_seconds(self, seconds: float) -> None:
        """Account ``seconds`` of kernel CPU to this host."""
        ...

    def attach_service(self, name: str, service: Any) -> None:
        """Register a named service object on the node."""
        ...


@runtime_checkable
class Endpoint(Protocol):
    """One node's attachment to a pub/sub channel."""

    @property
    def name(self) -> str: ...

    @property
    def is_subscriber(self) -> bool: ...

    @property
    def receive_cpu_seconds(self) -> float: ...

    def subscribe(self, handler: Callable[[Any], None]) -> Any: ...

    def submit(self, payload: Any, size: float,
               attributes: Optional[dict] = None,
               trace: Optional[Any] = None) -> Any: ...

    def close(self) -> None: ...


@runtime_checkable
class EventStream(Protocol):
    """A durable event log teed off the channel data plane.

    The concrete implementation is
    :class:`repro.stream.broker.StreamBroker`: endpoints call
    ``record_submit``/``record_delivery`` as events move, transports
    call ``record_drop`` when they kill a copy.  Recording must be
    *passive* — no RNG draws, no CPU charges, no scheduled events — so
    attaching a stream never perturbs the run it observes.
    """

    def record_submit(self, event: Any, targets: Any,
                      local: bool) -> Any: ...

    def record_delivery(self, event: Any, dest: str) -> Any: ...

    def record_drop(self, event: Any, dest: str, reason: str,
                    now: float, sender_failed: bool = True) -> Any: ...


@runtime_checkable
class Bus(Protocol):
    """Cluster-wide channel wiring (KECho's bus shape).

    ``subscription_version`` is bumped whenever any channel's
    subscriber set may have changed; d-mon keys its audience cache on
    it.  ``stream`` is the optional :class:`EventStream` tee — every
    endpoint checks it on submit and dispatch; None disables durable
    recording.
    """

    subscription_version: int
    stream: Optional[Any]

    def connect(self, node: RuntimeNode, name: str) -> Endpoint: ...

    def remote_subscribers(self, name: str, source: str) -> list[str]: ...


@runtime_checkable
class NodeGroup(Protocol):
    """A named collection of nodes (the simulator's ``Cluster`` shape)."""

    @property
    def names(self) -> list[str]: ...

    def __getitem__(self, name: str) -> RuntimeNode: ...

    def __iter__(self) -> Iterator[RuntimeNode]: ...


@runtime_checkable
class Runtime(Protocol):
    """One backend: a clock plus a group of nodes plus a bus factory.

    ``run`` advances the backend until the clock reads ``until``
    seconds (virtual for the simulator, wall for the live backend);
    ``shutdown`` releases backend resources (sockets, tasks) and is
    idempotent.
    """

    @property
    def backend(self) -> str:
        """Short backend id: ``"sim"`` or ``"live"``."""
        ...

    @property
    def clock(self) -> Clock: ...

    @property
    def nodes(self) -> NodeGroup: ...

    def make_bus(self) -> Bus: ...

    def run(self, until: float) -> None: ...

    def shutdown(self) -> None: ...
