"""The sharded simulator packaged behind the Runtime surface.

:class:`ShardedRuntime` runs a :class:`repro.api.Scenario` deployment
partitioned across shard workers (see :mod:`repro.sim.shard`).  The
dproc/KECho/procfs layers are untouched: each worker builds a perfectly
ordinary per-shard cluster — the only sharding-aware pieces are the
:class:`~repro.sim.shard.ShardedBus` (merged subscriber views) and the
stacks' conduit router.

Two modes, chosen by the Scenario's ``with_workers`` call:

* ``processes`` — one forked worker per shard, genuinely parallel.
  The deployment must be hook-free (hooks close over parent state that
  a forked child cannot share back).
* ``inline`` — every shard world lives in the calling process, run
  round-robin per window.  Scenario hooks, fault schedules, tracing
  and observers all work, operating on a merged global view
  (:class:`MergedNodeGroup`, :class:`ShardedFaultInjector`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import FaultInjectionError, ShardError
from repro.runtime.protocol import NodeGroup

__all__ = ["ShardedRuntime", "MergedNodeGroup", "ShardedFaultInjector"]


@dataclass(frozen=True)
class _ShardDeployment:
    """Scenario configuration one shard needs to build its world."""

    seed: int
    dmon: Any
    modules: tuple
    #: Every host, in global (pre-partition) order.
    names: tuple
    #: Hosts running dproc, global order (None resolved upstream).
    monitored: tuple
    node_config: Any
    #: Per-host hardware overrides (name → config), or None.
    node_configs: Optional[dict]


def _build_scenario_shard(spec):
    """Build one shard's world for a Scenario deployment.

    Runs inside the worker (or inline); mirrors the plain
    ``SimRuntime`` + ``deploy_dproc`` construction, restricted to the
    shard's hosts.  Per-node RNG streams are keyed by node name, so a
    sub-cluster's nodes draw exactly the streams they would in the
    full cluster.
    """
    from repro.dproc.toolkit import deploy_dproc
    from repro.sim.cluster import build_cluster
    from repro.sim.core import Environment
    from repro.sim.shard import ShardedBus, ShardRouter, ShardWorld
    from repro.telemetry import overhead_summary

    d: _ShardDeployment = spec.payload
    local = list(spec.local_names)
    env = Environment()
    node_configs = ([d.node_configs.get(name, d.node_config)
                     for name in local]
                    if d.node_configs is not None else None)
    cluster = build_cluster(env, nodes=len(local), seed=d.seed,
                            names=local, config=d.node_config,
                            node_configs=node_configs)
    bus = ShardedBus()
    router = ShardRouter(env, spec.plan, spec.index)
    router.attach(cluster)
    monitored = set(d.monitored)
    local_monitored = [n for n in local if n in monitored]
    dprocs = deploy_dproc(cluster, config=d.dmon, modules=d.modules,
                          bus=bus, hosts=local_monitored, start=False)
    local_set = set(local_monitored)
    for dproc in dprocs.values():
        for host in d.monitored:
            if host not in local_set:
                dproc.add_cluster_node(host)
    for dproc in dprocs.values():
        dproc.start()

    duration = spec.duration

    def harvest(world):
        return {"overhead": overhead_summary(
            {node.name: node.telemetry for node in world.cluster},
            sim_seconds=duration)}

    return ShardWorld(env=env, router=router, bus=bus,
                      cluster=cluster, dprocs=dprocs, harvest=harvest)


class MergedNodeGroup:
    """Global node view over in-process shard worlds (inline mode)."""

    def __init__(self, names: Sequence[str], worlds) -> None:
        nodes = {}
        for world in worlds:
            for node in world.cluster:
                nodes[node.name] = node
        #: Global order, not shard order.
        self._nodes = {name: nodes[name] for name in names}

    @property
    def names(self) -> list[str]:
        return list(self._nodes)

    def __getitem__(self, name: str):
        try:
            return self._nodes[name]
        except KeyError:
            raise ShardError(f"no node named {name!r}") from None

    def __iter__(self):
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)


class ShardedFaultInjector:
    """Fault injection spanning shard worlds (inline mode).

    The plain :class:`~repro.sim.faults.FaultInjector` owns one
    fabric's fault plane; here every shard keeps its own plane and
    each scheduled action is applied *per shard when that shard's
    clock reaches the fault time* — zero cross-shard skew, because
    plane rules are host-name-based and identical everywhere.  Crash
    and reboot handlers run once, in the crashed host's owning shard.
    The action log matches the plain injector's format.
    """

    def __init__(self, plan, worlds) -> None:
        from repro.sim.faults import FaultPlane
        self._plan = plan
        self._worlds = list(worlds)
        self._envs = [w.env for w in self._worlds]
        self._planes = []
        for world in self._worlds:
            plane = FaultPlane()
            world.cluster.fabric.faults = plane
            self._planes.append(plane)
        self._hosts = set(plan.names)
        self.log: list[tuple[float, str]] = []
        self._crash_handlers: list[Callable[[str], None]] = []
        self._reboot_handlers: list[Callable[[str], None]] = []

    # -- handler registration ---------------------------------------------

    def on_crash(self, handler: Callable[[str], None]) -> None:
        self._crash_handlers.append(handler)

    def on_reboot(self, handler: Callable[[str], None]) -> None:
        self._reboot_handlers.append(handler)

    # -- immediate faults --------------------------------------------------

    def set_message_loss(self, p: float, src: Optional[str] = None,
                         dst: Optional[str] = None) -> None:
        for plane in self._planes:
            plane.set_loss(p, src, dst)
        scope = "all links" if src is None and dst is None \
            else f"{src}->{dst}"
        self._log(f"loss {p:g} on {scope}")

    def set_link_loss(self, link_name: str, p: float) -> None:
        for plane in self._planes:
            plane.set_link_loss(link_name, p)
        self._log(f"loss {p:g} on link {link_name}")

    def clear_message_loss(self) -> None:
        for plane in self._planes:
            plane.clear_loss()
        self._log("loss cleared")

    def set_stall(self, seconds: float, src: Optional[str] = None,
                  dst: Optional[str] = None) -> None:
        for plane in self._planes:
            plane.set_stall(seconds, src, dst)
        scope = "all links" if src is None and dst is None \
            else f"{src}->{dst}"
        self._log(f"stall {seconds:g}s on {scope}")

    def partition(self, *groups) -> None:
        frozen = [tuple(g) for g in groups]
        for group in frozen:
            for host in group:
                if host not in self._hosts:
                    raise FaultInjectionError(
                        f"unknown host {host!r} in partition group")
        for plane in self._planes:
            plane.set_partition(frozen)
        self._log("partition " + " | ".join(
            ",".join(g) for g in frozen))

    def heal(self) -> None:
        for plane in self._planes:
            plane.heal_partition()
        self._log("partition healed")

    def crash(self, host: str) -> None:
        self._check_host(host)
        for plane in self._planes:
            plane.mark_down(host)
        self._log(f"crash {host}")
        for handler in self._crash_handlers:
            handler(host)

    def reboot(self, host: str) -> None:
        self._check_host(host)
        for plane in self._planes:
            plane.mark_up(host)
        self._log(f"reboot {host}")
        for handler in self._reboot_handlers:
            handler(host)

    # -- scheduled faults --------------------------------------------------

    def at(self, when: float, action: Callable[[], None]) -> None:
        """Run a global ``action`` at ``when`` (scheduled in shard 0).

        For plane mutations prefer the ``schedule_*`` helpers, which
        apply per shard at each shard's local clock; a global action
        from shard 0's timer reaches other shards with up to one
        window of skew.
        """
        self._at_in(0, when, action)

    def schedule_loss(self, at: float, p: float,
                      src: Optional[str] = None,
                      dst: Optional[str] = None,
                      until: Optional[float] = None) -> None:
        scope = "all links" if src is None and dst is None \
            else f"{src}->{dst}"
        self._each_at(at, lambda plane: plane.set_loss(p, src, dst),
                      log=f"loss {p:g} on {scope}")
        if until is not None:
            if until <= at:
                raise FaultInjectionError(
                    "loss end time must be after its start")
            self._each_at(until,
                          lambda plane: plane.set_loss(0.0, src, dst),
                          log=f"loss 0 on {scope}")

    def schedule_partition(self, at: float, groups,
                           heal_at: Optional[float] = None) -> None:
        frozen = [tuple(g) for g in groups]
        for group in frozen:
            for host in group:
                if host not in self._hosts:
                    raise FaultInjectionError(
                        f"unknown host {host!r} in partition group")
        self._each_at(at,
                      lambda plane: plane.set_partition(frozen),
                      log="partition " + " | ".join(
                          ",".join(g) for g in frozen))
        if heal_at is not None:
            if heal_at <= at:
                raise FaultInjectionError(
                    "heal time must be after the partition time")
            self._each_at(heal_at,
                          lambda plane: plane.heal_partition(),
                          log="partition healed")

    def schedule_crash(self, at: float, host: str,
                       reboot_at: Optional[float] = None) -> None:
        self._check_host(host)
        owner = self._plan.shard_of(host)
        self._each_at(at, lambda plane: plane.mark_down(host),
                      log=f"crash {host}")
        self._at_in(owner, at, lambda: [h(host) for h in
                                        self._crash_handlers])
        if reboot_at is not None:
            if reboot_at <= at:
                raise FaultInjectionError(
                    "reboot time must be after the crash time")
            self._each_at(reboot_at,
                          lambda plane: plane.mark_up(host),
                          log=f"reboot {host}")
            self._at_in(owner, reboot_at,
                        lambda: [h(host) for h in
                                 self._reboot_handlers])

    # -- internals ---------------------------------------------------------

    def _check_host(self, host: str) -> None:
        if host not in self._hosts:
            raise FaultInjectionError(f"unknown host {host!r}")

    def _log(self, text: str) -> None:
        self.log.append((self._envs[0].now, text))

    def _at_in(self, shard: int, when: float,
               action: Callable[[], None]) -> None:
        env = self._envs[shard]
        delay = when - env.now
        if delay < 0:
            raise FaultInjectionError(
                f"cannot schedule a fault at {when} (now is "
                f"{env.now})")
        timer = env.timeout(delay)
        timer.add_callback(lambda _ev: action())

    def _each_at(self, when: float, apply, log: str) -> None:
        """Apply a plane mutation in every shard at its local ``when``."""
        for i, (env, plane) in enumerate(zip(self._envs,
                                             self._planes)):
            delay = when - env.now
            if delay < 0:
                raise FaultInjectionError(
                    f"cannot schedule a fault at {when} (now is "
                    f"{env.now})")
            timer = env.timeout(delay)
            if i == 0:
                timer.add_callback(
                    lambda _ev, p=plane: (apply(p),
                                          self.log.append(
                                              (self._envs[0].now,
                                               log))))
            else:
                timer.add_callback(lambda _ev, p=plane: apply(p))


class ShardedRuntime:
    """Scenario deployments over the sharded kernel (sim only)."""

    backend = "sim"
    module_factory = None

    def __init__(self, *, plan, deployment: _ShardDeployment,
                 processes: bool = True) -> None:
        self.plan = plan
        self.deployment = deployment
        self.processes = processes
        #: Populated by :meth:`run` (and, inline, :meth:`build_worlds`).
        self.result = None
        self.worlds = None
        self._merged: Optional[MergedNodeGroup] = None

    # -- inline construction ----------------------------------------------

    def build_worlds(self, duration: float) -> None:
        """Build every shard world in-process (inline mode)."""
        from repro.sim.shard import ShardSpec
        if self.processes:
            raise ShardError(
                "build_worlds is inline-only; process workers build "
                "inside their fork")
        self.worlds = [
            _build_scenario_shard(ShardSpec(
                plan=self.plan, index=i, duration=float(duration),
                payload=self.deployment))
            for i in range(self.plan.n_shards)]
        self._merged = MergedNodeGroup(self.deployment.names,
                                       self.worlds)

    @property
    def clock(self):
        if self.worlds is None:
            raise ShardError(
                "process-mode sharded runtimes have no global clock")
        return self.worlds[0].env

    @property
    def env(self):
        """Shard 0's environment — where inline observers schedule."""
        return self.clock

    @property
    def nodes(self) -> NodeGroup:
        if self._merged is None:
            raise ShardError(
                "nodes live inside worker processes; run with "
                "workers mode 'inline' for an in-process view")
        return self._merged

    @property
    def dprocs(self) -> dict:
        """Merged host → Dproc map (inline mode)."""
        if self.worlds is None:
            raise ShardError(
                "dprocs live inside worker processes; run with "
                "workers mode 'inline' for an in-process view")
        merged = {}
        for world in self.worlds:
            merged.update(world.dprocs or {})
        return {name: merged[name] for name in self.deployment.names
                if name in merged}

    def make_bus(self):
        raise ShardError("sharded runtimes own one bus per shard; "
                         "deployment is wired internally")

    # -- execution ---------------------------------------------------------

    def run(self, duration: float):
        """One-shot sharded run for ``duration`` simulated seconds."""
        from repro.sim.shard import run_sharded
        if self.result is not None:
            raise ShardError("a sharded runtime runs exactly once")
        n = self.plan.n_shards
        self.result = run_sharded(
            self.plan, duration, _build_scenario_shard,
            payloads=[self.deployment] * n,
            processes=self.processes,
            worlds=self.worlds)
        return self.result

    def overhead(self) -> dict:
        """Cluster-wide monitoring-overhead summary (merged shards)."""
        from repro.telemetry import merge_overhead_summaries
        if self.result is None:
            raise ShardError("no sharded run has completed yet")
        return merge_overhead_summaries(
            [s.extra["overhead"] for s in self.result.shards
             if s.extra and "overhead" in s.extra])

    def shutdown(self) -> None:
        """Workers are joined by ``run``; nothing is held open."""
