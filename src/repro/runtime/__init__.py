"""Backend-neutral runtime layer: protocols + the sim adapter.

See :mod:`repro.runtime.protocol` for the contract and
:mod:`repro.runtime.sim` / :mod:`repro.live` for the two backends.
"""

from repro.runtime.protocol import (Bus, Clock, Completion, Connection,
                                    Endpoint, NodeGroup, Runtime,
                                    RuntimeNode, TaskHandle, Timer,
                                    Transport)
from repro.runtime.series import (CounterTrace, EwmaLoad, TimeSeries,
                                  WindowAverage)
from repro.runtime.sharded import ShardedRuntime
from repro.runtime.sim import SimRuntime

__all__ = [
    "Clock", "Timer", "Completion", "TaskHandle", "Connection",
    "Transport", "RuntimeNode", "Endpoint", "Bus", "NodeGroup",
    "Runtime", "SimRuntime", "ShardedRuntime",
    "TimeSeries", "CounterTrace", "WindowAverage", "EwmaLoad",
]
