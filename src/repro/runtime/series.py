"""Time-series tracing and windowed statistics (backend-neutral).

These classes carry no simulator dependency: timestamps are plain
floats from whichever :class:`repro.runtime.protocol.Clock` the
backend provides (simulated seconds or wall-clock seconds since
start).  The monitoring modules and the benchmark harness both need to
turn raw activity into rates and averages:

* :class:`TimeSeries` — (t, value) samples with summary statistics.
* :class:`CounterTrace` — monotonically increasing counters with
  windowed *rate* queries (used by DISK_MON and NET_MON).
* :class:`WindowAverage` — sliding-window mean of samples (used by
  CPU_MON for run-queue averaging over an application-chosen period).
* :class:`EwmaLoad` — UNIX-style exponentially weighted load average
  (the classic /proc/loadavg 1/5/15-minute figures).

Bounded mode
------------
Long cluster runs (thousands of simulated seconds on hundreds of
nodes) would otherwise grow every per-node trace without bound.  Both
:class:`TimeSeries` and :class:`CounterTrace` accept an optional
``max_samples``: once the sample count exceeds the bound the *oldest*
samples are discarded in amortised-O(1) chunks, keeping recent-window
queries (``mean(since=...)``, ``rate(now, window)``) exact while
capping memory.  Queries that reach back past the retained horizon see
only the retained samples (for a counter, cumulative totals remain
correct because the trace stores running totals).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from typing import Iterable, Optional

import numpy as np

__all__ = ["TimeSeries", "CounterTrace", "WindowAverage", "EwmaLoad"]


class TimeSeries:
    """Append-only sequence of time-stamped samples.

    With ``max_samples`` set, only the most recent ``max_samples``
    samples are retained (trimmed in chunks, amortised O(1) per
    append).
    """

    def __init__(self, name: str = "",
                 max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.max_samples = max_samples
        self.times: list[float] = []
        self.values: list[float] = []
        #: Number of samples discarded by the retention bound.
        self.dropped_samples = 0

    def record(self, t: float, value: float) -> None:
        """Append one sample.  Timestamps must be non-decreasing."""
        times = self.times
        if times and t < times[-1]:
            raise ValueError(
                f"non-monotonic sample at t={t} (last {times[-1]})")
        times.append(float(t))
        self.values.append(float(value))
        bound = self.max_samples
        if bound is not None and len(times) >= 2 * bound:
            # Trim in one chunk so appends stay amortised O(1).
            cut = len(times) - bound
            del times[:cut]
            del self.values[:cut]
            self.dropped_samples += cut

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterable[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def last(self) -> float:
        """Most recent value."""
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return self.values[-1]

    def mean(self, since: float = -math.inf) -> float:
        """Arithmetic mean of samples recorded at or after ``since``."""
        i = bisect_left(self.times, since)
        window = self.values[i:]
        if not window:
            raise ValueError("no samples in requested window")
        return float(np.mean(window))

    def percentile(self, q: float, since: float = -math.inf) -> float:
        """q-th percentile (0..100) of samples at or after ``since``."""
        i = bisect_left(self.times, since)
        window = self.values[i:]
        if not window:
            raise ValueError("no samples in requested window")
        return float(np.percentile(window, q))

    def time_average(self, t_end: float | None = None) -> float:
        """Piecewise-constant time average from the first sample to ``t_end``.

        Each sample value is held until the next sample time.
        """
        if len(self.times) == 0:
            raise ValueError("time series is empty")
        if t_end is None:
            t_end = self.times[-1]
        if len(self.times) == 1 or t_end <= self.times[0]:
            return self.values[0]
        total = 0.0
        for i in range(len(self.times) - 1):
            if self.times[i] >= t_end:
                break
            dt = min(self.times[i + 1], t_end) - self.times[i]
            total += self.values[i] * dt
        if t_end > self.times[-1]:
            total += self.values[-1] * (t_end - self.times[-1])
        span = t_end - self.times[0]
        return total / span if span > 0 else self.values[0]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as NumPy arrays."""
        return np.asarray(self.times), np.asarray(self.values)


class CounterTrace:
    """A monotonically increasing event counter with rate queries.

    The trace stores ``(time, cumulative-total)`` pairs in two parallel
    lists so windowed queries are a pair of bisects, never a scan.
    With ``max_samples`` set, the oldest update records are discarded
    (the running total is preserved, so ``total`` and recent-window
    queries stay exact; queries reaching past the horizon treat the
    oldest retained record as the epoch).
    """

    def __init__(self, name: str = "",
                 max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.max_samples = max_samples
        self._times: list[float] = []
        self._cumulative: list[float] = []
        self._total = 0.0
        #: Cumulative total at the retention horizon (0 when unbounded).
        self._base = 0.0
        #: Number of update records discarded by the retention bound.
        self.dropped_samples = 0

    @property
    def total(self) -> float:
        """Cumulative count so far."""
        return self._total

    def add(self, t: float, amount: float = 1.0) -> None:
        """Record ``amount`` more units at time ``t``."""
        if amount < 0:
            raise ValueError("counters only increase")
        times = self._times
        if times and t < times[-1]:
            raise ValueError("non-monotonic counter update")
        self._total += amount
        times.append(t)
        self._cumulative.append(self._total)
        bound = self.max_samples
        if bound is not None and len(times) >= 2 * bound:
            cut = len(times) - bound
            self._base = self._cumulative[cut - 1]
            del times[:cut]
            del self._cumulative[:cut]
            self.dropped_samples += cut

    def count_between(self, t0: float, t1: float) -> float:
        """Units accumulated in the half-open window ``(t0, t1]``."""
        if t1 < t0:
            raise ValueError("window end precedes start")
        return self._cumulative_at(t1) - self._cumulative_at(t0)

    def rate(self, now: float, window: float) -> float:
        """Average accumulation rate over the trailing ``window`` seconds."""
        if window <= 0:
            raise ValueError("window must be positive")
        return self.count_between(now - window, now) / window

    def _cumulative_at(self, t: float) -> float:
        # Index of the first record strictly after t; everything at or
        # before t has happened.
        i = bisect_left(self._times, t)
        times = self._times
        n = len(times)
        while i < n and times[i] <= t:
            i += 1
        return self._cumulative[i - 1] if i > 0 else self._base


class WindowAverage:
    """Sliding-window average over the most recent ``window`` seconds."""

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._samples: deque[tuple[float, float]] = deque()
        self._sum = 0.0

    def record(self, t: float, value: float) -> None:
        """Add one sample, expiring samples older than the window."""
        self._samples.append((t, float(value)))
        self._sum += value
        cutoff = t - self.window
        while self._samples and self._samples[0][0] < cutoff:
            _, old = self._samples.popleft()
            self._sum -= old

    def set_window(self, window: float) -> None:
        """Change the averaging period (used when an application tunes it)."""
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)

    @property
    def value(self) -> float:
        """Current window mean (0.0 with no samples)."""
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)

    def __len__(self) -> int:
        return len(self._samples)


class EwmaLoad:
    """UNIX exponentially-weighted load averages (1/5/15 minutes).

    Mirrors the kernel's ``calc_load``: on each sample at interval
    ``dt``, ``load = load * exp(-dt/tau) + n * (1 - exp(-dt/tau))``.
    """

    PERIODS = (60.0, 300.0, 900.0)

    def __init__(self) -> None:
        self.loads = [0.0, 0.0, 0.0]
        self._last_t: float | None = None

    def update(self, t: float, runnable: float) -> None:
        """Fold in the instantaneous run-queue length at time ``t``.

        The first sample only anchors the clock (averages stay at the
        boot value 0.0, as on a freshly started kernel); subsequent
        samples decay exponentially toward the observed run queue.
        """
        if self._last_t is None:
            pass  # anchor only
        else:
            dt = t - self._last_t
            if dt < 0:
                raise ValueError("time went backwards")
            for i, tau in enumerate(self.PERIODS):
                decay = math.exp(-dt / tau)
                self.loads[i] = self.loads[i] * decay \
                    + runnable * (1.0 - decay)
        self._last_t = t

    def as_tuple(self) -> tuple[float, float, float]:
        """The (1min, 5min, 15min) averages."""
        return tuple(self.loads)  # type: ignore[return-value]
