"""Parsing of text written to dproc control files.

"For each node entry in /proc/cluster, there is also an associated
control file, which a user-space application can modify to (a) specify
monitoring parameters (e.g., thresholds or update periods) and
(b) deploy dynamically generated filters" (paper §2).

Command grammar (one command per line; ``filter`` consumes the rest of
the write so multi-line E-code sources pass through verbatim)::

    period    <metric|module|*> <seconds>
    threshold <metric|module|*> above <v> | below <v>
                                | change <pct> | range <lo> <hi>
    clear     <metric|module|*> period|threshold
    filter    <metric|module|*> [id=<filter-id>] <e-code source ...>
    unfilter  <filter-id>

Lines starting with ``#`` and blank lines are ignored.
"""

from __future__ import annotations

from repro.errors import ControlSyntaxError
from repro.kecho.control import (ClearParameter, ControlMessage,
                                 DeployFilter, RemoveFilter, SetParameter)

__all__ = ["parse_control_text"]


def parse_control_text(text: str, sender: str,
                       target: str) -> list[ControlMessage]:
    """Parse a control-file write into control messages.

    ``sender`` is the writing host, ``target`` the host whose d-mon the
    commands address (the node the control file belongs to).
    """
    messages: list[ControlMessage] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line.startswith("#"):
            continue
        words = line.split()
        cmd = words[0].lower()

        if cmd == "period":
            if len(words) != 3:
                raise ControlSyntaxError(
                    "usage: period <metric|*> <seconds>")
            _require_number(words[2], "period")
            messages.append(SetParameter(
                sender=sender, target=target, metric=words[1],
                parameter="period", spec=words[2]))
        elif cmd == "threshold":
            if len(words) < 3:
                raise ControlSyntaxError(
                    "usage: threshold <metric|*> <spec...>")
            # Validate eagerly so bad writes fail at the writer.
            from repro.dproc.params import parse_threshold_spec
            parse_threshold_spec(words[2:])
            messages.append(SetParameter(
                sender=sender, target=target, metric=words[1],
                parameter="threshold", spec=" ".join(words[2:])))
        elif cmd == "clear":
            if len(words) != 3 or words[2] not in ("period", "threshold"):
                raise ControlSyntaxError(
                    "usage: clear <metric|*> period|threshold")
            messages.append(ClearParameter(
                sender=sender, target=target, metric=words[1],
                parameter=words[2]))
        elif cmd == "filter":
            if len(words) < 2:
                raise ControlSyntaxError(
                    "usage: filter <metric|*> [id=<id>] <source>")
            metric = words[1]
            rest = words[2:]
            filter_id = ""
            if rest and rest[0].startswith("id="):
                filter_id = rest[0][3:]
                if not filter_id:
                    raise ControlSyntaxError("empty filter id")
                rest = rest[1:]
            # The filter source is everything after the header on this
            # line plus all remaining lines of the write.
            source = " ".join(rest)
            if i < len(lines):
                source = source + "\n" + "\n".join(lines[i:])
                i = len(lines)
            if not source.strip():
                raise ControlSyntaxError("empty filter source")
            messages.append(DeployFilter(
                sender=sender, target=target, metric=metric,
                source=source, filter_id=filter_id))
        elif cmd == "unfilter":
            if len(words) != 2:
                raise ControlSyntaxError("usage: unfilter <filter-id>")
            messages.append(RemoveFilter(
                sender=sender, target=target, filter_id=words[1]))
        else:
            raise ControlSyntaxError(f"unknown control command {cmd!r}")
    if not messages:
        raise ControlSyntaxError("empty control write")
    return messages


def _require_number(text: str, what: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ControlSyntaxError(f"bad {what} {text!r}") from None
    if value <= 0:
        raise ControlSyntaxError(f"{what} must be positive")
    return value
