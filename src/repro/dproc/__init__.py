"""dproc: the paper's customizable distributed monitoring toolkit.

Public surface:

* :func:`deploy_dproc` / :class:`Dproc` — per-node toolkit with the
  ``/proc/cluster`` interface;
* :class:`DMon` — the coordinator (register modules, parameters,
  dynamic filters, channels);
* :class:`MetricId` and the metric namespace;
* the parameter engine (:class:`MetricPolicy`, threshold rules);
* the monitoring modules (CPU/MEM/DISK/NET/PMC).
"""

from repro.dproc.aggregate import ClusterView
from repro.dproc.central import CentralCollector, CentralConfig
from repro.dproc.control_api import (ClearCommand, ControlCommand,
                                     ControlRequest, FilterCommand,
                                     PeriodCommand, ThresholdCommand,
                                     UnfilterCommand, topk_filter,
                                     topk_source)
from repro.dproc.control_file import parse_control_text
from repro.dproc.dmon import (DMon, DMonConfig, PEER_DEAD, PEER_FRESH,
                              PEER_STALE, PEER_UNKNOWN, RemoteMetric,
                              RemoteProcs, register_default_modules)
from repro.dproc.federation import (GridFederation, Site, SiteSummary,
                                    WanLink)
from repro.dproc.filters import DeployedFilter, FilterManager
from repro.dproc.metrics import (METRIC_CONSTANTS, METRIC_FILES,
                                 MODULE_METRICS, MetricId, metric_by_name,
                                 module_of)
from repro.dproc.modules import (BatteryMon, CpuMon, DiskMon, KeyedSample,
                                 MemMon, MetricSample, MonitoringModule,
                                 NetMon, PmcMon, ProcMon)
from repro.dproc.params import (AboveThreshold, BelowThreshold,
                                ChangeThreshold, MetricPolicy,
                                RangeThreshold, ThresholdRule,
                                parse_threshold_spec)
from repro.dproc.procfs import ProcFS, ProcFile
from repro.dproc.toolkit import Dproc, deploy_dproc

__all__ = [
    "ClusterView",
    "CentralCollector", "CentralConfig",
    "GridFederation", "Site", "SiteSummary", "WanLink",
    "parse_control_text",
    "ControlCommand", "ControlRequest", "PeriodCommand",
    "ThresholdCommand", "ClearCommand", "FilterCommand",
    "UnfilterCommand", "topk_filter", "topk_source",
    "DMon", "DMonConfig", "RemoteMetric", "RemoteProcs",
    "register_default_modules",
    "PEER_FRESH", "PEER_STALE", "PEER_DEAD", "PEER_UNKNOWN",
    "DeployedFilter", "FilterManager",
    "METRIC_CONSTANTS", "METRIC_FILES", "MODULE_METRICS", "MetricId",
    "metric_by_name", "module_of",
    "BatteryMon", "CpuMon", "DiskMon", "KeyedSample", "MemMon",
    "MetricSample", "MonitoringModule", "NetMon", "PmcMon", "ProcMon",
    "AboveThreshold", "BelowThreshold", "ChangeThreshold", "MetricPolicy",
    "RangeThreshold", "ThresholdRule", "parse_threshold_spec",
    "ProcFS", "ProcFile",
    "Dproc", "deploy_dproc",
]
