"""Pseudo-filesystem plumbing for the dproc /proc interface.

A minimal in-memory procfs: directories are implicit, files are
callback-backed (reads compute fresh content; writes invoke a handler).
The dproc toolkit mounts its tree here::

    /proc/loadavg                      (standard Linux entry)
    /proc/cluster/<node>/loadavg       (remote monitoring data)
    /proc/cluster/<node>/freemem
    ...
    /proc/cluster/<node>/control       (parameters + filter deployment)
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ProcfsError

__all__ = ["ProcFS", "ProcFile"]

ReadFn = Callable[[], str]
WriteFn = Callable[[str], None]


class ProcFile:
    """One pseudo-file: read callback plus optional write handler."""

    def __init__(self, read_fn: ReadFn,
                 write_fn: Optional[WriteFn] = None) -> None:
        self._read = read_fn
        self._write = write_fn

    @property
    def writable(self) -> bool:
        return self._write is not None

    def read(self) -> str:
        return self._read()

    def write(self, text: str) -> None:
        if self._write is None:
            raise ProcfsError("file is read-only")
        self._write(text)


def _split(path: str) -> tuple[str, ...]:
    parts = tuple(p for p in path.strip().split("/") if p)
    if not parts:
        raise ProcfsError(f"bad path {path!r}")
    return parts


class ProcFS:
    """In-memory pseudo-filesystem with callback-backed files.

    Directory structure is tracked incrementally (per-directory child
    refcounts), so mounting is O(path depth) rather than a scan of
    every existing mount — the difference between seconds and minutes
    when a thousand nodes each mount a thousand-entry /proc/cluster
    tree.
    """

    def __init__(self) -> None:
        self._files: dict[tuple[str, ...], ProcFile] = {}
        #: Directory key -> {child name -> number of mounts below it}.
        self._children: dict[tuple[str, ...], dict[str, int]] = {}

    # -- mounting ------------------------------------------------------------

    def mount(self, path: str, file: ProcFile) -> None:
        """Install a file at ``path`` (intermediate dirs are implicit)."""
        key = _split(path)
        if key in self._files:
            raise ProcfsError(f"{path!r} already mounted")
        # A file cannot also be a directory prefix of another file.
        if key in self._children:
            raise ProcfsError(
                f"{path!r} conflicts with existing mounts below it")
        for i in range(1, len(key)):
            if key[:i] in self._files:
                raise ProcfsError(
                    f"{path!r} conflicts with existing mount "
                    f"{'/' + '/'.join(key[:i])!r}")
        self._files[key] = file
        for i in range(len(key)):
            parent = key[:i]
            children = self._children.get(parent)
            if children is None:
                children = self._children[parent] = {}
            name = key[i]
            children[name] = children.get(name, 0) + 1

    def unmount(self, path: str) -> None:
        key = _split(path)
        if self._files.pop(key, None) is None:
            raise ProcfsError(f"{path!r} is not mounted")
        for i in range(len(key)):
            parent = key[:i]
            children = self._children[parent]
            name = key[i]
            children[name] -= 1
            if children[name] == 0:
                del children[name]
                if not children:
                    del self._children[parent]

    # -- access ---------------------------------------------------------------

    def read(self, path: str) -> str:
        """Read a file's current content."""
        return self._lookup(path).read()

    def write(self, path: str, text: str) -> None:
        """Write ``text`` to a file (its handler interprets it)."""
        self._lookup(path).write(text)

    def exists(self, path: str) -> bool:
        """True for both files and (implicit) directories."""
        key = _split(path)
        return key in self._files or key in self._children

    def is_dir(self, path: str) -> bool:
        key = _split(path)
        if key in self._files:
            return False
        return key in self._children

    def listdir(self, path: str) -> list[str]:
        """Names directly under a directory."""
        key = _split(path) if path.strip("/") else ()
        if key in self._files:
            raise ProcfsError(f"{path!r} is a file, not a directory")
        children = self._children.get(key)
        if children is None:
            if key:
                raise ProcfsError(f"no such directory {path!r}")
            return []
        return sorted(children)

    def _lookup(self, path: str) -> ProcFile:
        key = _split(path)
        file = self._files.get(key)
        if file is None:
            raise ProcfsError(f"no such file {path!r}")
        return file
