"""Typed control requests: build control-file writes without string math.

The control-file grammar (:mod:`repro.dproc.control_file`) is the wire
format; applications that construct commands programmatically are
better served by dataclasses that render to it::

    req = ControlRequest([
        PeriodCommand(metric="cpu", seconds=2.0),
        ThresholdCommand(metric="loadavg", kind="above", values=(0.5,)),
    ])
    dproc.write("/proc/cluster/maui/control", req)

``ControlRequest.parse`` inverts :meth:`ControlRequest.render`, so a
request survives a round trip through the text grammar unchanged (see
``tests/dproc/test_control_api.py``).  Raw string writes remain fully
supported — a :class:`ControlRequest` is sugar, not a new protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.dproc.control_file import parse_control_text
from repro.errors import ControlSyntaxError
from repro.kecho.control import (ClearParameter, ControlMessage,
                                 DeployFilter, RemoveFilter, SetParameter)

__all__ = [
    "ControlCommand", "ControlRequest", "PeriodCommand",
    "ThresholdCommand", "ClearCommand", "FilterCommand",
    "UnfilterCommand", "topk_filter", "topk_source",
]

#: Threshold kinds and how many numeric arguments each takes.
_THRESHOLD_ARITY = {"above": 1, "below": 1, "change": 1, "range": 2}


def _num(value: float) -> str:
    """Render a number so ``float()`` recovers it exactly."""
    return repr(float(value))


@dataclass(frozen=True)
class PeriodCommand:
    """``period <metric|*> <seconds>``."""

    seconds: float
    metric: str = "*"

    def __post_init__(self) -> None:
        if not float(self.seconds) > 0:
            raise ControlSyntaxError("period must be positive")

    def render(self) -> str:
        return f"period {self.metric} {_num(self.seconds)}"


@dataclass(frozen=True)
class ThresholdCommand:
    """``threshold <metric|*> above|below|change|range <values...>``."""

    kind: str
    values: tuple
    metric: str = "*"

    def __post_init__(self) -> None:
        if self.kind not in _THRESHOLD_ARITY:
            raise ControlSyntaxError(
                f"unknown threshold kind {self.kind!r}")
        if len(self.values) != _THRESHOLD_ARITY[self.kind]:
            raise ControlSyntaxError(
                f"threshold {self.kind!r} takes "
                f"{_THRESHOLD_ARITY[self.kind]} value(s)")
        object.__setattr__(
            self, "values", tuple(float(v) for v in self.values))
        # Eager validation with the real spec parser, so a bad command
        # fails at construction rather than at the remote d-mon.
        from repro.dproc.params import parse_threshold_spec
        parse_threshold_spec([self.kind] + [_num(v) for v in self.values])

    def render(self) -> str:
        spec = " ".join(_num(v) for v in self.values)
        return f"threshold {self.metric} {self.kind} {spec}"


@dataclass(frozen=True)
class ClearCommand:
    """``clear <metric|*> period|threshold``."""

    parameter: str
    metric: str = "*"

    def __post_init__(self) -> None:
        if self.parameter not in ("period", "threshold"):
            raise ControlSyntaxError(
                "clear parameter must be 'period' or 'threshold'")

    def render(self) -> str:
        return f"clear {self.metric} {self.parameter}"


@dataclass(frozen=True)
class FilterCommand:
    """``filter <metric|*> [id=<id>] <e-code source...>``.

    The grammar lets a filter consume the rest of the write, so a
    request may contain at most one filter command and it must come
    last (:class:`ControlRequest` enforces this).
    """

    source: str
    metric: str = "*"
    filter_id: str = ""

    def __post_init__(self) -> None:
        if not self.source.strip():
            raise ControlSyntaxError("empty filter source")
        if not self.filter_id and self.source.lstrip().startswith("id="):
            raise ControlSyntaxError(
                "filter source starting with 'id=' needs an explicit "
                "filter_id to render unambiguously")

    def render(self) -> str:
        head = f"filter {self.metric}"
        if self.filter_id:
            head += f" id={self.filter_id}"
        return f"{head} {self.source}"


@dataclass(frozen=True)
class UnfilterCommand:
    """``unfilter <filter-id>``."""

    filter_id: str

    def __post_init__(self) -> None:
        if not self.filter_id or any(c.isspace() for c in self.filter_id):
            raise ControlSyntaxError("bad filter id")

    def render(self) -> str:
        return f"unfilter {self.filter_id}"


ControlCommand = Union[PeriodCommand, ThresholdCommand, ClearCommand,
                       FilterCommand, UnfilterCommand]


@dataclass(frozen=True)
class ControlRequest:
    """An ordered batch of control commands for one control-file write."""

    commands: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "commands", tuple(self.commands))
        if not self.commands:
            raise ControlSyntaxError("empty control request")
        for i, cmd in enumerate(self.commands):
            if isinstance(cmd, FilterCommand) and i != len(self.commands) - 1:
                raise ControlSyntaxError(
                    "a filter command consumes the rest of the write "
                    "and must be the last command in a request")

    def render(self) -> str:
        """Render to the control-file text grammar."""
        return "\n".join(cmd.render() for cmd in self.commands)

    @classmethod
    def parse(cls, text: str) -> "ControlRequest":
        """Parse control-file text back into a typed request."""
        messages = parse_control_text(text, sender="", target="")
        return cls(tuple(_from_message(m) for m in messages))

    def messages(self, sender: str, target: str) -> list[ControlMessage]:
        """The control messages a d-mon would emit for this request."""
        return parse_control_text(self.render(), sender, target)


#: Keyed-table column accessors a top-K filter can rank by.
_TOPK_COLUMNS = {"cpu": "proc_cpu", "mem": "proc_mem", "io": "proc_io"}


def topk_source(k: int, by: str = "cpu", *, width: int = 512,
                depth: int = 4, seed: int = 1) -> str:
    """E-code source for a sketch-backed top-K process filter.

    The generated filter folds every per-process row into a seeded
    count-min sketch (bounded memory, monotone estimates), keeps the
    ``k`` heaviest keys in a bounded heap, and ``emit``\\ s only those
    (pid, weight) pairs — so a monitor asking for "top-K processes by
    CPU" ships K pairs per poll instead of the full per-PID table.
    """
    try:
        column = _TOPK_COLUMNS[by]
    except KeyError:
        raise ControlSyntaxError(
            f"topk 'by' must be one of {sorted(_TOPK_COLUMNS)}, "
            f"got {by!r}") from None
    k, width, depth, seed = int(k), int(width), int(depth), int(seed)
    if k < 1:
        raise ControlSyntaxError("topk k must be >= 1")
    if width < 1 or depth < 1:
        raise ControlSyntaxError("sketch width and depth must be >= 1")
    return (
        "{\n"
        f"    int c = cms_new({width}, {depth}, {seed});\n"
        f"    int t = topk_new({k});\n"
        "    int n = nproc();\n"
        "    int i;\n"
        "    int pid;\n"
        "    double w;\n"
        "    for (i = 0; i < n; i = i + 1) {\n"
        "        pid = proc_pid(i);\n"
        f"        w = cms_add(c, pid, {column}(i));\n"
        "        topk_offer(t, pid, w);\n"
        "    }\n"
        "    n = topk_size(t);\n"
        "    for (i = 0; i < n; i = i + 1) {\n"
        "        emit(topk_key(t, i), topk_weight(t, i));\n"
        "    }\n"
        "    return cms_total(c);\n"
        "}\n")


def topk_filter(k: int, by: str = "cpu", *, width: int = 512,
                depth: int = 4, seed: int = 1, metric: str = "proc",
                filter_id: str = "topk") -> ControlRequest:
    """A ready-to-write control request deploying a top-K filter.

    ``metric`` scopes the filter (``"proc"`` governs just the process
    module's keyed rows; ``"*"`` governs every keyed row on the node)::

        dproc.write("/proc/cluster/maui/control", topk_filter(5))
    """
    source = topk_source(k, by, width=width, depth=depth, seed=seed)
    return ControlRequest((FilterCommand(
        source=source, metric=metric, filter_id=filter_id),))


def _from_message(msg: ControlMessage) -> ControlCommand:
    if isinstance(msg, SetParameter):
        if msg.parameter == "period":
            return PeriodCommand(metric=msg.metric,
                                 seconds=float(msg.spec))
        words = msg.spec.split()
        kind = words[0].lower()
        return ThresholdCommand(
            metric=msg.metric, kind=kind,
            values=tuple(float(w.rstrip("%")) for w in words[1:]))
    if isinstance(msg, ClearParameter):
        return ClearCommand(metric=msg.metric, parameter=msg.parameter)
    if isinstance(msg, DeployFilter):
        return FilterCommand(metric=msg.metric, source=msg.source,
                             filter_id=msg.filter_id)
    if isinstance(msg, RemoveFilter):
        return UnfilterCommand(filter_id=msg.filter_id)
    raise ControlSyntaxError(
        f"unmappable control message {type(msg).__name__}")
